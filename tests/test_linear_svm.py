"""Tests for logistic regression and the SVM family."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.linear import LogisticRegression
from repro.svm import SVC, LinearSVC
from repro.svm.kernels import linear_kernel, polynomial_kernel, rbf_kernel


class TestLogisticRegression:
    def test_separable_accuracy(self, binary_blobs):
        X, y = binary_blobs
        assert LogisticRegression(C=10.0).fit(X, y).score(X, y) > 0.95

    def test_proba_valid(self, binary_blobs):
        X, y = binary_blobs
        proba = LogisticRegression().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_coefficient_sign(self):
        rng = np.random.RandomState(0)
        X = rng.randn(500, 2)
        y = (X[:, 0] > 0).astype(int)
        clf = LogisticRegression(C=10.0).fit(X, y)
        assert clf.coef_[0] > abs(clf.coef_[1])

    def test_regularisation_shrinks_weights(self, binary_blobs):
        X, y = binary_blobs
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.001).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_sample_weight_shifts_boundary(self):
        X = np.array([[-1.0], [-0.5], [0.5], [1.0]])
        y = np.array([0, 0, 1, 1])
        heavy_pos = LogisticRegression().fit(X, y, sample_weight=[1, 1, 100, 100])
        baseline = LogisticRegression().fit(X, y)
        x_probe = np.array([[-0.25]])
        assert (
            heavy_pos.predict_proba(x_probe)[0, 1]
            > baseline.predict_proba(x_probe)[0, 1]
        )

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0).fit(np.ones((2, 1)), [0, 1])

    def test_multiclass_rejected(self, rng):
        with pytest.raises(ValueError):
            LogisticRegression().fit(rng.randn(9, 2), [0, 1, 2] * 3)

    def test_decision_function_consistent(self, binary_blobs):
        X, y = binary_blobs
        clf = LogisticRegression().fit(X, y)
        decision = clf.decision_function(X)
        proba = clf.predict_proba(X)[:, 1]
        assert np.array_equal(decision > 0, proba > 0.5)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.ones((2, 2)))


class TestKernels:
    def test_linear_kernel(self, rng):
        A, B = rng.randn(5, 3), rng.randn(4, 3)
        assert np.allclose(linear_kernel(A, B), A @ B.T)

    def test_rbf_diagonal_ones(self, rng):
        A = rng.randn(6, 3)
        K = rbf_kernel(A, A, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0, atol=1e-10)

    def test_rbf_range(self, rng):
        K = rbf_kernel(rng.randn(5, 2), rng.randn(5, 2), gamma=1.0)
        assert (K > 0).all() and (K <= 1.0 + 1e-12).all()

    def test_polynomial(self, rng):
        A = rng.randn(3, 2)
        K = polynomial_kernel(A, A, degree=2, gamma=1.0, coef0=0.0)
        assert np.allclose(K, (A @ A.T) ** 2)


class TestLinearSVC:
    def test_separable(self, binary_blobs):
        X, y = binary_blobs
        clf = LinearSVC(C=1.0, max_iter=3000, random_state=0).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_proba_monotone_in_decision(self, binary_blobs):
        X, y = binary_blobs
        clf = LinearSVC(random_state=0).fit(X, y)
        decision = clf.decision_function(X)
        proba = clf.predict_proba(X)[:, 1]
        order = np.argsort(decision)
        assert (np.diff(proba[order]) >= -1e-9).all()

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            LinearSVC(C=-1).fit(np.ones((2, 1)), [0, 1])


class TestSVC:
    def test_rbf_solves_circle(self):
        """A radially separable problem no linear model can solve."""
        rng = np.random.RandomState(0)
        X = rng.randn(400, 2)
        y = (np.linalg.norm(X, axis=1) < 1.0).astype(int)
        clf = SVC(C=10.0, max_iter=6000, random_state=0).fit(X, y)
        assert clf.score(X, y) > 0.85

    def test_proba_shape_and_range(self, binary_blobs):
        X, y = binary_blobs
        proba = SVC(max_iter=2000, random_state=0).fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_gamma_scale_auto(self, binary_blobs):
        X, y = binary_blobs
        for gamma in ("scale", "auto", 0.3):
            clf = SVC(gamma=gamma, max_iter=500, random_state=0).fit(X, y)
            assert clf.gamma_ > 0

    def test_linear_kernel_mode(self, binary_blobs):
        X, y = binary_blobs
        clf = SVC(kernel="linear", max_iter=2000, random_state=0).fit(X, y)
        assert clf.score(X, y) > 0.85

    def test_unsupported_kernel(self, binary_blobs):
        X, y = binary_blobs
        with pytest.raises(ValueError):
            SVC(kernel="sigmoid").fit(X, y)

    def test_multiclass_rejected(self, rng):
        with pytest.raises(ValueError):
            SVC().fit(rng.randn(9, 2), [0, 1, 2] * 3)
