"""Tests for threshold metrics against hand-computed values and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    f1_score,
    fbeta_score,
    geometric_mean_score,
    geometric_mean_sensitivity_specificity,
    matthews_corrcoef,
    precision_score,
    recall_score,
    specificity_score,
)

# Hand-worked example: TP=3, FP=1, FN=2, TN=4
Y_TRUE = np.array([1, 1, 1, 1, 1, 0, 0, 0, 0, 0])
Y_PRED = np.array([1, 1, 1, 0, 0, 1, 0, 0, 0, 0])


class TestHandComputed:
    def test_precision(self):
        assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 4)

    def test_recall(self):
        assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(3 / 5)

    def test_specificity(self):
        assert specificity_score(Y_TRUE, Y_PRED) == pytest.approx(4 / 5)

    def test_f1(self):
        p, r = 3 / 4, 3 / 5
        assert f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 * p * r / (p + r))

    def test_gm_paper_definition(self):
        assert geometric_mean_score(Y_TRUE, Y_PRED) == pytest.approx(
            math.sqrt(3 / 4 * 3 / 5)
        )

    def test_gm_tpr_tnr(self):
        assert geometric_mean_sensitivity_specificity(Y_TRUE, Y_PRED) == pytest.approx(
            math.sqrt(3 / 5 * 4 / 5)
        )

    def test_mcc(self):
        num = 3 * 4 - 1 * 2
        den = math.sqrt((3 + 1) * (3 + 2) * (4 + 1) * (4 + 2))
        assert matthews_corrcoef(Y_TRUE, Y_PRED) == pytest.approx(num / den)

    def test_accuracy(self):
        assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(0.7)

    def test_balanced_accuracy(self):
        assert balanced_accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(
            0.5 * (3 / 5 + 4 / 5)
        )


class TestEdgeCases:
    def test_no_predicted_positives(self):
        assert precision_score([0, 1], [0, 0]) == 0.0

    def test_zero_division_override(self):
        assert precision_score([0, 1], [0, 0], zero_division=1.0) == 1.0

    def test_perfect_prediction(self):
        y = [0, 1, 1, 0]
        assert f1_score(y, y) == 1.0
        assert matthews_corrcoef(y, y) == pytest.approx(1.0)

    def test_inverted_prediction_mcc(self):
        y = np.array([0, 1, 0, 1])
        assert matthews_corrcoef(y, 1 - y) == pytest.approx(-1.0)

    def test_all_same_prediction_mcc_zero(self):
        assert matthews_corrcoef([0, 1, 0, 1], [1, 1, 1, 1]) == 0.0

    def test_fbeta_recall_heavy(self):
        """Large beta weights recall: predicting everything positive helps."""
        y_true = [1, 1, 0, 0]
        y_all = [1, 1, 1, 1]
        y_half = [1, 0, 0, 0]
        assert fbeta_score(y_true, y_all, beta=10) > fbeta_score(y_true, y_half, beta=10)


@st.composite
def prediction_pairs(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    y_true = draw(st.lists(st.sampled_from([0, 1]), min_size=n, max_size=n))
    y_pred = draw(st.lists(st.sampled_from([0, 1]), min_size=n, max_size=n))
    return np.array(y_true), np.array(y_pred)


class TestProperties:
    @given(prediction_pairs())
    def test_metrics_bounded(self, pair):
        y_true, y_pred = pair
        for fn in (precision_score, recall_score, f1_score, geometric_mean_score):
            assert 0.0 <= fn(y_true, y_pred) <= 1.0
        assert -1.0 <= matthews_corrcoef(y_true, y_pred) <= 1.0

    @given(prediction_pairs())
    def test_f1_below_gm_below_mean(self, pair):
        """Harmonic mean <= geometric mean of precision and recall."""
        y_true, y_pred = pair
        assert f1_score(y_true, y_pred) <= geometric_mean_score(y_true, y_pred) + 1e-12

    @given(prediction_pairs())
    def test_mcc_symmetric_under_class_swap(self, pair):
        y_true, y_pred = pair
        assert matthews_corrcoef(y_true, y_pred) == pytest.approx(
            matthews_corrcoef(1 - y_true, 1 - y_pred), abs=1e-12
        )

    @given(prediction_pairs())
    def test_accuracy_matches_manual(self, pair):
        y_true, y_pred = pair
        assert accuracy_score(y_true, y_pred) == pytest.approx(
            float(np.mean(y_true == y_pred))
        )
