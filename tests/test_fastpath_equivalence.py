"""Fastpath equivalence contract: packed inference and fastpath scoring are
bit-identical to the legacy per-tree paths, for every tree-based ensemble
and for the degenerate shapes that break naive packing."""

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.ensemble import BaggingClassifier, RandomForestClassifier
from repro.fastpath import (
    CodeTable,
    PackedForest,
    ScoringMatrix,
    cached_packed_ensemble,
    fastpath_disabled,
)
from repro.imbalance_ensemble import (
    BalanceCascadeClassifier,
    EasyEnsembleClassifier,
    UnderBaggingClassifier,
)
from repro.parallel import ensemble_predict_proba
from repro.streaming import ArraySource, StreamingSelfPacedEnsembleClassifier
from repro.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def data():
    return make_checkerboard(n_minority=80, n_majority=800, random_state=0)


@pytest.fixture(scope="module")
def test_rows():
    X, _ = make_checkerboard(n_minority=80, n_majority=800, random_state=99)
    return X


def _assert_packed_matches_legacy(model, X):
    proba_fast = ensemble_predict_proba(model.estimators_, X, model.classes_)
    proba_legacy = ensemble_predict_proba(
        model.estimators_, X, model.classes_, packed="never"
    )
    assert np.array_equal(proba_fast, proba_legacy)
    # and through the public API with the kernels globally disabled
    with fastpath_disabled():
        assert np.array_equal(model.predict_proba(X), proba_legacy)


class TestPackedEqualsPerTree:
    """PackedForest vs per-tree predict_proba, exact equality."""

    def test_self_paced_ensemble(self, data, test_rows):
        X, y = data
        model = SelfPacedEnsembleClassifier(n_estimators=6, random_state=0).fit(X, y)
        _assert_packed_matches_legacy(model, test_rows)

    def test_self_paced_ensemble_shared_binning(self, data, test_rows):
        X, y = data
        model = SelfPacedEnsembleClassifier(
            n_estimators=6, shared_binning=True, random_state=0
        ).fit(X, y)
        _assert_packed_matches_legacy(model, test_rows)

    def test_random_forest(self, data, test_rows):
        X, y = data
        model = RandomForestClassifier(n_estimators=7, random_state=1).fit(X, y)
        _assert_packed_matches_legacy(model, test_rows)

    def test_bagging(self, data, test_rows):
        X, y = data
        model = BaggingClassifier(n_estimators=5, random_state=2).fit(X, y)
        _assert_packed_matches_legacy(model, test_rows)

    def test_under_bagging(self, data, test_rows):
        X, y = data
        model = UnderBaggingClassifier(n_estimators=5, random_state=3).fit(X, y)
        _assert_packed_matches_legacy(model, test_rows)

    def test_balance_cascade(self, data, test_rows):
        X, y = data
        model = BalanceCascadeClassifier(n_estimators=4, random_state=4).fit(X, y)
        _assert_packed_matches_legacy(model, test_rows)

    def test_easy_ensemble_plain_members(self, data, test_rows):
        X, y = data
        model = EasyEnsembleClassifier(
            n_estimators=4, n_boost_rounds=1, random_state=5
        ).fit(X, y)
        _assert_packed_matches_legacy(model, test_rows)

    def test_easy_ensemble_boosted_members_fall_back(self, data, test_rows):
        """Boosted bags are not single trees: the packed path must refuse
        and the chunked fallback must serve identical probabilities."""
        X, y = data
        model = EasyEnsembleClassifier(
            n_estimators=3, n_boost_rounds=3, random_state=6
        ).fit(X, y)
        assert cached_packed_ensemble(model.estimators_, model.classes_) is None
        _assert_packed_matches_legacy(model, test_rows)

    def test_streaming_exact_mode(self, data, test_rows):
        X, y = data
        model = StreamingSelfPacedEnsembleClassifier(
            n_estimators=5, random_state=7
        ).fit(ArraySource(X, y, block_size=128))
        _assert_packed_matches_legacy(model, test_rows)

    def test_streaming_reservoir_mode(self, data, test_rows):
        X, y = data
        model = StreamingSelfPacedEnsembleClassifier(
            n_estimators=4, mode="reservoir", random_state=8
        ).fit(ArraySource(X, y, block_size=128))
        _assert_packed_matches_legacy(model, test_rows)


class TestDegenerateShapes:
    def test_single_node_trees(self, data, test_rows):
        """max_depth=0 would be invalid; a huge min_samples_split leaves
        every tree a single root leaf."""
        X, y = data
        base = DecisionTreeClassifier(min_samples_split=10_000)
        model = BaggingClassifier(estimator=base, n_estimators=4, random_state=0).fit(X, y)
        assert all(est.tree_.node_count == 1 for est in model.estimators_)
        _assert_packed_matches_legacy(model, test_rows)

    def test_single_class_members(self, data, test_rows):
        """A member fitted on one class contributes a single column that
        must be scattered into the right slot of the class space."""
        X, y = data
        full = DecisionTreeClassifier(max_depth=3).fit(X, y)
        only_zero = DecisionTreeClassifier(max_depth=3).fit(X[:10], np.zeros(10, dtype=int))
        only_one = DecisionTreeClassifier(max_depth=3).fit(X[:10], np.ones(10, dtype=int))
        classes = np.array([0, 1])
        for members in ([full, only_zero], [only_one, full], [only_zero, only_one]):
            fast = ensemble_predict_proba(members, test_rows, classes)
            legacy = ensemble_predict_proba(members, test_rows, classes, packed="never")
            assert np.array_equal(fast, legacy)

    def test_single_estimator(self, data, test_rows):
        X, y = data
        model = SelfPacedEnsembleClassifier(n_estimators=1, random_state=0).fit(X, y)
        assert len(model.estimators_) == 1
        _assert_packed_matches_legacy(model, test_rows)

    def test_many_estimators_cross_block_reduction(self, data, test_rows):
        """More members than ESTIMATOR_BLOCK exercises the block-partial
        reduction order on both paths."""
        X, y = data
        model = UnderBaggingClassifier(n_estimators=19, random_state=9).fit(X, y)
        _assert_packed_matches_legacy(model, test_rows)


class TestScoringFastpath:
    """The SPE fit loop's majority scoring (ScoringMatrix / CodeTable) must
    not change the fitted ensemble by a single bit."""

    @pytest.mark.parametrize("shared", [False, True])
    def test_fit_bit_identical_with_and_without_kernels(self, data, test_rows, shared):
        X, y = data
        fast = SelfPacedEnsembleClassifier(
            n_estimators=6, shared_binning=shared, random_state=0
        ).fit(X, y)
        with fastpath_disabled():
            legacy = SelfPacedEnsembleClassifier(
                n_estimators=6, shared_binning=shared, random_state=0
            ).fit(X, y)
            # evaluate both through the same (legacy) path to isolate fit
            p_fast = fast.predict_proba(test_rows)
            p_legacy = legacy.predict_proba(test_rows)
        assert np.array_equal(p_fast, p_legacy)

    def test_scoring_matrix_exact_for_foreign_trees(self, data, test_rows):
        """Rank-coded scoring is exact for trees fitted on *other* data —
        thresholds fall between the matrix's values arbitrarily."""
        X, y = data
        rng = np.random.RandomState(3)
        X_other = rng.randn(300, X.shape[1])
        tree = DecisionTreeClassifier(max_depth=6).fit(
            X_other, (X_other[:, 0] > 0).astype(int)
        )
        forest = PackedForest.from_estimators([tree], np.array([0, 1]))
        scoring = ScoringMatrix(test_rows)
        assert np.array_equal(
            scoring.score(forest), forest.predict_proba(test_rows)
        )

    def test_code_table_refuses_foreign_thresholds(self, data):
        """A tree whose thresholds are not shared-binner edges must not be
        compiled into a table."""
        X, y = data
        shared = SelfPacedEnsembleClassifier(
            n_estimators=2, shared_binning=True, random_state=0
        ).fit(X, y)
        context = shared.estimators_[0]._shared_bin_context
        rng = np.random.RandomState(1)
        foreign = DecisionTreeClassifier(max_depth=4).fit(
            rng.randn(200, X.shape[1]), rng.randint(0, 2, 200)
        )
        forest = PackedForest.from_estimators([foreign], np.array([0, 1]))
        assert CodeTable.maybe_build(forest, context.binner) is None

    def test_code_table_matches_traversal(self, data, test_rows):
        X, y = data
        model = SelfPacedEnsembleClassifier(
            n_estimators=5, shared_binning=True, random_state=2
        ).fit(X, y)
        entry = cached_packed_ensemble(model.estimators_, model.classes_)
        assert entry is not None
        forest, table = entry
        assert table is not None, "shared-binning SPE should compile a table"
        assert np.array_equal(
            table.predict_proba(test_rows), forest.predict_proba(test_rows)
        )


class TestSharedBinningBehaviour:
    def test_deterministic_and_backend_equivalent(self, data, test_rows):
        X, y = data
        ref = None
        for backend in ("serial", "thread"):
            model = UnderBaggingClassifier(
                n_estimators=5, shared_binning=True, backend=backend,
                n_jobs=2, random_state=0,
            ).fit(X, y)
            proba = model.predict_proba(test_rows)
            if ref is None:
                ref = proba
            assert np.array_equal(proba, ref)

    def test_process_backend_rejected(self, data):
        X, y = data
        model = UnderBaggingClassifier(
            n_estimators=3, shared_binning=True, backend="process", random_state=0
        )
        with pytest.raises(ValueError, match="process"):
            model.fit(X, y)

    def test_spe_draws_same_rows_either_mode(self, data):
        """Shared binning changes tree thresholds, never the sampling: RNG
        consumption is identical, so both modes train on the same subsets."""
        X, y = data
        a = SelfPacedEnsembleClassifier(n_estimators=6, random_state=0).fit(X, y)
        b = SelfPacedEnsembleClassifier(
            n_estimators=6, shared_binning=True, random_state=0
        ).fit(X, y)
        assert a.n_training_samples_ == b.n_training_samples_
        assert [e.tree_.n_node_samples[0] for e in a.estimators_] == [
            e.tree_.n_node_samples[0] for e in b.estimators_
        ]

    def test_quality_parity(self):
        """Full-matrix bin edges must not cost measurable quality (averaged
        over seeds — individual fits differ by normal ensemble variance)."""
        from repro.metrics import average_precision_score

        X, y = make_checkerboard(n_minority=150, n_majority=1500, random_state=5)
        X_te, y_te = make_checkerboard(n_minority=150, n_majority=1500, random_state=6)
        scores = {False: [], True: []}
        for seed in range(5):
            for shared in (False, True):
                model = SelfPacedEnsembleClassifier(
                    n_estimators=10, shared_binning=shared, random_state=seed
                ).fit(X, y)
                scores[shared].append(
                    average_precision_score(y_te, model.predict_proba(X_te)[:, 1])
                )
        assert abs(np.mean(scores[True]) - np.mean(scores[False])) < 0.05

    def test_non_tree_estimator_rejected(self, data):
        from repro.neighbors import KNeighborsClassifier

        X, y = data
        model = SelfPacedEnsembleClassifier(
            estimator=KNeighborsClassifier(), shared_binning=True, random_state=0
        )
        with pytest.raises(ValueError, match="tree base estimator"):
            model.fit(X, y)

    def test_streaming_rejects_shared_binning(self, data):
        X, y = data
        model = StreamingSelfPacedEnsembleClassifier(
            n_estimators=3, shared_binning=True, random_state=0
        )
        with pytest.raises(ValueError, match="out-of-core"):
            model.fit(ArraySource(X, y))

    def test_forest_and_bagging_shared_fit_predicts_sanely(self, data, test_rows):
        X, y = data
        for cls in (RandomForestClassifier, BaggingClassifier, EasyEnsembleClassifier):
            model = cls(n_estimators=4, shared_binning=True, random_state=0).fit(X, y)
            proba = model.predict_proba(test_rows)
            assert proba.shape == (len(test_rows), 2)
            assert np.allclose(proba.sum(axis=1), 1.0)
            _assert_packed_matches_legacy(model, test_rows)


class TestPackCache:
    def test_cache_hit_and_refit_invalidation(self, data, test_rows):
        X, y = data
        model = BaggingClassifier(n_estimators=3, random_state=0).fit(X, y)
        first = cached_packed_ensemble(model.estimators_, model.classes_)
        again = cached_packed_ensemble(model.estimators_, model.classes_)
        assert first[0] is again[0]  # same PackedForest object: cache hit
        before = model.predict_proba(test_rows)
        model.fit(X, 1 - y)  # refit in place: trees replaced
        rebuilt = cached_packed_ensemble(model.estimators_, model.classes_)
        assert rebuilt[0] is not first[0]
        after = model.predict_proba(test_rows)
        assert not np.array_equal(before, after)
        _assert_packed_matches_legacy(model, test_rows)
