"""Tests for confusion matrices and the metric registry/report."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.metrics import (
    ALL_METRICS,
    PAPER_METRICS,
    BinaryConfusion,
    binary_confusion,
    classification_report,
    confusion_matrix,
    evaluate_classifier,
)
from repro.tree import DecisionTreeClassifier


class TestConfusionMatrix:
    def test_binary_layout(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1], labels=[0, 1])
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_paper_orientation(self):
        """labels=[1, 0] puts TP at (0, 0) as in the paper's Table I."""
        cm = confusion_matrix([1, 1, 0, 0], [1, 0, 1, 0], labels=[1, 0])
        assert cm.tolist() == [[1, 1], [1, 1]]

    def test_multiclass(self):
        cm = confusion_matrix([0, 1, 2], [0, 2, 2])
        assert cm.trace() == 2

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError):
            confusion_matrix([0, 1], [0])


class TestBinaryConfusion:
    def test_counts(self):
        c = binary_confusion([1, 1, 0, 0, 0], [1, 0, 1, 0, 0])
        assert c == BinaryConfusion(tp=1, fp=1, fn=1, tn=2)

    def test_class_sizes(self):
        c = binary_confusion([1, 1, 0], [1, 1, 0])
        assert c.n_positive == 2 and c.n_negative == 1


class TestRegistry:
    def test_paper_metrics_keys(self):
        assert set(PAPER_METRICS) == {"AUCPRC", "F1", "GM", "MCC"}

    def test_all_metrics_superset(self):
        assert set(PAPER_METRICS) <= set(ALL_METRICS)

    def test_uniform_signature(self):
        y = np.array([0, 1, 0, 1])
        score = np.array([0.1, 0.9, 0.4, 0.6])
        for name, fn in ALL_METRICS.items():
            value = fn(y, (score >= 0.5).astype(int), score)
            assert np.isfinite(value), name


class TestEvaluateClassifier:
    def test_returns_all_metrics(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        out = evaluate_classifier(clf, X, y)
        assert set(out) == set(PAPER_METRICS)
        assert all(np.isfinite(v) for v in out.values())

    def test_threshold_changes_predictions(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
        strict = evaluate_classifier(clf, X, y, threshold=0.99)
        lax = evaluate_classifier(clf, X, y, threshold=0.01)
        # AUCPRC is threshold-free; F1 differs between thresholds in general.
        assert strict["AUCPRC"] == pytest.approx(lax["AUCPRC"])


class TestReport:
    def test_report_contains_metrics(self):
        report = classification_report([0, 1, 1, 0], [0, 1, 0, 0])
        for key in ("precision", "recall", "f1", "g-mean", "mcc", "TP="):
            assert key in report
