"""The unified telemetry plane: metrics core, tracing, exposition, and
the serving/monitoring/fit instrumentation built on top of it.

Pins the telemetry issue's acceptance criteria: the primitives are
correct and thread-safe under concurrent increments; registration is
idempotent and mismatches are typed errors; the Prometheus text format
matches a golden rendering byte for byte; the JSON snapshot follows its
documented schema; ``stats()`` on ``ModelServer``/``WorkerPool``/
``AsyncGateway`` keeps its legacy key sets while reading from the
registry; spans stitch across the fork into a pool worker; smaps
unavailability degrades to a ``nan`` gauge plus a counter instead of an
exception; and the sampling switch disables spans and latency timing
while counters keep counting.
"""

import asyncio
import math
import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro import telemetry
from repro.monitoring import DriftMonitor, ReferenceSketch
from repro.registry import get_classifier, toy_imbalanced_split
from repro.persistence import save_model
from repro.serving import AsyncGateway, ModelServer, WorkerPool
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    metric_value,
    render_prometheus,
    snapshot,
)


@pytest.fixture(autouse=True)
def sampling_on():
    """Every test here runs with sampling on unless it flips it itself."""
    previous = telemetry.set_sampling(True)
    yield
    telemetry.set_sampling(previous)


@pytest.fixture(scope="module")
def toy():
    return toy_imbalanced_split()


@pytest.fixture(scope="module")
def champion(toy):
    X, y = toy
    return get_classifier(
        "spe", base="tree", n_estimators=5, random_state=0
    ).fit(X, y)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory, champion):
    path = str(tmp_path_factory.mktemp("artifacts") / "champion.npz")
    save_model(champion, path)
    return path


# --------------------------------------------------------------------- #
# primitives
# --------------------------------------------------------------------- #
class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_inc_dec_and_nan(self):
        g = Gauge()
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0
        g.set(float("nan"))
        assert math.isnan(g.value)

    def test_histogram_bucketing_and_totals(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 55.5
        assert h.cumulative() == [(1.0, 1), (10.0, 2), (math.inf, 3)]

    def test_histogram_quantile_interpolates(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # rank 2 of 4: halfway through the (1, 2] bucket's two samples
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(0.0) == pytest.approx(0.0)
        # +Inf clamps to the last finite bound
        h.observe(100.0)
        assert h.quantile(1.0) == 4.0

    def test_histogram_empty_and_bad_inputs(self):
        h = Histogram()
        assert math.isnan(h.quantile(0.5))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_default_buckets_are_ascending_latency_ladder(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 1e-05
        assert DEFAULT_LATENCY_BUCKETS[-1] == 60.0
        assert all(
            a < b
            for a, b in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
        )


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry("t")
        a = reg.counter("x_total", "X.")
        b = reg.counter("x_total", "X.")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry("t")
        reg.counter("x_total", "X.")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total", "X.")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry("t")
        reg.counter("x_total", "X.", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x_total", "X.", labels=("a", "b"))

    def test_labeled_family_children(self):
        reg = MetricsRegistry("t")
        family = reg.counter("x_total", "X.", labels=("tenant",))
        family.labels("a").inc()
        family.labels("a").inc()
        family.labels("b").inc(5)
        assert family.labels("a").value == 2
        assert [values for values, _ in family.children()] == [("a",), ("b",)]
        with pytest.raises(ValueError, match="expects labels"):
            family.labels("a", "extra")

    def test_process_registry_is_shared_by_name(self):
        assert telemetry.get_registry() is telemetry.get_registry()
        assert telemetry.get_registry("other") is not telemetry.get_registry()

    def test_instance_labels_are_unique(self):
        labels = {telemetry.instance_label("test-kind") for _ in range(10)}
        assert len(labels) == 10

    def test_facade_reexported_from_repro(self):
        import repro

        assert repro.get_registry is telemetry.get_registry
        assert repro.telemetry is telemetry


# --------------------------------------------------------------------- #
# exposition
# --------------------------------------------------------------------- #
def _golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry("golden")
    reg.gauge("app_depth", "Depth.").set(2)
    h = reg.histogram("app_latency_seconds", "Latency.", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    reg.counter("app_requests_total", "Requests.", labels=("tenant",)).labels(
        "acme"
    ).inc(3)
    return reg


GOLDEN_TEXT = """\
# HELP app_depth Depth.
# TYPE app_depth gauge
app_depth 2
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 5.55
app_latency_seconds_count 3
# HELP app_requests_total Requests.
# TYPE app_requests_total counter
app_requests_total{tenant="acme"} 3
"""


class TestExposition:
    def test_prometheus_text_matches_golden(self):
        assert render_prometheus(_golden_registry()) == GOLDEN_TEXT

    def test_nan_gauge_renders_as_nan(self):
        reg = MetricsRegistry("t")
        reg.gauge("g", "G.").set(float("nan"))
        assert "g NaN" in render_prometheus(reg)

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry("t")
        reg.counter("c_total", "C.", labels=("k",)).labels('a"b\n\\c').inc()
        text = render_prometheus(reg)
        assert r'c_total{k="a\"b\n\\c"} 1' in text

    def test_snapshot_schema(self):
        snap = snapshot(_golden_registry())
        assert snap["registry"] == "golden"
        assert set(snap["metrics"]) == {
            "app_depth", "app_latency_seconds", "app_requests_total",
        }
        hist = snap["metrics"]["app_latency_seconds"]
        assert hist["kind"] == "histogram"
        (sample,) = hist["samples"]
        assert set(sample) == {"labels", "count", "sum", "p50", "p99", "buckets"}
        assert sample["count"] == 3
        assert sample["buckets"] == {"0.1": 1, "1": 2, "+Inf": 3}
        counter = snap["metrics"]["app_requests_total"]
        assert counter["samples"] == [
            {"labels": {"tenant": "acme"}, "value": 3.0}
        ]

    def test_metric_value_reads_one_child(self):
        reg = _golden_registry()
        assert metric_value("app_depth", registry=reg) == 2.0
        assert (
            metric_value("app_requests_total", {"tenant": "acme"}, registry=reg)
            == 3.0
        )
        assert metric_value("app_requests_total", registry=reg) is None
        assert metric_value("absent", registry=reg) is None
        hist = metric_value("app_latency_seconds", registry=reg)
        assert hist["count"] == 3 and hist["sum"] == pytest.approx(5.55)


# --------------------------------------------------------------------- #
# thread-safety
# --------------------------------------------------------------------- #
class TestConcurrentIncrements:
    def test_counter_and_histogram_race(self):
        reg = MetricsRegistry("race")
        counter = reg.counter("hits_total", "Hits.")
        hist = reg.histogram("lat_seconds", "Lat.")
        n_threads, n_iter = 8, 5000

        def hammer():
            for _ in range(n_iter):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == n_threads * n_iter
        assert hist.count == n_threads * n_iter
        assert hist.cumulative()[-1][1] == n_threads * n_iter


# --------------------------------------------------------------------- #
# tracing
# --------------------------------------------------------------------- #
class TestTracing:
    def test_nested_spans_share_trace_and_parent_link(self):
        with telemetry.trace("outer", tenant="t") as outer:
            with telemetry.trace("inner") as inner:
                assert telemetry.current_span() is inner
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.duration_s is not None and outer.tags == {"tenant": "t"}
        spans = telemetry.drain_trace(outer.trace_id)
        assert [s.name for s in spans] == ["inner", "outer"]
        assert telemetry.current_context() is None

    def test_record_span_requires_context(self):
        assert telemetry.record_span("x", 0.1, None) is None
        with telemetry.trace("outer") as outer:
            ctx = telemetry.current_context()
        recorded = telemetry.record_span("queue", 0.25, ctx, rows=4)
        assert recorded.parent_id == outer.span_id
        assert recorded.duration_s == 0.25
        telemetry.drain_trace(outer.trace_id)

    def test_resume_trace_anchors_without_recording(self):
        with telemetry.resume_trace(12345, 67890):
            with telemetry.trace("child") as child:
                pass
        assert child.trace_id == 12345 and child.parent_id == 67890
        spans = telemetry.drain_trace(12345)
        assert [s.name for s in spans] == ["child"]  # no "(anchor)" span

    def test_span_wire_roundtrip(self):
        span = Span("x", 1, 2, parent_id=3, start=4.0, duration_s=0.5,
                    tags={"worker": 0})
        assert Span.from_wire(span.to_wire()) == span

    def test_sink_is_bounded(self):
        sink = telemetry.TraceSink(capacity=2)
        for i in range(5):
            sink.record(Span("s", trace_id=9, span_id=i))
        assert len(sink) == 2
        assert [s.span_id for s in sink.spans(9)] == [3, 4]
        with pytest.raises(ValueError):
            telemetry.TraceSink(capacity=0)


# --------------------------------------------------------------------- #
# the sampling switch
# --------------------------------------------------------------------- #
class TestSamplingSwitch:
    def test_set_sampling_returns_previous(self):
        assert telemetry.set_sampling(False) is True
        assert telemetry.set_sampling(True) is False
        assert telemetry.sampling_enabled()

    def test_off_disables_spans_and_timing(self):
        telemetry.set_sampling(False)
        with telemetry.trace("x") as span:
            assert span is None
            assert telemetry.current_context() is None
        reg = MetricsRegistry("t")
        hist = reg.histogram("h_seconds", "H.")
        sw = telemetry.stopwatch()
        assert sw.observe(hist) == 0.0
        assert hist.count == 0
        with telemetry.timer(hist):
            pass
        assert hist.count == 0

    def test_off_keeps_counters_counting(self, champion, toy):
        X, _ = toy
        telemetry.set_sampling(False)
        with ModelServer(champion) as server:
            label = {"server": server.telemetry_label_}
            server.predict_proba(X[:8])
            server.predict_proba(X[:8])
            stats = server.stats()
            assert stats["n_requests"] == 2
            assert metric_value("repro_server_requests_total", label) == 2.0
            wait = metric_value("repro_server_queue_wait_seconds", label)
            assert wait["count"] == 0  # latency timing is off

    def test_on_times_latencies(self, champion, toy):
        X, _ = toy
        with ModelServer(champion) as server:
            label = {"server": server.telemetry_label_}
            for _ in range(3):
                server.predict_proba(X[:8])
            wait = metric_value("repro_server_queue_wait_seconds", label)
            kernel = metric_value("repro_server_kernel_eval_seconds", label)
        assert wait["count"] == 3
        assert kernel["count"] == server.stats()["n_batches"]
        assert kernel["sum"] > 0


# --------------------------------------------------------------------- #
# stats() stays a thin view with its legacy keys
# --------------------------------------------------------------------- #
class _FakeBackend:
    def submit(self, rows):
        future = Future()
        future.set_result(np.zeros((len(rows), 2)))
        return future


class TestStatsCompat:
    SERVER_KEYS = {
        "model_version", "packed", "code_table", "threshold",
        "n_requests", "n_batches", "n_rows", "n_overflows",
        "n_deadline_expired", "n_swaps", "queue_depth",
        "batch_size_distribution", "requests_by_version",
    }
    POOL_KEYS = {
        "n_workers", "threshold", "n_requests", "n_overflows", "n_swaps",
        "n_crashes", "n_respawns", "n_deadline_expired", "n_late_replies",
        "n_pending", "model_versions", "worker_states", "worker_crashes",
        "worker_generations", "requests_by_version",
    }
    GATEWAY_KEYS = {
        "tenants", "n_backpressure_waits", "n_deadline_expired",
        "inflight", "breaker",
    }

    def test_server_stats_keys_and_registry_agreement(self, champion, toy):
        X, _ = toy
        with ModelServer(champion) as server:
            for _ in range(4):
                server.predict_proba(X[:8])
            stats = server.stats()
            label = {"server": server.telemetry_label_}
            assert set(stats) == self.SERVER_KEYS
            assert stats["n_requests"] == 4
            for key, metric in (
                ("n_requests", "repro_server_requests_total"),
                ("n_batches", "repro_server_batches_total"),
                ("n_rows", "repro_server_rows_total"),
                ("n_overflows", "repro_server_overflows_total"),
                ("n_swaps", "repro_server_swaps_total"),
            ):
                assert stats[key] == int(metric_value(metric, label)), key

    def test_pool_stats_keys_and_registry_agreement(self, artifact, toy):
        X, _ = toy
        with WorkerPool(artifact, n_workers=1) as pool:
            for _ in range(3):
                pool.predict_proba(X[:8])
            stats = pool.stats()
            label = {"pool": pool.telemetry_label_}
            assert set(stats) == self.POOL_KEYS
            assert stats["n_requests"] == 3
            for key, metric in (
                ("n_requests", "repro_pool_requests_total"),
                ("n_crashes", "repro_pool_crashes_total"),
                ("n_respawns", "repro_pool_respawns_total"),
                ("n_swaps", "repro_pool_swaps_total"),
                ("n_deadline_expired", "repro_pool_deadline_expired_total"),
            ):
                assert stats[key] == int(metric_value(metric, label)), key
            roundtrip = metric_value("repro_pool_roundtrip_seconds", label)
            assert roundtrip["count"] == 3

    def test_gateway_stats_keys_and_registry_agreement(self):
        async def run():
            async with AsyncGateway(_FakeBackend()) as gateway:
                await gateway.submit(np.zeros((2, 3)), tenant="acme")
                return gateway, gateway.stats()

        gateway, stats = asyncio.run(run())
        assert set(stats) == self.GATEWAY_KEYS
        assert set(stats["breaker"]) == {
            "state", "failure_streak", "n_opens", "n_shed",
        }
        assert set(stats["tenants"]["acme"]) == {
            "submitted", "served", "rejected", "queued",
        }
        assert stats["tenants"]["acme"]["submitted"] == 1
        assert stats["tenants"]["acme"]["served"] == 1
        label = {"gateway": gateway.telemetry_label_, "tenant": "acme"}
        assert metric_value("repro_gateway_submitted_total", label) == 1.0
        request = metric_value(
            "repro_gateway_request_seconds",
            {"gateway": gateway.telemetry_label_},
        )
        assert request["count"] == 1


# --------------------------------------------------------------------- #
# cross-process span stitching and smaps degradation
# --------------------------------------------------------------------- #
class TestPoolTelemetry:
    def test_spans_stitch_across_forked_worker(self, artifact, toy):
        X, _ = toy
        with WorkerPool(artifact, n_workers=1) as pool:
            with telemetry.trace("request") as root:
                pool.submit_scored(X[:8]).result(timeout=30)
        spans = telemetry.drain_trace(root.trace_id)
        by_name = {s.name: s for s in spans}
        assert {"request", "pool.roundtrip", "server.queue_wait",
                "server.kernel_eval"} <= set(by_name)
        for name in ("pool.roundtrip", "server.queue_wait",
                     "server.kernel_eval"):
            assert by_name[name].trace_id == root.trace_id, name
            assert by_name[name].parent_id == root.span_id, name
        # worker-side spans carry the worker slot they ran on
        assert by_name["server.kernel_eval"].tags.get("worker") == 0
        assert by_name["pool.roundtrip"].duration_s >= (
            by_name["server.kernel_eval"].duration_s
        )

    def test_smaps_unavailable_degrades_to_nan_gauge(
        self, monkeypatch, artifact, toy
    ):
        import repro.serving.pool as pool_mod

        X, _ = toy
        # Patch BEFORE construction: the forked worker inherits the patch.
        monkeypatch.setattr(pool_mod, "process_private_kb", lambda: None)
        with WorkerPool(artifact, n_workers=1) as pool:
            pool.predict_proba(X[:4])
            per_worker = pool.worker_stats(timeout=30)
            label = {"pool": pool.telemetry_label_}
            assert per_worker[0]["private_kb"] is None  # no raise
            gauge = metric_value(
                "repro_pool_worker_private_kb",
                {"pool": pool.telemetry_label_, "worker": "0"},
            )
            assert math.isnan(gauge)
            assert metric_value("repro_pool_smaps_unavailable_total", label) >= 1


# --------------------------------------------------------------------- #
# fit-path stage timers and drift-level gauges
# --------------------------------------------------------------------- #
class TestPipelineInstrumentation:
    def test_fit_stage_timers_advance(self, toy):
        X, y = toy

        def stage_count(stage):
            reading = metric_value("repro_fit_stage_seconds", {"stage": stage})
            return reading["count"] if reading else 0

        before = {
            s: stage_count(s)
            for s in ("member_fit", "self_paced_sampling", "ensemble_score")
        }
        get_classifier("spe", base="tree", n_estimators=3, random_state=0).fit(
            X, y
        )
        for stage, count in before.items():
            assert stage_count(stage) > count, stage

    def test_fastpath_predict_histogram(self, champion, toy):
        X, _ = toy
        before = metric_value("repro_fastpath_predict_seconds", {"path": "packed"})
        before_count = before["count"] if before else 0
        champion.predict_proba(X[:32])
        after = metric_value("repro_fastpath_predict_seconds", {"path": "packed"})
        assert after["count"] > before_count

    def test_drift_levels_exposed_as_gauges(self):
        rng = np.random.RandomState(0)
        X = rng.normal(size=(600, 3))
        y = (rng.uniform(size=600) < 0.2).astype(int)
        sketch = ReferenceSketch(n_bins=8).fit(X, y)
        monitor = DriftMonitor(sketch, window_size=1000, min_window=500)
        monitor.observe(X[:100], np.zeros(100), y[:100])
        monitor.check()
        label = {
            "monitor": monitor.telemetry_label_,
            "detector": "insufficient_window",
        }
        assert metric_value("repro_monitor_drift_level", label) == 0.0
        assert metric_value(
            "repro_monitor_rows_total", {"monitor": monitor.telemetry_label_}
        ) == 100.0
