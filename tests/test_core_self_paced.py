"""Tests for the Self-paced Ensemble classifier (paper Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    SelfPacedEnsembleClassifier,
    linear_self_paced_factor,
    self_paced_under_sample,
    tan_self_paced_factor,
)
from repro.metrics import evaluate_classifier
from repro.neighbors import KNeighborsClassifier
from repro.tree import DecisionTreeClassifier


def _base():
    return DecisionTreeClassifier(max_depth=5, random_state=0)


class TestAlphaSchedule:
    def test_tan_starts_at_zero(self):
        assert tan_self_paced_factor(0, 9) == 0.0

    def test_tan_monotone_increasing(self):
        values = [tan_self_paced_factor(i, 10) for i in range(11)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_tan_final_effectively_infinite(self):
        assert tan_self_paced_factor(10, 10) > 1e12

    def test_tan_midpoint_is_one(self):
        assert tan_self_paced_factor(5, 10) == pytest.approx(1.0)

    def test_linear_schedule(self):
        assert linear_self_paced_factor(5, 10) == pytest.approx(0.5)

    def test_degenerate_n(self):
        assert tan_self_paced_factor(0, 0) == 0.0

    def test_never_negative_for_any_ensemble_size(self):
        """Regression: float rounding near pi/2 must not wrap tan negative
        (observed at i=n-1 for large n, e.g. 100-model ensembles)."""
        for n in range(1, 150):
            for i in range(n + 1):
                assert tan_self_paced_factor(i, n) >= 0.0, (i, n)

    def test_fit_convention_keeps_alpha_finite(self):
        """Pin the (i, n) convention: fit evaluates tan(pi/2 * i/n) at
        i = 1..n-1 with n = n_estimators, so every trained iteration gets a
        finite alpha; the inf clamp guards only the unreached i == n limit.
        (Regression: fit used to pass n_estimators - 1, driving the last
        iteration — and the only one, for n_estimators=2 — to alpha=inf.)"""
        for n_estimators in (2, 3, 10, 50):
            alphas = [
                tan_self_paced_factor(i, n_estimators)
                for i in range(1, n_estimators)
            ]
            assert all(np.isfinite(a) and 0.0 < a < 1e12 for a in alphas)
        # n_estimators=2: the single self-paced iteration sits at tan(pi/4).
        assert tan_self_paced_factor(1, 2) == pytest.approx(1.0)

    def test_fit_passes_total_ensemble_size(self, imbalanced_data):
        """The schedule receives n = n_estimators (paper's tan(i*pi/2n))."""
        X, y = imbalanced_data
        seen = []

        def probe(i, n):
            seen.append((i, n))
            return 0.0

        SelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=3, random_state=0),
            n_estimators=2,
            alpha_schedule=probe,
            random_state=0,
        ).fit(X, y)
        assert seen == [(1, 2)]


class TestSelfPacedUnderSample:
    def test_returns_requested_count(self, rng):
        h = rng.uniform(size=500)
        idx, _ = self_paced_under_sample(h, 10, 0.5, 100, rng)
        assert len(idx) == 100
        assert len(np.unique(idx)) == 100  # no replacement

    def test_alpha_zero_prefers_low_hardness_bins(self, rng):
        """With alpha=0, the low-hardness bin has huge weight 1/h."""
        h = np.concatenate([np.full(400, 0.01), np.full(100, 0.99)])
        idx, _ = self_paced_under_sample(h, 10, 0.0, 100, rng)
        assert (h[idx] < 0.5).mean() > 0.8

    def test_alpha_inf_spreads_over_bins(self, rng):
        h = np.concatenate([np.full(450, 0.01), np.full(50, 0.99)])
        idx, _ = self_paced_under_sample(h, 2, 1e15, 100, rng)
        hard_taken = (h[idx] > 0.5).sum()
        assert 40 <= hard_taken <= 60  # ~half the budget from each bin

    def test_degenerate_hardness_random_fallback(self, rng):
        h = np.full(200, 0.3)
        idx, bins = self_paced_under_sample(h, 10, 0.0, 50, rng)
        assert len(idx) == 50 and bins.degenerate


class TestSPEFit:
    def test_trains_n_estimators(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(_base(), n_estimators=8, random_state=0)
        assert len(spe.fit(X, y).estimators_) == 8

    def test_subset_sizes_are_balanced(self, imbalanced_data):
        """Every base model sees 2|P| samples (all minority + |P| majority)."""
        X, y = imbalanced_data
        n_min = int((y == 1).sum())
        spe = SelfPacedEnsembleClassifier(_base(), n_estimators=6, random_state=0)
        spe.fit(X, y)
        assert spe.n_training_samples_ == 6 * 2 * n_min

    def test_better_than_random_undersampling(self, overlapped_data):
        from repro.sampling import RandomUnderSampler

        X, y = overlapped_data
        X_tr, X_te = X[:500], X[500:]
        y_tr, y_te = y[:500], y[500:]
        spe = SelfPacedEnsembleClassifier(_base(), n_estimators=10, random_state=0)
        spe.fit(X_tr, y_tr)
        spe_score = evaluate_classifier(spe, X_te, y_te)["AUCPRC"]
        scores_ru = []
        for seed in range(3):
            X_r, y_r = RandomUnderSampler(random_state=seed).fit_resample(X_tr, y_tr)
            clf = DecisionTreeClassifier(max_depth=5, random_state=seed).fit(X_r, y_r)
            scores_ru.append(evaluate_classifier(clf, X_te, y_te)["AUCPRC"])
        assert spe_score > np.mean(scores_ru)

    def test_works_with_knn_base(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(
            KNeighborsClassifier(n_neighbors=3), n_estimators=5, random_state=0
        ).fit(X, y)
        assert evaluate_classifier(spe, X, y)["AUCPRC"] > 0.3

    def test_hardness_variants(self, imbalanced_data):
        X, y = imbalanced_data
        for hardness in ("absolute", "squared", "cross_entropy"):
            spe = SelfPacedEnsembleClassifier(
                _base(), n_estimators=4, hardness=hardness, random_state=0
            ).fit(X, y)
            assert len(spe.estimators_) == 4

    def test_custom_hardness_callable(self, imbalanced_data):
        X, y = imbalanced_data
        calls = []

        def my_hardness(y_true, proba):
            calls.append(len(y_true))
            return np.abs(proba - y_true)

        SelfPacedEnsembleClassifier(
            _base(), n_estimators=4, hardness=my_hardness, random_state=0
        ).fit(X, y)
        assert len(calls) == 3  # n_estimators - 1 hardness evaluations

    def test_custom_alpha_schedule(self, imbalanced_data):
        X, y = imbalanced_data
        seen = []

        def schedule(i, n):
            seen.append((i, n))
            return 0.5

        SelfPacedEnsembleClassifier(
            _base(), n_estimators=4, alpha_schedule=schedule, random_state=0
        ).fit(X, y)
        assert seen == [(1, 4), (2, 4), (3, 4)]

    def test_record_bins(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(
            _base(), n_estimators=5, record_bins=True, random_state=0
        ).fit(X, y)
        assert len(spe.bin_history_) == 4
        alphas = [entry[0] for entry in spe.bin_history_]
        assert all(b >= a for a, b in zip(alphas, alphas[1:]))

    def test_eval_curve(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(_base(), n_estimators=6, random_state=0)
        spe.fit(X[:300], y[:300], eval_set=(X[300:], y[300:]))
        assert len(spe.train_curve_) == 6
        assert all(0.0 <= v <= 1.0 for v in spe.train_curve_)

    def test_single_estimator_is_cold_start_only(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(_base(), n_estimators=1, random_state=0)
        assert len(spe.fit(X, y).estimators_) == 1

    def test_exclude_cold_start_from_vote(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(
            _base(), n_estimators=5, include_cold_start=False, random_state=0
        ).fit(X, y)
        assert len(spe._voting_estimators()) == 4

    def test_deterministic(self, imbalanced_data):
        X, y = imbalanced_data
        p1 = (
            SelfPacedEnsembleClassifier(_base(), n_estimators=5, random_state=11)
            .fit(X, y)
            .predict_proba(X)
        )
        p2 = (
            SelfPacedEnsembleClassifier(_base(), n_estimators=5, random_state=11)
            .fit(X, y)
            .predict_proba(X)
        )
        assert np.allclose(p1, p2)

    def test_default_base_is_tree(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(n_estimators=3, random_state=0).fit(X, y)
        assert isinstance(spe.estimators_[0], DecisionTreeClassifier)

    def test_clone_compatible(self):
        from repro.base import clone

        spe = SelfPacedEnsembleClassifier(n_estimators=17, k_bins=5, hardness="SE")
        copy = clone(spe)
        assert copy.n_estimators == 17 and copy.k_bins == 5 and copy.hardness == "SE"


class TestSPEValidation:
    def test_invalid_n_estimators(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError):
            SelfPacedEnsembleClassifier(n_estimators=0).fit(X, y)

    def test_invalid_k_bins(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError):
            SelfPacedEnsembleClassifier(k_bins=0).fit(X, y)

    def test_invalid_schedule(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError, match="alpha_schedule"):
            SelfPacedEnsembleClassifier(alpha_schedule="quadratic").fit(X, y)

    def test_rejects_multiclass(self, rng):
        X = rng.randn(30, 2)
        with pytest.raises(Exception):
            SelfPacedEnsembleClassifier().fit(X, np.arange(30) % 3)

    def test_rejects_single_class(self, rng):
        X = rng.randn(30, 2)
        with pytest.raises(Exception):
            SelfPacedEnsembleClassifier().fit(X, np.zeros(30, dtype=int))

    def test_proba_shape_and_range(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(_base(), n_estimators=4, random_state=0)
        proba = spe.fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_matches_argmax(self, imbalanced_data):
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(_base(), n_estimators=4, random_state=0)
        spe.fit(X, y)
        proba = spe.predict_proba(X)
        assert np.array_equal(spe.predict(X), spe.classes_[proba.argmax(axis=1)])
