"""Tests for pairwise distances and KNN estimators."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.exceptions import NotFittedError
from repro.neighbors import (
    KNeighborsClassifier,
    NearestNeighbors,
    kneighbors,
    pairwise_distances,
)


class TestPairwiseDistances:
    def test_matches_scipy_euclidean(self, rng):
        A, B = rng.randn(30, 4), rng.randn(20, 4)
        assert np.allclose(pairwise_distances(A, B), cdist(A, B), atol=1e-8)

    def test_matches_scipy_manhattan(self, rng):
        A, B = rng.randn(15, 3), rng.randn(10, 3)
        assert np.allclose(
            pairwise_distances(A, B, metric="manhattan"),
            cdist(A, B, metric="cityblock"),
            atol=1e-10,
        )

    def test_self_distances(self, rng):
        A = rng.randn(10, 3)
        D = pairwise_distances(A)
        assert np.allclose(np.diag(D), 0.0, atol=1e-6)

    def test_squared(self, rng):
        A = rng.randn(5, 2)
        assert np.allclose(
            pairwise_distances(A, squared=True), pairwise_distances(A) ** 2, atol=1e-8
        )

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            pairwise_distances(rng.randn(3, 2), rng.randn(3, 3))

    def test_unknown_metric(self, rng):
        with pytest.raises(ValueError):
            pairwise_distances(rng.randn(3, 2), metric="cosine")


class TestKneighbors:
    def test_exact_neighbors(self):
        ref = np.array([[0.0], [1.0], [2.0], [10.0]])
        dist, idx = kneighbors(np.array([[0.2]]), ref, 2)
        assert idx[0].tolist() == [0, 1]
        assert np.allclose(dist[0], [0.2, 0.8])

    def test_exclude_self(self):
        ref = np.array([[0.0], [1.0], [2.0]])
        _, idx = kneighbors(ref, ref, 1, exclude_self=True)
        assert idx[0, 0] != 0 and idx[1, 0] != 1

    def test_sorted_by_distance(self, rng):
        ref = rng.randn(50, 3)
        dist, _ = kneighbors(rng.randn(5, 3), ref, 10)
        assert (np.diff(dist, axis=1) >= -1e-12).all()

    def test_chunked_matches_unchunked(self, rng):
        query, ref = rng.randn(40, 3), rng.randn(60, 3)
        d1, i1 = kneighbors(query, ref, 5)
        d2, i2 = kneighbors(query, ref, 5, chunk_bytes=2048)
        assert np.allclose(d1, d2) and np.array_equal(i1, i2)

    def test_too_many_neighbors(self, rng):
        with pytest.raises(ValueError):
            kneighbors(rng.randn(2, 2), rng.randn(3, 2), 4)


class TestNearestNeighbors:
    def test_query_self_excludes(self, rng):
        X = rng.randn(20, 2)
        nn = NearestNeighbors(n_neighbors=3).fit(X)
        _, idx = nn.kneighbors()
        assert all(i not in row for i, row in enumerate(idx))

    def test_query_external(self, rng):
        X = rng.randn(20, 2)
        nn = NearestNeighbors(n_neighbors=2).fit(X)
        dist, idx = nn.kneighbors(rng.randn(5, 2))
        assert dist.shape == (5, 2)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            NearestNeighbors().kneighbors(np.ones((2, 2)))


class TestKNeighborsClassifier:
    def test_memorises_training_points(self, binary_blobs):
        X, y = binary_blobs
        clf = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_separable_generalisation(self, binary_blobs):
        X, y = binary_blobs
        clf = KNeighborsClassifier(n_neighbors=5).fit(X[:200], y[:200])
        assert clf.score(X[200:], y[200:]) > 0.9

    def test_proba_granularity(self, binary_blobs):
        """Uniform-vote probabilities are multiples of 1/k."""
        X, y = binary_blobs
        clf = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        proba = clf.predict_proba(X[:20])
        assert np.allclose((proba * 5).round(), proba * 5, atol=1e-9)

    def test_proba_rows_sum_to_one(self, binary_blobs):
        X, y = binary_blobs
        proba = KNeighborsClassifier(3).fit(X, y).predict_proba(X[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_distance_weighting(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1], [10.2]])
        y = np.array([1, 1, 0, 0, 0])
        clf = KNeighborsClassifier(n_neighbors=5, weights="distance").fit(X, y)
        # Uniform 5-NN would vote 0 (3 majority), distance weighting favours 1.
        assert clf.predict(np.array([[0.05]]))[0] == 1

    def test_k_larger_than_n_capped(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        clf = KNeighborsClassifier(n_neighbors=10).fit(X, y)
        assert clf.effective_n_neighbors_ == 2

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="bogus").fit(np.ones((2, 1)), [0, 1])

    def test_predict_matches_argmax_proba(self, binary_blobs):
        X, y = binary_blobs
        clf = KNeighborsClassifier(4).fit(X, y)
        proba = clf.predict_proba(X[:30])
        assert np.array_equal(clf.predict(X[:30]), clf.classes_[proba.argmax(axis=1)])
