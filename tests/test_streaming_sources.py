"""Data sources: block iteration, gathering, scanning, bin/reservoir stats."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.streaming import (
    ArraySource,
    BinReservoir,
    CSVSource,
    NPYSource,
    StreamingBinStats,
    class_index_scan,
    save_csv,
    streaming_self_paced_under_sample,
)


@pytest.fixture
def small_data(rng):
    X = rng.randn(137, 5)
    y = (rng.uniform(size=137) < 0.2).astype(int)
    y[:2] = [0, 1]  # both classes guaranteed
    return X, y


def _reassemble(source):
    xs, ys = zip(*source.iter_blocks())
    return np.vstack(xs), np.concatenate(ys)


class TestArraySource:
    def test_blocks_cover_everything_in_order(self, small_data):
        X, y = small_data
        src = ArraySource(X, y, block_size=32)
        X2, y2 = _reassemble(src)
        assert np.array_equal(X, X2) and np.array_equal(y, y2)

    def test_block_sizes_fixed_except_last(self, small_data):
        X, y = small_data
        sizes = [len(b) for b, _ in ArraySource(X, y, block_size=32).iter_blocks()]
        assert sizes == [32, 32, 32, 32, 9]

    def test_take_preserves_requested_order(self, small_data):
        X, y = small_data
        src = ArraySource(X, y, block_size=16)
        idx = np.array([100, 3, 50, 3, 0])
        assert np.array_equal(src.take(idx), X[idx])

    def test_invalid_block_size(self, small_data):
        X, y = small_data
        with pytest.raises(ValueError):
            ArraySource(X, y, block_size=0)

    def test_validates_labels(self, rng):
        X = rng.randn(10, 2)
        with pytest.raises(DataValidationError):
            ArraySource(X, np.arange(10) % 3)


class TestFileSources:
    def test_npy_round_trip(self, small_data, tmp_path):
        X, y = small_data
        np.save(tmp_path / "x.npy", X)
        np.save(tmp_path / "y.npy", y)
        src = NPYSource(tmp_path / "x.npy", tmp_path / "y.npy", block_size=50)
        X2, y2 = _reassemble(src)
        assert np.array_equal(X, X2) and np.array_equal(y, y2)
        idx = np.array([1, 99, 7])
        assert np.array_equal(src.take(idx), X[idx])

    def test_csv_round_trip_is_bit_exact(self, small_data, tmp_path):
        X, y = small_data
        path = tmp_path / "data.csv"
        save_csv(path, X, y)
        X2, y2 = _reassemble(CSVSource(path, block_size=40))
        assert np.array_equal(X, X2) and np.array_equal(y, y2)

    def test_csv_generic_take_streams(self, small_data, tmp_path):
        X, y = small_data
        path = tmp_path / "data.csv"
        save_csv(path, X, y)
        idx = np.array([120, 0, 64, 64])
        assert np.array_equal(CSVSource(path).take(idx), X[idx])

    def test_csv_label_first_and_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("label,f0,f1\n1,0.5,1.5\n0,2.5,3.5\n")
        src = CSVSource(path, label_col=0, skip_header=1)
        X2, y2 = _reassemble(src)
        assert np.array_equal(y2, [1, 0])
        assert np.array_equal(X2, [[0.5, 1.5], [2.5, 3.5]])

    def test_take_out_of_range(self, small_data, tmp_path):
        X, y = small_data
        path = tmp_path / "data.csv"
        save_csv(path, X, y)
        with pytest.raises(IndexError):
            CSVSource(path).take(np.array([len(y) + 5]))

    def test_sources_pickle(self, small_data, tmp_path):
        import pickle

        X, y = small_data
        np.save(tmp_path / "x.npy", X)
        np.save(tmp_path / "y.npy", y)
        for src in (
            ArraySource(X, y),
            NPYSource(tmp_path / "x.npy", tmp_path / "y.npy"),
        ):
            clone = pickle.loads(pickle.dumps(src))
            X2, _ = _reassemble(clone)
            assert np.array_equal(X, X2)


class TestClassIndexScan:
    def test_scan_matches_flatnonzero(self, small_data):
        X, y = small_data
        scan = class_index_scan(
            ArraySource(X, y, block_size=30), collect_minority=True
        )
        assert scan.n_rows == len(y) and scan.n_features == X.shape[1]
        assert np.array_equal(scan.maj_idx, np.flatnonzero(y == 0))
        assert np.array_equal(scan.min_idx, np.flatnonzero(y == 1))
        assert np.array_equal(scan.X_min, X[y == 1])

    def test_counts_only_mode_skips_indices(self, small_data):
        X, y = small_data
        scan = class_index_scan(
            ArraySource(X, y), collect_indices=False, collect_minority=True
        )
        assert scan.y is None and scan.maj_idx is None
        assert scan.n_minority == int((y == 1).sum())
        assert len(scan.X_min) == scan.n_minority

    def test_rejects_missing_class(self, rng):
        X = rng.randn(20, 3)
        with pytest.raises(DataValidationError):
            class_index_scan(ArraySource(X, np.ones(20, dtype=int)))

    def test_non_integral_labels_rejected_not_truncated(self, tmp_path, rng):
        """Regression: a label like 1.5 must raise (as the in-memory path
        does), not silently truncate to 1 via astype(int)."""
        X = rng.randn(6, 2)
        y_bad = np.array([0.0, 1.0, 1.5, 0.0, 1.0, 0.0])
        np.save(tmp_path / "x.npy", X)
        np.save(tmp_path / "y.npy", y_bad)
        with pytest.raises(DataValidationError):
            class_index_scan(NPYSource(tmp_path / "x.npy", tmp_path / "y.npy"))
        csv = tmp_path / "bad.csv"
        csv.write_text(
            "\n".join(f"{a},{b},{lbl}" for (a, b), lbl in zip(X, y_bad)) + "\n"
        )
        with pytest.raises(DataValidationError):
            class_index_scan(CSVSource(csv))

    def test_rejects_nan(self, tmp_path, rng):
        X = rng.randn(10, 2)
        X[4, 1] = np.nan
        y = np.arange(10) % 2
        np.save(tmp_path / "x.npy", X)
        np.save(tmp_path / "y.npy", y)
        with pytest.raises(DataValidationError):
            class_index_scan(NPYSource(tmp_path / "x.npy", tmp_path / "y.npy"))


class TestStreamingBinStats:
    def test_matches_batch_histogram(self, rng):
        values = rng.uniform(size=1000)
        stats = StreamingBinStats(10)
        for lo in range(0, 1000, 64):
            stats.update(values[lo : lo + 64])
        expected, _ = np.histogram(values, bins=np.linspace(0, 1, 11))
        assert np.array_equal(stats.populations, expected)
        assert stats.n_seen == 1000
        assert np.isclose(stats.sums.sum(), values.sum())

    def test_merge_equals_serial(self, rng):
        values = rng.uniform(size=400)
        serial = StreamingBinStats(8)
        serial.update(values)
        a, b = StreamingBinStats(8), StreamingBinStats(8)
        a.update(values[:150])
        b.update(values[150:])
        merged = a.merge(b)
        assert np.array_equal(merged.populations, serial.populations)
        assert np.allclose(merged.sums, serial.sums)

    def test_clips_out_of_range(self):
        stats = StreamingBinStats(4)
        stats.update(np.array([-1.0, 2.0, 0.5]))
        assert stats.populations[0] == 1 and stats.populations[-1] == 1

    def test_as_hardness_bins_feeds_core_weights(self, rng):
        from repro.core.binning import self_paced_bin_weights

        stats = StreamingBinStats(5)
        stats.update(rng.uniform(size=100))
        weights = self_paced_bin_weights(stats.as_hardness_bins(), alpha=1.0)
        assert weights.shape == (5,) and (weights >= 0).all()


class TestReservoir:
    def test_small_stream_kept_verbatim(self, rng):
        res = BinReservoir(2, capacity=50, n_features=3, rng=rng)
        rows = rng.randn(20, 3)
        res.update(np.zeros(20, dtype=int), rows, np.arange(20.0))
        got, vals = res.draw(0, 20)
        # All 20 fit in capacity, so the draw returns exactly those rows.
        assert sorted(map(tuple, got)) == sorted(map(tuple, rows))
        assert res.seen[0] == 20 and res.seen[1] == 0

    def test_capacity_bounds_and_uniformity(self, rng):
        res = BinReservoir(1, capacity=10, n_features=1, rng=rng)
        for lo in range(0, 5000, 500):
            block = np.arange(lo, lo + 500, dtype=float).reshape(-1, 1)
            res.update(np.zeros(500, dtype=int), block, block[:, 0])
        assert res.seen[0] == 5000
        rows, _ = res.draw(0, 10)
        # A uniform sample of 0..4999 should not concentrate early:
        assert rows.mean() > 1000

    def test_draw_rejects_overdraw(self, rng):
        res = BinReservoir(1, capacity=5, n_features=1, rng=rng)
        res.update(np.zeros(3, dtype=int), np.ones((3, 1)), np.ones(3))
        with pytest.raises(ValueError):
            res.draw(0, 4)


class TestStreamingUnderSample:
    def _blocks(self, hardness, X, size):
        for lo in range(0, len(hardness), size):
            yield hardness[lo : lo + size], X[lo : lo + size]

    def test_returns_budget_and_stats(self, rng):
        hardness = rng.uniform(size=800)
        X = rng.randn(800, 4)
        rows, values, stats = streaming_self_paced_under_sample(
            self._blocks(hardness, X, 100), 10, 0.5, 150, rng
        )
        assert rows.shape == (150, 4)
        assert values.shape == (150,)
        assert stats.n_seen == 800

    def test_alpha_zero_prefers_easy_bins(self, rng):
        hardness = np.concatenate([np.full(700, 0.05), np.full(100, 0.95)])
        X = hardness.reshape(-1, 1).repeat(2, axis=1)
        rows, _, _ = streaming_self_paced_under_sample(
            self._blocks(hardness, X, 128), 10, 0.0, 100, rng
        )
        assert (rows[:, 0] < 0.5).mean() > 0.8

    def test_alpha_inf_spreads_over_bins(self, rng):
        hardness = np.concatenate([np.full(700, 0.05), np.full(100, 0.95)])
        X = hardness.reshape(-1, 1)
        rows, _, _ = streaming_self_paced_under_sample(
            self._blocks(hardness, X, 128), 2, 1e15, 100, rng
        )
        hard_taken = (rows[:, 0] > 0.5).sum()
        assert 40 <= hard_taken <= 60

    def test_budget_capped_by_stream_size(self, rng):
        hardness = rng.uniform(size=40)
        X = rng.randn(40, 2)
        rows, _, _ = streaming_self_paced_under_sample(
            self._blocks(hardness, X, 16), 5, 0.1, 100, rng
        )
        assert len(rows) == 40

    def test_empty_stream_raises(self, rng):
        with pytest.raises(ValueError):
            streaming_self_paced_under_sample(iter(()), 5, 0.1, 10, rng)
