"""The chaos subsystem on its own: :class:`repro.chaos.FaultPlan` must be
deterministic, stateless at fire time, and surgical about what it damages.
Faults that would kill the test process are exercised by monkeypatching the
kill primitive; real process kills live in
``tests/test_serving_fault_tolerance.py`` and ``benchmarks/bench_chaos.py``."""

import numpy as np
import pytest

from repro.chaos import (
    CHAOS_EXIT_CODE,
    CorruptArtifact,
    DelayReply,
    FaultPlan,
    KillOnSwap,
    KillWorker,
    StallSite,
    StallWorker,
)
from repro.exceptions import PersistenceError
from repro.persistence import load_model, save_model
from repro.registry import get_classifier, toy_imbalanced_split


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    X, y = toy_imbalanced_split()
    clf = get_classifier("spe", base="tree", n_estimators=5, random_state=0)
    path = str(tmp_path_factory.mktemp("chaos") / "model.npz")
    save_model(clf.fit(X, y), path)
    return path


@pytest.fixture()
def deaths(monkeypatch):
    """Record would-be process kills instead of executing them."""
    log = []
    monkeypatch.setattr(FaultPlan, "_die", staticmethod(log.append))
    return log


class TestFirePlumbing:
    def test_empty_plan_is_a_noop_everywhere(self):
        plan = FaultPlan()
        for site in (
            "worker.request",
            "worker.reply",
            "worker.swap",
            "server.batch",
            "gateway.forward",
        ):
            plan.fire(site, worker=0, count=1, generation=0)
        assert plan.fired_ == []

    def test_kill_worker_matches_worker_count_and_generation(self, deaths):
        plan = FaultPlan([KillWorker(worker=1, after_requests=3)])
        # Wrong worker, wrong count, wrong generation, wrong site: no kill.
        plan.fire("worker.request", worker=0, count=3, generation=0)
        plan.fire("worker.request", worker=1, count=2, generation=0)
        plan.fire("worker.request", worker=1, count=3, generation=1)
        plan.fire("worker.reply", worker=1, count=3, generation=0)
        assert deaths == []
        plan.fire("worker.request", worker=1, count=3, generation=0)
        assert len(deaths) == 1

    def test_respawned_generation_sails_past_a_kill_fault(self, deaths):
        """The supervisor hands respawns generation+1; a one-shot kill
        fault (generation 0 by default) must not crash-loop them."""
        plan = FaultPlan([KillWorker(worker=0, after_requests=1)])
        for count in range(1, 5):
            plan.fire("worker.request", worker=0, count=count, generation=1)
        assert deaths == []

    def test_kill_on_swap_fires_on_the_swap_site_only(self, deaths):
        plan = FaultPlan([KillOnSwap(worker=0, on_swap=1)])
        plan.fire("worker.request", worker=0, count=1, generation=0)
        assert deaths == []
        plan.fire("worker.swap", worker=0, count=1, generation=0)
        assert len(deaths) == 1

    def test_stalls_and_delays_record_and_sleep(self):
        plan = FaultPlan(
            [
                StallWorker(worker=0, after_requests=2, seconds=0.0),
                DelayReply(worker=1, after_requests=1, seconds=0.0),
                StallSite(site="gateway.forward", after_count=2, seconds=0.0),
            ]
        )
        plan.fire("worker.request", worker=0, count=1, generation=0)
        plan.fire("worker.request", worker=0, count=2, generation=0)
        plan.fire("worker.reply", worker=1, count=1, generation=0)
        plan.fire("gateway.forward", count=1)
        plan.fire("gateway.forward", count=2)
        assert plan.fired_ == [
            ("stall", "worker.request", 0, 2),
            ("delay", "worker.reply", 1, 1),
            ("stall", "gateway.forward", None, 2),
        ]

    def test_stall_with_generation_none_hits_every_incarnation(self):
        plan = FaultPlan([StallWorker(worker=0, after_requests=1, seconds=0.0)])
        plan.fire("worker.request", worker=0, count=1, generation=0)
        plan.fire("worker.request", worker=0, count=1, generation=3)
        assert len(plan.fired_) == 2

    def test_plan_is_plain_data(self):
        plan = FaultPlan([KillWorker(worker=0, after_requests=1)], seed=7)
        assert isinstance(plan.faults, tuple)
        assert "KillWorker" in repr(plan) and "seed=7" in repr(plan)
        assert CHAOS_EXIT_CODE == 86
        with pytest.raises(Exception):
            plan.faults[0].worker = 2  # frozen dataclass


class TestCorruptArtifact:
    def test_same_seed_same_offset_and_xor_roundtrip(self, artifact, tmp_path):
        import shutil

        copy = str(tmp_path / "copy.npz")
        shutil.copy(artifact, copy)
        original = open(copy, "rb").read()

        offset_a = FaultPlan(seed=3).corrupt(copy)
        assert open(copy, "rb").read() != original
        offset_b = FaultPlan(seed=3).corrupt(copy)  # same seed: same byte
        assert offset_a == offset_b
        assert open(copy, "rb").read() == original  # XOR twice = restored

    @pytest.mark.parametrize("mmap_mode", [None, "r"])
    def test_corruption_is_caught_by_load_model(
        self, artifact, tmp_path, mmap_mode
    ):
        """The seeded flip lands in real array payload bytes, so the
        artifact checksum catches it in both load modes — never a clean
        load of damaged data."""
        import shutil

        copy = str(tmp_path / f"bad-{mmap_mode}.npz")
        shutil.copy(artifact, copy)
        FaultPlan(seed=0).corrupt(copy)
        with pytest.raises(PersistenceError):
            load_model(copy, mmap_mode=mmap_mode)

    def test_explicit_offset_is_honoured_and_bounds_checked(
        self, artifact, tmp_path
    ):
        import shutil

        copy = str(tmp_path / "explicit.npz")
        shutil.copy(artifact, copy)
        plan = FaultPlan([CorruptArtifact(offset=100)])
        assert plan.corrupt(copy) == 100
        out_of_range = FaultPlan(
            [CorruptArtifact(offset=10**9)]
        )
        with pytest.raises(ValueError, match="outside"):
            out_of_range.corrupt(copy)

    def test_loadable_after_double_flip(self, artifact, tmp_path):
        import shutil

        copy = str(tmp_path / "healed.npz")
        shutil.copy(artifact, copy)
        X, _ = toy_imbalanced_split()
        expected = load_model(artifact).predict_proba(X)
        FaultPlan(seed=1).corrupt(copy)
        FaultPlan(seed=1).corrupt(copy)
        assert np.array_equal(load_model(copy).predict_proba(X), expected)
