"""Memory-mapped artifact loading (the zero-copy half of the serving
plane): ``load_model(path, mmap_mode="r")`` must be observationally
identical to the eager load — bit-identical ``predict_proba`` for every
persistable registered classifier, the same corrupted-artifact error
contract — while keeping the fitted arrays as *read-only views into the
file* that serving never writes.
"""

import numpy as np
import pytest

from repro.exceptions import PersistenceError
from repro.persistence import load_model, save_model
from repro.registry import (
    classifier_spec,
    get_classifier,
    list_classifiers,
    make_classifier,
    toy_imbalanced_split,
)

PERSISTABLE = [n for n in list_classifiers() if classifier_spec(n).persistable]

#: BLAS-backed decision functions reproduce within 1 ULP, not bit-exactly.
ULP_TOLERANT = {"svm"}


@pytest.fixture(scope="module")
def toy():
    return toy_imbalanced_split()


def fitted(name, toy):
    X, y = toy
    clf = make_classifier(name, **classifier_spec(name).smoke_params)
    if hasattr(clf, "random_state"):
        clf.random_state = 0
    return clf.fit(X, y)


def walk_arrays(obj, seen=None):
    """Yield every ndarray reachable through the estimator's state."""
    if seen is None:
        seen = set()
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        yield obj
        return
    if isinstance(obj, (list, tuple)):
        for item in obj:
            yield from walk_arrays(item, seen)
        return
    if isinstance(obj, dict):
        for item in obj.values():
            yield from walk_arrays(item, seen)
        return
    state = getattr(obj, "__dict__", None)
    if state is not None:
        yield from walk_arrays(state, seen)


class TestMmapMatrix:
    @pytest.mark.parametrize("name", PERSISTABLE)
    def test_mmap_load_bit_identical_to_eager(self, name, toy, tmp_path):
        X, _ = toy
        clf = fitted(name, toy)
        path = tmp_path / f"{name}.npz"
        save_model(clf, path)
        eager = load_model(path).predict_proba(X)
        mapped = load_model(path, mmap_mode="r").predict_proba(X)
        if name in ULP_TOLERANT:
            np.testing.assert_allclose(mapped, eager, rtol=0, atol=1e-12)
        else:
            assert np.array_equal(mapped, eager)

    @pytest.mark.parametrize("name", PERSISTABLE)
    def test_mmap_views_are_read_only(self, name, toy, tmp_path):
        """Every array restored from a mapped artifact refuses writes —
        serving can never silently corrupt the shared page-cache copy."""
        clf = fitted(name, toy)
        path = tmp_path / f"{name}.npz"
        save_model(clf, path)
        loaded = load_model(path, mmap_mode="r")
        arrays = list(walk_arrays(loaded))
        assert arrays, "expected fitted arrays on the restored model"
        checked = 0
        for arr in arrays:
            base = arr.base if arr.base is not None else arr
            if isinstance(base, np.ndarray) and not base.flags.writeable:
                with pytest.raises((ValueError, RuntimeError)):
                    arr[(0,) * arr.ndim] = 0
                checked += 1
        assert checked, "no read-only mapped arrays found on the model"

    def test_serving_from_mmap_never_writes_views(self, toy, tmp_path):
        """A full predict_proba pass over a mapped SPE artifact (packed
        kernel + code table) leaves the file bytes untouched."""
        X, _ = toy
        clf = get_classifier(
            "spe", preset="fast", shared_binning=True, random_state=0
        ).fit(*toy)
        path = tmp_path / "spe.npz"
        save_model(clf, path)
        before = path.read_bytes()
        loaded = load_model(path, mmap_mode="r")
        loaded.predict_proba(X)
        assert path.read_bytes() == before


class TestMmapContracts:
    def test_invalid_mmap_mode_rejected(self, toy, tmp_path):
        clf = fitted("tree", toy)
        path = tmp_path / "m.npz"
        save_model(clf, path)
        with pytest.raises(ValueError, match="mmap_mode"):
            load_model(path, mmap_mode="r+")

    def test_missing_file_error_identical(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_model(tmp_path / "nope.npz", mmap_mode="r")

    def test_corrupted_payload_detected(self, toy, tmp_path):
        """Flipping bytes inside a stored array must still fail checksum
        verification on the mapped path."""
        clf = fitted("tree", toy)
        path = tmp_path / "m.npz"
        save_model(clf, path)
        raw = bytearray(path.read_bytes())
        # corrupt a run of bytes well inside the file body (past the
        # first member's zip + npy headers)
        mid = len(raw) // 2
        for i in range(mid, mid + 8):
            raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError):
            load_model(path, mmap_mode="r")

    def test_truncated_artifact_detected(self, toy, tmp_path):
        clf = fitted("tree", toy)
        path = tmp_path / "m.npz"
        save_model(clf, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(PersistenceError):
            load_model(path, mmap_mode="r")
