"""ModelServer: warm artifact loading, micro-batching, thresholding.

Pins the serving contracts of the persistence issue: an artifact loads
straight into a warm packed kernel (no re-pack on the first request),
micro-batched scoring is exactly the direct ``predict_proba``, the request
queue is bounded (overflow raises, never grows silently), and ``predict``
classifies by the tunable threshold instead of the estimators' argmax.
"""

import threading

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.exceptions import ServerOverloadedError
from repro.fastpath.codetable import cached_packed_ensemble
from repro.metrics import precision_recall_curve
from repro.persistence import save_model
from repro.serving import ModelServer, threshold_for_precision


@pytest.fixture(scope="module")
def data():
    X, y = make_checkerboard(n_minority=50, n_majority=500, random_state=0)
    return X, y


@pytest.fixture(scope="module")
def fitted(data):
    X, y = data
    return SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y)


@pytest.fixture(scope="module")
def artifact(fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "model.npz"
    save_model(fitted, path)
    return path


class TestWarmLoading:
    def test_loads_artifact_into_warm_pack(self, artifact, data):
        X, _ = data
        with ModelServer(artifact) as server:
            assert server.packed_  # kernel built at construction
            estimators, classes = server.model.__serving_ensemble__()
            before = cached_packed_ensemble(list(estimators), classes)
            assert before is not None
            server.predict_proba(X[:8])  # first request
            after = cached_packed_ensemble(list(estimators), classes)
            assert before[0] is after[0], "first request re-packed the forest"

    def test_shared_binning_artifact_gets_code_table(self, data, tmp_path):
        X, y = data
        clf = SelfPacedEnsembleClassifier(
            n_estimators=4, shared_binning=True, random_state=0
        ).fit(X, y)
        path = tmp_path / "shared.npz"
        save_model(clf, path)
        with ModelServer(path) as server:
            assert server.packed_ and server.code_table_
            assert np.array_equal(
                server.predict_proba(X[:32]), clf.predict_proba(X[:32])
            )

    def test_wraps_live_model_too(self, fitted, data):
        X, _ = data
        with ModelServer(fitted) as server:
            assert np.array_equal(
                server.predict_proba(X[:16]), fitted.predict_proba(X[:16])
            )

    def test_unfitted_model_rejected(self):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            ModelServer(SelfPacedEnsembleClassifier())


class TestMicroBatching:
    def test_concurrent_singletons_equal_direct_scoring(self, artifact, data):
        X, _ = data
        with ModelServer(artifact, max_batch=64) as server:
            futures = [server.submit(X[i : i + 1]) for i in range(100)]
            got = np.vstack([f.result(timeout=30) for f in futures])
            assert np.array_equal(got, server.model.predict_proba(X[:100]))
            assert server.n_requests_ == 100
            # queued singletons must have coalesced into far fewer kernel calls
            assert server.n_batches_ <= server.n_requests_

    def test_mixed_sizes_split_back_correctly(self, artifact, data):
        X, _ = data
        with ModelServer(artifact) as server:
            sizes = [1, 7, 32, 3, 64, 1]
            futures, offset = [], 0
            for size in sizes:
                futures.append(server.submit(X[offset : offset + size]))
                offset += size
            direct = server.model.predict_proba(X[:offset])
            offset = 0
            for size, future in zip(sizes, futures):
                assert np.array_equal(
                    future.result(timeout=30), direct[offset : offset + size]
                )
                offset += size

    def test_bounded_queue_overflow_raises(self, data):
        X, _ = data

        class SlowModel:
            """Fitted-looking stub whose predict_proba blocks on demand."""

            def __init__(self):
                self.classes_ = np.array([0, 1])
                self.entered = threading.Event()
                self.release = threading.Event()

            def predict_proba(self, rows):
                self.entered.set()
                assert self.release.wait(timeout=30)
                return np.full((len(rows), 2), 0.5)

        model = SlowModel()
        server = ModelServer(model, max_pending=2)
        first = server.submit(X[:1])  # occupies the worker
        assert model.entered.wait(timeout=30)
        pending = [server.submit(X[:1]) for _ in range(2)]  # fills the queue
        with pytest.raises(ServerOverloadedError):
            server.submit(X[:1])
        model.release.set()
        for future in [first] + pending:
            assert future.result(timeout=30).shape == (1, 2)
        server.close()

    def test_max_batch_bounds_kernel_calls(self, data):
        """Coalescing never builds a kernel call above max_batch rows
        (except a single larger request, served alone)."""
        X, _ = data

        class RecordingModel:
            def __init__(self):
                self.classes_ = np.array([0, 1])
                self.entered = threading.Event()
                self.release = threading.Event()
                self.batch_rows = []

            def predict_proba(self, rows):
                self.entered.set()
                assert self.release.wait(timeout=30)
                self.batch_rows.append(len(rows))
                return np.full((len(rows), 2), 0.5)

        model = RecordingModel()
        server = ModelServer(model, max_batch=8)
        first = server.submit(X[:1])  # occupies the worker
        assert model.entered.wait(timeout=30)
        futures = [server.submit(X[:5]), server.submit(X[:5])]  # 5 + 5 > 8
        model.release.set()
        for future in [first] + futures:
            future.result(timeout=30)
        server.close()
        # 5+5 must not coalesce into one 10-row call; the carried request
        # is served in its own batch.
        assert model.batch_rows[1:] == [5, 5]

    def test_serving_hook_opt_out_for_vote_ensembles(self, data):
        """RUSBoost/SMOTEBoost predict by weighted vote, never the packed
        kernel — the server must not pre-pack (and report) an unused forest."""
        from repro.imbalance_ensemble import RUSBoostClassifier

        X, y = data
        clf = RUSBoostClassifier(n_estimators=3, random_state=0).fit(X, y)
        with ModelServer(clf) as server:
            assert not server.packed_ and not server.code_table_
            assert np.array_equal(
                server.predict_proba(X[:16]), clf.predict_proba(X[:16])
            )

    def test_submit_after_close_rejected(self, fitted, data):
        X, _ = data
        server = ModelServer(fitted)
        server.predict_proba(X[:2])
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(X[:1])


class TestThreshold:
    def test_threshold_changes_operating_point(self, fitted, data):
        X, _ = data
        with ModelServer(fitted, threshold=0.9) as server:
            strict = (server.predict(X) == server.positive_class).sum()
            server.threshold = 0.05
            lax = (server.predict(X) == server.positive_class).sum()
            assert lax >= strict
            assert strict < (server.model.predict(X) == 1).sum() <= lax

    def test_threshold_differs_from_argmax(self, fitted, data):
        X, _ = data
        with ModelServer(fitted, threshold=0.2) as server:
            thresholded = server.predict(X)
        argmax = fitted.predict(X)
        proba = fitted.predict_proba(X)[:, 1]
        expect = np.where(proba >= 0.2, 1, 0)
        assert np.array_equal(thresholded, expect)
        assert not np.array_equal(thresholded, argmax)  # 0.2 != 0.5 boundary

    def test_invalid_threshold_rejected(self, fitted):
        with pytest.raises(ValueError):
            ModelServer(fitted, threshold=1.5)
        server = ModelServer(fitted)
        with pytest.raises(ValueError):
            server.threshold = -0.1
        server.close()

    def test_decoded_labels_with_string_alphabet(self, data, tmp_path):
        X, y = data
        y_str = np.where(y == 1, "fraud", "ok")
        clf = SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y_str)
        path = tmp_path / "str.npz"
        save_model(clf, path)
        with ModelServer(path, threshold=0.3) as server:
            assert server.positive_class == "fraud"
            pred = server.predict(X)
            assert set(np.unique(pred)) <= {"fraud", "ok"}
            expect = np.where(clf.predict_proba(X)[:, 0] >= 0.3, "fraud", "ok")
            assert np.array_equal(pred, expect)


class TestThresholdForPrecision:
    def test_matches_pr_curve_alignment(self, fitted, data):
        X, y = data
        scores = fitted.predict_proba(X)[:, 1]
        precision, recall, thresholds = precision_recall_curve(y, scores)
        target = float(np.median(precision[:-1]))
        t = threshold_for_precision(y, scores, target)
        # classifying at >= t must reach the target precision
        pred = scores >= t
        achieved = (y[pred] == 1).mean()
        assert achieved >= target - 1e-12
        # and t is the lowest curve threshold achieving it
        idx = int(np.flatnonzero(thresholds == t)[0])
        assert (precision[:idx] < target).all()

    def test_unreachable_precision_raises(self, data):
        X, y = data
        rng = np.random.RandomState(0)
        noise = rng.rand(len(y))
        with pytest.raises(ValueError, match="no threshold"):
            threshold_for_precision(y, noise, 1.01)
