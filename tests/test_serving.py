"""ModelServer: warm artifact loading, micro-batching, thresholding.

Pins the serving contracts of the persistence issue: an artifact loads
straight into a warm packed kernel (no re-pack on the first request),
micro-batched scoring is exactly the direct ``predict_proba``, the request
queue is bounded (overflow raises, never grows silently), and ``predict``
classifies by the tunable threshold instead of the estimators' argmax.
"""

import threading

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.exceptions import ServerOverloadedError
from repro.fastpath.codetable import cached_packed_ensemble
from repro.metrics import precision_recall_curve
from repro.persistence import save_model
from repro.serving import ModelServer, threshold_for_precision


@pytest.fixture(scope="module")
def data():
    X, y = make_checkerboard(n_minority=50, n_majority=500, random_state=0)
    return X, y


@pytest.fixture(scope="module")
def fitted(data):
    X, y = data
    return SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y)


@pytest.fixture(scope="module")
def artifact(fitted, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "model.npz"
    save_model(fitted, path)
    return path


class TestWarmLoading:
    def test_loads_artifact_into_warm_pack(self, artifact, data):
        X, _ = data
        with ModelServer(artifact) as server:
            assert server.packed_  # kernel built at construction
            estimators, classes = server.model.__serving_ensemble__()
            before = cached_packed_ensemble(list(estimators), classes)
            assert before is not None
            server.predict_proba(X[:8])  # first request
            after = cached_packed_ensemble(list(estimators), classes)
            assert before[0] is after[0], "first request re-packed the forest"

    def test_shared_binning_artifact_gets_code_table(self, data, tmp_path):
        X, y = data
        clf = SelfPacedEnsembleClassifier(
            n_estimators=4, shared_binning=True, random_state=0
        ).fit(X, y)
        path = tmp_path / "shared.npz"
        save_model(clf, path)
        with ModelServer(path) as server:
            assert server.packed_ and server.code_table_
            assert np.array_equal(
                server.predict_proba(X[:32]), clf.predict_proba(X[:32])
            )

    def test_wraps_live_model_too(self, fitted, data):
        X, _ = data
        with ModelServer(fitted) as server:
            assert np.array_equal(
                server.predict_proba(X[:16]), fitted.predict_proba(X[:16])
            )

    def test_unfitted_model_rejected(self):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            ModelServer(SelfPacedEnsembleClassifier())


class TestMicroBatching:
    def test_concurrent_singletons_equal_direct_scoring(self, artifact, data):
        X, _ = data
        with ModelServer(artifact, max_batch=64) as server:
            futures = [server.submit(X[i : i + 1]) for i in range(100)]
            got = np.vstack([f.result(timeout=30) for f in futures])
            assert np.array_equal(got, server.model.predict_proba(X[:100]))
            assert server.n_requests_ == 100
            # queued singletons must have coalesced into far fewer kernel calls
            assert server.n_batches_ <= server.n_requests_

    def test_mixed_sizes_split_back_correctly(self, artifact, data):
        X, _ = data
        with ModelServer(artifact) as server:
            sizes = [1, 7, 32, 3, 64, 1]
            futures, offset = [], 0
            for size in sizes:
                futures.append(server.submit(X[offset : offset + size]))
                offset += size
            direct = server.model.predict_proba(X[:offset])
            offset = 0
            for size, future in zip(sizes, futures):
                assert np.array_equal(
                    future.result(timeout=30), direct[offset : offset + size]
                )
                offset += size

    def test_bounded_queue_overflow_raises(self, data):
        X, _ = data

        class SlowModel:
            """Fitted-looking stub whose predict_proba blocks on demand."""

            def __init__(self):
                self.classes_ = np.array([0, 1])
                self.entered = threading.Event()
                self.release = threading.Event()

            def predict_proba(self, rows):
                self.entered.set()
                assert self.release.wait(timeout=30)
                return np.full((len(rows), 2), 0.5)

        model = SlowModel()
        server = ModelServer(model, max_pending=2)
        first = server.submit(X[:1])  # occupies the worker
        assert model.entered.wait(timeout=30)
        pending = [server.submit(X[:1]) for _ in range(2)]  # fills the queue
        with pytest.raises(ServerOverloadedError):
            server.submit(X[:1])
        model.release.set()
        for future in [first] + pending:
            assert future.result(timeout=30).shape == (1, 2)
        server.close()

    def test_max_batch_bounds_kernel_calls(self, data):
        """Coalescing never builds a kernel call above max_batch rows
        (except a single larger request, served alone)."""
        X, _ = data

        class RecordingModel:
            def __init__(self):
                self.classes_ = np.array([0, 1])
                self.entered = threading.Event()
                self.release = threading.Event()
                self.batch_rows = []

            def predict_proba(self, rows):
                self.entered.set()
                assert self.release.wait(timeout=30)
                self.batch_rows.append(len(rows))
                return np.full((len(rows), 2), 0.5)

        model = RecordingModel()
        server = ModelServer(model, max_batch=8)
        first = server.submit(X[:1])  # occupies the worker
        assert model.entered.wait(timeout=30)
        futures = [server.submit(X[:5]), server.submit(X[:5])]  # 5 + 5 > 8
        model.release.set()
        for future in [first] + futures:
            future.result(timeout=30)
        server.close()
        # 5+5 must not coalesce into one 10-row call; the carried request
        # is served in its own batch.
        assert model.batch_rows[1:] == [5, 5]

    def test_serving_hook_opt_out_for_vote_ensembles(self, data):
        """RUSBoost/SMOTEBoost predict by weighted vote, never the packed
        kernel — the server must not pre-pack (and report) an unused forest."""
        from repro.imbalance_ensemble import RUSBoostClassifier

        X, y = data
        clf = RUSBoostClassifier(n_estimators=3, random_state=0).fit(X, y)
        with ModelServer(clf) as server:
            assert not server.packed_ and not server.code_table_
            assert np.array_equal(
                server.predict_proba(X[:16]), clf.predict_proba(X[:16])
            )

    def test_submit_after_close_rejected(self, fitted, data):
        X, _ = data
        server = ModelServer(fitted)
        server.predict_proba(X[:2])
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(X[:1])


class TestThreshold:
    def test_threshold_changes_operating_point(self, fitted, data):
        X, _ = data
        with ModelServer(fitted, threshold=0.9) as server:
            strict = (server.predict(X) == server.positive_class).sum()
            server.threshold = 0.05
            lax = (server.predict(X) == server.positive_class).sum()
            assert lax >= strict
            assert strict < (server.model.predict(X) == 1).sum() <= lax

    def test_threshold_differs_from_argmax(self, fitted, data):
        X, _ = data
        with ModelServer(fitted, threshold=0.2) as server:
            thresholded = server.predict(X)
        argmax = fitted.predict(X)
        proba = fitted.predict_proba(X)[:, 1]
        expect = np.where(proba >= 0.2, 1, 0)
        assert np.array_equal(thresholded, expect)
        assert not np.array_equal(thresholded, argmax)  # 0.2 != 0.5 boundary

    def test_invalid_threshold_rejected(self, fitted):
        with pytest.raises(ValueError):
            ModelServer(fitted, threshold=1.5)
        server = ModelServer(fitted)
        with pytest.raises(ValueError):
            server.threshold = -0.1
        server.close()

    def test_decoded_labels_with_string_alphabet(self, data, tmp_path):
        X, y = data
        y_str = np.where(y == 1, "fraud", "ok")
        clf = SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y_str)
        path = tmp_path / "str.npz"
        save_model(clf, path)
        with ModelServer(path, threshold=0.3) as server:
            assert server.positive_class == "fraud"
            pred = server.predict(X)
            assert set(np.unique(pred)) <= {"fraud", "ok"}
            expect = np.where(clf.predict_proba(X)[:, 0] >= 0.3, "fraud", "ok")
            assert np.array_equal(pred, expect)


class TestThresholdForPrecision:
    def test_matches_pr_curve_alignment(self, fitted, data):
        X, y = data
        scores = fitted.predict_proba(X)[:, 1]
        precision, recall, thresholds = precision_recall_curve(y, scores)
        target = float(np.median(precision[:-1]))
        t = threshold_for_precision(y, scores, target)
        # classifying at >= t must reach the target precision
        pred = scores >= t
        achieved = (y[pred] == 1).mean()
        assert achieved >= target - 1e-12
        # and t is the lowest curve threshold achieving it
        idx = int(np.flatnonzero(thresholds == t)[0])
        assert (precision[:idx] < target).all()

    def test_unreachable_precision_raises(self, data):
        X, y = data
        rng = np.random.RandomState(0)
        noise = rng.rand(len(y))
        with pytest.raises(ValueError, match="no threshold"):
            threshold_for_precision(y, noise, 1.01)

    def test_unreachable_target_names_best_achievable(self):
        """Pinned contract: an unreachable ``min_precision`` raises
        ValueError naming the best achievable precision, and the (1, 0)
        anchor — precision 1 with no threshold — never satisfies it."""
        y = np.array([0, 1, 0, 0])
        s = np.array([0.9, 0.8, 0.7, 0.1])  # best real precision: 0.5
        with pytest.raises(ValueError, match=r"max achievable"):
            threshold_for_precision(y, s, 0.9)
        # the perfect-precision *anchor* exists on the curve, but it is
        # not an operating point: asking for 1.0 still raises here
        with pytest.raises(ValueError):
            threshold_for_precision(y, s, 1.0)

    def test_reachable_after_tie_group(self):
        """Perfect precision reachable at the top score: returned."""
        y = np.array([0, 1, 1, 0])
        s = np.array([0.2, 0.8, 0.9, 0.4])
        t = threshold_for_precision(y, s, 1.0)
        pred = s >= t
        assert (y[pred] == 1).all() and pred.sum() == 2

    def test_ties_at_boundary_threshold_admit_whole_group(self):
        """Equal scores collapse into one threshold whose precision
        already counts every tied row — the returned threshold can never
        split a tie group."""
        y = np.array([1, 1, 0, 1, 0, 0])
        s = np.array([0.9, 0.5, 0.5, 0.5, 0.2, 0.1])
        # at t=0.5: predictions {0.9, 0.5 x3} -> precision 3/4
        t = threshold_for_precision(y, s, 0.75)
        assert t == 0.5
        pred = s >= t
        assert pred.sum() == 4 and (y[pred] == 1).mean() == pytest.approx(0.75)
        # a target separable only *inside* the tie group resolves to the
        # next real threshold above it (0.9 -> precision 1.0)
        t_hi = threshold_for_precision(y, s, 0.8)
        assert t_hi == 0.9
        assert (y[s >= t_hi] == 1).mean() == 1.0

    def test_anchor_never_returned_as_threshold(self, fitted, data):
        """The returned value is always a real score threshold, present in
        the curve's thresholds array."""
        X, y = data
        scores = fitted.predict_proba(X)[:, 1]
        _, _, thresholds = precision_recall_curve(y, scores)
        t = threshold_for_precision(y, scores, 0.5)
        assert t in thresholds


class TestStats:
    def test_counters_track_traffic(self, fitted, data):
        X, _ = data
        with ModelServer(fitted, model_version="v0042") as server:
            stats = server.stats()
            assert stats["n_requests"] == 0 and stats["n_batches"] == 0
            assert stats["model_version"] == "v0042"
            for _ in range(3):
                server.predict_proba(X[:7])
            server.predict_proba(X[:20])
            stats = server.stats()
            assert stats["n_requests"] == 4
            assert stats["n_rows"] == 3 * 7 + 20
            assert stats["n_batches"] >= 1
            assert stats["n_overflows"] == 0 and stats["n_swaps"] == 0
            assert stats["queue_depth"] == 0
            # batch-size distribution: rows-per-kernel-call histogram
            dist = stats["batch_size_distribution"]
            assert sum(k * v for k, v in dist.items()) == stats["n_rows"]
            assert sum(dist.values()) == stats["n_batches"]
            assert stats["requests_by_version"] == {"v0042": 4}
            assert stats["packed"] == server.packed_

    def test_overflow_rejections_counted(self, data):
        X, y = data
        clf = SelfPacedEnsembleClassifier(n_estimators=2, random_state=0).fit(X, y)
        server = ModelServer(clf, max_batch=1, max_pending=1)
        # stuff the queue without a worker draining fast enough by
        # submitting from under a held batch: easiest deterministic route
        # is max_pending=1 -> flood submits until one overflows
        n_overflow = 0
        futures = []
        for _ in range(200):
            try:
                futures.append(server.submit(X[:1]))
            except ServerOverloadedError:
                n_overflow += 1
        for f in futures:
            f.result()
        assert server.stats()["n_overflows"] == n_overflow
        server.close()


class TestSwapModel:
    def test_swap_changes_model_and_version(self, fitted, data, tmp_path):
        X, y = data
        other = SelfPacedEnsembleClassifier(n_estimators=3, random_state=9).fit(X, y)
        with ModelServer(fitted, model_version="v0001") as server:
            before = server.predict_proba(X[:32])
            assert np.array_equal(before, fitted.predict_proba(X[:32]))
            version = server.swap_model(other, version="v0002")
            assert version == "v0002"
            assert server.model is other
            assert server.model_version == "v0002"
            after = server.predict_proba(X[:32])
            assert np.array_equal(after, other.predict_proba(X[:32]))
            assert server.stats()["n_swaps"] == 1

    def test_swap_prebuilds_packed_kernel(self, fitted, data, tmp_path):
        X, y = data
        other = SelfPacedEnsembleClassifier(n_estimators=3, random_state=9).fit(X, y)
        with ModelServer(fitted) as server:
            assert server.packed_
            server.swap_model(other)
            # the kernel was built during swap_model, before the flip:
            # the pack cache already holds the new ensemble's entry
            estimators, classes = other.__serving_ensemble__()
            assert cached_packed_ensemble(list(estimators), classes) is not None
            assert server.packed_

    def test_swap_from_artifact_path(self, fitted, artifact, data):
        X, _ = data
        other = SelfPacedEnsembleClassifier(n_estimators=2, random_state=3).fit(
            *data
        )
        with ModelServer(other, model_version="tmp") as server:
            version = server.swap_model(artifact, version="from-disk")
            assert version == "from-disk"
            assert np.array_equal(
                server.predict_proba(X[:16]), fitted.predict_proba(X[:16])
            )

    def test_swap_autoversion_when_unnamed(self, fitted, data):
        other = SelfPacedEnsembleClassifier(n_estimators=2, random_state=3).fit(
            *data
        )
        with ModelServer(fitted) as server:
            assert server.swap_model(other) == "swap-1"
            assert server.swap_model(fitted) == "swap-2"

    def test_swap_rejects_unfitted(self, fitted):
        with ModelServer(fitted) as server:
            with pytest.raises(Exception):
                server.swap_model(SelfPacedEnsembleClassifier())
            assert server.model is fitted  # old model untouched

    def test_swap_after_close_rejected(self, fitted, data):
        other = SelfPacedEnsembleClassifier(n_estimators=2, random_state=3).fit(
            *data
        )
        server = ModelServer(fitted)
        server.close()
        with pytest.raises(RuntimeError):
            server.swap_model(other)

    def test_every_request_served_by_exactly_one_version(self, fitted, data):
        """Concurrent swaps + traffic: each ScoredBatch carries one version
        stamp and its probabilities match that version's model exactly."""
        X, y = data
        models = {
            "vA": fitted,
            "vB": SelfPacedEnsembleClassifier(n_estimators=3, random_state=1).fit(X, y),
        }
        expected = {
            name: m.predict_proba(X[:16]) for name, m in models.items()
        }
        server = ModelServer(models["vA"], model_version="vA")
        failures = []
        results = []
        stop = threading.Event()

        def traffic():
            while not stop.is_set():
                try:
                    scored = server.score(X[:16])
                    results.append(scored)
                except BaseException as exc:
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=traffic) for _ in range(4)]
        for t in threads:
            t.start()
        for i in range(20):  # swap back and forth under load
            name = "vB" if i % 2 == 0 else "vA"
            server.swap_model(models[name], version=name)
        stop.set()
        for t in threads:
            t.join()
        server.close()
        assert failures == []
        assert len(results) > 0
        for scored in results:
            assert scored.model_version in expected
            # the stamped version's model produced these exact bytes
            assert np.array_equal(scored.proba, expected[scored.model_version])
        assert server.stats()["n_overflows"] == 0

    def test_scored_batch_on_mixed_coalesced_requests(self, fitted, data):
        X, _ = data
        with ModelServer(fitted, model_version="v7") as server:
            futures = [server.submit_scored(X[i : i + 3]) for i in range(5)]
            for i, future in enumerate(futures):
                scored = future.result()
                assert scored.model_version == "v7"
                assert np.array_equal(
                    scored.proba, fitted.predict_proba(X[i : i + 3])
                )
