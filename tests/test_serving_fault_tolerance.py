"""Fault tolerance of the serving plane: worker supervision (crash
detection, typed in-flight failure, backoff respawn), per-request
deadlines at every layer, the gateway's circuit breaker, swap atomicity
against corrupt challengers, and the pool's close() edge cases.

Process-killing tests are marked ``chaos`` (select with ``-m chaos``);
they use seeded :class:`repro.chaos.FaultPlan` kills or ``os.kill`` on
pool worker pids, never anything the supervisor shouldn't survive.
"""

import asyncio
import os
import shutil
import signal
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.chaos import FaultPlan, KillOnSwap, KillWorker, StallWorker
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    PersistenceError,
    ServerOverloadedError,
    WorkerCrashedError,
)
from repro.persistence import save_model
from repro.registry import get_classifier, toy_imbalanced_split
from repro.serving import AsyncGateway, ModelServer, WorkerPool
from repro.serving.pool import _rebuild_exception

#: Fast supervision knobs shared by every pool in this file.
FAST = dict(poll_interval=0.02, respawn_backoff=0.05, respawn_backoff_cap=0.4)


@pytest.fixture(scope="module")
def toy():
    return toy_imbalanced_split()


@pytest.fixture(scope="module")
def champion(toy):
    X, y = toy
    return get_classifier(
        "spe", base="tree", n_estimators=5, random_state=0
    ).fit(X, y)


@pytest.fixture(scope="module")
def challenger(toy):
    X, y = toy
    return get_classifier(
        "spe", base="tree", n_estimators=5, random_state=1
    ).fit(X, y)


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory, champion, challenger):
    root = tmp_path_factory.mktemp("artifacts")
    p1, p2 = str(root / "champion.npz"), str(root / "challenger.npz")
    save_model(champion, p1)
    save_model(challenger, p2)
    return p1, p2


def _wait_for(predicate, timeout=30.0, interval=0.01):
    limit = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < limit, "condition never became true"
        time.sleep(interval)


class TestRebuildException:
    """Worker-side exceptions must resurface under their real type —
    library exceptions first, then builtins, never flattened."""

    def test_builtin_exceptions_resolve_by_name(self):
        exc = _rebuild_exception("ValueError", "bad feature count")
        assert type(exc) is ValueError and "bad feature count" in str(exc)
        exc = _rebuild_exception("MemoryError", "worker OOM")
        assert type(exc) is MemoryError
        exc = _rebuild_exception("TimeoutError", "too slow")
        assert type(exc) is TimeoutError

    def test_library_exceptions_win_over_builtins(self):
        exc = _rebuild_exception("PersistenceError", "checksum mismatch")
        assert type(exc) is PersistenceError
        exc = _rebuild_exception("DeadlineExceededError", "expired")
        assert type(exc) is DeadlineExceededError

    def test_unknown_or_non_exception_names_fall_back(self):
        exc = _rebuild_exception("NoSuchExceptionType", "detail")
        assert type(exc) is RuntimeError
        assert "NoSuchExceptionType" in str(exc) and "detail" in str(exc)
        # `int` is a builtin but not an exception: never "rebuilt" into one.
        exc = _rebuild_exception("int", "detail")
        assert type(exc) is RuntimeError

    def test_worker_raised_builtin_resurfaces_typed(self, artifacts, toy):
        X, _ = toy
        with WorkerPool(artifacts[0], n_workers=1) as pool:
            future = pool.submit(np.zeros((4, X.shape[1] + 3)))
            with pytest.raises(ValueError, match="features"):
                future.result(timeout=30)


@pytest.mark.chaos
class TestSupervision:
    def test_chaos_kill_fails_inflight_typed_and_respawns(
        self, artifacts, toy
    ):
        X, _ = toy
        plan = FaultPlan([KillWorker(worker=0, after_requests=1)])
        with WorkerPool(
            artifacts[0], n_workers=2, model_version="v1", chaos=plan, **FAST
        ) as pool:
            doomed = pool.submit(X[:4])  # round-robin starts at worker 0
            healthy = pool.submit(X[:4])
            with pytest.raises(WorkerCrashedError, match="not scored"):
                doomed.result(timeout=30)
            assert healthy.result(timeout=30).shape == (4, 2)
            pool.wait_healthy(timeout=30)
            stats = pool.stats()
            assert stats["n_crashes"] == 1 and stats["n_respawns"] == 1
            assert stats["worker_states"] == {0: "alive", 1: "alive"}
            assert stats["worker_crashes"] == {0: 1, 1: 0}
            assert stats["worker_generations"] == {0: 1, 1: 0}
            # The healed fleet serves on — including the respawned slot.
            for _ in range(4):
                assert pool.predict_proba(X[:4]).shape == (4, 2)

    def test_external_sigkill_detected_and_respawned(self, artifacts, toy):
        X, _ = toy
        with WorkerPool(artifacts[0], n_workers=2, **FAST) as pool:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            pool.wait_healthy(timeout=30)
            stats = pool.stats()
            assert stats["n_crashes"] >= 1 and stats["n_respawns"] >= 1
            assert pool.predict_proba(X[:8]).shape == (8, 2)

    def test_whole_fleet_down_raises_typed_at_submit(self, artifacts, toy):
        X, _ = toy
        pool = WorkerPool(
            artifacts[0],
            n_workers=1,
            poll_interval=0.02,
            respawn_backoff=5.0,  # long: the fleet stays down for the check
            respawn_backoff_cap=5.0,
        )
        try:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            _wait_for(lambda: pool.stats()["n_crashes"] >= 1)
            with pytest.raises(WorkerCrashedError, match="no live workers"):
                pool.submit(X[:4])
        finally:
            pool.close()

    def test_worker_stats_with_whole_fleet_down_returns_immediately(
        self, artifacts
    ):
        """Regression: a stats round-trip that starts after the only
        worker's crash was detected must return `{}` at once — not
        register a waiter nobody can wake and block out its timeout
        (which made wait_healthy burn its whole budget on one call)."""
        pool = WorkerPool(
            artifacts[0],
            n_workers=1,
            poll_interval=0.02,
            respawn_backoff=5.0,
            respawn_backoff_cap=5.0,
        )
        try:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            _wait_for(lambda: pool.stats()["n_crashes"] >= 1)
            t0 = time.monotonic()
            assert pool.worker_stats(timeout=10.0) == {}
            assert time.monotonic() - t0 < 1.0
        finally:
            pool.close()

    def test_repeat_crashes_track_generations_and_counters(
        self, artifacts, toy
    ):
        X, _ = toy
        with WorkerPool(artifacts[0], n_workers=1, **FAST) as pool:
            for expected in (1, 2):
                os.kill(pool.worker_pids()[0], signal.SIGKILL)
                pool.wait_healthy(timeout=30)
                stats = pool.stats()
                assert stats["worker_crashes"][0] == expected
                assert stats["worker_generations"][0] == expected
            assert pool.stats()["n_respawns"] == 2
            assert pool.predict_proba(X[:4]).shape == (4, 2)

    def test_midswap_crash_converges_onto_the_new_version(
        self, artifacts, challenger, toy
    ):
        """A worker killed the instant the swap broadcast reaches it must
        not fail or hang the swap: its respawn source was repointed before
        the broadcast, so the fleet still converges onto the challenger."""
        X, _ = toy
        plan = FaultPlan([KillOnSwap(worker=1, on_swap=1)])
        with WorkerPool(
            artifacts[0], n_workers=2, model_version="v1", chaos=plan, **FAST
        ) as pool:
            installed = pool.swap_model(artifacts[1], version="v2", timeout=30)
            assert installed == "v2"
            pool.wait_healthy(timeout=30)
            stats = pool.stats()
            assert stats["model_versions"] == {0: "v2", 1: "v2"}
            assert stats["n_crashes"] == 1 and stats["n_respawns"] == 1
            scored = pool.score(X[:8])
            assert scored.model_version == "v2"
            assert np.array_equal(
                scored.proba, challenger.predict_proba(X[:8])
            )


class TestDeadlines:
    def test_pool_rejects_pre_expired_deadlines(self, artifacts, toy):
        X, _ = toy
        with WorkerPool(artifacts[0], n_workers=1) as pool:
            with pytest.raises(DeadlineExceededError, match="at submission"):
                pool.submit(X[:4], deadline=0)
            with pytest.raises(DeadlineExceededError):
                pool.submit_scored(X[:4], deadline=-1.0)
            assert pool.stats()["n_deadline_expired"] == 2

    @pytest.mark.chaos
    def test_deadline_expires_typed_behind_a_stalled_worker(
        self, artifacts, toy
    ):
        """A request stuck behind a stalled worker fails fast with the
        typed deadline error (from the parent supervisor) instead of
        waiting out the stall — and the stalled request itself, with no
        deadline, is still served once the worker wakes."""
        X, _ = toy
        plan = FaultPlan(
            [StallWorker(worker=0, after_requests=1, seconds=0.6)]
        )
        with WorkerPool(
            artifacts[0], n_workers=1, chaos=plan, **FAST
        ) as pool:
            stalled = pool.submit(X[:4])
            start = time.monotonic()
            hurried = pool.submit(X[:4], deadline=0.1)
            with pytest.raises(DeadlineExceededError):
                hurried.result(timeout=30)
            assert time.monotonic() - start < 0.5  # failed during the stall
            assert stalled.result(timeout=30).shape == (4, 2)
            assert pool.stats()["n_deadline_expired"] >= 1

    def test_modelserver_deadline_contract(self, champion, toy):
        X, _ = toy
        server = ModelServer(champion)
        try:
            with pytest.raises(DeadlineExceededError):
                server.submit(X[:4], deadline=0)
            assert server.submit(X[:4], deadline=30.0).result(
                timeout=30
            ).shape == (4, 2)
            assert server.stats()["n_deadline_expired"] == 1
        finally:
            server.close()

    def test_gateway_deadline_contract(self):
        backend = _OverloadedBackend()

        async def run():
            gateway = AsyncGateway(backend, retry_interval=0.001)
            with pytest.raises(DeadlineExceededError):
                await gateway.submit(np.zeros((1, 3)), deadline=0)
            # Held under backpressure past its budget: fails typed.
            with pytest.raises(DeadlineExceededError):
                await gateway.submit(np.zeros((1, 3)), deadline=0.05)
            stats = gateway.stats()
            backend.healthy = True
            await gateway.close()
            return stats

        stats = asyncio.run(run())
        assert stats["n_deadline_expired"] == 2
        assert stats["n_backpressure_waits"] >= 1


class _OverloadedBackend:
    """Pushes back on every submit until ``healthy`` is flipped."""

    def __init__(self):
        self.healthy = False
        self.n_served = 0

    def submit(self, rows, *, deadline=None):
        if not self.healthy:
            raise ServerOverloadedError("backend full")
        self.n_served += 1
        future = Future()
        future.set_result(np.zeros((len(rows), 2)))
        return future


class _CrashingBackend:
    """Every future fails WorkerCrashedError until ``healthy`` flips."""

    def __init__(self):
        self.healthy = False
        self.n_submits = 0

    def submit(self, rows, *, deadline=None):
        self.n_submits += 1
        future = Future()
        if self.healthy:
            future.set_result(np.zeros((len(rows), 2)))
        else:
            future.set_exception(WorkerCrashedError("worker died"))
        return future


class TestCircuitBreaker:
    def test_disabled_by_default_never_sheds(self):
        backend = _CrashingBackend()

        async def run():
            gateway = AsyncGateway(backend)
            for _ in range(8):
                with pytest.raises(WorkerCrashedError):
                    await gateway.submit(np.zeros((1, 3)))
            stats = gateway.stats()
            await gateway.close()
            return stats

        stats = asyncio.run(run())
        assert stats["breaker"]["state"] == "closed"
        assert stats["breaker"]["n_shed"] == 0
        assert stats["breaker"]["failure_streak"] == 8

    def test_opens_after_the_failure_streak_and_sheds(self):
        backend = _CrashingBackend()

        async def run():
            gateway = AsyncGateway(
                backend, breaker_threshold=3, breaker_cooldown=60.0
            )
            for _ in range(3):
                with pytest.raises(WorkerCrashedError):
                    await gateway.submit(np.zeros((1, 3)))
            # Open: shed at the door, no backend traffic.
            submits_before = backend.n_submits
            with pytest.raises(CircuitOpenError, match="open"):
                await gateway.submit(np.zeros((1, 3)))
            assert backend.n_submits == submits_before
            stats = gateway.stats()
            await gateway.close()
            return stats

        stats = asyncio.run(run())
        assert stats["breaker"]["state"] == "open"
        assert stats["breaker"]["n_opens"] == 1
        assert stats["breaker"]["n_shed"] == 1

    def test_half_open_probe_success_closes(self):
        backend = _CrashingBackend()

        async def run():
            gateway = AsyncGateway(
                backend, breaker_threshold=2, breaker_cooldown=0.05
            )
            for _ in range(2):
                with pytest.raises(WorkerCrashedError):
                    await gateway.submit(np.zeros((1, 3)))
            backend.healthy = True  # backend recovers while breaker is open
            await asyncio.sleep(0.06)  # cooldown elapses → half-open
            proba = await gateway.submit(np.zeros((1, 3)))  # the probe
            stats = gateway.stats()
            await gateway.close()
            return proba, stats

        proba, stats = asyncio.run(run())
        assert proba.shape == (1, 2)
        assert stats["breaker"]["state"] == "closed"
        assert stats["breaker"]["failure_streak"] == 0

    def test_failed_probe_reopens(self):
        backend = _CrashingBackend()

        async def run():
            gateway = AsyncGateway(
                backend, breaker_threshold=2, breaker_cooldown=0.05
            )
            for _ in range(2):
                with pytest.raises(WorkerCrashedError):
                    await gateway.submit(np.zeros((1, 3)))
            await asyncio.sleep(0.06)
            with pytest.raises(WorkerCrashedError):  # probe admitted, fails
                await gateway.submit(np.zeros((1, 3)))
            stats = gateway.stats()
            backend.healthy = True
            await gateway.close()
            return stats

        stats = asyncio.run(run())
        assert stats["breaker"]["state"] == "open"
        assert stats["breaker"]["n_opens"] == 2

    def test_on_shed_fallback_degrades_gracefully(self):
        backend = _CrashingBackend()
        fallback = np.full((1, 2), 0.5)
        shed_log = []

        def on_shed(rows, tenant, exc):
            shed_log.append((tenant, type(exc).__name__))
            return fallback

        async def run():
            gateway = AsyncGateway(
                backend,
                breaker_threshold=1,
                breaker_cooldown=60.0,
                on_shed=on_shed,
            )
            with pytest.raises(WorkerCrashedError):
                await gateway.submit(np.zeros((1, 3)))
            answer = await gateway.submit(np.zeros((1, 3)), tenant="team-a")
            stats = gateway.stats()
            await gateway.close()
            return answer, stats

        answer, stats = asyncio.run(run())
        assert answer is fallback
        assert shed_log == [("team-a", "CircuitOpenError")]
        assert stats["breaker"]["n_shed"] == 1

    def test_overload_pushbacks_trip_then_recovery_closes(self):
        """Backend overload counts toward the streak; the request held
        under backpressure is still served once the backend recovers, and
        that success closes the breaker again."""
        backend = _OverloadedBackend()

        async def run():
            gateway = AsyncGateway(
                backend,
                breaker_threshold=2,
                breaker_cooldown=60.0,
                retry_interval=0.001,
            )
            held = asyncio.ensure_future(gateway.submit(np.zeros((1, 3))))
            await asyncio.sleep(0.03)  # drain retries; streak >= threshold
            assert gateway.stats()["breaker"]["state"] == "open"
            with pytest.raises(CircuitOpenError):
                await gateway.submit(np.zeros((1, 3)))
            backend.healthy = True
            proba = await held  # backpressured request was never dropped
            stats = gateway.stats()
            await gateway.close()
            return proba, stats

        proba, stats = asyncio.run(run())
        assert proba.shape == (1, 2)
        assert stats["breaker"]["state"] == "closed"
        assert stats["breaker"]["n_opens"] == 1


class TestSwapAtomicity:
    def test_corrupt_challenger_rejected_fleet_keeps_old_version(
        self, artifacts, champion, toy, tmp_path
    ):
        """A corrupt challenger raises PersistenceError from the parent's
        up-front validation: no worker ever hears about it, every worker
        keeps serving the old version, and healing the artifact (the flip
        is an XOR) lets the same swap succeed."""
        X, _ = toy
        corrupt = str(tmp_path / "challenger.npz")
        shutil.copy(artifacts[1], corrupt)
        plan = FaultPlan(seed=0)
        plan.corrupt(corrupt)
        with WorkerPool(
            artifacts[0], n_workers=2, model_version="v1"
        ) as pool:
            with pytest.raises(PersistenceError):
                pool.swap_model(corrupt, version="v2")
            stats = pool.stats()
            assert stats["model_versions"] == {0: "v1", 1: "v1"}
            assert stats["n_swaps"] == 0  # rejected before the broadcast
            scored = pool.score(X[:8])
            assert scored.model_version == "v1"
            assert np.array_equal(
                scored.proba, champion.predict_proba(X[:8])
            )
            plan.corrupt(corrupt)  # XOR twice restores the artifact
            assert pool.swap_model(corrupt, version="v2") == "v2"
            assert pool.stats()["model_versions"] == {0: "v2", 1: "v2"}


class TestCloseEdgeCases:
    def test_close_with_inflight_requests_resolves_everything(
        self, artifacts, toy
    ):
        """Close never drops admitted work: the stop sentinel queues FIFO
        behind pending requests, so every in-flight future resolves."""
        X, _ = toy
        pool = WorkerPool(artifacts[0], n_workers=2)
        futures = [pool.submit(X[: 4 + i % 8]) for i in range(20)]
        pool.close()
        for i, future in enumerate(futures):
            assert future.result(timeout=30).shape == (4 + i % 8, 2)

    def test_double_close_is_idempotent(self, artifacts):
        pool = WorkerPool(artifacts[0], n_workers=1)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(np.zeros((1, 4)))
        pool.close()

    def test_context_exit_during_active_swap_never_hangs(
        self, artifacts, toy
    ):
        """Leaving the context while a wait=False swap is still in flight
        must drain cleanly: the broadcast and the stop sentinel are FIFO
        per worker, so the swap acks land before the workers stop and
        every submitted request resolves (stamped by whichever side of
        the flip served it)."""
        X, _ = toy
        with WorkerPool(
            artifacts[0], n_workers=2, model_version="v1"
        ) as pool:
            futures = [pool.submit_scored(X[:8]) for _ in range(10)]
            pool.swap_model(artifacts[1], version="v2", wait=False)
        for future in futures:
            scored = future.result(timeout=30)
            assert scored.proba.shape == (8, 2)
            assert scored.model_version in {"v1", "v2"}

    @pytest.mark.chaos
    def test_close_with_a_crashed_worker_fails_leftovers_typed(
        self, artifacts, toy
    ):
        """Closing a pool whose only worker crashed must not hang on the
        dead process, and every unanswered future fails typed."""
        X, _ = toy
        plan = FaultPlan([KillWorker(worker=0, after_requests=2)])
        pool = WorkerPool(
            artifacts[0],
            n_workers=1,
            chaos=plan,
            poll_interval=0.02,
            respawn_backoff=30.0,  # no respawn before close
            respawn_backoff_cap=30.0,
        )
        try:
            assert pool.submit(X[:4]).result(timeout=30).shape == (4, 2)
            doomed = pool.submit(X[:4])  # request #2 kills the worker
            stragglers = []
            try:
                stragglers.append(pool.submit(X[:4]))
            except WorkerCrashedError:
                pass  # supervisor already marked the fleet down: also typed
        finally:
            pool.close()
        for future in [doomed, *stragglers]:
            with pytest.raises(WorkerCrashedError):
                future.result(timeout=30)
