"""The registry round-trip matrix (satellite of the registry issue):
every persistable registered classifier must fit → save_model →
load_model → predict_proba identically, and serve identically through a
warm ModelServer load and a hot swap_model.

Bit-identity is asserted for every class except the kernel SVC, which
round-trips within 1 ULP: its RBF Gram matrix goes through BLAS GEMM,
whose results depend on the buffer placement of bit-identical inputs
(see DESIGN.md → "Model persistence").
"""

import numpy as np
import pytest

from repro.persistence import load_model, save_model
from repro.registry import (
    classifier_spec,
    get_classifier,
    list_classifiers,
    make_classifier,
    toy_imbalanced_split,
)
from repro.serving import ModelServer

PERSISTABLE = [n for n in list_classifiers() if classifier_spec(n).persistable]

#: BLAS-backed decision functions reproduce within 1 ULP, not bit-exactly.
ULP_TOLERANT = {"svm"}


def assert_matches(name, expected, actual):
    if name in ULP_TOLERANT:
        np.testing.assert_allclose(actual, expected, rtol=0, atol=1e-12)
    else:
        assert np.array_equal(actual, expected)


@pytest.fixture(scope="module")
def toy():
    return toy_imbalanced_split()


def fitted(name, toy):
    X, y = toy
    clf = make_classifier(name, **classifier_spec(name).smoke_params)
    if hasattr(clf, "random_state"):
        clf.random_state = 0
    return clf.fit(X, y)


class TestRoundTripMatrix:
    @pytest.mark.parametrize("name", PERSISTABLE)
    def test_save_load_predict_proba_identical(self, name, toy, tmp_path):
        X, _ = toy
        clf = fitted(name, toy)
        expected = clf.predict_proba(X)
        path = tmp_path / f"{name}.npz"
        save_model(clf, path)
        assert_matches(name, expected, load_model(path).predict_proba(X))

    @pytest.mark.parametrize("name", PERSISTABLE)
    def test_warm_server_load_identical(self, name, toy, tmp_path):
        """ModelServer(path) — artifact straight into the serving path,
        tree-backed models through the warm kernel, everything else
        through plain predict_proba — must score identically."""
        X, _ = toy
        clf = fitted(name, toy)
        expected = clf.predict_proba(X)
        path = tmp_path / f"{name}.npz"
        save_model(clf, path)
        server = ModelServer(path)
        try:
            assert_matches(name, expected, server.predict_proba(X))
        finally:
            server.close()

    @pytest.mark.parametrize("name", PERSISTABLE)
    def test_hot_swap_identical(self, name, toy, tmp_path):
        """swap_model accepts any registered model (tree-backed or not)
        and the swapped-in champion scores exactly like the original."""
        X, _ = toy
        clf = fitted(name, toy)
        expected = clf.predict_proba(X)
        baseline = fitted("tree", toy)
        server = ModelServer(baseline, model_version="v1")
        try:
            server.swap_model(clf, version="v2")
            assert server.model_version == "v2"
            assert_matches(name, expected, server.predict_proba(X))
        finally:
            server.close()


class TestFacadeAcceptance:
    """The issue's acceptance path: get_classifier("spe", base=...) for
    non-tree bases fits, persists, reloads, and serves through
    ModelServer.swap_model with bit-identical predict_proba."""

    @pytest.mark.parametrize(
        "base", ["logistic", "mlp", "knn", "gbdt", "linear_svm"]
    )
    def test_spe_with_any_base_full_loop(self, base, toy, tmp_path):
        X, _ = toy
        clf = get_classifier(
            "spe", base=base, n_estimators=3, k_bins=5, random_state=0
        ).fit(*toy)
        expected = clf.predict_proba(X)

        path = tmp_path / f"spe_{base}.npz"
        save_model(clf, path)
        loaded = load_model(path)
        assert loaded.get_params()["estimator"] == base
        assert np.array_equal(expected, loaded.predict_proba(X))

        server = ModelServer(path)
        try:
            assert np.array_equal(expected, server.predict_proba(X))
            challenger = get_classifier(
                "under_bagging", base=base, n_estimators=3, random_state=1
            ).fit(*toy)
            version = server.swap_model(challenger, version="challenger")
            assert version == "challenger"
            assert np.array_equal(
                challenger.predict_proba(X), server.predict_proba(X)
            )
        finally:
            server.close()

    def test_tree_backed_fastpath_still_bit_identical(self, toy, tmp_path):
        """Tree-backed configs keep the packed/code-table kernels exactly:
        a reloaded artifact served warm equals the live model bit for bit."""
        X, _ = toy
        clf = get_classifier(
            "spe", preset="fast", shared_binning=True, random_state=0
        ).fit(*toy)
        expected = clf.predict_proba(X)
        path = tmp_path / "spe_tree.npz"
        save_model(clf, path)
        server = ModelServer(path)
        try:
            assert np.array_equal(expected, server.predict_proba(X))
        finally:
            server.close()


class TestLifecycleAnyModel:
    def test_lifecycle_promotes_non_tree_challenger(self, tmp_path, toy):
        """The closed loop with a registered *name* as the retraining
        recipe: drift triggers a logistic challenger that is trained,
        shadow-scored, persisted, and hot-swapped into the server."""
        from repro.lifecycle import (
            ArtifactRegistry,
            LifecycleController,
            RetrainPolicy,
        )
        from repro.monitoring import DriftMonitor, ReferenceSketch

        from repro.datasets import make_checkerboard

        X, y = make_checkerboard(
            n_minority=150, n_majority=1500, random_state=0
        )
        rng = np.random.RandomState(3)

        champion = fitted("tree", (X, y))
        registry = ArtifactRegistry(tmp_path / "artifacts")
        server = ModelServer(champion, model_version="v1")
        monitor = DriftMonitor(
            ReferenceSketch().fit(X, y), window_size=800, min_window=200
        )
        controller = LifecycleController(
            server,
            registry,
            monitor,
            "logistic",  # registered name as the retraining recipe
            policy=RetrainPolicy(cooldown=0),
            min_lift=-np.inf,  # promote regardless of shadow margin
        )
        try:
            for _ in range(4):  # clean warm-up traffic
                idx = rng.choice(len(y), 200)
                controller.process(X[idx], y[idx])
            promoted = None
            for _ in range(20):  # covariate shift + tripled minority prior
                idx = rng.choice(len(y), 200)
                Xb, yb = X[idx] + 3.0, y[idx].copy()
                yb[rng.uniform(size=len(yb)) < 0.2] = 1
                event = controller.process(Xb, yb)
                if event.promoted:
                    promoted = event
                    break
            assert promoted is not None, "drift never promoted a challenger"
            assert server.model_version == promoted.promoted_version
            loaded = registry.load(promoted.promoted_version)
            assert type(loaded).__name__ == "LogisticRegression"
        finally:
            server.close()
