"""Tests for the experiment harness: runner, formatting, visualization."""

import numpy as np
import pytest

# Experiment-harness reproductions; excluded from the PR-gating `make test-fast`.
pytestmark = pytest.mark.slow

from repro.experiments import (
    MethodSpec,
    RecordingClassifier,
    ascii_heatmap,
    ascii_scatter,
    core_comparison_methods,
    ensemble_method,
    evaluate_combination,
    mean_std,
    org_method,
    prediction_grid,
    render_series,
    render_table,
    run_matrix,
    sampler_method,
    table2_classifiers,
    table4_dataset_plan,
    table5_classifiers,
    table5_methods,
    table6_methods,
)
from repro.core import SelfPacedEnsembleClassifier
from repro.sampling import RandomUnderSampler
from repro.tree import DecisionTreeClassifier


def _splits(imbalanced_data):
    X, y = imbalanced_data
    return X[:300], y[:300], X[300:], y[300:]


class TestFormatting:
    def test_mean_std_format(self):
        assert mean_std([0.5, 0.7]) == "0.600±0.100"

    def test_single_value(self):
        assert mean_std([0.5]) == "0.500"

    def test_empty(self):
        assert mean_std([]) == "-"

    def test_render_table_aligns(self):
        out = render_table(["A", "Method"], [["1", "x"], ["22", "yy"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(set(len(l) for l in lines[1:])) <= 2  # header + rows aligned

    def test_render_series(self):
        out = render_series("curve", [1, 2], [0.1, 0.9])
        assert "curve" in out and "0.900" in out


class TestMethodSpecs:
    def test_org(self):
        assert org_method().kind == "org"

    def test_sampler_factory_seeds(self):
        spec = sampler_method("RU", RandomUnderSampler)
        sampler = spec.factory(123)
        assert sampler.random_state == 123

    def test_ensemble_factory_wraps_base(self):
        spec = ensemble_method("SPE", SelfPacedEnsembleClassifier, n_estimators=3)
        model = spec.factory(DecisionTreeClassifier(max_depth=2), 5)
        assert model.n_estimators == 3 and model.random_state == 5

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            MethodSpec(name="x", kind="bogus")

    def test_missing_factory(self):
        with pytest.raises(ValueError):
            MethodSpec(name="x", kind="sampler")


class TestEvaluateCombination:
    def test_org_runs(self, imbalanced_data):
        X_tr, y_tr, X_te, y_te = _splits(imbalanced_data)
        run = evaluate_combination(
            org_method(),
            DecisionTreeClassifier(max_depth=3, random_state=0),
            X_tr, y_tr, X_te, y_te,
            n_runs=2,
        )
        assert len(run.metrics["AUCPRC"]) == 2
        assert run.n_training_samples == [300, 300]

    def test_sampler_records_time_and_size(self, imbalanced_data):
        X_tr, y_tr, X_te, y_te = _splits(imbalanced_data)
        run = evaluate_combination(
            sampler_method("RU", RandomUnderSampler),
            DecisionTreeClassifier(max_depth=3, random_state=0),
            X_tr, y_tr, X_te, y_te,
            n_runs=2,
        )
        n_min = int(y_tr.sum())
        assert run.n_training_samples == [2 * n_min] * 2
        assert all(t >= 0 for t in run.resample_seconds)

    def test_ensemble_uses_reported_samples(self, imbalanced_data):
        X_tr, y_tr, X_te, y_te = _splits(imbalanced_data)
        run = evaluate_combination(
            ensemble_method("SPE", SelfPacedEnsembleClassifier, n_estimators=4),
            DecisionTreeClassifier(max_depth=3, random_state=0),
            X_tr, y_tr, X_te, y_te,
            n_runs=1,
        )
        n_min = int(y_tr.sum())
        assert run.n_training_samples == [4 * 2 * n_min]

    def test_runs_differ_across_seeds(self, imbalanced_data):
        X_tr, y_tr, X_te, y_te = _splits(imbalanced_data)
        run = evaluate_combination(
            sampler_method("RU", RandomUnderSampler),
            DecisionTreeClassifier(max_depth=3, random_state=0),
            X_tr, y_tr, X_te, y_te,
            n_runs=3,
        )
        assert len(set(run.metrics["AUCPRC"])) > 1


class TestRunMatrix:
    def test_matrix_shape(self, imbalanced_data):
        X_tr, y_tr, X_te, y_te = _splits(imbalanced_data)
        methods = [org_method(), sampler_method("RU", RandomUnderSampler)]
        classifiers = {"DT": DecisionTreeClassifier(max_depth=3, random_state=0)}
        result = run_matrix(methods, classifiers, X_tr, y_tr, X_te, y_te, n_runs=1)
        assert len(result.runs) == 2
        assert result.get("DT", "ORG").method == "ORG"
        assert isinstance(result.mean("DT", "RU", "AUCPRC"), float)

    def test_render_contains_methods(self, imbalanced_data):
        X_tr, y_tr, X_te, y_te = _splits(imbalanced_data)
        result = run_matrix(
            [org_method()],
            {"DT": DecisionTreeClassifier(max_depth=2, random_state=0)},
            X_tr, y_tr, X_te, y_te,
            n_runs=1,
        )
        out = result.render("title")
        assert "ORG" in out and "AUCPRC" in out

    def test_missing_combination_raises(self, imbalanced_data):
        X_tr, y_tr, X_te, y_te = _splits(imbalanced_data)
        result = run_matrix(
            [org_method()],
            {"DT": DecisionTreeClassifier(max_depth=2, random_state=0)},
            X_tr, y_tr, X_te, y_te,
            n_runs=1,
        )
        with pytest.raises(KeyError):
            result.get("DT", "SPE")


class TestTableSpecs:
    def test_core_methods_names(self):
        names = [m.name for m in core_comparison_methods()]
        assert names == ["RandUnder", "Clean", "SMOTE", "Easy", "Cascade", "SPE"]

    def test_table2_has_eight_classifiers(self):
        assert len(table2_classifiers()) == 8

    def test_table4_plan_covers_five_datasets(self):
        assert len(table4_dataset_plan()) == 5

    def test_table5_has_15_methods(self):
        assert len(table5_methods()) == 15

    def test_table5_classifiers(self):
        assert set(table5_classifiers()) == {"LR", "KNN", "DT", "AdaBoost10", "GBDT10"}

    def test_table6_six_methods(self):
        assert len(table6_methods(10)) == 6


class TestVisualization:
    def test_prediction_grid_shape(self, imbalanced_data):
        X, y = imbalanced_data
        clf = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X[:, :2], y)
        xs, ys, grid = prediction_grid(clf, (-3, 3), (-3, 3), resolution=20)
        assert grid.shape == (20, 20)
        assert (grid >= 0).all() and (grid <= 1).all()

    def test_ascii_scatter_renders(self, imbalanced_data):
        X, y = imbalanced_data
        out = ascii_scatter(X[:, :2], y, width=30, height=10)
        assert "o" in out and "." in out
        assert len(out.splitlines()) == 10

    def test_ascii_scatter_needs_2d(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError):
            ascii_scatter(X, y)

    def test_ascii_heatmap(self):
        grid = np.array([[0.0, 1.0], [0.5, 0.25]])
        out = ascii_heatmap(grid)
        assert len(out.splitlines()) == 2

    def test_recording_classifier_logs(self, imbalanced_data):
        X, y = imbalanced_data
        RecordingClassifier.clear_log("test-key")
        rec = RecordingClassifier(
            DecisionTreeClassifier(max_depth=2, random_state=0), log_key="test-key"
        )
        rec.fit(X, y)
        log = RecordingClassifier.get_log("test-key")
        assert len(log) == 1 and log[0][0].shape == X.shape
        RecordingClassifier.clear_log("test-key")

    def test_recording_survives_clone(self, imbalanced_data):
        from repro.base import clone

        X, y = imbalanced_data
        RecordingClassifier.clear_log("clone-key")
        rec = RecordingClassifier(
            DecisionTreeClassifier(max_depth=2, random_state=0), log_key="clone-key"
        )
        clone(rec).fit(X, y)
        clone(rec).fit(X, y)
        assert len(RecordingClassifier.get_log("clone-key")) == 2
        RecordingClassifier.clear_log("clone-key")

    def test_recording_delegates_prediction(self, imbalanced_data):
        X, y = imbalanced_data
        rec = RecordingClassifier(
            DecisionTreeClassifier(max_depth=3, random_state=0), log_key="deleg"
        ).fit(X, y)
        assert rec.predict_proba(X).shape == (len(y), 2)
        RecordingClassifier.clear_log("deleg")
