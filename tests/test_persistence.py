"""Versioned model persistence: bit-identical round trips, hard rejection.

The acceptance criteria of the persistence issue:

* ``load_model(save_model(clf))`` predicts **bit-identically** to ``clf``
  for every ensemble class, with the fastpath on and off and across
  execution backends;
* corrupted artifacts and unknown schema versions are rejected with clear
  :class:`~repro.exceptions.PersistenceError`\\ s, never silently misread;
* label-decoded models ({-1, 1}, strings) round-trip including their
  ``classes_`` alphabet and minority mapping.
"""

import io
import json
import pathlib
import zipfile

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.ensemble.bagging import BaggingClassifier
from repro.ensemble.forest import RandomForestClassifier
from repro.exceptions import NotFittedError, PersistenceError
from repro.fastpath import fastpath_disabled
from repro.imbalance_ensemble import EasyEnsembleClassifier, UnderBaggingClassifier
from repro.persistence import SCHEMA_VERSION, load_model, save_model
from repro.persistence.format import MAGIC
from repro.streaming import StreamingSelfPacedEnsembleClassifier
from repro.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def data():
    X, y = make_checkerboard(n_minority=50, n_majority=500, random_state=0)
    X_test, _ = make_checkerboard(n_minority=50, n_majority=500, random_state=99)
    return X, y, X_test


def _builders():
    return {
        "spe": lambda: SelfPacedEnsembleClassifier(n_estimators=4, random_state=0),
        "spe_shared": lambda: SelfPacedEnsembleClassifier(
            n_estimators=4, shared_binning=True, random_state=0
        ),
        "streaming_spe": lambda: StreamingSelfPacedEnsembleClassifier(
            n_estimators=4, random_state=0
        ),
        "forest": lambda: RandomForestClassifier(n_estimators=4, random_state=0),
        "bagging": lambda: BaggingClassifier(n_estimators=4, random_state=0),
        "under_bagging": lambda: UnderBaggingClassifier(n_estimators=4, random_state=0),
        "easy_ensemble": lambda: EasyEnsembleClassifier(
            n_estimators=3, n_boost_rounds=3, random_state=0
        ),
    }


class TestRoundTripBitIdentity:
    @pytest.mark.parametrize("name", sorted(_builders()))
    @pytest.mark.parametrize("fastpath", [True, False], ids=["fastpath", "legacy"])
    def test_predict_proba_bit_identical(self, data, tmp_path, name, fastpath):
        X, y, X_test = data
        clf = _builders()[name]().fit(X, y)
        loaded = load_model(save_model(clf, tmp_path / f"{name}.npz"))
        if fastpath:
            ref, got = clf.predict_proba(X_test), loaded.predict_proba(X_test)
        else:
            with fastpath_disabled():
                ref, got = clf.predict_proba(X_test), loaded.predict_proba(X_test)
        assert np.array_equal(ref, got)
        assert np.array_equal(clf.predict(X_test), loaded.predict(X_test))
        assert np.array_equal(clf.classes_, loaded.classes_)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_score_loaded_model_identically(self, data, tmp_path, backend):
        """The loaded estimators survive worker dispatch (incl. pickling to
        process workers) and score exactly like the original."""
        X, y, X_test = data
        clf = SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y)
        loaded = load_model(save_model(clf, tmp_path / "m.npz"))
        loaded.backend = backend
        loaded.n_jobs = 2
        loaded.chunk_size = 64
        with fastpath_disabled():  # force the chunked backend path
            ref = clf.predict_proba(X_test)
            got = loaded.predict_proba(X_test)
        assert np.array_equal(ref, got)

    def test_shared_binning_context_round_trips(self, data, tmp_path):
        """A shared-binning ensemble reloads with ONE context instance
        shared by all members, so the code-table fastpath still compiles."""
        from repro.fastpath.codetable import cached_packed_ensemble
        from repro.persistence.state import common_shared_context

        X, y, _ = data
        clf = SelfPacedEnsembleClassifier(
            n_estimators=4, shared_binning=True, random_state=0
        ).fit(X, y)
        loaded = load_model(save_model(clf, tmp_path / "m.npz"))
        context = common_shared_context(loaded.estimators_)
        assert context is not None
        entry = cached_packed_ensemble(loaded.estimators_, np.array([0, 1]))
        assert entry is not None and entry[1] is not None  # table compiled
        ref_entry = cached_packed_ensemble(clf.estimators_, np.array([0, 1]))
        assert np.array_equal(entry[1].table, ref_entry[1].table)

    def test_fit_diagnostics_not_persisted(self, data, tmp_path):
        X, y, _ = data
        clf = SelfPacedEnsembleClassifier(
            n_estimators=3, record_bins=True, random_state=0
        ).fit(X, y)
        loaded = load_model(save_model(clf, tmp_path / "m.npz"))
        assert not hasattr(loaded, "bin_history_")
        assert loaded.n_training_samples_ == clf.n_training_samples_

    def test_single_member_tree_round_trips(self, data, tmp_path):
        X, y, X_test = data
        tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
        loaded = load_model(save_model(tree, tmp_path / "tree.npz"))
        assert np.array_equal(tree.predict_proba(X_test), loaded.predict_proba(X_test))


class TestLabelRoundTrips:
    def test_minus_one_plus_one_labels(self, data, tmp_path):
        X, y, X_test = data
        y_pm = np.where(y == 1, 1, -1)
        clf = SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y_pm)
        loaded = load_model(save_model(clf, tmp_path / "m.npz"))
        assert loaded.classes_.tolist() == [-1, 1]
        assert loaded.minority_class_ == 1 and loaded.majority_class_ == -1
        assert np.array_equal(clf.predict_proba(X_test), loaded.predict_proba(X_test))
        assert set(np.unique(loaded.predict(X_test))) <= {-1, 1}

    def test_string_labels(self, data, tmp_path):
        X, y, X_test = data
        y_str = np.where(y == 1, "fraud", "ok")
        clf = SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y_str)
        loaded = load_model(save_model(clf, tmp_path / "m.npz"))
        assert loaded.classes_.tolist() == ["fraud", "ok"]
        assert loaded.minority_class_ == "fraud"
        pred = loaded.predict(X_test)
        assert set(np.unique(pred)) <= {"fraud", "ok"}
        assert np.array_equal(clf.predict(X_test), pred)
        assert np.array_equal(clf.predict_proba(X_test), loaded.predict_proba(X_test))


def _rewrite_artifact(path: pathlib.Path, mutate_header=None, mutate_arrays=None):
    """Re-write an artifact with the header and/or arrays mutated."""
    with np.load(path, allow_pickle=False) as data:
        payload = {k: data[k] for k in data.files}
    header = json.loads(bytes(bytearray(payload.pop("__header__"))).decode())
    if mutate_header is not None:
        mutate_header(header)
    if mutate_arrays is not None:
        mutate_arrays(payload)
    payload["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    path.write_bytes(buffer.getvalue())


class TestArtifactRejection:
    @pytest.fixture
    def artifact(self, data, tmp_path):
        X, y, _ = data
        clf = SelfPacedEnsembleClassifier(n_estimators=3, random_state=0).fit(X, y)
        path = tmp_path / "m.npz"
        save_model(clf, path)
        return path

    def test_newer_schema_rejected(self, artifact):
        _rewrite_artifact(
            artifact, mutate_header=lambda h: h.update(schema_version=SCHEMA_VERSION + 1)
        )
        with pytest.raises(PersistenceError, match="schema version"):
            load_model(artifact)

    def test_zero_schema_rejected(self, artifact):
        _rewrite_artifact(artifact, mutate_header=lambda h: h.update(schema_version=0))
        with pytest.raises(PersistenceError, match="schema version"):
            load_model(artifact)

    def test_wrong_magic_rejected(self, artifact):
        _rewrite_artifact(artifact, mutate_header=lambda h: h.update(format="other"))
        with pytest.raises(PersistenceError, match=MAGIC):
            load_model(artifact)

    def test_bit_flip_rejected_by_checksum(self, artifact):
        def corrupt(payload):
            key = sorted(k for k in payload if k.startswith("a"))[0]
            arr = payload[key].copy().reshape(-1)
            arr[0] = arr[0] + 1 if arr.dtype.kind in "iu" else arr[0] + 0.5
            payload[key] = arr.reshape(payload[key].shape)

        _rewrite_artifact(artifact, mutate_arrays=corrupt)
        with pytest.raises(PersistenceError, match="checksum"):
            load_model(artifact)

    def test_missing_array_rejected(self, artifact):
        def drop(payload):
            del payload[sorted(k for k in payload if k.startswith("a"))[0]]

        _rewrite_artifact(artifact, mutate_arrays=drop)
        with pytest.raises(PersistenceError, match="missing"):
            load_model(artifact)

    def test_unverified_array_reference_rejected(self, artifact):
        """A header whose root references a key absent from the checksum
        table must raise PersistenceError, not a raw KeyError."""

        def drop_checksum(header):
            key = sorted(header["checksums"])[0]
            del header["checksums"][key]

        _rewrite_artifact(artifact, mutate_header=drop_checksum)
        with pytest.raises(PersistenceError, match="unverified"):
            load_model(artifact)

    def test_headerless_root_rejected(self, artifact):
        _rewrite_artifact(artifact, mutate_header=lambda h: h.pop("root"))
        with pytest.raises(PersistenceError, match="root"):
            load_model(artifact)

    def test_not_an_artifact_rejected(self, tmp_path):
        junk = tmp_path / "junk.npz"
        junk.write_bytes(b"definitely not a zip file")
        with pytest.raises(PersistenceError):
            load_model(junk)
        plain = tmp_path / "plain.npz"
        np.savez(open(plain, "wb"), a=np.arange(3))
        with pytest.raises(PersistenceError, match="header"):
            load_model(plain)

    def test_artifact_contains_no_pickles(self, artifact):
        """Every archive member must be a plain .npy payload readable with
        allow_pickle=False (the loader never unpickles)."""
        with zipfile.ZipFile(artifact) as zf:
            names = zf.namelist()
        assert names
        with np.load(artifact, allow_pickle=False) as data:
            for name in data.files:
                data[name]  # raises if any member needed pickle

    def test_unfitted_model_rejected(self):
        with pytest.raises(NotFittedError):
            save_model(SelfPacedEnsembleClassifier(), "/tmp/never-written.npz")

    def test_callable_hyper_parameter_rejected(self, data, tmp_path):
        X, y, _ = data
        clf = SelfPacedEnsembleClassifier(
            n_estimators=3, hardness=lambda y, p: np.abs(y - p), random_state=0
        ).fit(X, y)
        with pytest.raises(PersistenceError, match="not serialisable"):
            save_model(clf, tmp_path / "m.npz")


class TestParamRoundTrip:
    def test_nested_estimator_params_survive(self, data, tmp_path):
        X, y, _ = data
        clf = UnderBaggingClassifier(
            estimator=DecisionTreeClassifier(max_depth=3, max_bins=16),
            n_estimators=3,
            random_state=0,
        ).fit(X, y)
        loaded = load_model(save_model(clf, tmp_path / "m.npz"))
        assert isinstance(loaded.estimator, DecisionTreeClassifier)
        assert loaded.estimator.max_depth == 3
        assert loaded.estimator.max_bins == 16
        assert loaded.n_estimators == 3

    def test_random_state_dropped_not_fatal(self, data, tmp_path):
        X, y, _ = data
        rng = np.random.RandomState(0)
        clf = BaggingClassifier(n_estimators=3, random_state=rng).fit(X, y)
        loaded = load_model(save_model(clf, tmp_path / "m.npz"))
        assert loaded.random_state is None  # live RNG cannot round-trip
