"""Tests for SMOTE-family over-samplers and hybrid methods."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NotEnoughSamplesError
from repro.sampling import (
    ADASYN,
    SMOTE,
    SMOTEENN,
    SMOTETomek,
    BorderlineSMOTE,
)
from repro.sampling.smote import smote_interpolate


def _data(n_maj=200, n_min=25, seed=0):
    rng = np.random.RandomState(seed)
    X = np.vstack([rng.randn(n_maj, 2), rng.randn(n_min, 2) * 0.5 + 3.0])
    y = np.concatenate([np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)])
    return X, y


def _on_segment(p, a_set):
    """True if p lies on a segment between some pair of points in a_set."""
    for i in range(len(a_set)):
        for j in range(len(a_set)):
            if i == j:
                continue
            d = a_set[j] - a_set[i]
            denom = d @ d
            if denom == 0:
                continue
            t = (p - a_set[i]) @ d / denom
            if -1e-9 <= t <= 1 + 1e-9:
                if np.linalg.norm(a_set[i] + t * d - p) < 1e-8:
                    return True
    return False


class TestSmoteInterpolate:
    def test_count(self, rng):
        pool = rng.randn(20, 3)
        out = smote_interpolate(pool, pool, 15, 5, rng)
        assert out.shape == (15, 3)

    def test_zero_requested(self, rng):
        pool = rng.randn(5, 2)
        assert smote_interpolate(pool, pool, 0, 3, rng).shape == (0, 2)

    def test_needs_two_points(self, rng):
        with pytest.raises(NotEnoughSamplesError):
            smote_interpolate(rng.randn(1, 2), rng.randn(1, 2), 3, 5, rng)

    def test_synthetics_in_convex_hull_bbox(self, rng):
        pool = rng.randn(30, 2)
        out = smote_interpolate(pool, pool, 50, 5, rng)
        assert (out.min(axis=0) >= pool.min(axis=0) - 1e-9).all()
        assert (out.max(axis=0) <= pool.max(axis=0) + 1e-9).all()


class TestSMOTE:
    def test_balanced_output(self):
        X, y = _data()
        _, yr = SMOTE(random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == (yr == 1).sum() == 200

    def test_originals_retained(self):
        X, y = _data()
        Xr, yr = SMOTE(random_state=0).fit_resample(X, y)
        original = {tuple(row) for row in X}
        kept = sum(tuple(row) in original for row in Xr)
        assert kept == len(X)

    def test_synthetics_on_minority_segments(self):
        X, y = _data(n_maj=30, n_min=6)
        Xr, yr = SMOTE(k_neighbors=3, random_state=0).fit_resample(X, y)
        X_min = X[y == 1]
        original = {tuple(row) for row in X}
        synthetics = [row for row in Xr[yr == 1] if tuple(row) not in original]
        assert synthetics, "expected synthetic samples"
        for p in synthetics:
            assert _on_segment(p, X_min)

    def test_deterministic(self):
        X, y = _data()
        a = SMOTE(random_state=1).fit_resample(X, y)[0]
        b = SMOTE(random_state=1).fit_resample(X, y)[0]
        assert np.allclose(np.sort(a, axis=0), np.sort(b, axis=0))

    def test_invalid_ratio(self):
        X, y = _data()
        with pytest.raises(ValueError):
            SMOTE(ratio=-1).fit_resample(X, y)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=5, max_value=30))
    def test_balance_property(self, n_min):
        X, y = _data(100, n_min)
        _, yr = SMOTE(random_state=0).fit_resample(X, y)
        assert (yr == 1).sum() == (yr == 0).sum()


class TestBorderlineSMOTE:
    def test_balanced_output(self):
        X, y = _data()
        _, yr = BorderlineSMOTE(random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == (yr == 1).sum()

    def test_danger_mask_identifies_border(self):
        rng = np.random.RandomState(0)
        safe = rng.randn(20, 2) * 0.2 + np.array([5.0, 5.0])
        border = rng.randn(20, 2) * 0.2  # inside the majority mass
        maj = rng.randn(200, 2)
        X = np.vstack([maj, safe, border])
        y = np.concatenate([np.zeros(200, int), np.ones(40, int)])
        sampler = BorderlineSMOTE()
        danger = sampler.danger_mask(X, y)
        assert danger[20:].mean() > danger[:20].mean()


class TestADASYN:
    def test_roughly_balanced(self):
        X, y = _data()
        _, yr = ADASYN(random_state=0).fit_resample(X, y)
        assert abs(int((yr == 1).sum()) - int((yr == 0).sum())) <= 5

    def test_hard_samples_get_more_synthetics(self):
        rng = np.random.RandomState(0)
        easy = rng.randn(10, 2) * 0.1 + np.array([8.0, 8.0])
        hard = rng.randn(10, 2) * 0.1  # swamped by majority
        maj = rng.randn(300, 2)
        X = np.vstack([maj, easy, hard])
        y = np.concatenate([np.zeros(300, int), np.ones(20, int)])
        Xr, yr = ADASYN(random_state=0).fit_resample(X, y)
        synthetics = Xr[len(X):]
        near_hard = (np.linalg.norm(synthetics, axis=1) < 4).sum()
        near_easy = (np.linalg.norm(synthetics - 8.0, axis=1) < 4).sum()
        assert near_hard > near_easy

    def test_already_balanced_noop(self):
        X, y = _data(50, 50)
        Xr, yr = ADASYN(random_state=0).fit_resample(X, y)
        assert len(yr) == 100


class TestHybrid:
    def test_smoteenn_cleans(self):
        X, y = _data()
        _, y_smote = SMOTE(random_state=0).fit_resample(X, y)
        _, y_hybrid = SMOTEENN(random_state=0).fit_resample(X, y)
        assert len(y_hybrid) <= len(y_smote)

    def test_smoteenn_keeps_both_classes(self):
        X, y = _data()
        _, yr = SMOTEENN(random_state=0).fit_resample(X, y)
        assert (yr == 0).any() and (yr == 1).any()

    def test_smotetomek_cleans(self):
        X, y = _data()
        _, y_smote = SMOTE(random_state=0).fit_resample(X, y)
        _, y_hybrid = SMOTETomek(random_state=0).fit_resample(X, y)
        assert len(y_hybrid) <= len(y_smote)

    def test_smotetomek_near_balanced(self):
        X, y = _data()
        _, yr = SMOTETomek(random_state=0).fit_resample(X, y)
        assert abs(int((yr == 0).sum()) - int((yr == 1).sum())) < 30
