"""Lifecycle subsystem: registry, policy, shadow promotion, closed loop.

Pins the acceptance criteria of the monitoring/lifecycle issue: versioned
artifacts with integrity checks, drift-evidence → action mapping with
quorum and cooldown, promote-only-on-metric-win, and the end-to-end
detect → retrain (``fit_source``) → shadow → ``swap_model`` loop with
zero dropped requests and both versions visible in ``stats()``.
"""

import pathlib
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.datasets import make_checkerboard
from repro.exceptions import PersistenceError, RegistryError
from repro.lifecycle import (
    Action,
    ArtifactRegistry,
    LifecycleController,
    RetrainPolicy,
    shadow_evaluate,
)
from repro.monitoring import DriftLevel, DriftMonitor, DriftReport, ReferenceSketch
from repro.serving import ModelServer
from repro.streaming import ArraySource, StreamingSelfPacedEnsembleClassifier
from repro.tree import DecisionTreeClassifier

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def report(level, detector="t"):
    return DriftReport(
        detector=detector, level=level, statistic=1.0,
        warn_threshold=0.5, alarm_threshold=2.0,
    )


@pytest.fixture(scope="module")
def data():
    return make_checkerboard(n_minority=200, n_majority=2000, random_state=0)


@pytest.fixture(scope="module")
def fitted(data):
    X, y = data
    return StreamingSelfPacedEnsembleClassifier(
        n_estimators=5, random_state=0
    ).fit_source(ArraySource(X, y))


class TestArtifactRegistry:
    def test_register_load_roundtrip_bit_identical(self, fitted, data, tmp_path):
        X, _ = data
        registry = ArtifactRegistry(tmp_path / "reg")
        version = registry.register(fitted, metrics={"auprc": 0.9})
        assert version == "v0001"
        loaded = registry.load(version)
        assert np.array_equal(loaded.predict_proba(X), fitted.predict_proba(X))
        assert registry.describe(version)["metrics"]["auprc"] == 0.9

    def test_monotonic_versions_and_latest(self, fitted, tmp_path):
        registry = ArtifactRegistry(tmp_path / "reg")
        v1, v2, v3 = (registry.register(fitted) for _ in range(3))
        assert [v1, v2, v3] == ["v0001", "v0002", "v0003"]
        assert registry.latest == "v0003"
        assert registry.versions() == [v1, v2, v3]
        assert len(registry) == 3 and v2 in registry

    def test_champion_pointer_persists_across_instances(self, fitted, tmp_path):
        root = tmp_path / "reg"
        registry = ArtifactRegistry(root)
        v1 = registry.register(fitted)
        registry.register(fitted)
        registry.set_champion(v1)
        reopened = ArtifactRegistry(root)
        assert reopened.champion == v1
        assert reopened.versions() == registry.versions()
        # ids stay monotonic after reopen — v0002 is never reused
        assert reopened.register(fitted) == "v0003"

    def test_load_without_champion_raises(self, tmp_path):
        with pytest.raises(RegistryError):
            ArtifactRegistry(tmp_path / "reg").load()

    def test_unknown_version_raises(self, fitted, tmp_path):
        registry = ArtifactRegistry(tmp_path / "reg")
        registry.register(fitted)
        with pytest.raises(RegistryError):
            registry.load("v9999")
        with pytest.raises(RegistryError):
            registry.set_champion("v9999")

    def test_tampered_artifact_detected(self, fitted, tmp_path):
        registry = ArtifactRegistry(tmp_path / "reg")
        version = registry.register(fitted)
        path = pathlib.Path(registry.path(version))
        path.write_bytes(path.read_bytes()[:-7] + b"garbage")
        with pytest.raises(RegistryError):
            registry.load(version)

    def test_missing_artifact_file_detected(self, fitted, tmp_path):
        registry = ArtifactRegistry(tmp_path / "reg")
        version = registry.register(fitted)
        pathlib.Path(registry.path(version)).unlink()
        with pytest.raises(RegistryError):
            registry.load(version)

    def test_unregisterable_model_leaves_no_trace(self, tmp_path):
        registry = ArtifactRegistry(tmp_path / "reg")
        with pytest.raises((PersistenceError, Exception)):
            registry.register(object())
        assert registry.versions() == []

    def test_corrupted_manifest_raises(self, fitted, tmp_path):
        root = tmp_path / "reg"
        ArtifactRegistry(root).register(fitted)
        (root / "manifest.json").write_text("{not json")
        with pytest.raises(RegistryError):
            ArtifactRegistry(root)


class TestRetrainPolicy:
    def test_alarm_triggers_retrain_now(self):
        policy = RetrainPolicy(cooldown=0)
        assert policy.decide([report(DriftLevel.ALARM)]) is Action.RETRAIN_NOW

    def test_warn_quorum(self):
        policy = RetrainPolicy(warn_quorum=2, cooldown=0)
        assert policy.decide([report(DriftLevel.WARN)]) is Action.NONE
        assert (
            policy.decide([report(DriftLevel.WARN, "a"), report(DriftLevel.WARN, "b")])
            is Action.WARM_CHALLENGER
        )

    def test_ok_reports_do_nothing(self):
        policy = RetrainPolicy()
        assert policy.decide([report(DriftLevel.OK)] * 5) is Action.NONE

    def test_cooldown_suppresses_followup(self):
        policy = RetrainPolicy(cooldown=2)
        alarm = [report(DriftLevel.ALARM)]
        assert policy.decide(alarm) is Action.RETRAIN_NOW
        assert policy.decide(alarm) is Action.NONE
        assert policy.decide(alarm) is Action.NONE
        assert policy.decide(alarm) is Action.RETRAIN_NOW
        policy.reset()
        assert policy.decide(alarm) is Action.RETRAIN_NOW


class TestShadowEvaluate:
    def _models(self, data, good_state=0):
        X, y = data
        good = StreamingSelfPacedEnsembleClassifier(
            n_estimators=8, random_state=good_state
        ).fit_source(ArraySource(X, y))
        weak = StreamingSelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=1, random_state=0),
            n_estimators=1,
            random_state=7,
        ).fit_source(ArraySource(X, y))
        return good, weak

    def test_better_challenger_promotes(self, data):
        X, y = data
        good, weak = self._models(data)
        result = shadow_evaluate(weak, good, X, y)
        assert result.promote and result.lift > 0
        assert result.n_rows == len(y)

    def test_worse_challenger_rejected(self, data):
        X, y = data
        good, weak = self._models(data)
        assert not shadow_evaluate(good, weak, X, y).promote

    def test_min_lift_blocks_marginal_win(self, data):
        X, y = data
        good, weak = self._models(data)
        result = shadow_evaluate(weak, good, X, y, min_lift=2.0)
        assert not result.promote  # metric lift can never exceed 2.0

    def test_single_class_window_never_promotes(self, data):
        X, y = data
        good, weak = self._models(data)
        X_maj, y_maj = X[y == 0][:50], np.zeros(50, dtype=int)
        result = shadow_evaluate(weak, good, X_maj, y_maj)
        assert not result.promote
        assert np.isnan(result.challenger_score)

    def test_unknown_metric_rejected(self, data):
        X, y = data
        good, weak = self._models(data)
        with pytest.raises(ValueError):
            shadow_evaluate(good, weak, X, y, metric="accuracy")

    def test_thresholded_metrics_supported(self, data):
        X, y = data
        good, weak = self._models(data)
        for metric in ("f1", "minority_recall"):
            result = shadow_evaluate(weak, good, X, y, metric=metric)
            assert result.metric == metric
            assert 0.0 <= result.challenger_score <= 1.0


def _drifted(X, y, rng, n):
    """Covariate shift + tripled minority prior on a seeded sample."""
    idx = rng.choice(len(y), n)
    Xb = X[idx] + 3.0
    yb = y[idx].copy()
    flip = rng.uniform(size=n) < 0.2
    yb[flip] = 1
    return Xb, yb


class TestEndToEndLifecycle:
    """The issue's acceptance scenario, plus the zero-blocking guarantee."""

    def _build(self, data, tmp_path, window=1200):
        X, y = data
        champion = StreamingSelfPacedEnsembleClassifier(
            n_estimators=6, random_state=0
        ).fit_source(ArraySource(X, y))
        registry = ArtifactRegistry(tmp_path / "registry")
        v1 = registry.register(champion, tags={"phase": "bootstrap"})
        registry.set_champion(v1)
        server = ModelServer(registry.load(v1), model_version=v1)
        monitor = DriftMonitor(
            ReferenceSketch(n_bins=12).fit(X, y),
            window_size=window,
            min_window=400,
        )
        controller = LifecycleController(
            server,
            registry,
            monitor,
            train_fn=lambda src: StreamingSelfPacedEnsembleClassifier(
                n_estimators=6, random_state=1
            ).fit_source(src),
            policy=RetrainPolicy(warn_quorum=2, cooldown=2),
        )
        return controller

    def test_control_stream_stays_quiet(self, data, tmp_path):
        X, y = data
        rng = np.random.RandomState(5)
        controller = self._build(data, tmp_path)
        for _ in range(15):
            idx = rng.choice(len(y), 100)
            controller.process(X[idx], y[idx])
        assert all(e.action is Action.NONE for e in controller.events)
        assert not any(e.promoted for e in controller.events)
        assert controller.registry.versions() == ["v0001"]
        controller.server.close()

    def test_drift_detect_retrain_promote_with_zero_blocking(self, data, tmp_path):
        X, y = data
        rng = np.random.RandomState(6)
        controller = self._build(data, tmp_path)
        server = controller.server

        # background traffic hammers the server through the whole
        # lifecycle — the swap must not fail or block a single request
        stop = threading.Event()
        failures = []
        served = [0]

        def hammer():
            rows = X[:8]
            while not stop.is_set():
                try:
                    proba = server.predict_proba(rows)
                    assert proba.shape == (8, 2)
                    served[0] += 1
                except BaseException as exc:  # any failure is a bug
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        try:
            # warm-up on clean traffic, then inject covariate + prior drift
            for _ in range(6):
                idx = rng.choice(len(y), 100)
                controller.process(X[idx], y[idx])
            promoted_event = None
            for _ in range(25):
                Xb, yb = _drifted(X, y, rng, 100)
                event = controller.process(Xb, yb)
                if event.promoted:
                    promoted_event = event
                    break
        finally:
            stop.set()
            for t in threads:
                t.join()

        assert promoted_event is not None, "drift did not trigger a promotion"
        # detector alarmed and the policy escalated
        assert promoted_event.action in (Action.WARM_CHALLENGER, Action.RETRAIN_NOW)
        assert any(
            r.level is DriftLevel.ALARM for r in promoted_event.reports
        )
        # challenger beat the champion on the shadow window
        shadow = promoted_event.shadow
        assert shadow.promote
        assert shadow.challenger_score > shadow.champion_score or np.isnan(
            shadow.champion_score
        )
        # registry persisted and blessed the challenger
        registry = controller.registry
        assert promoted_event.promoted_version in registry.versions()
        assert registry.champion == promoted_event.promoted_version
        # hot swap: zero failed/blocked requests, concurrent traffic served
        assert failures == []
        assert served[0] > 0
        stats = server.stats()
        assert stats["n_overflows"] == 0
        assert stats["n_swaps"] == 1
        assert stats["model_version"] == promoted_event.promoted_version
        # old and new versions both visible in the served-traffic counters
        server.predict_proba(X[:4])  # ensure >=1 request on the new version
        stats = server.stats()
        assert set(stats["requests_by_version"]) >= {
            "v0001",
            promoted_event.promoted_version,
        }
        server.close()

    def test_swapped_server_serves_the_promoted_model(self, data, tmp_path):
        X, y = data
        rng = np.random.RandomState(7)
        controller = self._build(data, tmp_path)
        for _ in range(6):
            idx = rng.choice(len(y), 100)
            controller.process(X[idx], y[idx])
        event = None
        for _ in range(25):
            Xb, yb = _drifted(X, y, rng, 100)
            event = controller.process(Xb, yb)
            if event.promoted:
                break
        assert event is not None and event.promoted
        registered = controller.registry.load(event.promoted_version)
        scored = controller.server.score(X[:16])
        assert scored.model_version == event.promoted_version
        assert np.array_equal(scored.proba, registered.predict_proba(X[:16]))
        controller.server.close()

    def test_single_class_window_skips_retrain(self, data, tmp_path):
        X, y = data
        controller = self._build(data, tmp_path, window=600)
        X_maj = X[y == 0]
        # all-majority drifted traffic: feature detector will alarm, but
        # no challenger can be trained without minority rows
        for lo in range(0, 600, 100):
            controller.process(
                X_maj[lo : lo + 100] + 4.0, np.zeros(100, dtype=int)
            )
        actions = {e.action for e in controller.events}
        assert Action.RETRAIN_NOW in actions
        assert not any(e.promoted for e in controller.events)
        controller.server.close()


@pytest.mark.slow
class TestShowcaseExample:
    def test_fraud_drift_lifecycle_example_runs(self, tmp_path):
        """The showcase scenario cannot silently rot: run it (fast
        settings) and assert the detect → retrain → promote arc."""
        sys.path.insert(0, str(REPO_ROOT / "examples"))
        try:
            import fraud_drift_lifecycle
        finally:
            sys.path.pop(0)
        outcome = fraud_drift_lifecycle.main(
            n_samples=6000, n_estimators=4, registry_dir=str(tmp_path / "reg")
        )
        assert not outcome["promoted_in_control"]
        assert outcome["promoted_in_drift"]
        assert outcome["champion"] != "v0001"
        assert outcome["stats"]["n_overflows"] == 0
        assert outcome["stats"]["n_swaps"] >= 1

    def test_example_runs_as_script(self):
        """`python examples/fraud_drift_lifecycle.py N` exits cleanly."""
        result = subprocess.run(
            [sys.executable, "examples/fraud_drift_lifecycle.py", "4000"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        assert "hot-swapped" in result.stdout


class TestNonDefaultAlphabetLifecycle:
    def test_pm_one_labels_full_loop(self, data, tmp_path):
        """A {-1, 1} deployment monitors, retrains, and promotes without
        the {0, 1} assumption corrupting the error stream; the promoted
        challenger keeps the champion's classes_."""
        X, y = data
        y_pm = np.where(y == 1, 1, -1)
        rng = np.random.RandomState(8)
        train = lambda src: StreamingSelfPacedEnsembleClassifier(
            n_estimators=5, random_state=1
        ).fit_source(src)
        champion = train(ArraySource(X, y_pm))
        assert list(champion.classes_) == [-1, 1]
        registry = ArtifactRegistry(tmp_path / "reg")
        v1 = registry.register(champion)
        registry.set_champion(v1)
        server = ModelServer(registry.load(v1), model_version=v1)
        monitor = DriftMonitor(
            ReferenceSketch(n_bins=10).fit(X, y_pm, positive_label=1),
            window_size=1000,
            min_window=300,
        )
        controller = LifecycleController(
            server, registry, monitor, train,
            policy=RetrainPolicy(warn_quorum=2, cooldown=2),
        )
        # healthy traffic: quiet
        for _ in range(8):
            idx = rng.choice(len(y), 100)
            controller.process(X[idx], y_pm[idx])
        assert all(e.action is Action.NONE for e in controller.events)
        # drifted traffic: covariate shift + prior surge in {-1, 1} space
        promoted = None
        for _ in range(25):
            idx = rng.choice(len(y), 100)
            yb = y_pm[idx].copy()
            yb[rng.uniform(size=100) < 0.2] = 1
            event = controller.process(X[idx] + 3.0, yb)
            if event.promoted:
                promoted = event
                break
        assert promoted is not None
        challenger = registry.load(promoted.promoted_version)
        assert list(challenger.classes_) == [-1, 1]  # alphabet preserved
        assert set(np.unique(server.predict(X[:32]))) <= {-1, 1}
        server.close()


class TestRegistryOrderingScale:
    def test_versions_order_past_padding_overflow(self, fitted, tmp_path):
        registry = ArtifactRegistry(tmp_path / "reg")
        registry.register(fitted)
        registry._manifest["next_id"] = 9999  # jump near the pad limit
        v_9999 = registry.register(fitted)
        v_10000 = registry.register(fitted)
        assert (v_9999, v_10000) == ("v9999", "v10000")
        assert registry.versions() == ["v0001", "v9999", "v10000"]
        assert registry.latest == "v10000"
