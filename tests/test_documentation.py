"""Documentation-rot protection: README snippets must execute as written."""

import re
import pathlib

import numpy as np
import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestReadmeSnippets:
    def test_quickstart_block_runs(self):
        """Execute the first python code block of README.md verbatim."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        # The quickstart defines a fitted SPE and prints its scores.
        assert "spe" in namespace

    def test_pick_any_model_block_runs(self):
        """Execute the README's registry example verbatim: get_classifier
        composes an ensemble with a named base and preset, and the string
        spelling matches the explicit estimator= spelling exactly."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        registry_blocks = [
            b for b in blocks if "get_classifier" in b and "list_classifiers" in b
        ]
        assert registry_blocks, "README must contain a pick-any-model block"
        namespace = {}
        exec(compile(registry_blocks[0], "<README registry>", "exec"), namespace)
        assert "clf" in namespace
        assert namespace["clf"].get_params()["estimator"] == "logistic"

    def test_save_load_serve_block_runs(self):
        """Execute the README's persistence/serving example verbatim: save
        a model, reload it bit-identically, and serve through ModelServer."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        serve_blocks = [b for b in blocks if "save_model" in b and "ModelServer" in b]
        assert serve_blocks, "README must contain a save -> load -> serve block"
        namespace = {}
        exec(compile(serve_blocks[0], "<README serving>", "exec"), namespace)
        assert "server" in namespace and "labels" in namespace

    def test_serve_at_scale_block_runs(self):
        """Execute the README's multi-process serving example verbatim: the
        serve() facade forks a WorkerPool over one mmap'd artifact, scores
        through it, and hot-swaps the whole fleet to a new version."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        scale_blocks = [b for b in blocks if "ServerConfig" in b and "swap_model" in b]
        assert scale_blocks, "README must contain a serve-it-at-scale block"
        namespace = {}
        exec(compile(scale_blocks[0], "<README serve-at-scale>", "exec"), namespace)
        assert "pool" in namespace and "versions" in namespace
        assert namespace["versions"] == {"v2"}

    def test_when_things_break_block_runs(self):
        """Execute the README's fault-tolerance example verbatim: a pool
        worker is SIGKILLed, the supervisor respawns it, the crash is
        accounted in stats, and a deadline-bounded request still scores
        through the healed fleet."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        break_blocks = [
            b for b in blocks if "wait_healthy" in b and "worker_pids" in b
        ]
        assert break_blocks, "README must contain a when-things-break block"
        namespace = {}
        exec(
            compile(break_blocks[0], "<README when-things-break>", "exec"),
            namespace,
        )
        assert namespace["stats"]["n_respawns"] >= 1
        assert namespace["proba"].shape == (8, 2)

    def test_keep_it_fresh_block_runs(self):
        """Execute the README's monitoring/lifecycle example verbatim: a
        registered champion is served, drifted traffic is monitored, and
        the server exposes its stats."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        fresh_blocks = [
            b for b in blocks if "LifecycleController" in b and "DriftMonitor" in b
        ]
        assert fresh_blocks, "README must contain a keep-it-fresh block"
        namespace = {}
        exec(compile(fresh_blocks[0], "<README keep-it-fresh>", "exec"), namespace)
        assert "controller" in namespace and "stats" in namespace
        assert namespace["stats"]["n_requests"] >= 2

    def test_watch_it_run_block_runs(self):
        """Execute the README's telemetry example verbatim: traced traffic
        through a ModelServer lands in the process registry, the trace sink
        retains the stitched spans, and both exposition formats read back."""
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        telemetry_blocks = [
            b for b in blocks if "render_prometheus" in b and "snapshot" in b
        ]
        assert telemetry_blocks, "README must contain a watch-it-run block"
        namespace = {}
        exec(
            compile(telemetry_blocks[0], "<README watch-it-run>", "exec"),
            namespace,
        )
        assert "repro_server_requests_total" in namespace["text"]
        assert namespace["served"] >= 1.0
        span_names = {s.name for s in namespace["spans"]}
        assert {"request", "server.kernel_eval"} <= span_names

    def test_readme_mentions_all_deliverable_paths(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for path in ("DESIGN.md", "EXPERIMENTS.md", "benchmarks/", "examples/"):
            assert path in readme

    def test_design_doc_maps_every_bench(self):
        """Every bench file must be referenced by DESIGN.md's experiment
        index (tables/figures) or its ablation section."""
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for bench in sorted((REPO_ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in design, f"{bench.name} missing from DESIGN.md"

    def test_examples_exist_and_have_docstrings(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        for script in examples:
            text = script.read_text()
            assert text.lstrip().startswith('"""'), f"{script.name} needs a docstring"
            assert "__main__" in text, f"{script.name} must be runnable"

    def test_lint_block_runs(self, monkeypatch):
        """Execute the README's repro-lint example verbatim: lint_text
        flags the unseeded np.random call at the documented line. The
        block inserts "tools" into sys.path relative to the repo root,
        so run it from there."""
        monkeypatch.chdir(REPO_ROOT)
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)
        lint_blocks = [b for b in blocks if "lint_text" in b]
        assert lint_blocks, "README must contain a repro-lint block"
        namespace = {}
        exec(compile(lint_blocks[0], "<README repro-lint>", "exec"), namespace)
        assert [f.rule for f in namespace["findings"]] == ["unseeded-rng"]
