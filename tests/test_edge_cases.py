"""Edge-case and failure-injection tests across subsystems."""

import numpy as np
import pytest

from repro import SelfPacedEnsembleClassifier
from repro.ensemble import GradientBoostingClassifier
from repro.ensemble.gbdt import GradientRegressionTree
from repro.exceptions import NotEnoughSamplesError
from repro.sampling import SMOTE, RandomUnderSampler
from repro.tree import DecisionTreeClassifier, FeatureBinner


class TestTinyMinority:
    """Extreme-IR corner: a handful of minority samples."""

    def _data(self, n_min, seed=0):
        rng = np.random.RandomState(seed)
        X = np.vstack([rng.randn(200, 3), rng.randn(n_min, 3) + 3.0])
        y = np.concatenate([np.zeros(200, int), np.ones(n_min, int)])
        return X, y

    def test_spe_with_three_minority_samples(self):
        X, y = self._data(3)
        spe = SelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=3, random_state=0),
            n_estimators=5,
            random_state=0,
        ).fit(X, y)
        assert spe.predict_proba(X).shape == (203, 2)

    def test_spe_with_single_minority_sample(self):
        X, y = self._data(1)
        spe = SelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=2, random_state=0),
            n_estimators=3,
            random_state=0,
        ).fit(X, y)
        assert len(spe.estimators_) == 3

    def test_smote_needs_two_minority(self):
        X, y = self._data(1)
        with pytest.raises(NotEnoughSamplesError):
            SMOTE(random_state=0).fit_resample(X, y)

    def test_random_under_with_two_minority(self):
        X, y = self._data(2)
        _, yr = RandomUnderSampler(random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == 2

    def test_spe_more_bins_than_majority(self):
        """k_bins larger than the majority population must not crash."""
        rng = np.random.RandomState(0)
        X = np.vstack([rng.randn(15, 2), rng.randn(10, 2) + 3])
        y = np.concatenate([np.zeros(15, int), np.ones(10, int)])
        spe = SelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=2, random_state=0),
            n_estimators=4,
            k_bins=50,
            random_state=0,
        ).fit(X, y)
        assert len(spe.estimators_) == 4


class TestConstantFeatures:
    def test_tree_on_constant_feature(self):
        X = np.column_stack([np.ones(50), np.linspace(0, 1, 50)])
        y = (X[:, 1] > 0.5).astype(int)
        clf = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_tree_all_features_constant(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        clf = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = clf.predict_proba(X)
        assert np.allclose(proba[:, 1], 0.5)

    def test_binner_constant_column(self):
        binner = FeatureBinner(max_bins=8).fit(np.ones((10, 1)))
        assert binner.n_bins_[0] == 1

    def test_gbdt_constant_features_predicts_prior(self):
        X = np.ones((40, 2))
        y = np.array([0] * 30 + [1] * 10)
        gbdt = GradientBoostingClassifier(n_estimators=5, random_state=0).fit(X, y)
        proba = gbdt.predict_proba(X)[:, 1]
        assert np.allclose(proba, 0.25, atol=0.05)


class TestGradientRegressionTree:
    def test_fits_newton_step(self):
        """Single leaf outputs -G/(H+lambda)."""
        rng = np.random.RandomState(0)
        X = rng.randn(50, 2)
        binner = FeatureBinner().fit(X)
        Xb = binner.transform(X)
        grad = np.full(50, 2.0)
        hess = np.full(50, 1.0)
        tree = GradientRegressionTree(max_depth=0, reg_lambda=1.0)
        tree.fit(Xb, grad, hess, binner)
        expected = -grad.sum() / (hess.sum() + 1.0)
        assert tree.predict(X[:3]) == pytest.approx(expected)

    def test_splits_reduce_loss(self):
        rng = np.random.RandomState(0)
        X = rng.randn(300, 1)
        grad = np.where(X[:, 0] > 0, 1.0, -1.0)
        hess = np.ones(300)
        binner = FeatureBinner().fit(X)
        tree = GradientRegressionTree(max_depth=2)
        tree.fit(binner.transform(X), grad, hess, binner)
        pred = tree.predict(X)
        # Opposite-sign leaves on either side of zero.
        assert pred[X[:, 0] > 0].mean() < 0 < pred[X[:, 0] < 0].mean()

    def test_min_samples_leaf_respected(self):
        rng = np.random.RandomState(0)
        X = rng.randn(40, 1)
        binner = FeatureBinner().fit(X)
        tree = GradientRegressionTree(max_depth=5, min_samples_leaf=20)
        tree.fit(binner.transform(X), rng.randn(40), np.ones(40), binner)
        assert tree.node_count <= 3  # at most one split with 20-sample leaves


class TestDuplicateData:
    def test_tree_on_duplicated_rows(self):
        X = np.repeat([[0.0], [1.0]], 25, axis=0)
        y = np.repeat([0, 1], 25)
        clf = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_spe_on_heavy_ties(self):
        """Hardness ties (identical probabilities) trigger the degenerate
        random-fallback path."""
        rng = np.random.RandomState(0)
        X = np.vstack([np.zeros((100, 2)), np.ones((10, 2))])
        X += rng.randn(*X.shape) * 1e-9
        y = np.concatenate([np.zeros(100, int), np.ones(10, int)])
        spe = SelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=1, random_state=0),
            n_estimators=4,
            random_state=0,
        ).fit(X, y)
        assert len(spe.estimators_) == 4


class TestNonFiniteInputs:
    def test_tree_rejects_nan(self):
        X = np.array([[np.nan], [1.0]])
        with pytest.raises(Exception):
            DecisionTreeClassifier().fit(X, [0, 1])

    def test_spe_rejects_inf(self):
        X = np.array([[np.inf, 0.0], [1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(Exception):
            SelfPacedEnsembleClassifier().fit(X, [0, 1, 0])
