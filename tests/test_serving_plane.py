"""The multi-process serving plane: ``serve()`` facade dispatch,
``WorkerPool`` fleet semantics (shared model, round-robin dispatch,
overflow, fleet-wide hot swap with zero drops), the ``AsyncGateway``
front door (admission control, fairness, backpressure), and the
lifecycle controller's broadcast-path promotion."""

import asyncio
import os
import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro import serve
from repro.exceptions import PersistenceError, ServerOverloadedError
from repro.persistence import save_model
from repro.registry import get_classifier, toy_imbalanced_split
from repro.serving import (
    AsyncGateway,
    ModelServer,
    ServerConfig,
    WorkerPool,
)


@pytest.fixture(scope="module")
def toy():
    return toy_imbalanced_split()


@pytest.fixture(scope="module")
def champion(toy):
    X, y = toy
    return get_classifier(
        "spe", base="tree", n_estimators=5, random_state=0
    ).fit(X, y)


@pytest.fixture(scope="module")
def challenger(toy):
    X, y = toy
    return get_classifier(
        "spe", base="tree", n_estimators=5, random_state=1
    ).fit(X, y)


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory, champion, challenger):
    root = tmp_path_factory.mktemp("artifacts")
    p1, p2 = str(root / "champion.npz"), str(root / "challenger.npz")
    save_model(champion, p1)
    save_model(challenger, p2)
    return p1, p2


class TestServeFacade:
    def test_zero_workers_is_modelserver(self, champion):
        server = serve(champion, threshold=0.3)
        try:
            assert isinstance(server, ModelServer)
            assert server.threshold == 0.3
            assert server.mmap is False  # mmap=None resolves off in-process
        finally:
            server.close()

    def test_workers_make_a_pool_with_mmap_on(self, artifacts):
        with serve(artifacts[0], n_workers=2, model_version="v1") as pool:
            assert isinstance(pool, WorkerPool)
            assert pool.mmap is True  # mmap=None resolves on for a fleet
            assert pool.stats()["model_versions"] == {0: "v1", 1: "v1"}

    def test_config_object_with_overrides(self, champion):
        config = ServerConfig(threshold=0.2, max_batch=64)
        server = serve(champion, config, threshold=0.7)
        try:
            assert server.threshold == 0.7  # override wins
            assert server.max_batch == 64  # config survives
        finally:
            server.close()

    def test_invalid_field_lists_valid_ones(self, champion):
        with pytest.raises(TypeError, match="n_workers"):
            serve(champion, n_worker=3)

    def test_negative_workers_rejected(self, champion):
        with pytest.raises(ValueError, match="n_workers"):
            serve(champion, n_workers=-1)

    def test_config_is_frozen(self):
        config = ServerConfig()
        with pytest.raises(Exception):
            config.threshold = 0.1


class TestWorkerPool:
    def test_fleet_scores_identically_to_the_model(
        self, artifacts, champion, toy
    ):
        X, _ = toy
        expected = champion.predict_proba(X)
        with WorkerPool(artifacts[0], n_workers=2) as pool:
            assert np.array_equal(pool.predict_proba(X), expected)
            # every dispatch round-robins; both workers served traffic
            for _ in range(6):
                pool.predict_proba(X[:8])
            per_worker = pool.worker_stats()
            assert all(w["n_requests"] >= 3 for w in per_worker.values())

    def test_version_stamps_and_predict(self, artifacts, champion, toy):
        X, _ = toy
        with WorkerPool(artifacts[0], model_version="v1") as pool:
            scored = pool.score(X[:16])
            assert scored.model_version == "v1"
            labels = pool.predict(X[:32])
            assert set(labels) <= set(champion.classes_)

    def test_live_model_pool(self, champion, toy):
        """A fitted model (no artifact) is shared through plain fork CoW."""
        X, _ = toy
        with WorkerPool(champion, n_workers=2, mmap=False) as pool:
            assert np.array_equal(
                pool.predict_proba(X), champion.predict_proba(X)
            )

    def test_fleet_swap_converges_and_scores_challenger(
        self, artifacts, challenger, toy
    ):
        X, _ = toy
        with WorkerPool(artifacts[0], n_workers=2, model_version="v1") as pool:
            installed = pool.swap_model(artifacts[1], version="v2")
            assert installed == "v2"
            stats = pool.stats()
            assert stats["model_versions"] == {0: "v2", 1: "v2"}
            assert stats["n_swaps"] == 1
            assert np.array_equal(
                pool.predict_proba(X), challenger.predict_proba(X)
            )

    def test_swap_under_traffic_drops_nothing(self, artifacts, toy):
        """Requests submitted continuously across a fleet swap all resolve
        (old or new version) — none dropped, none failed."""
        X, _ = toy
        with WorkerPool(artifacts[0], n_workers=2, model_version="v1") as pool:
            futures, stop = [], threading.Event()

            def traffic():
                while not stop.is_set() and len(futures) < 400:
                    try:
                        futures.append(pool.submit_scored(X[:16]))
                    except ServerOverloadedError:
                        stop.wait(0.002)  # push-back is back-off, not a drop

            threads = [threading.Thread(target=traffic) for _ in range(2)]
            for thread in threads:
                thread.start()
            try:
                pool.swap_model(artifacts[1], version="v2")
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert futures, "traffic threads never submitted"
            results = [f.result(timeout=60) for f in futures]
            versions = {r.model_version for r in results}
            assert versions <= {"v1", "v2"} and "v2" in versions or versions == {"v1"}
            assert all(r.proba.shape == (16, 2) for r in results)

    def test_bad_artifact_swap_leaves_fleet_serving(self, artifacts, toy):
        X, _ = toy
        with WorkerPool(artifacts[0], model_version="v1") as pool:
            with pytest.raises(PersistenceError):
                pool.swap_model(artifacts[0] + ".missing", version="vX")
            assert pool.stats()["model_versions"] == {0: "v1", 1: "v1"}
            assert pool.predict_proba(X[:8]).shape == (8, 2)

    def test_live_model_swap_rejected(self, artifacts, champion):
        with WorkerPool(artifacts[0]) as pool:
            with pytest.raises(TypeError, match="artifact path"):
                pool.swap_model(champion)

    def test_overflow_raises_and_counts(self, artifacts, toy):
        X, _ = toy
        pool = WorkerPool(artifacts[0], n_workers=1, max_pending=1)
        try:
            futures, overflowed = [], False
            for _ in range(1000):
                try:
                    futures.append(pool.submit(np.repeat(X[:64], 4, axis=0)))
                except ServerOverloadedError:
                    overflowed = True
                    break
            assert overflowed, "bounded worker queue never pushed back"
            assert pool.n_overflows_ >= 1
            for future in futures:  # admitted work is still all served
                assert future.result(timeout=60).shape[1] == 2
        finally:
            pool.close()

    def test_worker_stats_report_memory_and_server_health(
        self, artifacts, toy
    ):
        X, _ = toy
        with WorkerPool(artifacts[0], n_workers=2) as pool:
            pool.predict_proba(X[:4])
            per_worker = pool.worker_stats()
            assert set(per_worker) == {0, 1}
            for stats in per_worker.values():
                assert stats["packed"] is True
                assert "private_kb" in stats and "baseline_private_kb" in stats

    def test_closed_pool_rejects_submits(self, artifacts):
        pool = WorkerPool(artifacts[0])
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(np.zeros((1, 10)))
        pool.close()  # idempotent

    def test_rejects_bad_construction(self, artifacts):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(artifacts[0], n_workers=0)
        with pytest.raises(ValueError, match="threshold"):
            WorkerPool(artifacts[0], threshold=1.5)


class _FakeBackend:
    """Records submission order; optionally pushes back until released."""

    def __init__(self, reject=False):
        self.order = []
        self.reject = reject
        self.n_rejected = 0

    def submit(self, rows):
        if self.reject:
            self.n_rejected += 1
            raise ServerOverloadedError("backend full")
        self.order.append(int(rows[0][0]))
        future = Future()
        future.set_result(np.zeros((len(rows), 2)))
        return future


def _tagged(tag):
    return np.full((1, 3), float(tag))


class TestAsyncGateway:
    def test_scores_through_a_real_pool(self, artifacts, toy):
        X, _ = toy

        async def run():
            with WorkerPool(artifacts[0], n_workers=2) as pool:
                async with AsyncGateway(pool) as gateway:
                    outs = await asyncio.gather(
                        *[
                            gateway.submit(X[i : i + 4], tenant=f"t{i % 2}")
                            for i in range(8)
                        ]
                    )
                    stats = gateway.stats()
            return outs, stats

        outs, stats = asyncio.run(run())
        assert all(o.shape == (4, 2) for o in outs)
        served = sum(t["served"] for t in stats["tenants"].values())
        assert served == 8

    def test_fair_round_robin_across_tenants(self):
        """Tenant A floods 6 requests, tenant B sends 2: the drain still
        alternates A,B,A,B before A's backlog — backend order interleaves
        instead of serving A's queue to exhaustion first."""
        backend = _FakeBackend()

        async def run():
            gateway = AsyncGateway(backend)
            coros = [gateway.submit(_tagged(10 + i), tenant="a") for i in range(6)]
            coros += [gateway.submit(_tagged(20 + i), tenant="b") for i in range(2)]
            await asyncio.gather(*coros)
            await gateway.close()

        asyncio.run(run())
        assert backend.order[:4] == [10, 20, 11, 21]
        assert backend.order[4:] == [12, 13, 14, 15]

    def test_admission_control_bounds_each_tenant(self):
        """With the backend pushing back, a tenant's gateway queue fills
        to its bound and further submits are rejected at the door; the
        admitted requests are held under backpressure (never dropped) and
        all served once the backend recovers."""
        backend = _FakeBackend(reject=True)

        async def run():
            gateway = AsyncGateway(
                backend, max_pending_per_tenant=2, retry_interval=0.001
            )
            # Tasks run in creation order before the drain gets control:
            # items 0..1 fill the bound, 2..3 are rejected at the door.
            tasks = [
                asyncio.ensure_future(gateway.submit(_tagged(i), tenant="a"))
                for i in range(4)
            ]
            await asyncio.sleep(0.02)  # drain spins against the full backend
            assert gateway.stats()["n_backpressure_waits"] >= 1
            backend.reject = False  # backend recovers
            results = await asyncio.gather(*tasks, return_exceptions=True)
            await gateway.close()
            return results, gateway.stats()

        results, stats = asyncio.run(run())
        served = [r for r in results if isinstance(r, np.ndarray)]
        rejected = [r for r in results if isinstance(r, ServerOverloadedError)]
        assert len(served) == 2 and len(rejected) == 2
        assert all("tenant 'a'" in str(r) for r in rejected)
        assert stats["tenants"]["a"] == {
            "submitted": 2,
            "served": 2,
            "rejected": 2,
            "queued": 0,
        }

    def test_closed_gateway_rejects_submits(self):
        async def run():
            gateway = AsyncGateway(_FakeBackend())
            await gateway.close()
            with pytest.raises(RuntimeError, match="closed"):
                await gateway.submit(_tagged(1))

        asyncio.run(run())


class _PathOnlyServer(ModelServer):
    """A ModelServer that insists on the fleet contract: swaps arrive as
    artifact paths (what WorkerPool broadcasts), never live objects."""

    swaps_by_path = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.swap_paths = []

    def swap_model(self, model, *, version=None):
        assert isinstance(model, (str, os.PathLike)), (
            "broadcast-path promotion must ship an artifact path, got "
            f"{type(model).__name__}"
        )
        self.swap_paths.append(os.fspath(model))
        return super().swap_model(model, version=version)


class TestLifecycleBroadcastPromotion:
    def test_controller_promotes_fleet_backends_by_artifact_path(
        self, tmp_path
    ):
        """When the serving backend swaps by path (WorkerPool contract),
        the controller promotes through the registry's persisted artifact
        instead of the in-memory challenger."""
        from repro.datasets import make_checkerboard
        from repro.lifecycle import (
            ArtifactRegistry,
            LifecycleController,
            RetrainPolicy,
        )
        from repro.monitoring import DriftMonitor, ReferenceSketch

        X, y = make_checkerboard(
            n_minority=150, n_majority=1500, random_state=0
        )
        rng = np.random.RandomState(3)
        champion = get_classifier(
            "tree", max_depth=4, random_state=0
        ).fit(X, y)
        registry = ArtifactRegistry(tmp_path / "artifacts")
        server = _PathOnlyServer(champion, model_version="v1")
        monitor = DriftMonitor(
            ReferenceSketch().fit(X, y), window_size=800, min_window=200
        )
        controller = LifecycleController(
            server,
            registry,
            monitor,
            "logistic",
            policy=RetrainPolicy(cooldown=0),
            min_lift=-np.inf,
        )
        try:
            for _ in range(4):
                idx = rng.choice(len(y), 200)
                controller.process(X[idx], y[idx])
            promoted = None
            for _ in range(20):
                idx = rng.choice(len(y), 200)
                Xb, yb = X[idx] + 3.0, y[idx].copy()
                yb[rng.uniform(size=len(yb)) < 0.2] = 1
                event = controller.process(Xb, yb)
                if event.promoted:
                    promoted = event
                    break
            assert promoted is not None, "drift never promoted a challenger"
            assert server.swap_paths == [registry.path(promoted.promoted_version)]
            assert server.model_version == promoted.promoted_version
        finally:
            server.close()


class TestThresholdForPrecisionMoved:
    def test_canonical_home_is_metrics(self):
        from repro.metrics import threshold_for_precision
        from repro.metrics.ranking import threshold_for_precision as ranking_fn

        assert threshold_for_precision is ranking_fn

    def test_historical_serving_import_still_works(self):
        from repro.metrics import threshold_for_precision as canonical
        from repro.serving import threshold_for_precision as via_serving
        from repro.serving.server import threshold_for_precision as via_module

        assert via_serving is canonical and via_module is canonical
