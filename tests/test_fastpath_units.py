"""Unit pins for the fastpath building blocks and the satellite
optimisations: vectorised bin gathering, keyed inference payloads, binner
caching, the level-synchronous tree builder, and the packed kernel."""

import numpy as np
import pytest

from repro.core.binning import cut_hardness_bins, allocate_bin_samples, self_paced_bin_weights
from repro.core.self_paced import self_paced_under_sample
from repro.fastpath import (
    BinnedSubset,
    PackedForest,
    ScoringMatrix,
    SharedBinContext,
    fastpath_disabled,
    fastpath_enabled,
    set_fastpath,
)
from repro.parallel import ensemble_predict_proba
from repro.parallel.executor import parallel_map
from repro.parallel.inference import _SHARED_PAYLOADS
from repro.tree import DecisionTreeClassifier, FeatureBinner
from repro.tree._tree import _grow_depth_first, build_tree


# --------------------------------------------------------------------- #
def _reference_under_sample(hardness, k_bins, alpha, n_samples, rng):
    """The historical per-bin np.flatnonzero formulation (pre-argsort)."""
    bins = cut_hardness_bins(hardness, k_bins)
    if bins.degenerate:
        n = min(n_samples, hardness.size)
        return rng.choice(hardness.size, size=n, replace=False), bins
    weights = self_paced_bin_weights(bins, alpha)
    counts = allocate_bin_samples(weights, bins.populations, n_samples)
    chosen = []
    for b in np.flatnonzero(counts > 0):
        members = np.flatnonzero(bins.assignments == b)
        chosen.append(rng.choice(members, size=int(counts[b]), replace=False))
    if not chosen:
        n = min(n_samples, hardness.size)
        return rng.choice(hardness.size, size=n, replace=False), bins
    return np.concatenate(chosen), bins


class TestVectorisedUnderSample:
    @pytest.mark.parametrize("alpha", [0.0, 0.3, 5.0, 1e16])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_bit_identical_to_per_bin_scan(self, alpha, seed):
        rng = np.random.RandomState(seed)
        hardness = rng.rand(5000)
        got, _ = self_paced_under_sample(
            hardness, 20, alpha, 400, np.random.RandomState(seed)
        )
        want, _ = _reference_under_sample(
            hardness, 20, alpha, 400, np.random.RandomState(seed)
        )
        assert np.array_equal(got, want)

    def test_degenerate_hardness(self):
        got, bins = self_paced_under_sample(
            np.full(100, 0.5), 10, 1.0, 30, np.random.RandomState(0)
        )
        assert bins.degenerate and len(got) == 30

    def test_sparse_bins(self):
        """Hardness concentrated in few bins: empty-bin slices must be
        skipped exactly like the flatnonzero scan skipped them."""
        rng = np.random.RandomState(1)
        hardness = np.concatenate([np.zeros(500), np.ones(5)])
        got, _ = self_paced_under_sample(hardness, 50, 0.0, 50, np.random.RandomState(2))
        want, _ = _reference_under_sample(hardness, 50, 0.0, 50, np.random.RandomState(2))
        assert np.array_equal(got, want)


# --------------------------------------------------------------------- #
class TestFeatureBinnerCaching:
    def test_edges_cached_as_tuple(self, rng):
        binner = FeatureBinner(max_bins=8).fit(rng.randn(100, 3))
        assert isinstance(binner.edges_, tuple)
        assert len(binner.edges_) == 3

    def test_transform_skips_validation_on_float_arrays(self, rng):
        X = rng.randn(50, 2)
        binner = FeatureBinner(max_bins=8).fit(X)
        codes = binner.transform(X)
        # list input still goes through check_array conversion
        assert np.array_equal(binner.transform(X.tolist()), codes)
        # feature-count validation is preserved on the fast path
        with pytest.raises(ValueError, match="features"):
            binner.transform(rng.randn(10, 5))

    def test_threshold_semantics_unchanged(self, rng):
        X = rng.randn(200, 1)
        binner = FeatureBinner(max_bins=6).fit(X)
        codes = binner.transform(X).ravel()
        for c in range(int(binner.n_bins_[0]) - 1):
            thr = binner.threshold_value(0, c)
            assert np.array_equal(codes <= c, X.ravel() < thr)


# --------------------------------------------------------------------- #
class TestLevelSynchronousBuilder:
    @pytest.mark.parametrize("criterion", ["gini", "entropy", "gain_ratio"])
    @pytest.mark.parametrize("weighted", [False, True])
    def test_bit_identical_to_depth_first(self, criterion, weighted):
        rng = np.random.RandomState(0)
        X = rng.randn(300, 4)
        y = rng.randint(0, 3, 300)
        w = rng.rand(300) if weighted else np.ones(300)
        binner = FeatureBinner(max_bins=16).fit(X)
        Xb = binner.transform(X)
        kwargs = dict(n_classes=3, criterion=criterion, max_depth=6,
                      min_samples_split=4, min_samples_leaf=2,
                      min_impurity_decrease=0.0)
        level = build_tree(Xb, y, w, binner, **kwargs)
        depth_first = _grow_depth_first(
            Xb, y, w, binner, 3, criterion, 6, 4, 2, 0.0,
            bool(np.all(w == 1.0)), np.asarray(binner.n_bins_),
            max_features=None, random_state=None,
        )
        for attr in ("feature", "threshold", "children_left", "children_right",
                     "value", "n_node_samples", "impurity"):
            assert np.array_equal(getattr(level, attr), getattr(depth_first, attr)), attr

    def test_many_class_gini_still_levelwise_identical(self):
        """Gini impurity has no nonzero-compaction, so the level builder
        stays exact at any class count; entropy beyond 8 classes routes to
        the depth-first builder instead (pairwise-sum grouping)."""
        rng = np.random.RandomState(2)
        X = rng.randn(400, 3)
        y = rng.randint(0, 12, 400)
        w = np.ones(400)
        binner = FeatureBinner(max_bins=16).fit(X)
        Xb = binner.transform(X)
        level = build_tree(Xb, y, w, binner, n_classes=12, max_depth=5)
        depth_first = _grow_depth_first(
            Xb, y, w, binner, 12, "gini", 5, 2, 1, 0.0, True,
            np.asarray(binner.n_bins_), max_features=None, random_state=None,
        )
        assert np.array_equal(level.value, depth_first.value)
        assert np.array_equal(level.impurity, depth_first.impurity)

    def test_max_features_uses_depth_first_rng_order(self):
        """Feature-subsampled trees must keep the documented stack-order
        RNG consumption (regression pin for the forest path)."""
        rng = np.random.RandomState(0)
        X = rng.randn(200, 6)
        y = (X[:, 0] + X[:, 3] > 0).astype(int)
        a = DecisionTreeClassifier(max_features=2, random_state=5).fit(X, y)
        b = DecisionTreeClassifier(max_features=2, random_state=5).fit(X, y)
        assert np.array_equal(a.tree_.feature, b.tree_.feature)
        assert np.array_equal(a.tree_.threshold, b.tree_.threshold)


# --------------------------------------------------------------------- #
class TestSharedBinContext:
    def test_codes_use_smallest_dtype(self, rng):
        context = SharedBinContext(rng.randn(500, 2), max_bins=64)
        assert context.codes.dtype == np.uint8

    def test_views_slice_without_rebinning(self, rng):
        X = rng.randn(100, 3)
        context = SharedBinContext(X, max_bins=16)
        view = context.view(np.array([5, 1, 7]))
        assert len(view) == 3 and view.shape == (3, 3)
        assert np.array_equal(view.binned_codes(), context.codes[[5, 1, 7]])
        # fancy indexing returns a sub-view; __array__ materialises floats
        sub = view[np.array([2, 0])]
        assert isinstance(sub, BinnedSubset)
        assert np.array_equal(np.asarray(sub), X[[7, 5]])

    def test_concat_requires_same_context(self, rng):
        X = rng.randn(20, 2)
        a = SharedBinContext(X).view(np.arange(5))
        b = SharedBinContext(X).view(np.arange(5))
        with pytest.raises(ValueError):
            a.concat(b)

    def test_tree_fit_on_view_without_requantization(self, rng):
        """Context resolution == tree max_bins: the tree trains directly on
        the shared codes and equals build_tree on them."""
        X = rng.randn(300, 2)
        y = (X[:, 0] > 0).astype(int)
        context = SharedBinContext(X, max_bins=32)
        tree = DecisionTreeClassifier(max_depth=4, max_bins=32).fit(
            context.all_rows(), y
        )
        reference = build_tree(
            context.codes, y, np.ones(len(y)), context.binner,
            n_classes=2, max_depth=4,
        )
        assert np.array_equal(tree.tree_.feature, reference.feature)
        assert np.array_equal(tree.tree_.threshold, reference.threshold)
        assert tree._shared_bin_context is context
        assert tree._member_remap is None

    def test_tree_fit_on_fine_view_requantizes_onto_shared_edges(self, rng):
        """Fine context: the member derives its own cuts, and every fitted
        threshold is exactly one of the shared fine edges."""
        X = rng.randn(400, 2)
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        context = SharedBinContext(X, max_bins=255)
        tree = DecisionTreeClassifier(max_depth=5, max_bins=16).fit(
            context.all_rows(), y
        )
        assert tree._member_remap is not None
        assert int(tree._member_binner.n_bins_.max()) <= 16
        internal = tree.tree_.feature >= 0
        for f, thr in zip(tree.tree_.feature[internal], tree.tree_.threshold[internal]):
            assert thr in context.binner.edges_[f]
        # requantized member codes agree with the member binner's transform
        member_codes = tree._member_remap[
            np.arange(2)[None, :], context.codes
        ]
        assert np.array_equal(member_codes, tree._member_binner.transform(X))

    def test_balanced_fit_rows(self):
        from repro.fastpath.bincontext import balanced_fit_rows

        y = np.array([0] * 90 + [1] * 10)
        rows = balanced_fit_rows(y)
        assert len(rows) == 20
        assert (y[rows] == 1).sum() == 10
        assert balanced_fit_rows(np.array([1, 1, 0])) is None

    def test_pickle_drops_matrix_keeps_binner(self, rng):
        import pickle

        X = rng.randn(50, 2)
        context = SharedBinContext(X, max_bins=8)
        restored = pickle.loads(pickle.dumps(context))
        assert restored.codes is None and restored.X is None
        assert np.array_equal(
            restored.binner.transform(X), context.binner.transform(X)
        )
        with pytest.raises(ValueError, match="unpickled"):
            restored.view(np.arange(3))


# --------------------------------------------------------------------- #
class TestPackedKernel:
    def test_apply_matches_tree_apply(self, rng):
        X = rng.randn(400, 3)
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        trees = [DecisionTreeClassifier(max_depth=d, random_state=d).fit(X, y)
                 for d in (1, 4, 8)]
        forest = PackedForest.from_estimators(trees, np.array([0, 1]))
        leaves = forest.apply(X)
        for t, est in enumerate(trees):
            # node ids are renumbered at pack time; the routed leaf values
            # must agree with the per-tree evaluation exactly
            assert np.array_equal(forest.value[leaves[t]], est.predict_proba(X))

    def test_fused_and_segmented_agree(self, rng):
        """Small batches take the fused kernel, large the segmented one —
        force both over the same rows and compare."""
        import repro.fastpath.packed as packed_mod

        X = rng.randn(2000, 2)
        y = (X[:, 0] > 0).astype(int)
        trees = [DecisionTreeClassifier(max_depth=6, random_state=s).fit(X, y)
                 for s in range(4)]
        forest = PackedForest.from_estimators(trees, np.array([0, 1]))
        original = packed_mod._FUSED_LANES
        try:
            packed_mod._FUSED_LANES = 1 << 30
            fused = forest.apply(X)
            packed_mod._FUSED_LANES = 0
            segmented = forest.apply(X)
        finally:
            packed_mod._FUSED_LANES = original
        assert np.array_equal(fused, segmented)

    def test_scoring_matrix_dtype_ladder(self, rng):
        low_card = np.repeat(np.arange(4.0), 25).reshape(-1, 1)
        assert ScoringMatrix(low_card).codes.dtype == np.uint8
        high_card = rng.randn(60000, 1)
        assert ScoringMatrix(high_card).codes.dtype == np.uint16


# --------------------------------------------------------------------- #
class TestInferencePayloads:
    def test_payload_registry_cleaned_up(self, rng):
        X = rng.randn(300, 2)
        y = (X[:, 0] > 0).astype(int)
        trees = [DecisionTreeClassifier(max_depth=2, random_state=s).fit(X, y)
                 for s in range(3)]
        for backend in ("serial", "thread", "process"):
            ensemble_predict_proba(
                trees, X, np.array([0, 1]), packed="never",
                backend=backend, n_jobs=2, chunk_size=64,
            )
            assert not _SHARED_PAYLOADS, backend

    def test_process_backend_tasks_carry_no_estimators(self, rng):
        """Task payloads carry only (key, block id, row chunk) — estimators
        travel once per worker through the pool initializer, and a worker
        never receives more than one chunk of the matrix per task."""
        import pickle

        from repro.parallel import inference

        X = rng.randn(500, 2)
        y = (X[:, 0] > 0).astype(int)
        trees = [DecisionTreeClassifier(max_depth=3, random_state=s).fit(X, y)
                 for s in range(9)]
        seen = []
        original = inference.parallel_map

        def spy(fn, tasks, **kwargs):
            seen.append((list(tasks), kwargs))
            return original(fn, tasks, **kwargs)

        inference.parallel_map = spy
        try:
            ensemble_predict_proba(
                trees, X, np.array([0, 1]), packed="never", chunk_size=100
            )
        finally:
            inference.parallel_map = original
        tasks, kwargs = seen[0]
        assert len(tasks) == 5 * 2  # 5 row spans x 2 estimator blocks
        chunk_bytes = 100 * 2 * 8
        for task in tasks:
            assert len(pickle.dumps(task)) < chunk_bytes + 500  # no estimators
        assert kwargs["initializer"] is not None

    def test_executor_initializer_runs_on_serial_path(self):
        state = {}
        parallel_map(
            lambda t: state["k"] + t, [1, 2], backend="serial",
            initializer=lambda v: state.__setitem__("k", v), initargs=(10,),
        )

    def test_packed_path_rejects_non_finite_like_chunked(self, rng):
        """The packed path must not silently accept rows the chunked path
        rejects — NaN input raises the same validation error on both."""
        from repro.exceptions import DataValidationError

        X = rng.randn(50, 2)
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        X_bad = X.copy()
        X_bad[3, 1] = np.nan
        for packed in ("auto", "never"):
            with pytest.raises(DataValidationError):
                ensemble_predict_proba(
                    [tree], X_bad, np.array([0, 1]), packed=packed
                )

    def test_pack_cache_entries_die_with_the_ensemble(self, rng):
        """The weak-keyed pack cache must not keep estimators alive."""
        import gc
        import weakref

        X = rng.randn(60, 2)
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        ensemble_predict_proba([tree], X, np.array([0, 1]))
        ref = weakref.ref(tree)
        del tree
        gc.collect()
        assert ref() is None


# --------------------------------------------------------------------- #
class TestConfigSwitch:
    def test_env_and_override(self, monkeypatch):
        assert fastpath_enabled()
        with fastpath_disabled():
            assert not fastpath_enabled()
        assert fastpath_enabled()
        monkeypatch.setenv("REPRO_FASTPATH", "0")
        assert not fastpath_enabled()
        set_fastpath(True)
        try:
            assert fastpath_enabled()
        finally:
            set_fastpath(None)
