"""Tests for the standalone SelfPacedUnderSampler."""

import numpy as np
import pytest

from repro.core import SelfPacedUnderSampler
from repro.imbalance_ensemble import ResampleEnsembleClassifier
from repro.tree import DecisionTreeClassifier


class TestSelfPacedUnderSampler:
    def test_balanced_output(self, imbalanced_data):
        X, y = imbalanced_data
        X_res, y_res = SelfPacedUnderSampler(random_state=0).fit_resample(X, y)
        assert (y_res == 0).sum() == (y_res == 1).sum() == int(y.sum())

    def test_subset_of_original(self, imbalanced_data):
        X, y = imbalanced_data
        sampler = SelfPacedUnderSampler(random_state=0)
        X_res, _ = sampler.fit_resample(X, y)
        assert np.allclose(X[sampler.sample_indices_], X_res)

    def test_alpha_zero_picks_easier_majority_than_alpha_inf(self, overlapped_data):
        X, y = overlapped_data
        probe = DecisionTreeClassifier(max_depth=5, random_state=0)
        easy_picks = SelfPacedUnderSampler(
            estimator=probe, alpha=0.0, random_state=0
        )
        hard_tolerant = SelfPacedUnderSampler(
            estimator=probe, alpha=1e15, random_state=0
        )
        # Compare the mean hardness of the selected *majority* samples by
        # refitting an identical probe (same seed -> same cold start).
        fit_probe = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
        hardness = fit_probe.predict_proba(X)[:, 1]

        def mean_sel_hardness(sampler):
            X_res, y_res = sampler.fit_resample(X, y)
            idx = sampler.sample_indices_
            maj_sel = idx[y[idx] == 0]
            return hardness[maj_sel].mean()

        assert mean_sel_hardness(easy_picks) <= mean_sel_hardness(hard_tolerant) + 0.05

    def test_prefit_estimator_reused(self, imbalanced_data):
        X, y = imbalanced_data
        probe = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        sampler = SelfPacedUnderSampler(prefit_estimator=probe, random_state=0)
        X_res, y_res = sampler.fit_resample(X, y)
        assert (y_res == 1).sum() == int(y.sum())

    def test_custom_hardness(self, imbalanced_data):
        X, y = imbalanced_data
        sampler = SelfPacedUnderSampler(hardness="cross_entropy", random_state=0)
        _, y_res = sampler.fit_resample(X, y)
        assert (y_res == 0).sum() == (y_res == 1).sum()

    def test_negative_alpha_rejected(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError):
            SelfPacedUnderSampler(alpha=-1.0).fit_resample(X, y)

    def test_composes_with_resample_ensemble(self, imbalanced_data):
        """The sampler plugs into the generic sampler+bagging wrapper."""
        X, y = imbalanced_data
        model = ResampleEnsembleClassifier(
            sampler=SelfPacedUnderSampler(alpha=0.1),
            estimator=DecisionTreeClassifier(max_depth=4, random_state=0),
            n_estimators=4,
            random_state=0,
        ).fit(X, y)
        assert model.predict_proba(X).shape == (len(y), 2)

    def test_deterministic(self, imbalanced_data):
        X, y = imbalanced_data
        a = SelfPacedUnderSampler(random_state=5).fit_resample(X, y)[0]
        b = SelfPacedUnderSampler(random_state=5).fit_resample(X, y)[0]
        assert np.allclose(a, b)
