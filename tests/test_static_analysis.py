"""repro-lint: the AST-based static-analysis suite enforcing the repo's
concurrency, determinism, exception, lifecycle, and API contracts.

Pins the static-analysis issue's acceptance criteria: every rule class
fires on a known-bad fixture snippet at exactly the expected line and
stays silent on the matching good snippet; `# repro-lint: disable=` and
`disable-file=` pragmas suppress findings (and unknown rules in pragmas
are themselves findings); the baseline round-trips and subtracts; the
whole `src/repro` tree is clean under every AST checker with an empty
shipped baseline; and the `tools/repro_lint.py` runner exits 0 on a
clean tree, 1 on a deliberate violation, and emits a stable JSON report.

The checkers are pure-AST (no library import), so these tests exercise
them directly through `analysis.lint_text` on source strings.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
TOOLS_DIR = str(REPO_ROOT / "tools")
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)

from analysis import (  # noqa: E402 — sys.path bootstrap above
    apply_baseline,
    default_checkers,
    known_rules,
    lint_paths,
    lint_text,
    load_baseline,
    write_baseline,
)

RUNNER = str(REPO_ROOT / "tools" / "repro_lint.py")


def fired(snippet, rule, path="src/repro/_snippet.py"):
    """Lines at which ``rule`` fires on the dedented ``snippet``."""
    findings = lint_text(textwrap.dedent(snippet), path=path)
    return [f.line for f in findings if f.rule == rule]


# --------------------------------------------------------------------- #
# concurrency
# --------------------------------------------------------------------- #
class TestConcurrencyRules:
    def test_sleep_under_lock_fires(self):
        bad = '''
        import threading
        import time

        _lock = threading.Lock()

        def slow():
            """Doc."""
            with _lock:
                time.sleep(1.0)
        '''
        assert fired(bad, "lock-blocking-call") == [10]

    def test_sleep_outside_lock_is_silent(self):
        good = '''
        import threading
        import time

        _lock = threading.Lock()

        def slow():
            """Doc."""
            with _lock:
                x = 1
            time.sleep(1.0)
        '''
        assert fired(good, "lock-blocking-call") == []

    def test_unbounded_queue_get_under_lock_fires(self):
        bad = '''
        def drain(self):
            """Doc."""
            with self._lock:
                item = self._queue.get()
        '''
        assert fired(bad, "lock-blocking-call") == [5]

    def test_bounded_queue_get_under_lock_is_silent(self):
        good = '''
        def drain(self):
            """Doc."""
            with self._lock:
                item = self._queue.get(timeout=0.1)
        '''
        assert fired(good, "lock-blocking-call") == []

    def test_acquire_without_try_finally_fires(self):
        bad = '''
        import threading

        _lock = threading.Lock()

        def f():
            """Doc."""
            _lock.acquire()
            _lock.release()
        '''
        assert fired(bad, "lock-acquire-discipline") == [8]

    def test_acquire_with_try_finally_is_silent(self):
        good = '''
        import threading

        _lock = threading.Lock()

        def f():
            """Doc."""
            _lock.acquire()
            try:
                pass
            finally:
                _lock.release()
        '''
        assert fired(good, "lock-acquire-discipline") == []

    def test_inconsistent_lock_order_fires(self):
        bad = '''
        import threading

        _a_lock = threading.Lock()
        _b_lock = threading.Lock()

        def f():
            """Doc."""
            with _a_lock:
                with _b_lock:
                    pass

        def g():
            """Doc."""
            with _b_lock:
                with _a_lock:
                    pass
        '''
        assert fired(bad, "lock-order-cycle") != []

    def test_consistent_lock_order_is_silent(self):
        good = '''
        import threading

        _a_lock = threading.Lock()
        _b_lock = threading.Lock()

        def f():
            """Doc."""
            with _a_lock:
                with _b_lock:
                    pass

        def g():
            """Doc."""
            with _a_lock:
                with _b_lock:
                    pass
        '''
        assert fired(good, "lock-order-cycle") == []

    def test_reacquiring_plain_lock_fires_self_deadlock(self):
        bad = '''
        import threading

        _a_lock = threading.Lock()

        def f():
            """Doc."""
            with _a_lock:
                with _a_lock:
                    pass
        '''
        assert fired(bad, "lock-order-cycle") != []

    def test_reacquiring_rlock_is_silent(self):
        good = '''
        import threading

        _a_lock = threading.RLock()

        def f():
            """Doc."""
            with _a_lock:
                with _a_lock:
                    pass
        '''
        assert fired(good, "lock-order-cycle") == []


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #
class TestDeterminismRules:
    def test_unseeded_np_random_call_fires(self):
        bad = '''
        import numpy as np

        def sample():
            """Doc."""
            return np.random.rand(3)
        '''
        assert fired(bad, "unseeded-rng") == [6]

    def test_seeded_randomstate_is_silent(self):
        good = '''
        import numpy as np

        def sample(random_state):
            """Doc."""
            rng = np.random.RandomState(random_state)
            return rng.rand(3)
        '''
        assert fired(good, "unseeded-rng") == []

    def test_argless_randomstate_fires(self):
        bad = '''
        import numpy as np

        def sample():
            """Doc."""
            return np.random.RandomState().rand(3)
        '''
        assert fired(bad, "unseeded-rng") == [6]

    def test_stdlib_random_module_fires(self):
        bad = '''
        import random

        def pick(items):
            """Doc."""
            return random.choice(items)
        '''
        assert fired(bad, "unseeded-rng") == [6]

    def test_wall_clock_deadline_fires(self):
        bad = '''
        import time

        def deadline():
            """Doc."""
            return time.time() + 5.0
        '''
        assert fired(bad, "wall-clock-deadline") == [6]

    def test_monotonic_deadline_is_silent(self):
        good = '''
        import time

        def deadline():
            """Doc."""
            return time.monotonic() + 5.0
        '''
        assert fired(good, "wall-clock-deadline") == []


# --------------------------------------------------------------------- #
# telemetry: latency through the telemetry plane only
# --------------------------------------------------------------------- #
class TestTelemetryRules:
    """`raw-latency-timing` forbids hand-rolled latency math in the
    modules the telemetry plane instruments; deadline arithmetic (the
    monotonic-on-the-right shape) stays legal."""

    IN_SCOPE = "src/repro/serving/_snippet.py"

    def test_perf_counter_fires(self):
        bad = '''
        import time

        def timed():
            """Doc."""
            start = time.perf_counter()
            return time.perf_counter() - start
        '''
        assert fired(bad, "raw-latency-timing", path=self.IN_SCOPE) == [6, 7]

    def test_monotonic_elapsed_math_fires(self):
        bad = '''
        import time

        def elapsed(start):
            """Doc."""
            return time.monotonic() - start
        '''
        assert fired(bad, "raw-latency-timing", path=self.IN_SCOPE) == [6]

    def test_monotonic_deadline_math_is_silent(self):
        good = '''
        import time

        def budget(expires_at):
            """Doc."""
            deadline = time.monotonic() + 5.0
            remaining = expires_at - time.monotonic()
            return deadline, remaining, time.monotonic() < expires_at
        '''
        assert fired(good, "raw-latency-timing", path=self.IN_SCOPE) == []

    def test_rule_is_scoped_to_instrumented_modules(self):
        snippet = '''
        import time

        def elapsed(start):
            """Doc."""
            return time.perf_counter() - start
        '''
        assert fired(snippet, "raw-latency-timing") == []
        assert fired(
            snippet, "raw-latency-timing", path="benchmarks/_snippet.py"
        ) == []

    def test_pragma_suppresses(self):
        snippet = '''
        import time

        def elapsed(start):
            """Doc."""
            return time.monotonic() - start  # repro-lint: disable=raw-latency-timing
        '''
        assert fired(snippet, "raw-latency-timing", path=self.IN_SCOPE) == []


# --------------------------------------------------------------------- #
# exception contracts
# --------------------------------------------------------------------- #
class TestExceptionContractRules:
    def test_bare_except_fires(self):
        bad = '''
        def f():
            """Doc."""
            try:
                g()
            except:
                raise
        '''
        assert fired(bad, "bare-except") == [6]

    def test_typed_except_is_silent(self):
        good = '''
        def f():
            """Doc."""
            try:
                g()
            except ValueError:
                raise
        '''
        assert fired(good, "bare-except") == []

    def test_silent_except_pass_fires(self):
        bad = '''
        def f():
            """Doc."""
            try:
                g()
            except Exception:
                pass
        '''
        assert fired(bad, "swallowed-exception") == [6]

    def test_handled_except_is_silent(self):
        good = '''
        import logging

        def f():
            """Doc."""
            try:
                g()
            except Exception:
                logging.exception("g failed")
        '''
        assert fired(good, "swallowed-exception") == []

    def test_public_raise_of_runtimeerror_fires(self):
        bad = '''
        def submit(batch):
            """Doc."""
            raise RuntimeError("server is closed")
        '''
        assert fired(bad, "untyped-public-raise") == [4]

    def test_public_raise_of_library_exception_is_silent(self):
        good = '''
        from repro.exceptions import ServerClosedError

        def submit(batch):
            """Doc."""
            raise ServerClosedError("server is closed")
        '''
        assert fired(good, "untyped-public-raise") == []

    def test_private_raise_of_runtimeerror_is_silent(self):
        good = '''
        def _submit(batch):
            raise RuntimeError("internal")
        '''
        assert fired(good, "untyped-public-raise") == []

    def test_rule_is_scoped_to_src(self):
        bad = '''
        def submit(batch):
            raise RuntimeError("fine in tests")
        '''
        assert fired(bad, "untyped-public-raise", path="tests/_snippet.py") == []


# --------------------------------------------------------------------- #
# resource lifecycle
# --------------------------------------------------------------------- #
class TestLifecycleRules:
    def test_unjoined_non_daemon_thread_fires(self):
        bad = '''
        import threading

        def spawn():
            """Doc."""
            t = threading.Thread(target=print)
            t.start()
        '''
        assert fired(bad, "unjoined-thread") == [6]

    def test_daemon_thread_is_silent(self):
        good = '''
        import threading

        def spawn():
            """Doc."""
            t = threading.Thread(target=print, daemon=True)
            t.start()
        '''
        assert fired(good, "unjoined-thread") == []

    def test_joined_thread_is_silent(self):
        good = '''
        import threading

        def spawn():
            """Doc."""
            t = threading.Thread(target=print)
            t.start()
            t.join()
        '''
        assert fired(good, "unjoined-thread") == []

    def test_self_thread_joined_in_other_method_is_silent(self):
        good = '''
        import threading

        class Worker:
            """Doc."""

            def start(self):
                """Doc."""
                self._t = threading.Thread(target=print)
                self._t.start()

            def close(self):
                """Doc."""
                self._t.join()
        '''
        assert fired(good, "unjoined-thread") == []

    def test_thread_pool_joined_in_loop_is_silent(self):
        good = '''
        import threading

        def spawn(n):
            """Doc."""
            threads = [threading.Thread(target=print) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        '''
        assert fired(good, "unjoined-thread") == []

    def test_process_without_teardown_fires(self):
        bad = '''
        import multiprocessing as mp

        class Pool:
            """Doc."""

            def start(self):
                """Doc."""
                self._p = mp.Process(target=print)
                self._p.start()
        '''
        assert fired(bad, "unreaped-process") == [9]

    def test_process_reaped_from_close_is_silent(self):
        good = '''
        import multiprocessing as mp

        class Pool:
            """Doc."""

            def start(self):
                """Doc."""
                self._p = mp.Process(target=print)
                self._p.start()

            def close(self):
                """Doc."""
                self._p.terminate()
                self._p.join()
        '''
        assert fired(good, "unreaped-process") == []


# --------------------------------------------------------------------- #
# API surface
# --------------------------------------------------------------------- #
class TestApiSurfaceRules:
    def test_all_listing_undefined_name_fires(self):
        bad = '''
        __all__ = ["missing_thing"]
        '''
        assert fired(bad, "all-undefined-name") == [2]

    def test_all_listing_defined_name_is_silent(self):
        good = '''
        __all__ = ["present"]

        def present():
            """Doc."""
        '''
        assert fired(good, "all-undefined-name") == []

    def test_unexported_reexport_in_init_fires(self):
        bad = '''
        from .mod import Thing

        __all__ = []
        '''
        assert fired(bad, "missing-reexport", path="src/repro/pkg/__init__.py") == [2]

    def test_exported_reexport_is_silent(self):
        good = '''
        from .mod import Thing

        __all__ = ["Thing"]
        '''
        assert (
            fired(good, "missing-reexport", path="src/repro/pkg/__init__.py") == []
        )

    # missing-docstring exempts underscore-named modules, so these three
    # use a public module path instead of lint_text's _snippet.py default.
    def test_public_function_without_docstring_fires(self):
        bad = '''
        def public():
            return 1
        '''
        assert fired(bad, "missing-docstring",
                     path="src/repro/snippet.py") == [2]

    def test_documented_function_is_silent(self):
        good = '''
        def public():
            """Doc."""
            return 1
        '''
        assert fired(good, "missing-docstring",
                     path="src/repro/snippet.py") == []

    def test_override_of_documented_ancestor_is_silent(self):
        good = '''
        class Base:
            """Doc."""

            def fit(self, X, y):
                """Fit."""

        class Child(Base):
            """Doc."""

            def fit(self, X, y):
                return self
        '''
        assert fired(good, "missing-docstring",
                     path="src/repro/snippet.py") == []

    def test_underscore_module_is_docstring_exempt(self):
        assert fired("def public():\n    return 1\n", "missing-docstring",
                     path="src/repro/_private.py") == []

    def test_rule_is_scoped_to_src(self):
        assert fired("def f():\n    return 1\n", "missing-docstring",
                     path="tests/_snippet.py") == []


# --------------------------------------------------------------------- #
# engine: pragmas, syntax errors, baseline
# --------------------------------------------------------------------- #
class TestPragmas:
    BAD = '''
    import numpy as np

    def sample():
        """Doc."""
        return np.random.rand(3)
    '''

    def test_same_line_disable_suppresses(self):
        suppressed = self.BAD.replace(
            "np.random.rand(3)",
            "np.random.rand(3)  # repro-lint: disable=unseeded-rng",
        )
        assert fired(self.BAD, "unseeded-rng") == [6]
        assert fired(suppressed, "unseeded-rng") == []

    def test_disable_on_other_line_does_not_suppress(self):
        elsewhere = self.BAD.replace(
            '"""Doc."""',
            '"""Doc."""\n    # repro-lint: disable=unseeded-rng',
        )
        assert fired(elsewhere, "unseeded-rng") != []

    def test_disable_file_suppresses_every_occurrence(self):
        text = textwrap.dedent('''
        # repro-lint: disable-file=unseeded-rng
        import numpy as np

        def sample():
            """Doc."""
            return np.random.rand(3) + np.random.rand(3)
        ''')
        assert [f for f in lint_text(text) if f.rule == "unseeded-rng"] == []

    def test_unknown_rule_in_pragma_is_a_finding(self):
        assert fired(
            "x = 1  # repro-lint: disable=not-a-rule\n", "bad-pragma"
        ) == [1]

    def test_syntax_error_is_a_finding_not_a_crash(self):
        assert fired("def f(:\n", "syntax-error") == [1]


class TestBaseline:
    def findings(self):
        return lint_text(textwrap.dedent(TestPragmas.BAD))

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = self.findings()
        assert findings, "fixture must produce findings"
        written = write_baseline(findings, path)
        assert load_baseline(path) == written

    def test_baselined_findings_are_subtracted(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = self.findings()
        write_baseline(findings, path)
        remaining, suppressed, stale = apply_baseline(
            findings, load_baseline(path)
        )
        assert remaining == []
        assert suppressed == len(findings)
        assert stale == []

    def test_stale_entries_are_reported_not_fatal(self):
        findings = self.findings()
        baseline = {"unseeded-rng::src/repro/gone.py::stale message": 1}
        remaining, suppressed, stale = apply_baseline(findings, baseline)
        assert remaining == findings
        assert suppressed == 0
        assert stale == ["unseeded-rng::src/repro/gone.py::stale message"]

    def test_new_findings_survive_the_baseline(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(self.findings(), path)
        doubled = lint_text(textwrap.dedent('''
        import numpy as np

        def sample():
            """Doc."""
            return np.random.rand(3)

        def sample2():
            """Doc."""
            return np.random.standard_normal(3)
        '''))
        remaining, suppressed, _ = apply_baseline(doubled, load_baseline(path))
        assert suppressed == 1
        assert [f.line for f in remaining] == [10]


# --------------------------------------------------------------------- #
# the tree is clean
# --------------------------------------------------------------------- #
class TestTreeIsClean:
    def test_src_repro_is_clean_under_every_ast_checker(self):
        """The sweep's end state: zero findings over src/repro with NO
        baseline help (the shipped baseline is empty for src/repro)."""
        checkers = [c for c in default_checkers() if c.name != "registry"]
        result = lint_paths([str(REPO_ROOT / "src")], checkers)
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )

    def test_shipped_baseline_is_empty_for_src_repro(self):
        baseline = load_baseline()
        assert not [k for k in baseline if "src/repro" in k]

    def test_rule_catalogue_covers_the_five_contract_areas(self):
        checkers = default_checkers()
        names = {c.name for c in checkers}
        assert {"concurrency", "determinism", "exceptions",
                "lifecycle", "api", "registry", "telemetry"} <= names
        rules = known_rules(checkers)
        for rule in (
            "lock-blocking-call", "lock-acquire-discipline",
            "lock-order-cycle", "unseeded-rng", "wall-clock-deadline",
            "bare-except", "swallowed-exception", "untyped-public-raise",
            "unjoined-thread", "unreaped-process", "all-undefined-name",
            "missing-reexport", "missing-docstring", "registry-drift",
            "syntax-error", "bad-pragma", "raw-latency-timing",
        ):
            assert rule in rules, rule


# --------------------------------------------------------------------- #
# the runner
# --------------------------------------------------------------------- #
class TestRunner:
    def run(self, *argv):
        return subprocess.run(
            [sys.executable, RUNNER, *argv],
            capture_output=True, text=True, cwd=str(REPO_ROOT),
        )

    def test_clean_tree_exits_zero(self, tmp_path):
        out = str(tmp_path / "report.json")
        proc = self.run("src", "--skip", "registry", "--format=json",
                        "--out", out)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        report = json.loads(pathlib.Path(out).read_text())
        assert report["summary"]["total"] == 0

    def test_deliberate_violation_fails_the_gate(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\nnoise = np.random.rand(10)\n"
        )
        proc = self.run(str(bad), "--no-baseline")
        assert proc.returncode == 1
        assert "unseeded-rng" in proc.stdout

    def test_write_baseline_then_clean(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\nnoise = np.random.rand(10)\n"
        )
        baseline = str(tmp_path / "baseline.json")
        wrote = self.run(str(bad), "--write-baseline", "--baseline", baseline)
        assert wrote.returncode == 0
        again = self.run(str(bad), "--baseline", baseline)
        assert again.returncode == 0, again.stdout + again.stderr

    def test_json_report_schema(self, tmp_path):
        out = str(tmp_path / "report.json")
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\nnoise = np.random.rand(10)\n"
        )
        proc = self.run(str(bad), "--no-baseline", "--format=json",
                        "--out", out)
        assert proc.returncode == 1
        report = json.loads(pathlib.Path(out).read_text())
        assert report["version"] == 1
        assert report["tool"] == "repro-lint"
        assert set(report["summary"]) == {
            "total", "by_rule", "pragma_suppressed",
            "baseline_suppressed", "baseline_stale",
        }
        (finding,) = [
            f for f in report["findings"] if f["rule"] == "unseeded-rng"
        ]
        assert {"rule", "path", "line", "message"} <= set(finding)
        assert finding["line"] == 3
        assert report["summary"]["by_rule"]["unseeded-rng"] == 1

    def test_unknown_checker_is_a_usage_error(self):
        proc = self.run("--skip", "nonsense")
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = self.run("--list-rules")
        assert proc.returncode == 0
        assert "unseeded-rng" in proc.stdout
        assert "lock-order-cycle" in proc.stdout


# --------------------------------------------------------------------- #
# the sweep's behaviour-visible fixes
# --------------------------------------------------------------------- #
class TestSweepRegressions:
    """The exception-contract sweep replaced public RuntimeError /
    TimeoutError raises in the serving plane with typed library
    exceptions. Each new type subclasses both ReproError and the builtin
    it replaced, so pre-typed callers (`except RuntimeError`) keep
    working — pinned here."""

    def test_new_exception_types_subclass_their_builtins(self):
        from repro.exceptions import (
            FleetTimeoutError,
            ReproError,
            ServerClosedError,
            SwapFailedError,
            UnsupportedPlatformError,
        )

        assert issubclass(ServerClosedError, ReproError)
        assert issubclass(ServerClosedError, RuntimeError)
        assert issubclass(UnsupportedPlatformError, ReproError)
        assert issubclass(UnsupportedPlatformError, RuntimeError)
        assert issubclass(SwapFailedError, ReproError)
        assert issubclass(SwapFailedError, RuntimeError)
        assert issubclass(FleetTimeoutError, ReproError)
        assert issubclass(FleetTimeoutError, TimeoutError)

    def test_new_exception_types_are_exported(self):
        import repro

        for name in ("FleetTimeoutError", "ServerClosedError",
                     "SwapFailedError", "UnsupportedPlatformError"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_closed_server_raises_typed_error(self):
        import numpy as np

        from repro.core import SelfPacedEnsembleClassifier
        from repro.datasets import make_checkerboard
        from repro.exceptions import ServerClosedError
        from repro.serving import ModelServer

        X, y = make_checkerboard(
            n_minority=30, n_majority=300, random_state=0
        )
        clf = SelfPacedEnsembleClassifier(
            n_estimators=2, random_state=0
        ).fit(X, y)
        server = ModelServer(clf)
        server.close()
        with pytest.raises(ServerClosedError, match="closed"):
            server.submit(np.asarray(X[:4]))
        # Backward compatibility: the old catch still works.
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(np.asarray(X[:4]))
