"""Backend equivalence: parallelism must never change model output.

Every ensemble that exposes ``n_jobs`` / ``backend`` must produce
bit-identical ``predict_proba`` for the serial, thread, and process
backends (and any worker count) under a fixed ``random_state``.
"""

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier
from repro.ensemble import BaggingClassifier, RandomForestClassifier
from repro.imbalance_ensemble import (
    BalanceCascadeClassifier,
    EasyEnsembleClassifier,
    ResampleEnsembleClassifier,
    SMOTEBaggingClassifier,
    UnderBaggingClassifier,
)
from repro.sampling import RandomUnderSampler
from repro.tree import DecisionTreeClassifier

BACKENDS = ("serial", "thread", "process")


def _base():
    return DecisionTreeClassifier(max_depth=4, random_state=0)


def _fit_proba(factory, X, y, backend, n_jobs):
    model = factory(backend=backend, n_jobs=n_jobs).fit(X, y)
    return model.predict_proba(X)


FACTORIES = {
    "spe": lambda **kw: SelfPacedEnsembleClassifier(
        _base(), n_estimators=5, random_state=7, **kw
    ),
    "bagging": lambda **kw: BaggingClassifier(
        _base(), n_estimators=5, random_state=7, **kw
    ),
    "forest": lambda **kw: RandomForestClassifier(
        n_estimators=5, max_depth=4, random_state=7, **kw
    ),
    "under_bagging": lambda **kw: UnderBaggingClassifier(
        _base(), n_estimators=5, random_state=7, **kw
    ),
    "smote_bagging": lambda **kw: SMOTEBaggingClassifier(
        _base(), n_estimators=3, random_state=7, **kw
    ),
    "easy_ensemble": lambda **kw: EasyEnsembleClassifier(
        n_estimators=3, n_boost_rounds=3, random_state=7, **kw
    ),
    "resample_ensemble": lambda **kw: ResampleEnsembleClassifier(
        sampler=RandomUnderSampler(),
        estimator=_base(),
        n_estimators=4,
        random_state=7,
        **kw,
    ),
    "balance_cascade": lambda **kw: BalanceCascadeClassifier(
        _base(), n_estimators=4, random_state=7, **kw
    ),
}


@pytest.mark.parametrize("name", ["spe", "bagging"])
@pytest.mark.parametrize("backend", BACKENDS)
def test_backends_bit_identical_core(name, backend, imbalanced_data):
    """The issue's headline guarantee, on SPE and Bagging for every backend."""
    X, y = imbalanced_data
    reference = _fit_proba(FACTORIES[name], X, y, "serial", 1)
    proba = _fit_proba(FACTORIES[name], X, y, backend, 2)
    assert np.array_equal(reference, proba)


@pytest.mark.parametrize(
    "name",
    [
        "forest",
        "under_bagging",
        "smote_bagging",
        "easy_ensemble",
        "resample_ensemble",
        "balance_cascade",
    ],
)
def test_backends_bit_identical_family(name, imbalanced_data):
    """Thread-vs-serial equivalence across the rest of the ensemble family."""
    X, y = imbalanced_data
    reference = _fit_proba(FACTORIES[name], X, y, "serial", 1)
    proba = _fit_proba(FACTORIES[name], X, y, "thread", 4)
    assert np.array_equal(reference, proba)


def test_spe_n_jobs_four_matches_one(imbalanced_data):
    """Acceptance criterion: n_jobs=4 reproduces the n_jobs=1 probabilities."""
    X, y = imbalanced_data
    p1 = (
        SelfPacedEnsembleClassifier(_base(), n_estimators=6, n_jobs=1, random_state=0)
        .fit(X, y)
        .predict_proba(X)
    )
    p4 = (
        SelfPacedEnsembleClassifier(_base(), n_estimators=6, n_jobs=4, random_state=0)
        .fit(X, y)
        .predict_proba(X)
    )
    assert np.allclose(p1, p4)


def test_chunk_size_invariance_spe(imbalanced_data):
    X, y = imbalanced_data
    probas = [
        SelfPacedEnsembleClassifier(
            _base(), n_estimators=4, chunk_size=chunk, random_state=2
        )
        .fit(X, y)
        .predict_proba(X)
        for chunk in (None, 16, 100_000)
    ]
    assert np.array_equal(probas[0], probas[1])
    assert np.array_equal(probas[0], probas[2])
