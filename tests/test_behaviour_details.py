"""Behavioural detail tests: schedules, cascades, Platt scaling, simulators."""

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier, self_paced_under_sample
from repro.datasets import PaymentSimulator
from repro.imbalance_ensemble import BalanceCascadeClassifier
from repro.svm.svc import _fit_platt, _platt_proba
from repro.tree import DecisionTreeClassifier, export_text


class TestCascadeSchedule:
    def test_pool_follows_geometric_keep_rate(self):
        """|N_i| ≈ |N| * f^i with f = (|P|/|N|)^(1/(T-1)) — Liu et al. 2009."""
        rng = np.random.RandomState(0)
        n_maj, n_min, T = 1000, 50, 5
        X = np.vstack([rng.randn(n_maj, 2), rng.randn(n_min, 2) + 3])
        y = np.concatenate([np.zeros(n_maj, int), np.ones(n_min, int)])
        model = BalanceCascadeClassifier(
            DecisionTreeClassifier(max_depth=4, random_state=0),
            n_estimators=T,
            random_state=0,
        ).fit(X, y)
        f = (n_min / n_maj) ** (1.0 / (T - 1))
        for i, size in enumerate(model.pool_sizes_):
            expected = max(n_min, round(n_maj * f**i))
            assert size == pytest.approx(expected, abs=2)


class TestSelfPacedSamplingBudget:
    def test_request_exceeding_population(self, rng):
        h = rng.uniform(size=30)
        idx, _ = self_paced_under_sample(h, 5, 0.5, 100, rng)
        assert len(idx) == 30  # capped at the population

    def test_no_duplicates_across_bins(self, rng):
        h = rng.uniform(size=500)
        idx, _ = self_paced_under_sample(h, 10, 0.3, 200, rng)
        assert len(np.unique(idx)) == len(idx)


class TestPlattScaling:
    def test_probability_ordering(self):
        decision = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        y = np.array([0, 0, 0, 1, 1])
        A, B = _fit_platt(decision, y)
        proba = _platt_proba(decision, A, B)
        assert (np.diff(proba) > 0).all()  # monotone in the decision value

    def test_probabilities_bracket_half(self):
        decision = np.concatenate([np.full(20, -2.0), np.full(20, 2.0)])
        y = np.concatenate([np.zeros(20, int), np.ones(20, int)])
        A, B = _fit_platt(decision, y)
        proba = _platt_proba(decision, A, B)
        assert proba[:20].max() < 0.5 < proba[20:].min()


class TestPaymentSimulatorKnobs:
    def test_full_drain_mode(self):
        """partial_drain_fraction=0 makes every fraud a full balance theft."""
        sim = PaymentSimulator(
            n_customers=200, fraud_rate=0.05, partial_drain_fraction=0.0,
            random_state=0,
        )
        X, y = sim.simulate(5000)
        transfer_frauds = (y == 1) & (X[:, 1] == 4)  # TRANSFER rows
        assert transfer_frauds.any()
        # drainRatio column: full drains have ratio 1.
        assert np.allclose(X[transfer_frauds, 10], 1.0)

    def test_partial_drain_mode_has_sub_unit_ratios(self):
        sim = PaymentSimulator(
            n_customers=200, fraud_rate=0.05, partial_drain_fraction=1.0,
            random_state=0,
        )
        X, y = sim.simulate(5000)
        transfer_frauds = (y == 1) & (X[:, 1] == 4)
        assert (X[transfer_frauds, 10] < 1.0 - 1e-9).any()


class TestExportTextDepthLimit:
    def test_truncation_marker(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=6, random_state=0).fit(X, y)
        if clf.tree_.max_depth >= 2:
            text = export_text(clf, max_depth=1)
            assert "(truncated)" in text


class TestSPEWithEvalSetCurveImproves:
    def test_curve_trends_upward(self, imbalanced_data):
        """On learnable data, the running-ensemble AUCPRC should improve
        from the first to the best iteration."""
        X, y = imbalanced_data
        spe = SelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=4, random_state=0),
            n_estimators=8,
            random_state=0,
        )
        spe.fit(X[:330], y[:330], eval_set=(X[330:], y[330:]))
        assert max(spe.train_curve_) >= spe.train_curve_[0]
