"""Tests for canonical ensembles: Bagging, Random Forest, AdaBoost, GBDT."""

import numpy as np
import pytest

from repro.base import clone
from repro.ensemble import (
    AdaBoostClassifier,
    BaggingClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
    average_ensemble_proba,
    fit_supports_sample_weight,
)
from repro.neighbors import KNeighborsClassifier
from repro.tree import DecisionTreeClassifier


class TestAverageEnsembleProba:
    def test_aligns_partial_classes(self, binary_blobs):
        X, y = binary_blobs
        full = DecisionTreeClassifier(max_depth=2).fit(X, y)
        only_zero = DecisionTreeClassifier(max_depth=2).fit(X[:5], np.zeros(5, int))
        proba = average_ensemble_proba([full, only_zero], X[:4], np.array([0, 1]))
        assert proba.shape == (4, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestBagging:
    def test_improves_over_stump(self, binary_blobs):
        X, y = binary_blobs
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        bag = BaggingClassifier(
            DecisionTreeClassifier(max_depth=4), n_estimators=10, random_state=0
        ).fit(X, y)
        assert bag.score(X, y) >= stump.score(X, y)

    def test_n_estimators(self, binary_blobs):
        X, y = binary_blobs
        bag = BaggingClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(bag.estimators_) == 7

    def test_max_samples(self, binary_blobs):
        X, y = binary_blobs
        bag = BaggingClassifier(
            DecisionTreeClassifier(max_depth=2),
            n_estimators=3,
            max_samples=0.5,
            random_state=0,
        ).fit(X, y)
        assert len(bag.estimators_) == 3

    def test_invalid_params(self, binary_blobs):
        X, y = binary_blobs
        with pytest.raises(ValueError):
            BaggingClassifier(n_estimators=0).fit(X, y)
        with pytest.raises(ValueError):
            BaggingClassifier(max_samples=0.0).fit(X, y)

    def test_default_base_is_tree(self, binary_blobs):
        X, y = binary_blobs
        bag = BaggingClassifier(n_estimators=2, random_state=0).fit(X, y)
        assert isinstance(bag.estimators_[0], DecisionTreeClassifier)


class TestRandomForest:
    def test_accuracy(self, binary_blobs):
        X, y = binary_blobs
        rf = RandomForestClassifier(n_estimators=10, max_depth=6, random_state=0)
        assert rf.fit(X, y).score(X, y) > 0.9

    def test_feature_importances_normalised(self, binary_blobs):
        X, y = binary_blobs
        rf = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert rf.feature_importances_.sum() == pytest.approx(1.0)

    def test_deterministic(self, binary_blobs):
        X, y = binary_blobs
        p1 = RandomForestClassifier(5, random_state=3).fit(X, y).predict_proba(X)
        p2 = RandomForestClassifier(5, random_state=3).fit(X, y).predict_proba(X)
        assert np.allclose(p1, p2)

    def test_trees_differ(self, binary_blobs):
        """Bootstrap + feature subsampling must decorrelate the trees."""
        X, y = binary_blobs
        rf = RandomForestClassifier(n_estimators=5, max_depth=3, random_state=0)
        rf.fit(X, y)
        preds = [t.predict_proba(X)[:, 1] for t in rf.estimators_]
        assert any(not np.allclose(preds[0], p) for p in preds[1:])


class TestAdaBoost:
    def test_boosting_beats_single_weak_learner(self):
        """Boosting depth-2 trees must beat one depth-2 tree on a problem a
        single weak learner cannot capture (stumps are useless on XOR, so the
        weak learner here is depth 2)."""
        rng = np.random.RandomState(0)
        X = rng.uniform(-1, 1, size=(800, 2))
        y = (np.sin(3 * X[:, 0]) + 0.5 * np.sign(X[:, 1]) > 0).astype(int)
        weak = DecisionTreeClassifier(max_depth=2).fit(X, y)
        boost = AdaBoostClassifier(
            DecisionTreeClassifier(max_depth=2), n_estimators=25, random_state=0
        ).fit(X, y)
        assert boost.score(X, y) > weak.score(X, y) + 0.05

    def test_samme_r_runs(self, binary_blobs):
        X, y = binary_blobs
        boost = AdaBoostClassifier(
            DecisionTreeClassifier(max_depth=2),
            n_estimators=5,
            algorithm="SAMME.R",
            random_state=0,
        ).fit(X, y)
        assert boost.score(X, y) > 0.85

    def test_perfect_learner_short_circuit(self, binary_blobs):
        X, y = binary_blobs
        boost = AdaBoostClassifier(
            DecisionTreeClassifier(max_depth=None), n_estimators=10, random_state=0
        ).fit(X, y)
        assert len(boost.estimators_) <= 10

    def test_weightless_base_resampled(self, binary_blobs):
        """KNN has no sample_weight support; AdaBoost must still work."""
        X, y = binary_blobs
        assert not fit_supports_sample_weight(KNeighborsClassifier())
        boost = AdaBoostClassifier(
            KNeighborsClassifier(n_neighbors=3), n_estimators=3, random_state=0
        ).fit(X, y)
        assert boost.score(X, y) > 0.8

    def test_estimator_weights_positive(self, binary_blobs):
        X, y = binary_blobs
        boost = AdaBoostClassifier(
            DecisionTreeClassifier(max_depth=1), n_estimators=5, random_state=0
        ).fit(X, y)
        assert all(w > 0 for w in boost.estimator_weights_)

    def test_invalid_algorithm(self, binary_blobs):
        X, y = binary_blobs
        with pytest.raises(ValueError):
            AdaBoostClassifier(algorithm="SAMME.X").fit(X, y)

    def test_proba_valid(self, binary_blobs):
        X, y = binary_blobs
        proba = (
            AdaBoostClassifier(n_estimators=5, random_state=0)
            .fit(X, y)
            .predict_proba(X)
        )
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()


class TestGBDT:
    def test_loss_decreases_with_rounds(self, binary_blobs):
        X, y = binary_blobs
        gbdt = GradientBoostingClassifier(n_estimators=30, random_state=0).fit(X, y)
        assert gbdt.train_loss_[-1] < gbdt.train_loss_[0]

    def test_learns_nonlinear(self):
        rng = np.random.RandomState(0)
        X = rng.uniform(-1, 1, size=(600, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        gbdt = GradientBoostingClassifier(
            n_estimators=50, learning_rate=0.2, random_state=0
        ).fit(X, y)
        assert gbdt.score(X, y) > 0.93

    def test_early_stopping(self, binary_blobs):
        X, y = binary_blobs
        gbdt = GradientBoostingClassifier(
            n_estimators=300, early_stopping_rounds=3, random_state=0
        )
        gbdt.fit(X[:200], y[:200], eval_set=(X[200:], y[200:]))
        assert len(gbdt.trees_) < 300

    def test_eval_loss_recorded(self, binary_blobs):
        X, y = binary_blobs
        gbdt = GradientBoostingClassifier(n_estimators=10, random_state=0)
        gbdt.fit(X[:200], y[:200], eval_set=(X[200:], y[200:]))
        assert len(gbdt.valid_loss_) == 10

    def test_subsample(self, binary_blobs):
        X, y = binary_blobs
        gbdt = GradientBoostingClassifier(
            n_estimators=10, subsample=0.5, random_state=0
        ).fit(X, y)
        assert gbdt.score(X, y) > 0.85

    def test_invalid_subsample(self, binary_blobs):
        X, y = binary_blobs
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0).fit(X, y)

    def test_sample_weight(self, binary_blobs):
        X, y = binary_blobs
        w = np.where(y == 1, 10.0, 1.0)
        gbdt = GradientBoostingClassifier(n_estimators=10, random_state=0)
        gbdt.fit(X, y, sample_weight=w)
        assert gbdt.score(X, y) > 0.8

    def test_staged_decision(self, binary_blobs):
        X, y = binary_blobs
        gbdt = GradientBoostingClassifier(n_estimators=5, random_state=0).fit(X, y)
        stages = list(gbdt.staged_decision_function(X[:3]))
        assert len(stages) == 5
        assert np.allclose(stages[-1], gbdt.decision_function(X[:3]))

    def test_multiclass_rejected(self, rng):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(rng.randn(9, 2), [0, 1, 2] * 3)

    def test_clone(self):
        gbdt = GradientBoostingClassifier(n_estimators=7, learning_rate=0.05)
        copy = clone(gbdt)
        assert copy.n_estimators == 7 and copy.learning_rate == 0.05
