"""Tests for the baseline imbalance ensembles (paper Sections III & VI)."""

import numpy as np
import pytest

from repro.imbalance_ensemble import (
    BalanceCascadeClassifier,
    EasyEnsembleClassifier,
    ResampleEnsembleClassifier,
    RUSBoostClassifier,
    SMOTEBaggingClassifier,
    SMOTEBoostClassifier,
    UnderBaggingClassifier,
    random_balanced_subset,
)
from repro.metrics import evaluate_classifier
from repro.sampling import RandomUnderSampler
from repro.tree import DecisionTreeClassifier

ALL_ENSEMBLES = [
    EasyEnsembleClassifier,
    BalanceCascadeClassifier,
    RUSBoostClassifier,
    SMOTEBoostClassifier,
    UnderBaggingClassifier,
    SMOTEBaggingClassifier,
]


def _base():
    return DecisionTreeClassifier(max_depth=5, random_state=0)


class TestRandomBalancedSubset:
    def test_balanced(self, imbalanced_data, rng):
        X, y = imbalanced_data
        maj = np.flatnonzero(y == 0)
        mino = np.flatnonzero(y == 1)
        X_bag, y_bag = random_balanced_subset(X, y, maj, mino, rng)
        assert (y_bag == 0).sum() == (y_bag == 1).sum() == len(mino)


@pytest.mark.parametrize("cls", ALL_ENSEMBLES)
class TestCommonContract:
    def test_fit_predict_proba(self, cls, imbalanced_data):
        X, y = imbalanced_data
        model = cls(estimator=_base(), n_estimators=5, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(y), 2)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_better_than_chance(self, cls, imbalanced_data):
        X, y = imbalanced_data
        model = cls(estimator=_base(), n_estimators=5, random_state=0).fit(X, y)
        scores = evaluate_classifier(model, X, y)
        assert scores["AUCPRC"] > 0.3  # prevalence is ~0.09

    def test_training_sample_accounting(self, cls, imbalanced_data):
        X, y = imbalanced_data
        model = cls(estimator=_base(), n_estimators=5, random_state=0).fit(X, y)
        assert model.n_training_samples_ > 0

    def test_deterministic(self, cls, imbalanced_data):
        X, y = imbalanced_data
        p1 = cls(estimator=_base(), n_estimators=3, random_state=7).fit(X, y).predict_proba(X)
        p2 = cls(estimator=_base(), n_estimators=3, random_state=7).fit(X, y).predict_proba(X)
        assert np.allclose(p1, p2)

    def test_rejects_multiclass(self, cls, rng):
        X = rng.randn(30, 2)
        y = np.arange(30) % 3
        with pytest.raises(Exception):
            cls(estimator=_base(), n_estimators=2).fit(X, y)

    def test_invalid_n_estimators(self, cls, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError):
            cls(estimator=_base(), n_estimators=0).fit(X, y)


class TestUnderBagging:
    def test_sample_budget(self, imbalanced_data):
        """Each bag is 2|P|; total = n_estimators * 2|P| (Table VI #Sample)."""
        X, y = imbalanced_data
        n_min = int((y == 1).sum())
        model = UnderBaggingClassifier(_base(), n_estimators=5, random_state=0).fit(X, y)
        assert model.n_training_samples_ == 5 * 2 * n_min


class TestEasyEnsemble:
    def test_boosted_bags(self, imbalanced_data):
        X, y = imbalanced_data
        model = EasyEnsembleClassifier(
            DecisionTreeClassifier(max_depth=2),
            n_estimators=3,
            n_boost_rounds=5,
            random_state=0,
        ).fit(X, y)
        from repro.ensemble import AdaBoostClassifier

        assert all(isinstance(m, AdaBoostClassifier) for m in model.estimators_)

    def test_plain_mode_equals_underbagging_structure(self, imbalanced_data):
        X, y = imbalanced_data
        model = EasyEnsembleClassifier(
            _base(), n_estimators=3, n_boost_rounds=1, random_state=0
        ).fit(X, y)
        assert all(isinstance(m, DecisionTreeClassifier) for m in model.estimators_)


class TestBalanceCascade:
    def test_pool_shrinks_geometrically(self, imbalanced_data):
        X, y = imbalanced_data
        model = BalanceCascadeClassifier(_base(), n_estimators=5, random_state=0)
        model.fit(X, y)
        sizes = model.pool_sizes_
        assert all(sizes[i] >= sizes[i + 1] for i in range(len(sizes) - 1))
        assert sizes[-1] < sizes[0]

    def test_final_pool_near_minority_size(self, imbalanced_data):
        X, y = imbalanced_data
        n_min = int((y == 1).sum())
        model = BalanceCascadeClassifier(_base(), n_estimators=5, random_state=0)
        model.fit(X, y)
        assert model.pool_sizes_[-1] <= 2 * n_min + 1

    def test_train_curve_with_eval_set(self, imbalanced_data):
        X, y = imbalanced_data
        model = BalanceCascadeClassifier(_base(), n_estimators=4, random_state=0)
        model.fit(X[:300], y[:300], eval_set=(X[300:], y[300:]))
        assert len(model.train_curve_) == 4

    def test_single_estimator(self, imbalanced_data):
        X, y = imbalanced_data
        model = BalanceCascadeClassifier(_base(), n_estimators=1, random_state=0)
        assert len(model.fit(X, y).estimators_) == 1


class TestBoostingVariants:
    def test_rusboost_uses_balanced_subsets(self, imbalanced_data):
        X, y = imbalanced_data
        n_min = int((y == 1).sum())
        model = RUSBoostClassifier(_base(), n_estimators=4, random_state=0).fit(X, y)
        assert model.n_training_samples_ <= 4 * 2 * n_min

    def test_smoteboost_uses_full_data_plus_synthetics(self, imbalanced_data):
        X, y = imbalanced_data
        n_min = int((y == 1).sum())
        model = SMOTEBoostClassifier(_base(), n_estimators=3, random_state=0).fit(X, y)
        expected_per_round = len(y) + n_min
        assert model.n_training_samples_ >= 3 * len(y)
        assert model.n_training_samples_ <= 3 * expected_per_round

    def test_estimator_weights_exist(self, imbalanced_data):
        X, y = imbalanced_data
        for cls in (RUSBoostClassifier, SMOTEBoostClassifier):
            model = cls(_base(), n_estimators=3, random_state=0).fit(X, y)
            assert len(model.estimator_weights_) == len(model.estimators_)


class TestSMOTEBagging:
    def test_bags_are_double_majority(self, imbalanced_data):
        X, y = imbalanced_data
        n_maj = int((y == 0).sum())
        model = SMOTEBaggingClassifier(_base(), n_estimators=3, random_state=0).fit(X, y)
        assert model.n_training_samples_ == 3 * 2 * n_maj


class TestResampleEnsemble:
    def test_generic_sampler_wrap(self, imbalanced_data):
        X, y = imbalanced_data
        model = ResampleEnsembleClassifier(
            sampler=RandomUnderSampler(),
            estimator=_base(),
            n_estimators=4,
            random_state=0,
        ).fit(X, y)
        assert len(model.estimators_) == 4

    def test_requires_sampler(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError):
            ResampleEnsembleClassifier(estimator=_base()).fit(X, y)
