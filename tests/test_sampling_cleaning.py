"""Tests for cleaning under-samplers: Tomek, ENN, AllKNN, OSS, NCR."""

import numpy as np
import pytest

from repro.sampling import (
    AllKNN,
    EditedNearestNeighbours,
    NeighbourhoodCleaningRule,
    OneSidedSelection,
    TomekLinks,
)


def _noisy_data(seed=0):
    """Separated blobs plus majority outliers planted inside the minority."""
    rng = np.random.RandomState(seed)
    maj = rng.randn(200, 2)
    mino = rng.randn(40, 2) * 0.5 + np.array([4.0, 4.0])
    outliers = rng.randn(5, 2) * 0.2 + np.array([4.0, 4.0])  # majority noise
    X = np.vstack([maj, outliers, mino])
    y = np.concatenate([np.zeros(205, dtype=int), np.ones(40, dtype=int)])
    return X, y, np.arange(200, 205)  # outlier indices


class TestTomekLinks:
    def test_removes_only_majority(self):
        X, y, _ = _noisy_data()
        Xr, yr = TomekLinks().fit_resample(X, y)
        assert (yr == 1).sum() == 40
        assert (yr == 0).sum() <= 205

    def test_planted_outliers_removed(self):
        X, y, outlier_idx = _noisy_data()
        sampler = TomekLinks()
        sampler.fit_resample(X, y)
        removed = set(range(len(y))) - set(sampler.sample_indices_.tolist())
        # At least one planted outlier participates in a Tomek link.
        assert removed & set(outlier_idx.tolist())

    def test_clean_data_untouched(self):
        rng = np.random.RandomState(1)
        X = np.vstack([rng.randn(50, 2) - 10, rng.randn(10, 2) + 10])
        y = np.concatenate([np.zeros(50, int), np.ones(10, int)])
        Xr, yr = TomekLinks().fit_resample(X, y)
        assert len(yr) == 60


class TestENN:
    def test_removes_contradicted_majority(self):
        X, y, outlier_idx = _noisy_data()
        sampler = EditedNearestNeighbours(n_neighbors=3)
        _, yr = sampler.fit_resample(X, y)
        removed = set(range(len(y))) - set(sampler.sample_indices_.tolist())
        assert set(outlier_idx.tolist()) <= removed

    def test_minority_never_removed(self):
        X, y, _ = _noisy_data()
        _, yr = EditedNearestNeighbours().fit_resample(X, y)
        assert (yr == 1).sum() == 40

    def test_kind_sel_all_more_aggressive(self):
        X, y, _ = _noisy_data(seed=3)
        n_mode = len(EditedNearestNeighbours(kind_sel="mode").fit_resample(X, y)[1])
        n_all = len(EditedNearestNeighbours(kind_sel="all").fit_resample(X, y)[1])
        assert n_all <= n_mode

    def test_invalid_kind_sel(self):
        X, y, _ = _noisy_data()
        with pytest.raises(ValueError):
            EditedNearestNeighbours(kind_sel="bogus").fit_resample(X, y)


class TestAllKNN:
    def test_removes_at_least_enn1(self):
        X, y, _ = _noisy_data()
        n_allknn = len(AllKNN(n_neighbors=3).fit_resample(X, y)[1])
        n_enn1 = len(EditedNearestNeighbours(n_neighbors=1).fit_resample(X, y)[1])
        assert n_allknn <= n_enn1

    def test_minority_preserved(self):
        X, y, _ = _noisy_data()
        _, yr = AllKNN().fit_resample(X, y)
        assert (yr == 1).sum() == 40


class TestOSS:
    def test_output_smaller(self):
        X, y, _ = _noisy_data()
        _, yr = OneSidedSelection(random_state=0).fit_resample(X, y)
        assert len(yr) < len(y)
        assert (yr == 1).sum() == 40

    def test_subset_of_original_indices(self):
        X, y, _ = _noisy_data()
        sampler = OneSidedSelection(random_state=0)
        Xr, _ = sampler.fit_resample(X, y)
        assert np.allclose(X[sampler.sample_indices_], Xr)


class TestNCR:
    def test_cleans_majority_noise(self):
        X, y, outlier_idx = _noisy_data()
        sampler = NeighbourhoodCleaningRule()
        _, yr = sampler.fit_resample(X, y)
        removed = set(range(len(y))) - set(sampler.sample_indices_.tolist())
        assert set(outlier_idx.tolist()) <= removed

    def test_no_balance_guarantee(self):
        """The paper notes Clean does not balance the classes (MLP fails)."""
        X, y, _ = _noisy_data()
        _, yr = NeighbourhoodCleaningRule().fit_resample(X, y)
        assert (yr == 0).sum() > (yr == 1).sum()

    def test_minority_preserved(self):
        X, y, _ = _noisy_data()
        _, yr = NeighbourhoodCleaningRule().fit_resample(X, y)
        assert (yr == 1).sum() == 40
