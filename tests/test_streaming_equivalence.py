"""Streaming equivalence: out-of-core training must never change the model.

The streaming counterpart of tests/test_parallel_equivalence.py — the
tentpole guarantee of the out-of-core subsystem: with a fixed
``random_state``, ``StreamingSelfPacedEnsembleClassifier`` (``mode="exact"``)
fed any :class:`~repro.streaming.DataSource` produces bit-identical
``predict_proba`` to the in-memory ``SelfPacedEnsembleClassifier``, for any
block size, and ``fit_source`` on the balanced-subset ensembles matches
their ``fit`` the same way.
"""

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier
from repro.imbalance_ensemble import EasyEnsembleClassifier, UnderBaggingClassifier
from repro.metrics import average_precision_score
from repro.streaming import (
    ArraySource,
    CSVSource,
    NPYSource,
    StreamingSelfPacedEnsembleClassifier,
    save_csv,
)
from repro.tree import DecisionTreeClassifier


def _base():
    return DecisionTreeClassifier(max_depth=4, random_state=0)


def _spe_kwargs(**extra):
    return dict(estimator=_base(), n_estimators=5, random_state=7, **extra)


@pytest.fixture
def reference_proba(imbalanced_data):
    X, y = imbalanced_data
    model = SelfPacedEnsembleClassifier(**_spe_kwargs()).fit(X, y)
    return model.predict_proba(X)


class TestStreamingSPEBitIdentical:
    @pytest.mark.parametrize("block_size", [16, 100, 100_000])
    def test_array_source_any_block_size(
        self, imbalanced_data, reference_proba, block_size
    ):
        """The issue's headline guarantee, across block sizes."""
        X, y = imbalanced_data
        model = StreamingSelfPacedEnsembleClassifier(**_spe_kwargs()).fit(
            ArraySource(X, y, block_size=block_size)
        )
        assert np.array_equal(reference_proba, model.predict_proba(X))

    def test_npy_source(self, imbalanced_data, reference_proba, tmp_path):
        X, y = imbalanced_data
        np.save(tmp_path / "x.npy", X)
        np.save(tmp_path / "y.npy", y)
        source = NPYSource(tmp_path / "x.npy", tmp_path / "y.npy", block_size=64)
        model = StreamingSelfPacedEnsembleClassifier(**_spe_kwargs()).fit(source)
        assert np.array_equal(reference_proba, model.predict_proba(X))

    def test_csv_source(self, imbalanced_data, reference_proba, tmp_path):
        """CSV round-trips through %.17g, so even text ingress is bit-exact."""
        X, y = imbalanced_data
        save_csv(tmp_path / "data.csv", X, y)
        source = CSVSource(tmp_path / "data.csv", block_size=97)
        model = StreamingSelfPacedEnsembleClassifier(**_spe_kwargs()).fit(source)
        assert np.array_equal(reference_proba, model.predict_proba(X))

    def test_in_memory_convenience_signature(
        self, imbalanced_data, reference_proba
    ):
        """fit(X, y) wraps an ArraySource and still matches bit-for-bit."""
        X, y = imbalanced_data
        model = StreamingSelfPacedEnsembleClassifier(**_spe_kwargs()).fit(X, y)
        assert np.array_equal(reference_proba, model.predict_proba(X))

    def test_fitted_metadata_matches(self, imbalanced_data):
        X, y = imbalanced_data
        ref = SelfPacedEnsembleClassifier(**_spe_kwargs()).fit(X, y)
        stream = StreamingSelfPacedEnsembleClassifier(**_spe_kwargs()).fit(
            ArraySource(X, y, block_size=50)
        )
        assert np.array_equal(ref.classes_, stream.classes_)
        assert ref.n_training_samples_ == stream.n_training_samples_
        assert ref.n_features_in_ == stream.n_features_in_

    def test_eval_curve_matches(self, imbalanced_data):
        X, y = imbalanced_data
        eval_set = (X[:100], y[:100])
        ref = SelfPacedEnsembleClassifier(**_spe_kwargs()).fit(
            X[100:], y[100:], eval_set=eval_set
        )
        stream = StreamingSelfPacedEnsembleClassifier(**_spe_kwargs()).fit(
            ArraySource(X[100:], y[100:], block_size=64), eval_set=eval_set
        )
        assert ref.train_curve_ == stream.train_curve_

    def test_record_bins_matches(self, imbalanced_data):
        X, y = imbalanced_data
        ref = SelfPacedEnsembleClassifier(**_spe_kwargs(record_bins=True)).fit(X, y)
        stream = StreamingSelfPacedEnsembleClassifier(
            **_spe_kwargs(record_bins=True)
        ).fit(ArraySource(X, y, block_size=33))
        assert len(ref.bin_history_) == len(stream.bin_history_)
        for (a_ref, bins_ref, _), (a_str, bins_str, _) in zip(
            ref.bin_history_, stream.bin_history_
        ):
            assert a_ref == a_str
            assert np.array_equal(bins_ref.populations, bins_str.populations)


class TestFitSourceBitIdentical:
    def test_under_bagging(self, imbalanced_data):
        X, y = imbalanced_data
        ref = UnderBaggingClassifier(_base(), n_estimators=5, random_state=7).fit(X, y)
        src = UnderBaggingClassifier(_base(), n_estimators=5, random_state=7)
        src.fit_source(ArraySource(X, y, block_size=64))
        assert np.array_equal(ref.predict_proba(X), src.predict_proba(X))
        assert ref.n_training_samples_ == src.n_training_samples_

    def test_easy_ensemble(self, imbalanced_data):
        X, y = imbalanced_data
        ref = EasyEnsembleClassifier(
            n_estimators=3, n_boost_rounds=3, random_state=7
        ).fit(X, y)
        src = EasyEnsembleClassifier(
            n_estimators=3, n_boost_rounds=3, random_state=7
        )
        src.fit_source(ArraySource(X, y, block_size=100))
        assert np.array_equal(ref.predict_proba(X), src.predict_proba(X))

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_under_bagging_every_backend(self, imbalanced_data, backend):
        """Sources ride the parallel engine: all backends, same bits."""
        X, y = imbalanced_data
        ref = UnderBaggingClassifier(_base(), n_estimators=4, random_state=3).fit(X, y)
        src = UnderBaggingClassifier(
            _base(), n_estimators=4, random_state=3, backend=backend, n_jobs=2
        )
        src.fit_source(ArraySource(X, y, block_size=128))
        assert np.array_equal(ref.predict_proba(X), src.predict_proba(X))

    def test_npy_source_under_bagging(self, imbalanced_data, tmp_path):
        X, y = imbalanced_data
        np.save(tmp_path / "x.npy", X)
        np.save(tmp_path / "y.npy", y)
        ref = UnderBaggingClassifier(_base(), n_estimators=4, random_state=1).fit(X, y)
        src = UnderBaggingClassifier(_base(), n_estimators=4, random_state=1)
        src.fit_source(NPYSource(tmp_path / "x.npy", tmp_path / "y.npy"))
        assert np.array_equal(ref.predict_proba(X), src.predict_proba(X))

    def test_unsupported_ensembles_raise(self, imbalanced_data):
        from repro.imbalance_ensemble import BalanceCascadeClassifier

        X, y = imbalanced_data
        with pytest.raises(NotImplementedError):
            BalanceCascadeClassifier(_base()).fit_source(ArraySource(X, y))

    def test_counts_only_scan_rejected(self, imbalanced_data):
        """A scan without index maps cannot drive fit_source — explicit
        error instead of training on corrupted metadata."""
        from repro.streaming import class_index_scan

        X, y = imbalanced_data
        source = ArraySource(X, y)
        scan = class_index_scan(source, collect_indices=False)
        with pytest.raises(ValueError, match="collect_indices"):
            UnderBaggingClassifier(_base()).fit_source(source, scan=scan)


class TestDatasetAsSource:
    def test_as_source_round_trips_into_streaming_fit(self):
        from repro.datasets import load_dataset

        ds = load_dataset("checkerboard", scale=0.1, random_state=0)
        ref = SelfPacedEnsembleClassifier(**_spe_kwargs()).fit(ds.X, ds.y)
        stream = StreamingSelfPacedEnsembleClassifier(**_spe_kwargs()).fit(
            ds.as_source(block_size=128)
        )
        assert np.array_equal(
            ref.predict_proba(ds.X), stream.predict_proba(ds.X)
        )


class TestReservoirMode:
    """mode="reservoir" is statistically faithful, not bit-identical."""

    def test_trains_and_scores_reasonably(self, imbalanced_data):
        X, y = imbalanced_data
        model = StreamingSelfPacedEnsembleClassifier(
            **_spe_kwargs(mode="reservoir")
        ).fit(ArraySource(X, y, block_size=64))
        assert len(model.estimators_) == 5
        score = average_precision_score(y, model.predict_proba(X)[:, 1])
        prevalence = float((y == 1).mean())
        assert score > 2 * prevalence

    def test_deterministic_given_seed(self, imbalanced_data):
        X, y = imbalanced_data
        probas = [
            StreamingSelfPacedEnsembleClassifier(**_spe_kwargs(mode="reservoir"))
            .fit(ArraySource(X, y, block_size=64))
            .predict_proba(X)
            for _ in range(2)
        ]
        assert np.array_equal(probas[0], probas[1])

    def test_invalid_mode_rejected(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError, match="mode"):
            StreamingSelfPacedEnsembleClassifier(mode="bogus").fit(
                ArraySource(X, y)
            )

    def test_source_with_y_rejected(self, imbalanced_data):
        X, y = imbalanced_data
        with pytest.raises(ValueError):
            StreamingSelfPacedEnsembleClassifier().fit(ArraySource(X, y), y)
