"""Tests for input-validation utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DataValidationError, NotFittedError
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_is_fitted,
    check_random_state,
    check_sample_weight,
    check_X_y,
    column_or_1d,
    unique_labels,
)


class TestCheckRandomState:
    def test_none_gives_random_state(self):
        assert isinstance(check_random_state(None), np.random.RandomState)

    def test_int_is_deterministic(self):
        a = check_random_state(3).rand(5)
        b = check_random_state(3).rand(5)
        assert np.allclose(a, b)

    def test_passthrough(self):
        rs = np.random.RandomState(0)
        assert check_random_state(rs) is rs

    def test_generator_accepted(self):
        assert isinstance(
            check_random_state(np.random.default_rng(0)), np.random.RandomState
        )

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            check_random_state("nope")


class TestCheckArray:
    def test_converts_lists(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64 and out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError, match="2D"):
            check_array([1.0, 2.0])

    def test_rejects_3d(self):
        with pytest.raises(DataValidationError):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_nan_by_default(self):
        with pytest.raises(DataValidationError, match="NaN"):
            check_array([[np.nan, 1.0]])

    def test_allows_nan_when_requested(self):
        out = check_array([[np.nan, 1.0]], allow_nan=True)
        assert np.isnan(out[0, 0])

    def test_min_samples(self):
        with pytest.raises(DataValidationError, match="minimum"):
            check_array([[1.0]], min_samples=2)

    def test_zero_features_rejected(self):
        with pytest.raises(DataValidationError):
            check_array(np.empty((3, 0)))

    def test_copy_flag(self):
        base = np.ones((2, 2))
        assert check_array(base, copy=True) is not base


class TestCheckXy:
    def test_matching_ok(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert X.shape == (2, 1) and y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError, match="inconsistent"):
            check_X_y([[1.0], [2.0]], [0, 1, 2])

    def test_column_vector_y_ravelled(self):
        _, y = check_X_y([[1.0], [2.0]], [[0], [1]])
        assert y.ndim == 1


class TestColumnOr1d:
    def test_ravel_column(self):
        assert column_or_1d(np.zeros((3, 1))).shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(DataValidationError):
            column_or_1d(np.zeros((3, 2)))


class TestCheckIsFitted:
    def test_raises_before_fit(self):
        class Est:
            pass

        with pytest.raises(NotFittedError):
            check_is_fitted(Est())

    def test_passes_with_fitted_attr(self):
        class Est:
            pass

        est = Est()
        est.coef_ = 1
        check_is_fitted(est)

    def test_explicit_attributes(self):
        class Est:
            pass

        est = Est()
        est.a_ = 1
        with pytest.raises(NotFittedError):
            check_is_fitted(est, ["b_"])


class TestSampleWeight:
    def test_default_uniform(self):
        w = check_sample_weight(None, 4)
        assert np.allclose(w, 0.25)

    def test_normalised(self):
        w = check_sample_weight([1.0, 3.0], 2)
        assert np.allclose(w, [0.25, 0.75])

    def test_negative_rejected(self):
        with pytest.raises(DataValidationError):
            check_sample_weight([1.0, -1.0], 2)

    def test_zero_sum_rejected(self):
        with pytest.raises(DataValidationError):
            check_sample_weight([0.0, 0.0], 2)

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError):
            check_sample_weight([1.0], 2)


class TestLabels:
    def test_unique_labels_merges(self):
        assert unique_labels([0, 1], [1, 2]).tolist() == [0, 1, 2]

    def test_binary_labels_ok(self):
        assert check_binary_labels([0, 1, 0]).tolist() == [0, 1, 0]

    def test_binary_labels_rejects_multiclass(self):
        with pytest.raises(DataValidationError):
            check_binary_labels([0, 1, 2])

    def test_binary_labels_rejects_other_encoding(self):
        with pytest.raises(DataValidationError):
            check_binary_labels([-1, 1])

    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=50))
    def test_binary_labels_roundtrip(self, labels):
        assert check_binary_labels(labels).tolist() == labels
