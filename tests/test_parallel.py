"""Tests for the parallel execution engine (repro.parallel)."""

import os

import numpy as np
import pytest

from repro.ensemble import BaggingClassifier, average_ensemble_proba
from repro.parallel import (
    BACKENDS,
    ensemble_predict_proba,
    fit_ensemble_parallel,
    parallel_map,
    resolve_n_jobs,
    spawn_seeds,
    task_rng,
)
from repro.tree import DecisionTreeClassifier


def _square(x):  # module-level so the process backend can pickle it
    return x * x


def _balanced_pair_sample(index, rng, X, y):
    idx = rng.permutation(len(y))[: max(2, len(y) // 2)]
    return X[idx], y[idx]


def _make_tree(rng):
    return DecisionTreeClassifier(max_depth=3, random_state=rng.randint(2**31 - 1))


class TestResolveNJobs:
    def test_none_means_serial(self):
        assert resolve_n_jobs(None) == 1

    def test_positive_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(7) == 7

    def test_minus_one_is_cpu_count(self):
        assert resolve_n_jobs(-1) == os.cpu_count()

    def test_negative_counts_back_from_cpus(self):
        assert resolve_n_jobs(-2) == max(1, os.cpu_count() - 1)
        # Never resolves below one worker, however negative.
        assert resolve_n_jobs(-10_000) == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(0)


class TestParallelMap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ordered_results_all_backends(self, backend):
        items = list(range(20))
        assert parallel_map(_square, items, backend=backend, n_jobs=2) == [
            i * i for i in items
        ]

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            parallel_map(_square, [1], backend="fiber")

    def test_empty_tasks(self):
        assert parallel_map(_square, [], backend="thread", n_jobs=2) == []


class TestSeeding:
    def test_deterministic_given_seed(self):
        assert spawn_seeds(123, 8) == spawn_seeds(123, 8)

    def test_shared_rng_advances(self):
        rng = np.random.RandomState(0)
        first = spawn_seeds(rng, 4)
        second = spawn_seeds(rng, 4)
        assert first != second

    def test_task_rng_reproducible(self):
        a = task_rng(99).randint(0, 1000, size=5)
        b = task_rng(99).randint(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestEnsemblePredictProba:
    def test_matches_manual_average(self, binary_blobs):
        X, y = binary_blobs
        trees = [
            DecisionTreeClassifier(max_depth=d, random_state=d).fit(X, y)
            for d in (1, 2, 3)
        ]
        manual = sum(t.predict_proba(X) for t in trees) / 3
        engine = ensemble_predict_proba(trees, X, np.array([0, 1]))
        assert np.allclose(engine, manual)

    def test_chunk_size_never_changes_result(self, binary_blobs):
        X, y = binary_blobs
        trees = [
            DecisionTreeClassifier(max_depth=3, random_state=s).fit(X, y)
            for s in range(10)
        ]
        reference = ensemble_predict_proba(trees, X, np.array([0, 1]))
        for chunk_size in (1, 7, 64, 10_000):
            out = ensemble_predict_proba(
                trees, X, np.array([0, 1]), chunk_size=chunk_size
            )
            assert np.array_equal(out, reference)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_never_changes_result(self, binary_blobs, backend):
        X, y = binary_blobs
        trees = [
            DecisionTreeClassifier(max_depth=3, random_state=s).fit(X, y)
            for s in range(10)
        ]
        reference = ensemble_predict_proba(trees, X, np.array([0, 1]))
        out = ensemble_predict_proba(
            trees, X, np.array([0, 1]), backend=backend, n_jobs=2, chunk_size=50
        )
        assert np.array_equal(out, reference)

    def test_aligns_partial_classes(self, binary_blobs):
        X, y = binary_blobs
        full = DecisionTreeClassifier(max_depth=2).fit(X, y)
        only_zero = DecisionTreeClassifier(max_depth=2).fit(
            X[:5], np.zeros(5, dtype=int)
        )
        proba = ensemble_predict_proba([full, only_zero], X[:4], np.array([0, 1]))
        assert proba.shape == (4, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_average_ensemble_proba_is_serial_alias(self, binary_blobs):
        X, y = binary_blobs
        trees = [DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)]
        assert np.array_equal(
            average_ensemble_proba(trees, X, np.array([0, 1])),
            ensemble_predict_proba(trees, X, np.array([0, 1])),
        )

    def test_requires_estimators(self, binary_blobs):
        X, _ = binary_blobs
        with pytest.raises(ValueError):
            ensemble_predict_proba([], X, np.array([0, 1]))

    def test_invalid_chunk_size(self, binary_blobs):
        X, y = binary_blobs
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        with pytest.raises(ValueError):
            ensemble_predict_proba([tree], X, np.array([0, 1]), chunk_size=0)


class TestFitEnsembleParallel:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_equivalent_members(self, binary_blobs, backend):
        X, y = binary_blobs
        reference, n_ref = fit_ensemble_parallel(
            X,
            y,
            n_estimators=4,
            sample_fn=_balanced_pair_sample,
            make_model=_make_tree,
            random_state=5,
            backend="serial",
        )
        members, n_samples = fit_ensemble_parallel(
            X,
            y,
            n_estimators=4,
            sample_fn=_balanced_pair_sample,
            make_model=_make_tree,
            random_state=5,
            backend=backend,
            n_jobs=2,
        )
        assert n_samples == n_ref
        for ref, got in zip(reference, members):
            assert np.array_equal(ref.predict_proba(X), got.predict_proba(X))

    def test_rejects_zero_estimators(self, binary_blobs):
        X, y = binary_blobs
        with pytest.raises(ValueError):
            fit_ensemble_parallel(
                X,
                y,
                n_estimators=0,
                sample_fn=_balanced_pair_sample,
                make_model=_make_tree,
            )


class TestBaggingNJobs:
    def test_n_jobs_minus_one_runs(self, binary_blobs):
        X, y = binary_blobs
        bag = BaggingClassifier(n_estimators=3, n_jobs=-1, random_state=0).fit(X, y)
        assert len(bag.estimators_) == 3
