"""Tests for the estimator base machinery (get/set params, clone)."""

import numpy as np
import pytest

from repro.base import BaseEstimator, ClassifierMixin, clone, is_classifier
from repro.tree import DecisionTreeClassifier


class Toy(BaseEstimator, ClassifierMixin):
    def __init__(self, a=1, b="x", nested=None):
        self.a = a
        self.b = b
        self.nested = nested

    def fit(self, X, y):
        self.fitted_ = True
        return self

    def predict(self, X):
        return np.zeros(len(X))


class TestGetSetParams:
    def test_get_params_returns_init_values(self):
        assert Toy(a=5, b="y").get_params(deep=False) == {"a": 5, "b": "y", "nested": None}

    def test_set_params_updates(self):
        toy = Toy().set_params(a=9)
        assert toy.a == 9

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            Toy().set_params(zzz=1)

    def test_nested_params_deep(self):
        outer = Toy(nested=Toy(a=3))
        params = outer.get_params(deep=True)
        assert params["nested__a"] == 3

    def test_nested_set_params(self):
        outer = Toy(nested=Toy(a=3))
        outer.set_params(nested__a=7)
        assert outer.nested.a == 7

    def test_repr_contains_params(self):
        assert "a=2" in repr(Toy(a=2))


class TestClone:
    def test_clone_copies_params(self):
        original = Toy(a=4, b="z")
        copy = clone(original)
        assert copy.a == 4 and copy.b == "z"
        assert copy is not original

    def test_clone_is_unfitted(self):
        original = Toy().fit(np.zeros((2, 1)), np.zeros(2))
        copy = clone(original)
        assert not hasattr(copy, "fitted_")

    def test_clone_deep_copies_nested(self):
        original = Toy(nested=Toy(a=1))
        copy = clone(original)
        copy.nested.a = 99
        assert original.nested.a == 1

    def test_clone_list(self):
        clones = clone([Toy(a=1), Toy(a=2)])
        assert [c.a for c in clones] == [1, 2]

    def test_clone_rejects_non_estimator(self):
        with pytest.raises(TypeError):
            clone(object())

    def test_clone_real_estimator(self):
        tree = DecisionTreeClassifier(max_depth=3, random_state=5)
        copy = clone(tree)
        assert copy.max_depth == 3 and copy.random_state == 5


class TestMixins:
    def test_is_classifier(self):
        assert is_classifier(Toy())
        assert not is_classifier(object())

    def test_score_is_accuracy(self):
        toy = Toy().fit(np.zeros((4, 1)), np.zeros(4))
        assert toy.score(np.zeros((4, 1)), np.array([0, 0, 1, 1])) == 0.5
