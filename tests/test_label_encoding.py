"""Arbitrary binary label support across the ensemble family.

The historical API only accepted labels already in {0, 1} with 1 the
minority; these tests pin the fix: ``fit`` maps any two-label alphabet to
the internal encoding by minority *frequency* (tie → second sorted label),
``predict`` decodes back to the original labels, and ``predict_proba``
columns follow ``classes_`` order. Relabelling the same data must never
change the minority-class probabilities — pinned bit-exactly against the
{0, 1} reference fit.
"""

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.exceptions import DataValidationError
from repro.imbalance_ensemble import (
    BalanceCascadeClassifier,
    EasyEnsembleClassifier,
    RUSBoostClassifier,
    SMOTEBoostClassifier,
    UnderBaggingClassifier,
)
from repro.streaming import (
    ArraySource,
    NPYSource,
    StreamingSelfPacedEnsembleClassifier,
    label_value_scan,
)
from repro.utils.validation import (
    binary_column_order,
    check_binary_labels,
    encode_binary_labels,
)


@pytest.fixture(scope="module")
def data():
    X, y = make_checkerboard(n_minority=50, n_majority=500, random_state=0)
    return X, y


class TestEncodeBinaryLabels:
    def test_identity_for_internal_encoding(self):
        classes, y_int, minority_idx = encode_binary_labels([0, 0, 0, 1])
        assert classes.tolist() == [0, 1]
        assert y_int.tolist() == [0, 0, 0, 1]
        assert minority_idx == 1

    def test_minority_by_frequency_flips(self):
        classes, y_int, minority_idx = encode_binary_labels([1, 1, 1, 0])
        assert minority_idx == 0  # 0 is the rarer label here
        assert y_int.tolist() == [0, 0, 0, 1]

    def test_tie_breaks_to_second_sorted_label(self):
        classes, y_int, minority_idx = encode_binary_labels([0, 1, 0, 1])
        assert minority_idx == 1
        assert y_int.tolist() == [0, 1, 0, 1]

    def test_string_labels(self):
        classes, y_int, minority_idx = encode_binary_labels(
            ["ok", "ok", "fraud", "ok"]
        )
        assert classes.tolist() == ["fraud", "ok"]
        assert classes[minority_idx] == "fraud"
        assert y_int.tolist() == [0, 0, 1, 0]

    def test_three_classes_rejected(self):
        with pytest.raises(DataValidationError):
            encode_binary_labels([0, 1, 2])

    def test_single_label_outside_01_rejected(self):
        with pytest.raises(DataValidationError):
            encode_binary_labels(["only"])

    def test_single_01_label_passes_through(self):
        classes, y_int, minority_idx = encode_binary_labels([1, 1])
        assert classes.tolist() == [1]
        assert y_int.tolist() == [1, 1]
        assert minority_idx is None

    def test_check_binary_labels_still_guards_internal_encoding(self):
        with pytest.raises(DataValidationError):
            check_binary_labels([-1, 1])

    def test_column_order(self):
        assert binary_column_order([0, 1], 1).tolist() == [0, 1]
        assert binary_column_order([-1, 1], -1).tolist() == [1, 0]
        assert binary_column_order(["fraud", "ok"], "fraud").tolist() == [1, 0]


ENSEMBLES = {
    "spe": lambda: SelfPacedEnsembleClassifier(n_estimators=4, random_state=0),
    "under_bagging": lambda: UnderBaggingClassifier(n_estimators=4, random_state=0),
    "easy_ensemble": lambda: EasyEnsembleClassifier(
        n_estimators=3, n_boost_rounds=2, random_state=0
    ),
    "streaming_spe": lambda: StreamingSelfPacedEnsembleClassifier(
        n_estimators=4, random_state=0
    ),
    "balance_cascade": lambda: BalanceCascadeClassifier(n_estimators=3, random_state=0),
    "rus_boost": lambda: RUSBoostClassifier(n_estimators=3, random_state=0),
    "smote_boost": lambda: SMOTEBoostClassifier(n_estimators=3, random_state=0),
}


class TestEnsemblesAcceptArbitraryLabels:
    @pytest.mark.parametrize("name", sorted(ENSEMBLES))
    def test_relabelling_preserves_minority_proba_bitwise(self, data, name):
        """{-1, 1} and string alphabets give the exact probabilities of the
        {0, 1} reference fit — the internal training problem is identical."""
        X, y = data
        build = ENSEMBLES[name]
        ref = build().fit(X, y)
        ref_min = ref.predict_proba(X)[:, list(ref.classes_).index(1)]
        for relabel in (
            lambda v: np.where(v == 1, 1, -1),
            lambda v: np.where(v == 1, "pos", "neg"),
        ):
            y_alt = relabel(y)
            clf = build().fit(X, y_alt)
            minority = clf.minority_class_
            col = list(clf.classes_).index(minority)
            assert np.array_equal(ref_min, clf.predict_proba(X)[:, col]), name
            pred = clf.predict(X)
            assert set(np.unique(pred)) <= set(np.unique(y_alt)), name
            assert np.array_equal(
                pred == minority, ref.predict(X) == 1
            ), name

    @pytest.mark.parametrize("name", sorted(ENSEMBLES))
    def test_predict_proba_columns_follow_classes(self, data, name):
        X, y = data
        y_str = np.where(y == 1, "pos", "neg")  # minority sorts second
        clf = ENSEMBLES[name]().fit(X, y_str)
        assert clf.classes_.tolist() == ["neg", "pos"]
        proba = clf.predict_proba(X)
        assert proba.shape[1] == 2
        # predict is the argmax over classes_-ordered columns for every family
        pred = clf.predict(X)
        assert np.array_equal(pred, clf.classes_[np.argmax(proba, axis=1)])

    def test_flipped_frequency_maps_zero_to_minority(self, data):
        """{0, 1} data where 1 is the MAJORITY: minority is found by
        frequency, not by label value."""
        X, y = data
        y_flip = 1 - y
        ref = SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y)
        clf = SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y_flip)
        assert clf.minority_class_ == 0 and clf.majority_class_ == 1
        assert np.array_equal(
            ref.predict_proba(X)[:, 1], clf.predict_proba(X)[:, 0]
        )

    def test_eval_set_accepts_original_alphabet(self, data):
        X, y = data
        y_pm = np.where(y == 1, 1, -1)
        ref = SelfPacedEnsembleClassifier(n_estimators=3, random_state=0).fit(
            X, y, eval_set=(X, y)
        )
        clf = SelfPacedEnsembleClassifier(n_estimators=3, random_state=0).fit(
            X, y_pm, eval_set=(X, y_pm)
        )
        assert clf.train_curve_ == ref.train_curve_


class TestStreamingLabelSupport:
    def test_label_value_scan(self, data):
        X, y = data
        y_pm = np.where(y == 1, 1, -1)
        classes, counts, minority_idx = label_value_scan(
            ArraySource(X, y_pm, block_size=64)
        )
        assert classes.tolist() == [-1, 1]
        assert counts.tolist() == [500, 50]
        assert minority_idx == 1

    def test_streaming_exact_bit_identical_under_relabelling(self, data):
        X, y = data
        y_pm = np.where(y == 1, 1, -1)
        ref = SelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(X, y)
        clf = StreamingSelfPacedEnsembleClassifier(n_estimators=4, random_state=0).fit(
            ArraySource(X, y_pm, block_size=128)
        )
        assert clf.classes_.tolist() == [-1, 1]
        assert np.array_equal(ref.predict_proba(X)[:, 1], clf.predict_proba(X)[:, 1])
        assert set(np.unique(clf.predict(X))) <= {-1, 1}

    def test_npy_source_with_pm_labels(self, data, tmp_path):
        X, y = data
        y_pm = np.where(y == 1, 1, -1)
        np.save(tmp_path / "x.npy", X)
        np.save(tmp_path / "y.npy", y_pm)
        source = NPYSource(tmp_path / "x.npy", tmp_path / "y.npy", block_size=128)
        clf = StreamingSelfPacedEnsembleClassifier(n_estimators=3, random_state=0).fit(
            source
        )
        ref = SelfPacedEnsembleClassifier(n_estimators=3, random_state=0).fit(X, y)
        assert np.array_equal(ref.predict_proba(X)[:, 1], clf.predict_proba(X)[:, 1])

    def test_fit_source_accepts_pm_labels(self, data):
        X, y = data
        y_pm = np.where(y == 1, 1, -1)
        ref = UnderBaggingClassifier(n_estimators=3, random_state=0).fit(X, y)
        clf = UnderBaggingClassifier(n_estimators=3, random_state=0).fit_source(
            ArraySource(X, y_pm, block_size=128)
        )
        assert clf.classes_.tolist() == [-1, 1]
        assert np.array_equal(ref.predict_proba(X)[:, 1], clf.predict_proba(X)[:, 1])

    def test_array_source_still_rejects_multiclass(self, data):
        X, _ = data
        with pytest.raises(DataValidationError):
            ArraySource(X, np.arange(len(X)) % 3)


class TestBinHistoryShape:
    def test_bin_history_entries_are_3_tuples(self, data):
        """record_bins appends (alpha, majority_bins, subset_bins) — the
        documented 3-tuple, pinned here after the annotation fix."""
        from repro.core.binning import HardnessBins

        X, y = data
        spe = SelfPacedEnsembleClassifier(
            n_estimators=4, record_bins=True, random_state=0
        ).fit(X, y)
        assert len(spe.bin_history_) == 3  # n_estimators - 1 iterations
        for entry in spe.bin_history_:
            assert isinstance(entry, tuple) and len(entry) == 3
            alpha, majority_bins, subset_bins = entry
            assert isinstance(alpha, float)
            assert isinstance(majority_bins, HardnessBins)
            assert isinstance(subset_bins, HardnessBins)
