"""Smoke + behaviour tests for the figure data generators (tiny sizes)."""

import numpy as np
import pytest

# Figure-data reproductions; excluded from the PR-gating `make test-fast`.
pytestmark = pytest.mark.slow

from repro.datasets import make_checkerboard, make_credit_fraud
from repro.experiments import (
    fig2_hardness_distributions,
    fig3_selfpaced_bins,
    fig5_training_curves,
    fig6_training_views,
    fig7_n_estimators_sweep,
    fig8_sensitivity,
)
from repro.model_selection import train_test_split
from repro.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def small_task():
    X, y = make_credit_fraud(n_samples=3000, imbalance_ratio=30, random_state=0)
    return train_test_split(X, y, test_size=0.3, random_state=0)


class TestFig2:
    def test_structure_and_overlap_story(self):
        out = fig2_hardness_distributions(
            imbalance_ratios=(1.0, 20.0), n_minority=80, k_bins=5, random_state=0
        )
        assert set(out) == {"disjoint", "overlapped"}
        assert set(out["disjoint"]) == {"KNN", "AdaBoost"}
        # Hard-sample mass (top bins) grows with IR on the overlapped data
        # much more than on the disjoint data.
        hard_overlap = [
            out["overlapped"]["KNN"][ir][2:].sum() for ir in (1.0, 20.0)
        ]
        hard_disjoint = [
            out["disjoint"]["KNN"][ir][2:].sum() for ir in (1.0, 20.0)
        ]
        growth_overlap = hard_overlap[1] - hard_overlap[0]
        growth_disjoint = hard_disjoint[1] - hard_disjoint[0]
        assert growth_overlap > growth_disjoint


class TestFig3:
    def test_alpha_panels(self, checkerboard_small):
        X, y = checkerboard_small
        out = fig3_selfpaced_bins(
            X, y, alphas=(0.0, 0.1, np.inf), k_bins=8, n_estimators=5, random_state=0
        )
        assert set(out) == {"original", "alpha=0", "alpha=0.1", "alpha=inf"}
        n_min = int((y == 1).sum())
        for key in ("alpha=0", "alpha=0.1", "alpha=inf"):
            assert out[key]["population"].sum() <= n_min + 1

    def test_alpha_inf_flat_populations(self, checkerboard_small):
        X, y = checkerboard_small
        out = fig3_selfpaced_bins(
            X, y, alphas=(np.inf,), k_bins=5, n_estimators=5, random_state=0
        )
        pop = out["alpha=inf"]["population"]
        original = out["original"]["population"]
        occupied = original > 0
        # Non-empty bins get roughly equal shares under alpha -> inf
        # (up to integer rounding and bins smaller than their quota).
        quotas = pop[occupied & (original >= pop.max())]
        if len(quotas) >= 2:
            assert quotas.max() - quotas.min() <= max(2, 0.2 * quotas.max())


class TestFig5:
    def test_curves_recorded(self):
        out = fig5_training_curves(
            cov_scales=(0.1,), n_estimators=5, n_minority=100, n_majority=1000,
            random_state=0,
        )
        assert set(out) == {0.1}
        assert len(out[0.1]["SPE"]) == 5
        assert len(out[0.1]["Cascade"]) == 5


class TestFig6:
    def test_views_for_all_methods(self):
        out = fig6_training_views(
            n_minority=80, n_majority=800, resolution=15, random_state=0
        )
        for method in ("Clean", "SMOTE", "Easy", "Cascade", "SPE"):
            assert method in out
            assert out[method]["grid"].shape == (15, 15)
        # Ensembles capture two iteration snapshots, samplers one.
        assert len(out["SPE"]["training_sets"]) == 2
        assert len(out["Clean"]["training_sets"]) == 1

    def test_spe_training_sets_balanced(self):
        out = fig6_training_views(
            n_minority=60, n_majority=600, resolution=10, random_state=1
        )
        for X_set, y_set in out["SPE"]["training_sets"]:
            assert (y_set == 0).sum() == (y_set == 1).sum()


class TestFig7:
    def test_sweep_structure(self, small_task):
        X_tr, X_te, y_tr, y_te = small_task
        out = fig7_n_estimators_sweep(
            X_tr, y_tr, X_te, y_te,
            ns=(1, 5),
            methods=None,
            estimator=DecisionTreeClassifier(max_depth=4, random_state=0),
            n_runs=1,
        )
        assert set(out) == {
            "SPE", "Cascade", "UnderBagging", "SMOTEBagging", "RUSBoost", "SMOTEBoost",
        }
        for series in out.values():
            assert set(series) == {1, 5}


class TestFig8:
    def test_sensitivity_structure(self, small_task):
        X_tr, X_te, y_tr, y_te = small_task
        out = fig8_sensitivity(
            X_tr, y_tr, X_te, y_te,
            ks=(2, 10),
            hardness_functions=("absolute", "squared"),
            n_estimators=5,
            estimator=DecisionTreeClassifier(max_depth=4, random_state=0),
            n_runs=1,
        )
        assert set(out) == {"absolute", "squared"}
        for series in out.values():
            for scores in series.values():
                assert all(0 <= v <= 1 for v in scores)
