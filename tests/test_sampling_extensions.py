"""Tests for CNN and InstanceHardnessThreshold under-samplers."""

import numpy as np
import pytest

from repro.neighbors import KNeighborsClassifier
from repro.sampling import CondensedNearestNeighbour, InstanceHardnessThreshold
from repro.tree import DecisionTreeClassifier


def _data(n_maj=250, n_min=30, seed=0):
    rng = np.random.RandomState(seed)
    X = np.vstack([rng.randn(n_maj, 2), rng.randn(n_min, 2) * 0.6 + 2.5])
    y = np.concatenate([np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)])
    return X, y


class TestCondensedNearestNeighbour:
    def test_store_is_1nn_consistent(self):
        """Every sample must be correctly 1-NN-classified by the store."""
        X, y = _data()
        sampler = CondensedNearestNeighbour(random_state=0)
        X_res, y_res = sampler.fit_resample(X, y)
        clf = KNeighborsClassifier(n_neighbors=1).fit(X_res, y_res)
        assert clf.score(X, y) == 1.0

    def test_reduces_majority(self):
        X, y = _data()
        _, y_res = CondensedNearestNeighbour(random_state=0).fit_resample(X, y)
        assert (y_res == 0).sum() < (y == 0).sum()
        assert (y_res == 1).sum() == 30

    def test_subset_of_original(self):
        X, y = _data()
        sampler = CondensedNearestNeighbour(random_state=0)
        X_res, _ = sampler.fit_resample(X, y)
        assert np.allclose(X[sampler.sample_indices_], X_res)

    def test_invalid_max_passes(self):
        X, y = _data()
        with pytest.raises(ValueError):
            CondensedNearestNeighbour(max_passes=0).fit_resample(X, y)


class TestInstanceHardnessThreshold:
    def test_balanced_output(self):
        X, y = _data()
        _, y_res = InstanceHardnessThreshold(random_state=0).fit_resample(X, y)
        assert (y_res == 0).sum() == (y_res == 1).sum() == 30

    def test_keeps_easy_majority(self):
        """Kept majority samples should be easier (farther from the
        minority blob) on average than dropped ones."""
        X, y = _data(400, 40)
        sampler = InstanceHardnessThreshold(
            estimator=DecisionTreeClassifier(max_depth=6, random_state=0),
            random_state=0,
        )
        sampler.fit_resample(X, y)
        kept = set(sampler.sample_indices_.tolist())
        maj_idx = np.flatnonzero(y == 0)
        kept_maj = np.array([i for i in maj_idx if i in kept])
        dropped_maj = np.array([i for i in maj_idx if i not in kept])
        dist_to_minority = np.linalg.norm(X - np.array([2.5, 2.5]), axis=1)
        assert dist_to_minority[kept_maj].mean() > dist_to_minority[dropped_maj].mean()

    def test_ratio_param(self):
        X, y = _data()
        _, y_res = InstanceHardnessThreshold(ratio=2.0, random_state=0).fit_resample(X, y)
        assert (y_res == 0).sum() == 60

    def test_invalid_params(self):
        X, y = _data()
        with pytest.raises(ValueError):
            InstanceHardnessThreshold(ratio=0).fit_resample(X, y)
        with pytest.raises(ValueError):
            InstanceHardnessThreshold(cv=1).fit_resample(X, y)

    def test_deterministic(self):
        X, y = _data()
        a = InstanceHardnessThreshold(random_state=3).fit_resample(X, y)[0]
        b = InstanceHardnessThreshold(random_state=3).fit_resample(X, y)[0]
        assert np.allclose(a, b)
