"""Tests for the decision-tree substrate (binning, CART, C4.5, export)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NotFittedError
from repro.tree import (
    C45Classifier,
    DecisionTreeClassifier,
    FeatureBinner,
    export_text,
)


class TestFeatureBinner:
    def test_few_unique_values_exact(self):
        X = np.array([[0.0], [1.0], [1.0], [2.0]])
        binner = FeatureBinner(max_bins=64).fit(X)
        codes = binner.transform(X)
        assert len(np.unique(codes)) == 3  # one code per distinct value

    def test_codes_monotonic_in_value(self, rng):
        X = rng.randn(100, 1)
        binner = FeatureBinner(max_bins=8).fit(X)
        codes = binner.transform(X).ravel()
        order = np.argsort(X.ravel())
        assert (np.diff(codes[order]) >= 0).all()

    def test_threshold_semantics(self, rng):
        """code <= c  iff  value < threshold_value(feature, c)."""
        X = rng.randn(200, 1)
        binner = FeatureBinner(max_bins=6).fit(X)
        codes = binner.transform(X).ravel()
        for c in range(int(binner.n_bins_[0]) - 1):
            thr = binner.threshold_value(0, c)
            assert np.array_equal(codes <= c, X.ravel() < thr)

    def test_max_bins_respected(self, rng):
        X = rng.randn(1000, 2)
        binner = FeatureBinner(max_bins=16).fit(X)
        assert (binner.n_bins_ <= 16).all()

    def test_invalid_max_bins(self):
        with pytest.raises(ValueError):
            FeatureBinner(max_bins=1)

    def test_feature_count_check(self, rng):
        binner = FeatureBinner().fit(rng.randn(10, 2))
        with pytest.raises(ValueError):
            binner.transform(rng.randn(10, 3))


class TestDecisionTree:
    def test_pure_split_learned(self):
        """A single-threshold concept must be learned exactly."""
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(int)
        clf = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert clf.score(X, y) == 1.0

    def test_xor_learned_with_depth(self):
        """XOR defeats any depth-1 tree; enough depth must solve it.

        Greedy impurity splits see ~zero gain at the XOR root, so a few
        extra levels are needed before the quadrant structure emerges —
        the same behaviour as sklearn's exact-split trees.
        """
        rng = np.random.RandomState(0)
        X = rng.uniform(-1, 1, size=(1500, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert shallow.score(X, y) < 0.7
        assert deep.score(X, y) > 0.95

    def test_max_depth_respected(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert clf.tree_.max_depth <= 2

    def test_min_samples_leaf(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(min_samples_leaf=30).fit(X, y)
        leaf_mask = clf.tree_.feature < 0
        assert clf.tree_.n_node_samples[leaf_mask].min() >= 30

    def test_proba_sums_to_one(self, binary_blobs):
        X, y = binary_blobs
        proba = DecisionTreeClassifier(max_depth=4).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_is_argmax(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = clf.predict_proba(X)
        assert np.array_equal(clf.predict(X), clf.classes_[proba.argmax(axis=1)])

    def test_sample_weight_shifts_decision(self):
        """Heavily weighting one class must pull the prediction toward it."""
        X = np.array([[0.0], [0.0], [0.0], [1.0]])
        y = np.array([0, 0, 1, 1])
        w_heavy_1 = np.array([1.0, 1.0, 10.0, 1.0])
        clf = DecisionTreeClassifier(max_depth=1).fit(X, y, sample_weight=w_heavy_1)
        proba = clf.predict_proba(np.array([[0.0]]))
        assert proba[0, 1] > 0.5

    def test_multiclass(self, rng):
        X = np.vstack([rng.randn(50, 2) + c * 4 for c in range(3)])
        y = np.repeat([0, 1, 2], 50)
        clf = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert clf.score(X, y) > 0.95
        assert clf.predict_proba(X).shape == (150, 3)

    def test_non_contiguous_labels(self, rng):
        X = np.vstack([rng.randn(30, 2), rng.randn(30, 2) + 5])
        y = np.concatenate([np.full(30, 7), np.full(30, 42)])
        clf = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert set(np.unique(clf.predict(X))) <= {7, 42}

    def test_apply_leaves(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=3).fit(X, y)
        leaves = clf.apply(X)
        assert (clf.tree_.feature[leaves] == -1).all()

    def test_feature_importances(self):
        rng = np.random.RandomState(3)
        X = rng.randn(300, 3)
        y = (X[:, 1] > 0).astype(int)  # only feature 1 matters
        clf = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        importances = clf.feature_importances_
        assert importances.argmax() == 1
        assert importances.sum() == pytest.approx(1.0)

    def test_unknown_criterion(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="bogus").fit(np.ones((4, 1)), [0, 1, 0, 1])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.ones((2, 2)))

    def test_feature_mismatch_at_predict(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=2).fit(X, y)
        with pytest.raises(ValueError):
            clf.predict(np.ones((2, X.shape[1] + 1)))

    def test_deterministic_given_seed(self, binary_blobs):
        X, y = binary_blobs
        p1 = (
            DecisionTreeClassifier(max_depth=5, max_features=2, random_state=9)
            .fit(X, y)
            .predict_proba(X)
        )
        p2 = (
            DecisionTreeClassifier(max_depth=5, max_features=2, random_state=9)
            .fit(X, y)
            .predict_proba(X)
        )
        assert np.allclose(p1, p2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_depth_property(self, depth):
        rng = np.random.RandomState(0)
        X = rng.randn(200, 3)
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        clf = DecisionTreeClassifier(max_depth=depth).fit(X, y)
        assert clf.tree_.max_depth <= depth


class TestC45:
    def test_uses_gain_ratio(self):
        assert C45Classifier().criterion == "gain_ratio"

    def test_learns_separable(self, binary_blobs):
        X, y = binary_blobs
        assert C45Classifier(max_depth=5).fit(X, y).score(X, y) > 0.9

    def test_clone_roundtrip(self):
        from repro.base import clone

        clf = clone(C45Classifier(max_depth=7))
        assert clf.max_depth == 7


class TestExportText:
    def test_contains_thresholds(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=2).fit(X, y)
        text = export_text(clf)
        assert "feature_" in text and "<" in text

    def test_custom_feature_names(self, binary_blobs):
        X, y = binary_blobs
        clf = DecisionTreeClassifier(max_depth=2).fit(X, y)
        text = export_text(clf, feature_names=["alpha", "beta", "gamma"])
        assert any(name in text for name in ("alpha", "beta", "gamma"))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            export_text(DecisionTreeClassifier())
