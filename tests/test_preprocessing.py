"""Tests for scalers, encoders and the imputer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import NotFittedError
from repro.preprocessing import (
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    SimpleImputer,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        X = rng.randn(200, 3) * 5 + 2
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0, atol=1e-10)
        assert np.allclose(Xs.std(axis=0), 1, atol=1e-10)

    def test_constant_feature_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        Xs = StandardScaler().fit_transform(X)
        assert np.isfinite(Xs).all()

    def test_inverse_roundtrip(self, rng):
        X = rng.randn(50, 4)
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_nan_passthrough(self):
        X = np.array([[1.0, np.nan], [3.0, 2.0], [5.0, 4.0]])
        Xs = StandardScaler().fit_transform(X)
        assert np.isnan(Xs[0, 1]) and np.isfinite(Xs[:, 0]).all()

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch(self, rng):
        scaler = StandardScaler().fit(rng.randn(10, 3))
        with pytest.raises(ValueError):
            scaler.transform(rng.randn(5, 2))

    @settings(max_examples=25)
    @given(
        arrays(
            np.float64,
            (10, 3),
            elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        )
    )
    def test_transform_inverse_property(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(back, X, atol=1e-6 * (1 + np.abs(X).max()))


class TestMinMaxScaler:
    def test_range(self, rng):
        X = rng.randn(100, 2) * 3
        Xs = MinMaxScaler().fit_transform(X)
        assert Xs.min() >= -1e-12 and Xs.max() <= 1 + 1e-12

    def test_custom_range(self, rng):
        Xs = MinMaxScaler(feature_range=(-1, 1)).fit_transform(rng.randn(50, 2))
        assert Xs.min() >= -1 - 1e-12 and Xs.max() <= 1 + 1e-12

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1, 0)).fit(np.ones((3, 1)))

    def test_inverse_roundtrip(self, rng):
        X = rng.randn(30, 3)
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)


class TestOrdinalEncoder:
    def test_basic_encoding(self):
        X = [["a"], ["b"], ["a"]]
        enc = OrdinalEncoder().fit(X)
        assert enc.transform(X).ravel().tolist() == [0.0, 1.0, 0.0]

    def test_unknown_maps_to_sentinel(self):
        enc = OrdinalEncoder().fit([["a"], ["b"]])
        assert enc.transform([["zzz"]])[0, 0] == -1.0

    def test_multi_column(self):
        X = [["a", "x"], ["b", "y"]]
        out = OrdinalEncoder().fit_transform(X)
        assert out.shape == (2, 2)

    def test_inverse_transform(self):
        X = [["a"], ["b"]]
        enc = OrdinalEncoder().fit(X)
        assert enc.inverse_transform(enc.transform(X))[0, 0] == "a"

    def test_column_mismatch(self):
        enc = OrdinalEncoder().fit([["a", "b"]])
        with pytest.raises(ValueError):
            enc.transform([["a"]])


class TestOneHotEncoder:
    def test_shape_and_values(self):
        X = [["a"], ["b"], ["c"], ["a"]]
        out = OneHotEncoder().fit_transform(X)
        assert out.shape == (4, 3)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_unknown_all_zero(self):
        enc = OneHotEncoder().fit([["a"], ["b"]])
        assert enc.transform([["q"]]).sum() == 0.0

    def test_drop_first(self):
        out = OneHotEncoder(drop_first=True).fit_transform([["a"], ["b"], ["c"]])
        assert out.shape == (3, 2)

    def test_output_feature_count(self):
        enc = OneHotEncoder().fit([["a", "x"], ["b", "y"]])
        assert enc.n_output_features_ == 4


class TestSimpleImputer:
    def test_mean_strategy(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = SimpleImputer(strategy="mean").fit_transform(X)
        assert out[0, 1] == 4.0

    def test_median_strategy(self):
        X = np.array([[1.0], [np.nan], [3.0], [100.0]])
        out = SimpleImputer(strategy="median").fit_transform(X)
        assert out[1, 0] == 3.0

    def test_most_frequent(self):
        X = np.array([[1.0], [1.0], [2.0], [np.nan]])
        out = SimpleImputer(strategy="most_frequent").fit_transform(X)
        assert out[3, 0] == 1.0

    def test_constant_zero_matches_paper_protocol(self):
        X = np.array([[np.nan, 5.0]])
        out = SimpleImputer(strategy="constant", fill_value=0.0).fit_transform(X)
        assert out[0, 0] == 0.0

    def test_all_nan_column_falls_back(self):
        X = np.array([[np.nan], [np.nan]])
        out = SimpleImputer(strategy="mean", fill_value=-7.0).fit_transform(X)
        assert np.all(out == -7.0)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="bogus").fit(np.ones((2, 2)))

    def test_no_nan_unchanged(self, rng):
        X = rng.randn(20, 3)
        assert np.allclose(SimpleImputer().fit_transform(X), X)
