"""The estimator contract, enforced uniformly over every registered
classifier (satellite of the registry issue): structural contract checks,
clone/get_params/set_params semantics, NotFittedError before fit, fitted
predict_proba shape/order guarantees, and the sample-weight capability
flag."""

import inspect

import numpy as np
import pytest

from repro.base import (
    check_classifier_contract,
    clone,
    is_persistable,
    supports_sample_weight,
)
from repro.exceptions import NotFittedError
from repro.registry import (
    classifier_spec,
    list_classifiers,
    make_classifier,
    toy_imbalanced_split,
)

ALL_NAMES = list_classifiers()


def smoke_instance(name):
    clf = make_classifier(name, **classifier_spec(name).smoke_params)
    if hasattr(clf, "random_state"):
        clf.random_state = 0
    return clf


def comparable_params(estimator):
    """get_params with nested estimator-like values (which clone
    deep-copies, breaking identity-based equality) compared structurally."""
    return {
        key: (type(value).__name__, value.get_params())
        if hasattr(value, "get_params")
        else value
        for key, value in estimator.get_params().items()
    }


@pytest.fixture(scope="module")
def toy():
    return toy_imbalanced_split()


class TestStructuralContract:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_registered_class_passes_contract_check(self, name):
        assert check_classifier_contract(classifier_spec(name).cls) == []

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_clone_preserves_params_and_drops_state(self, name, toy):
        X, y = toy
        clf = smoke_instance(name).fit(X, y)
        cloned = clone(clf)
        assert cloned is not clf
        assert comparable_params(cloned) == comparable_params(clf)
        assert not hasattr(cloned, "classes_")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_set_params_round_trip(self, name):
        clf = smoke_instance(name)
        params = clf.get_params()
        assert clf.set_params(**params) is clf
        assert clf.get_params() == params

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_sample_weight_flag_matches_fit_signature(self, name):
        clf = smoke_instance(name)
        in_signature = "sample_weight" in inspect.signature(clf.fit).parameters
        flag = getattr(type(clf), "supports_sample_weight", None)
        expected = flag if isinstance(flag, bool) else in_signature
        assert supports_sample_weight(clf) == expected


class TestNotFittedUniformity:
    """predict/predict_proba before fit raise NotFittedError — the same
    exception type for every registered classifier, never a bare
    AttributeError from a missing fitted attribute."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_predict_proba_before_fit_raises(self, name, toy):
        X, _ = toy
        with pytest.raises(NotFittedError):
            smoke_instance(name).predict_proba(X[:3])

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_predict_before_fit_raises(self, name, toy):
        X, _ = toy
        with pytest.raises(NotFittedError):
            smoke_instance(name).predict(X[:3])

    def test_not_fitted_error_is_attribute_error(self):
        """Back-compat: NotFittedError subclasses AttributeError, so
        hasattr-style feature probes on unfitted models keep working."""
        assert issubclass(NotFittedError, AttributeError)


class TestFittedBehaviour:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_fit_predict_proba_shape_and_classes(self, name, toy):
        X, y = toy
        clf = smoke_instance(name).fit(X, y)
        assert np.array_equal(clf.classes_, [0, 1])
        proba = clf.predict_proba(X[:10])
        assert proba.shape == (10, 2)
        assert np.all(np.isfinite(proba))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert set(np.unique(clf.predict(X[:10]))) <= {0, 1}

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_persistable_flag_matches_hooks(self, name):
        spec = classifier_spec(name)
        if spec.persistable:
            assert is_persistable(spec.cls)
