"""The string registry, resolve_estimator funnel, and get_classifier
facade — plus the string-estimator plumbing through the ensembles and the
experiment runner."""

import numpy as np
import pytest

from repro.base import BaseEstimator, ClassifierMixin, clone
from repro.exceptions import RegistryError
from repro.linear import LogisticRegression
from repro.registry import (
    classifier_spec,
    get_classifier,
    list_classifiers,
    list_presets,
    make_classifier,
    register_classifier,
    resolve_estimator,
    toy_imbalanced_split,
)
from repro.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def toy():
    return toy_imbalanced_split()


class TestCoreRegistry:
    def test_zoo_is_registered(self):
        names = list_classifiers()
        assert {"spe", "tree", "logistic", "gbdt", "under_bagging"} <= set(names)
        assert len(names) >= 20

    def test_make_classifier_passes_params(self):
        clf = make_classifier("logistic", C=0.5, max_iter=42)
        assert isinstance(clf, LogisticRegression)
        assert clf.C == 0.5 and clf.max_iter == 42

    def test_names_are_case_insensitive(self):
        assert type(make_classifier("SPE")) is classifier_spec("spe").cls

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(RegistryError, match="registered names"):
            make_classifier("no_such_model")

    def test_invalid_param_lists_valid_ones(self):
        with pytest.raises(RegistryError, match="valid parameters"):
            make_classifier("logistic", n_estimators=5)

    def test_reregistering_same_class_is_idempotent(self):
        spec = classifier_spec("tree")
        assert register_classifier("tree", spec.cls) is spec

    def test_rebinding_name_to_other_class_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_classifier("tree", LogisticRegression)

    def test_contract_violating_class_rejected(self):
        class Broken(BaseEstimator, ClassifierMixin):
            def __init__(self, **kwargs):  # *kwargs: not introspectable
                pass

        with pytest.raises(RegistryError, match="contract"):
            register_classifier("broken", Broken)

    def test_spec_capability_flags(self):
        assert classifier_spec("spe").accepts_estimator
        assert not classifier_spec("logistic").accepts_estimator
        assert classifier_spec("spe").persistable
        assert not classifier_spec("resample_ensemble").persistable


class TestResolveEstimator:
    def test_none_passes_through(self):
        assert resolve_estimator(None) is None

    def test_instance_passes_through(self):
        tree = DecisionTreeClassifier(max_depth=2)
        assert resolve_estimator(tree) is tree

    def test_string_resolves_to_fresh_instance(self):
        a, b = resolve_estimator("logistic"), resolve_estimator("logistic")
        assert isinstance(a, LogisticRegression) and a is not b

    def test_class_rejected_with_pointed_message(self):
        with pytest.raises(TypeError, match=r"DecisionTreeClassifier\(\)"):
            resolve_estimator(DecisionTreeClassifier)

    def test_non_estimator_rejected(self):
        with pytest.raises(TypeError, match="contract"):
            resolve_estimator(object())


class TestFacade:
    def test_preset_then_overrides(self):
        clf = get_classifier("spe", preset="fraud", n_estimators=7)
        assert clf.n_estimators == 7  # override wins
        assert clf.k_bins == 20 and clf.hardness == "absolute"

    def test_list_presets(self):
        assert "fraud" in list_presets("spe")
        assert list_presets("logistic") == []

    def test_unknown_preset_lists_available(self):
        with pytest.raises(RegistryError, match="available presets"):
            get_classifier("spe", preset="nope")

    def test_base_requires_estimator_param(self):
        with pytest.raises(RegistryError, match="does not take a base"):
            get_classifier("logistic", base="tree")

    def test_base_name_kept_as_string(self):
        clf = get_classifier("under_bagging", base="logistic")
        assert clf.estimator == "logistic"

    def test_base_unknown_name_fails_at_construction(self):
        with pytest.raises(RegistryError, match="registered names"):
            get_classifier("spe", base="no_such_base")

    def test_base_instance_passes_through(self):
        tree = DecisionTreeClassifier(max_depth=3)
        assert get_classifier("bagging", base=tree).estimator is tree

    def test_base_estimator_alias_accepted_but_deprecated(self):
        with pytest.warns(DeprecationWarning, match="estimator="):
            clf = get_classifier("spe", base_estimator="logistic")
        assert clf.estimator == "logistic"

    def test_estimator_spelling_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            clf = get_classifier("spe", estimator="logistic")
        assert clf.estimator == "logistic"

    def test_conflicting_base_spellings_rejected(self):
        with pytest.raises(RegistryError, match="once"):
            get_classifier("spe", base="logistic", estimator="tree")

    def test_facade_matches_handwritten_spelling(self, toy):
        X, y = toy
        via_facade = get_classifier(
            "spe", base="logistic", preset="fast", random_state=0
        ).fit(X, y)
        cls = classifier_spec("spe").cls
        by_hand = cls(
            estimator="logistic", n_estimators=5, k_bins=10, random_state=0
        ).fit(X, y)
        assert np.array_equal(
            via_facade.predict_proba(X), by_hand.predict_proba(X)
        )


class TestStringEstimatorsInEnsembles:
    """Every ensemble's estimator= accepts a registered name; the string
    spelling is equivalent to passing the instance."""

    @pytest.mark.parametrize(
        "ensemble", ["spe", "bagging", "adaboost", "under_bagging",
                     "easy_ensemble", "rus_boost", "smote_bagging"]
    )
    def test_string_equals_instance(self, ensemble, toy):
        X, y = toy
        spec = classifier_spec(ensemble)
        small = dict(spec.smoke_params)
        by_name = spec.cls(estimator="logistic", random_state=0, **small).fit(X, y)
        by_inst = spec.cls(
            estimator=LogisticRegression(), random_state=0, **small
        ).fit(X, y)
        assert np.array_equal(by_name.predict_proba(X), by_inst.predict_proba(X))

    def test_unknown_string_fails_with_registry_error(self, toy):
        X, y = toy
        clf = get_classifier("bagging", n_estimators=2, random_state=0)
        clf.estimator = "no_such_model"
        with pytest.raises(RegistryError, match="registered names"):
            clf.fit(X, y)

    def test_string_estimator_clones_per_member(self, toy):
        X, y = toy
        clf = get_classifier(
            "bagging", base="tree", n_estimators=3, random_state=0
        ).fit(X, y)
        members = clf.estimators_
        assert len({id(m) for m in members}) == 3

    def test_shared_binning_accepts_tree_name(self, toy):
        X, y = toy
        cls = classifier_spec("under_bagging").cls
        clf = cls(
            estimator="tree", n_estimators=3, shared_binning=True, random_state=0
        ).fit(X, y)
        assert clf.predict_proba(X).shape == (len(y), 2)

    def test_shared_binning_rejects_non_tree_name(self, toy):
        X, y = toy
        cls = classifier_spec("bagging").cls
        clf = cls(estimator="logistic", shared_binning=True, random_state=0)
        with pytest.raises(ValueError, match="tree base estimator"):
            clf.fit(X, y)


class TestExperimentRunnerNaming:
    def test_evaluate_combination_accepts_registered_name(self, toy):
        from repro.experiments import evaluate_combination, org_method

        X, y = toy
        run = evaluate_combination(
            org_method(), "logistic", X, y, X, y, n_runs=1,
            classifier_name="LR",
        )
        assert run.classifier == "LR"
        assert all(len(v) == 1 for v in run.metrics.values())

    def test_evaluate_combination_estimator_is_keywordable(self, toy):
        """The parameter is named `estimator` — the library-wide spelling."""
        from repro.experiments import evaluate_combination, org_method

        X, y = toy
        run = evaluate_combination(
            org_method(), estimator=LogisticRegression(),
            X_train=X, y_train=y, X_test=X, y_test=y, n_runs=1,
        )
        assert run.method == "ORG"


class TestLifecycleTrainFn:
    def test_resolve_train_fn_passthrough_for_callables(self):
        from repro.lifecycle import resolve_train_fn

        fn = lambda source: "sentinel"  # noqa: E731
        assert resolve_train_fn(fn) is fn

    def test_resolve_train_fn_from_name_and_instance(self, toy):
        from repro.lifecycle import resolve_train_fn
        from repro.streaming import ArraySource

        X, y = toy
        for spec in ("logistic", LogisticRegression(max_iter=50)):
            model = resolve_train_fn(spec)(ArraySource(X, y))
            assert isinstance(model, LogisticRegression)
            assert model.predict_proba(X[:2]).shape == (2, 2)

    def test_template_is_cloned_per_cycle(self, toy):
        from repro.lifecycle import resolve_train_fn
        from repro.streaming import ArraySource

        X, y = toy
        template = LogisticRegression(max_iter=50)
        train = resolve_train_fn(template)
        first, second = train(ArraySource(X, y)), train(ArraySource(X, y))
        assert first is not template and first is not second
        assert not hasattr(template, "classes_")

    def test_rejects_none(self):
        from repro.lifecycle import resolve_train_fn

        with pytest.raises(TypeError, match="train_fn"):
            resolve_train_fn(None)
