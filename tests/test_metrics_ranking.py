"""Tests for ranking metrics: PR curve, AUCPRC, ROC."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import DataValidationError, UndefinedMetricWarning
from repro.metrics import (
    auc,
    average_precision_score,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)


class TestPrecisionRecallCurve:
    def test_perfect_ranking(self):
        precision, recall, _ = precision_recall_curve([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9])
        assert recall[0] == 1.0 and recall[-1] == 0.0
        assert precision[-1] == 1.0

    def test_anchor_point(self):
        precision, recall, _ = precision_recall_curve([1, 0], [0.9, 0.1])
        assert precision[-1] == 1.0 and recall[-1] == 0.0

    def test_no_positives_warns_and_returns_nan_recall(self):
        """All-majority windows (routine in monitoring) must not raise:
        recall is nan, precision stays defined, length contract holds."""
        with pytest.warns(UndefinedMetricWarning):
            precision, recall, thresholds = precision_recall_curve(
                [0, 0], [0.1, 0.2]
            )
        assert np.isnan(recall).all()
        assert len(precision) == len(recall) == len(thresholds) + 1
        assert precision[-1] == 1.0
        assert (precision[:-1] == 0.0).all()

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError):
            precision_recall_curve([0, 1], [0.5])

    @given(
        st.lists(st.sampled_from([0, 1]), min_size=2, max_size=60).filter(
            lambda labels: 1 in labels
        ),
        st.integers(0, 2**31 - 1),
    )
    def test_thresholds_one_shorter_than_precision_recall(self, labels, seed):
        """The documented sklearn-style length contract: the final (1, 0)
        anchor has no threshold, so ``len(thresholds) == len(precision) - 1
        == len(recall) - 1``. Serving-threshold tuning indexes the curve by
        threshold position and relies on this alignment."""
        scores = np.random.RandomState(seed).rand(len(labels))
        precision, recall, thresholds = precision_recall_curve(labels, scores)
        assert len(precision) == len(recall) == len(thresholds) + 1
        assert precision[-1] == 1.0 and recall[-1] == 0.0
        # thresholds ascend (index 0 = highest-recall operating point) and
        # each one is an observed score
        assert np.all(np.diff(thresholds) >= 0)
        assert np.isin(thresholds, scores).all()

    def test_threshold_alignment_with_metrics(self):
        """precision[i]/recall[i] are the metrics of classifying positive at
        score >= thresholds[i] — spot-checked exhaustively on a small case."""
        y = np.array([0, 1, 0, 1, 1, 0, 0, 0])
        s = np.array([0.1, 0.9, 0.3, 0.8, 0.55, 0.5, 0.2, 0.4])
        precision, recall, thresholds = precision_recall_curve(y, s)
        for i, t in enumerate(thresholds):
            pred = s >= t
            assert precision[i] == pytest.approx((y[pred] == 1).mean())
            assert recall[i] == pytest.approx(y[pred].sum() / y.sum())


class TestAveragePrecision:
    def test_perfect_is_one(self):
        assert average_precision_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_worst_ranking(self):
        """All positives ranked last: AP equals the prevalence-driven floor."""
        ap = average_precision_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9])
        # manual: positives at ranks 3,4 -> precision 1/3 and 2/4, mean = 5/12
        assert ap == pytest.approx((1 / 3 + 2 / 4) / 2)

    def test_known_value(self):
        # ranks by score: y = [1, 0, 1, 0]; precisions at positives: 1/1, 2/3
        ap = average_precision_score([0, 1, 0, 1], [0.2, 0.9, 0.4, 0.3])
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_random_scores_near_prevalence(self):
        rng = np.random.RandomState(0)
        y = (rng.uniform(size=4000) < 0.1).astype(int)
        ap = average_precision_score(y, rng.uniform(size=4000))
        assert 0.05 < ap < 0.2  # ~prevalence 0.1

    def test_ties_handled(self):
        ap = average_precision_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5])
        assert ap == pytest.approx(0.5)

    @pytest.mark.parametrize("label", [0, 1])
    def test_single_class_window_is_nan(self, label):
        with pytest.warns(UndefinedMetricWarning):
            ap = average_precision_score([label] * 4, [0.1, 0.2, 0.3, 0.4])
        assert np.isnan(ap)


class TestRoc:
    def test_perfect_auc(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    @pytest.mark.parametrize("label", [0, 1])
    def test_single_class_window_is_nan(self, label):
        """roc_auc_score degrades to nan on one-class windows; roc_curve
        itself keeps raising (a curve with an undefined axis has no shape)."""
        with pytest.warns(UndefinedMetricWarning):
            score = roc_auc_score([label] * 3, [0.1, 0.5, 0.9])
        assert np.isnan(score)
        with pytest.raises(DataValidationError):
            roc_curve([label] * 3, [0.1, 0.5, 0.9])

    def test_reversed_auc(self):
        assert roc_auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_is_half(self):
        rng = np.random.RandomState(1)
        y = (rng.uniform(size=3000) < 0.5).astype(int)
        assert roc_auc_score(y, rng.uniform(size=3000)) == pytest.approx(0.5, abs=0.05)

    def test_curve_starts_origin(self):
        fpr, tpr, _ = roc_curve([0, 1], [0.2, 0.8])
        assert fpr[0] == 0.0 and tpr[0] == 0.0

    def test_needs_both_classes(self):
        with pytest.raises(DataValidationError):
            roc_curve([1, 1], [0.2, 0.8])


class TestAuc:
    def test_unit_square(self):
        assert auc([0, 1], [1, 1]) == pytest.approx(1.0)

    def test_triangle(self):
        assert auc([0, 1], [0, 1]) == pytest.approx(0.5)

    def test_needs_two_points(self):
        with pytest.raises(DataValidationError):
            auc([0], [1])

    def test_non_monotonic_rejected(self):
        with pytest.raises(DataValidationError):
            auc([0, 2, 1], [0, 1, 2])


@st.composite
def scored_labels(draw):
    n = draw(st.integers(min_value=4, max_value=80))
    y = draw(
        st.lists(st.sampled_from([0, 1]), min_size=n, max_size=n).filter(
            lambda ls: 0 < sum(ls) < len(ls)
        )
    )
    scores = draw(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    # Quantise so adding a constant cannot merge distinct scores through
    # floating-point absorption (which would legitimately change the ranking).
    return np.array(y), np.round(np.array(scores), 6)


class TestRankingProperties:
    @given(scored_labels())
    def test_ap_bounded(self, data):
        y, s = data
        assert 0.0 <= average_precision_score(y, s) <= 1.0

    @given(scored_labels())
    def test_auc_bounded(self, data):
        y, s = data
        assert 0.0 <= roc_auc_score(y, s) <= 1.0

    @given(scored_labels())
    def test_score_shift_invariance(self, data):
        """Adding a constant to all scores must not change ranking metrics."""
        y, s = data
        assert average_precision_score(y, s) == pytest.approx(
            average_precision_score(y, s + 10.0)
        )

    @given(scored_labels())
    def test_ap_at_least_with_perfect_scores(self, data):
        """Using the labels as scores is a perfect ranking: AP = 1."""
        y, _ = data
        assert average_precision_score(y, y.astype(float)) == pytest.approx(1.0)
