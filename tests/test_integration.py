"""End-to-end integration tests crossing all subsystem boundaries."""

import numpy as np
import pytest

# Full paper-protocol runs; excluded from the PR-gating `make test-fast`.
pytestmark = pytest.mark.slow

from repro import SelfPacedEnsembleClassifier, clone
from repro.datasets import load_dataset, make_checkerboard
from repro.ensemble import AdaBoostClassifier, GradientBoostingClassifier
from repro.linear import LogisticRegression
from repro.metrics import evaluate_classifier
from repro.model_selection import train_valid_test_split
from repro.neighbors import KNeighborsClassifier
from repro.neural import MLPClassifier
from repro.preprocessing import StandardScaler
from repro.tree import C45Classifier, DecisionTreeClassifier


class TestPaperProtocolEndToEnd:
    """The paper's full pipeline: load → 60/20/20 split → fit → evaluate."""

    @pytest.mark.parametrize(
        "dataset", ["credit_fraud", "kddcup_dos_vs_prb", "record_linkage"]
    )
    def test_spe_beats_prevalence_on_each_dataset(self, dataset):
        # IR capped at 40 so the 60/20/20 split keeps enough minority
        # samples for the assertion to be statistically meaningful.
        ds = load_dataset(dataset, scale=0.2, imbalance_ratio=40.0, random_state=0)
        X_tr, X_va, X_te, y_tr, y_va, y_te = train_valid_test_split(
            ds.X, ds.y, random_state=0
        )
        spe = SelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=8, random_state=0),
            n_estimators=10,
            random_state=0,
        ).fit(X_tr, y_tr)
        scores = evaluate_classifier(spe, X_te, y_te)
        prevalence = y_te.mean()
        assert scores["AUCPRC"] > 5 * prevalence
        assert scores["F1"] > 0.1

    def test_spe_with_every_base_learner_family(self, checkerboard_small):
        """The paper's claim: SPE boosts any canonical classifier."""
        X, y = checkerboard_small
        scaler = StandardScaler().fit(X)
        Xs = scaler.transform(X)
        bases = [
            KNeighborsClassifier(n_neighbors=5),
            DecisionTreeClassifier(max_depth=6, random_state=0),
            C45Classifier(max_depth=6, random_state=0),
            LogisticRegression(C=1.0),
            MLPClassifier(hidden_layer_sizes=(16,), max_epochs=10, random_state=0),
            AdaBoostClassifier(
                DecisionTreeClassifier(max_depth=2), n_estimators=5, random_state=0
            ),
            GradientBoostingClassifier(n_estimators=10, random_state=0),
        ]
        for base in bases:
            spe = SelfPacedEnsembleClassifier(base, n_estimators=5, random_state=0)
            spe.fit(Xs, y)
            proba = spe.predict_proba(Xs)
            assert proba.shape == (len(y), 2), type(base).__name__

    def test_gbdt_with_validation_early_stopping_pipeline(self):
        ds = load_dataset("payment_simulation", scale=0.1, random_state=0)
        X_tr, X_va, X_te, y_tr, y_va, y_te = train_valid_test_split(
            ds.X, ds.y, random_state=0
        )
        gbdt = GradientBoostingClassifier(
            n_estimators=100, early_stopping_rounds=5, random_state=0
        )
        gbdt.fit(X_tr, y_tr, eval_set=(X_va, y_va))
        scores = evaluate_classifier(gbdt, X_te, y_te)
        assert np.isfinite(scores["AUCPRC"])


class TestRobustnessStories:
    def test_spe_resists_overlap_better_than_cascade(self):
        """Fig 5's claim, asserted statistically over seeds: under heavy
        overlap Cascade's final iterations overfit noise."""
        from repro.imbalance_ensemble import BalanceCascadeClassifier

        spe_wins = 0
        for seed in range(3):
            X_tr, y_tr = make_checkerboard(400, 4000, cov_scale=0.15, random_state=seed)
            X_te, y_te = make_checkerboard(
                400, 4000, cov_scale=0.15, random_state=seed + 50
            )
            base = DecisionTreeClassifier(max_depth=8, random_state=seed)
            spe = SelfPacedEnsembleClassifier(
                clone(base), n_estimators=10, random_state=seed
            ).fit(X_tr, y_tr)
            cascade = BalanceCascadeClassifier(
                clone(base), n_estimators=10, random_state=seed
            ).fit(X_tr, y_tr)
            s = evaluate_classifier(spe, X_te, y_te)["AUCPRC"]
            c = evaluate_classifier(cascade, X_te, y_te)["AUCPRC"]
            spe_wins += int(s > c)
        assert spe_wins >= 2

    def test_missing_values_degrade_gracefully(self):
        """Table VII's protocol: AUCPRC decreases with missing ratio but SPE
        keeps a usable signal at 50% missing."""
        from repro.datasets import inject_missing_values, make_credit_fraud
        from repro.model_selection import train_test_split

        X, y = make_credit_fraud(n_samples=6000, imbalance_ratio=30, random_state=0)
        results = {}
        for ratio in (0.0, 0.25, 0.5):
            X_miss = inject_missing_values(X, ratio, random_state=0)
            X_tr, X_te, y_tr, y_te = train_test_split(
                X_miss, y, test_size=0.3, random_state=0
            )
            spe = SelfPacedEnsembleClassifier(
                DecisionTreeClassifier(max_depth=8, random_state=0),
                n_estimators=10,
                random_state=0,
            ).fit(X_tr, y_tr)
            results[ratio] = evaluate_classifier(spe, X_te, y_te)["AUCPRC"]
        # Table VII's shape: monotone degradation, yet still above chance
        # (= prevalence for AUCPRC) at 50% missing.
        assert results[0.0] > results[0.25] > results[0.5]
        assert results[0.5] > y.mean()

    def test_spe_cheaper_than_smote_in_samples(self, imbalanced_data):
        """Table V/VI's efficiency story: SPE trains on far less data."""
        from repro.imbalance_ensemble import SMOTEBaggingClassifier

        X, y = imbalanced_data
        base = DecisionTreeClassifier(max_depth=4, random_state=0)
        spe = SelfPacedEnsembleClassifier(clone(base), n_estimators=10, random_state=0)
        smote_bag = SMOTEBaggingClassifier(clone(base), n_estimators=10, random_state=0)
        spe.fit(X, y)
        smote_bag.fit(X, y)
        assert spe.n_training_samples_ * 5 < smote_bag.n_training_samples_
