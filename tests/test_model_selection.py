"""Tests for splitting utilities and cross validation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DataValidationError
from repro.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
    train_valid_test_split,
)
from repro.tree import DecisionTreeClassifier


def _imbalanced(n_maj=200, n_min=20, seed=0):
    rng = np.random.RandomState(seed)
    X = rng.randn(n_maj + n_min, 3)
    y = np.concatenate([np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)])
    return X, y


class TestTrainTestSplit:
    def test_sizes(self):
        X, y = _imbalanced()
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.25, random_state=0)
        assert len(y_te) == 55 and len(y_tr) == 165

    def test_stratification_preserves_ratio(self):
        X, y = _imbalanced(1000, 100)
        _, _, y_tr, y_te = train_test_split(X, y, test_size=0.2, random_state=0)
        ratio_tr = y_tr.mean()
        ratio_te = y_te.mean()
        assert abs(ratio_tr - ratio_te) < 0.02

    def test_no_overlap_and_complete(self):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        y = (np.arange(100) % 10 == 0).astype(int)
        X_tr, X_te, _, _ = train_test_split(X, y, test_size=0.3, random_state=1)
        merged = np.sort(np.concatenate([X_tr.ravel(), X_te.ravel()]))
        assert np.array_equal(merged, np.arange(100, dtype=float))

    def test_deterministic_with_seed(self):
        X, y = _imbalanced()
        a = train_test_split(X, y, test_size=0.3, random_state=5)
        b = train_test_split(X, y, test_size=0.3, random_state=5)
        assert np.array_equal(a[0], b[0])

    def test_invalid_test_size(self):
        X, y = _imbalanced()
        with pytest.raises(DataValidationError):
            train_test_split(X, y, test_size=1.5)

    def test_length_mismatch(self):
        with pytest.raises(DataValidationError):
            train_test_split(np.ones((5, 1)), np.ones(4))

    @settings(max_examples=20)
    @given(st.floats(min_value=0.1, max_value=0.9))
    def test_sizes_property(self, test_size):
        X, y = _imbalanced(100, 20)
        X_tr, X_te, y_tr, y_te = train_test_split(
            X, y, test_size=test_size, random_state=0
        )
        assert len(y_tr) + len(y_te) == 120
        assert len(y_te) == max(1, int(round(120 * test_size)))


class TestTrainValidTestSplit:
    def test_paper_60_20_20(self):
        X, y = _imbalanced(600, 60)
        parts = train_valid_test_split(X, y, random_state=0)
        X_tr, X_va, X_te, y_tr, y_va, y_te = parts
        total = len(y_tr) + len(y_va) + len(y_te)
        assert total == 660
        assert abs(len(y_tr) / total - 0.6) < 0.02
        assert abs(len(y_va) / total - 0.2) < 0.02

    def test_each_part_has_minority(self):
        X, y = _imbalanced(600, 30)
        _, _, _, y_tr, y_va, y_te = train_valid_test_split(X, y, random_state=0)
        assert y_tr.sum() > 0 and y_va.sum() > 0 and y_te.sum() > 0

    def test_invalid_sizes(self):
        X, y = _imbalanced()
        with pytest.raises(DataValidationError):
            train_valid_test_split(X, y, valid_size=0.6, test_size=0.5)


class TestKFold:
    def test_covers_all_indices(self):
        X = np.zeros((20, 1))
        seen = np.concatenate([te for _, te in KFold(4, random_state=0).split(X)])
        assert sorted(seen.tolist()) == list(range(20))

    def test_train_test_disjoint(self):
        X = np.zeros((20, 1))
        for tr, te in KFold(5, random_state=0).split(X):
            assert set(tr).isdisjoint(te)

    def test_too_few_samples(self):
        with pytest.raises(DataValidationError):
            list(KFold(5).split(np.zeros((3, 1))))

    def test_invalid_n_splits(self):
        with pytest.raises(DataValidationError):
            KFold(1)


class TestStratifiedKFold:
    def test_each_fold_has_minority(self):
        X, y = _imbalanced(100, 10)
        for _, te in StratifiedKFold(5, random_state=0).split(X, y):
            assert y[te].sum() >= 1

    def test_class_too_small(self):
        X, y = _imbalanced(20, 2)
        with pytest.raises(DataValidationError):
            list(StratifiedKFold(5).split(X, y))

    def test_coverage(self):
        X, y = _imbalanced(50, 10)
        seen = np.concatenate(
            [te for _, te in StratifiedKFold(3, random_state=1).split(X, y)]
        )
        assert sorted(seen.tolist()) == list(range(60))


class TestCrossValScore:
    def test_returns_n_scores(self):
        X, y = _imbalanced(100, 20)
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=3, random_state=0),
            X,
            y,
            cv=StratifiedKFold(3, random_state=0),
        )
        assert scores.shape == (3,)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_custom_scorer(self):
        X, y = _imbalanced(60, 12)
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=2, random_state=0),
            X,
            y,
            cv=StratifiedKFold(3, random_state=0),
            scorer=lambda est, X_t, y_t: 0.123,
        )
        assert np.allclose(scores, 0.123)
