"""CI-pipeline contract: the workflow file, Makefile, and markers agree.

The acceptance criteria of the CI issue: .github/workflows/ci.yml must be
syntactically valid YAML, every command it runs must exist as a Makefile
target, the PR gate must cover the Python 3.10/3.11 matrix, and the bench
job must upload both BENCH_*.json artifacts. Kept dependency-light (PyYAML
only, regex for the rest) so it runs on every matrix entry.
"""

import pathlib
import re

import pytest

yaml = pytest.importorskip("yaml")

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
WORKFLOW = REPO_ROOT / ".github" / "workflows" / "ci.yml"
EXPECTED_JOBS = {"lint", "test-fast", "test", "coverage", "bench-smoke"}


@pytest.fixture(scope="module")
def workflow():
    return yaml.safe_load(WORKFLOW.read_text())


@pytest.fixture(scope="module")
def makefile_text():
    return (REPO_ROOT / "Makefile").read_text()


def _run_commands(workflow):
    for job in workflow["jobs"].values():
        for step in job.get("steps", []):
            if "run" in step:
                yield step["run"]


class TestWorkflowFile:
    def test_parses_as_yaml_with_jobs(self, workflow):
        assert isinstance(workflow, dict)
        assert set(workflow["jobs"]) == EXPECTED_JOBS

    def test_triggers_on_push_and_pr(self, workflow):
        # YAML 1.1 parses the bare key `on` as boolean True.
        triggers = workflow.get("on", workflow.get(True))
        assert "push" in triggers and "pull_request" in triggers

    def test_pr_gate_matrix_covers_310_and_311(self, workflow):
        matrix = workflow["jobs"]["test-fast"]["strategy"]["matrix"]
        assert set(matrix["python-version"]) == {"3.10", "3.11"}
        # Versions must be quoted strings: a bare 3.10 is YAML float 3.1.
        assert all(isinstance(v, str) for v in matrix["python-version"])

    def test_full_suite_runs_in_second_job(self, workflow):
        assert any(
            "make test" in cmd.split("\n")[-1] or cmd.strip() == "make test"
            for cmd in _run_commands(workflow)
        )
        assert workflow["jobs"]["test"]["needs"] == "test-fast"

    def test_every_make_command_has_a_target(self, workflow, makefile_text):
        targets = set(re.findall(r"^([A-Za-z][\w-]*):", makefile_text, re.M))
        invoked = {
            m.group(1)
            for cmd in _run_commands(workflow)
            for m in re.finditer(r"\bmake\s+([\w-]+)", cmd)
        }
        assert invoked, "workflow must drive the build through make"
        missing = invoked - targets
        assert not missing, f"workflow invokes unknown make targets: {missing}"

    def test_expected_make_targets_are_all_exercised(self, workflow):
        invoked = {
            m.group(1)
            for cmd in _run_commands(workflow)
            for m in re.finditer(r"\bmake\s+([\w-]+)", cmd)
        }
        assert {"lint", "test-fast", "test", "coverage", "bench-smoke"} <= invoked

    def test_bench_job_uploads_all_artifacts(self, workflow):
        uploads = [
            step
            for step in workflow["jobs"]["bench-smoke"]["steps"]
            if "upload-artifact" in str(step.get("uses", ""))
        ]
        assert uploads, "bench-smoke must upload artifacts"
        paths = uploads[0]["with"]["path"]
        assert "BENCH_parallel.json" in paths
        assert "BENCH_streaming.json" in paths
        assert "BENCH_fastpath.json" in paths
        assert "BENCH_serving.json" in paths
        assert "BENCH_monitoring.json" in paths
        assert "BENCH_chaos.json" in paths
        assert "BENCH_telemetry.json" in paths

    def test_bench_smoke_runs_fastpath_bench(self, makefile_text):
        smoke = makefile_text.split("bench-smoke:")[1].split("\n\n")[0]
        assert "bench_fastpath.py" in smoke

    def test_bench_smoke_runs_serving_bench(self, makefile_text):
        smoke = makefile_text.split("bench-smoke:")[1].split("\n\n")[0]
        assert "bench_serving.py" in smoke

    def test_bench_smoke_runs_monitoring_bench(self, makefile_text):
        smoke = makefile_text.split("bench-smoke:")[1].split("\n\n")[0]
        assert "bench_monitoring.py" in smoke

    def test_bench_smoke_runs_chaos_bench(self, makefile_text):
        smoke = makefile_text.split("bench-smoke:")[1].split("\n\n")[0]
        assert "bench_chaos.py" in smoke

    def test_bench_monitoring_target_exists(self, makefile_text):
        assert "bench-monitoring:" in makefile_text

    def test_bench_chaos_target_exists(self, makefile_text):
        assert "bench-chaos:" in makefile_text

    def test_bench_smoke_runs_telemetry_bench(self, makefile_text):
        smoke = makefile_text.split("bench-smoke:")[1].split("\n\n")[0]
        assert "bench_telemetry.py" in smoke

    def test_bench_telemetry_target_exists(self, makefile_text):
        assert "bench-telemetry:" in makefile_text

    def test_bench_report_covers_telemetry_artifact(self):
        import sys

        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import bench_report
        finally:
            sys.path.pop(0)
        assert "BENCH_telemetry.json" in bench_report.ARTIFACTS

    def test_coverage_job_is_informational(self, workflow):
        assert workflow["jobs"]["coverage"].get("continue-on-error") is True

    def test_jobs_gate_on_lint_then_fast_tests(self, workflow):
        assert workflow["jobs"]["test-fast"]["needs"] == "lint"
        for job in ("coverage", "bench-smoke"):
            assert workflow["jobs"][job]["needs"] == "test-fast"


class TestMarkersRegistered:
    def test_pyproject_registers_slow_and_bench(self):
        # Text-level check: tomllib only exists on 3.11+, and the CI matrix
        # includes 3.10.
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.pytest.ini_options]" in pyproject
        assert re.search(r'"slow:', pyproject)
        assert re.search(r'"bench:', pyproject)
        assert re.search(r'"chaos:', pyproject)

    def test_slow_marker_applied_to_experiment_tests(self):
        for name in (
            "test_experiments.py",
            "test_experiments_figures.py",
            "test_integration.py",
        ):
            text = (REPO_ROOT / "tests" / name).read_text()
            assert "pytestmark = pytest.mark.slow" in text, name

    def test_makefile_fast_target_deselects_markers(self):
        makefile = (REPO_ROOT / "Makefile").read_text()
        assert 'not slow and not bench' in makefile

    def test_running_session_knows_the_markers(self, pytestconfig):
        """The live pytest session parsed pyproject.toml and registered
        both markers — no unknown-marker warnings anywhere in the suite."""
        registered = "\n".join(pytestconfig.getini("markers"))
        assert "slow:" in registered
        assert "bench:" in registered
        assert "chaos:" in registered


class TestLintGate:
    """`make lint` is a single repro-lint invocation with one exit code."""

    def test_lint_target_runs_repro_lint(self, makefile_text):
        lint = makefile_text.split("lint:")[1].split("\n\n")[0]
        assert "repro_lint.py" in lint
        assert "compileall" in lint
        assert "--out LINT_report.json" in lint

    def test_lint_fix_baseline_target_exists(self, makefile_text):
        target = makefile_text.split("lint-fix-baseline:")[1].split("\n\n")[0]
        assert "--write-baseline" in target

    def test_lint_job_uploads_report_artifact(self, workflow):
        uploads = [
            step
            for step in workflow["jobs"]["lint"]["steps"]
            if "upload-artifact" in str(step.get("uses", ""))
        ]
        assert uploads, "lint job must upload the lint report"
        assert "LINT_report.json" in uploads[0]["with"]["path"]
        assert uploads[0]["with"]["if-no-files-found"] == "error"


class TestRegistryCompleteness:
    """The classifier-registry audit is wired into the build and passes."""

    def test_registry_audit_reachable_through_lint_runner(self):
        """tools/check_registry.py is a shim over the repro-lint registry
        checker — the runner must expose it by name."""
        import sys

        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            from analysis import default_checkers
        finally:
            sys.path.pop(0)
        assert "registry" in {c.name for c in default_checkers()}

    def test_bench_smoke_runs_bench_report(self, makefile_text):
        smoke = makefile_text.split("bench-smoke:")[1].split("\n\n")[0]
        assert "bench_report.py" in smoke

    def test_registry_has_no_problems(self):
        """Every exported classifier registered, every contract honoured,
        every preset constructs and fits — the same audit `make lint` runs
        via tools/check_registry.py."""
        from repro.registry import registry_problems

        assert registry_problems(check_presets=True) == []

    def test_bench_report_tolerates_missing_artifacts(self, tmp_path):
        import sys

        sys.path.insert(0, str(REPO_ROOT / "tools"))
        try:
            import bench_report
        finally:
            sys.path.pop(0)
        report, missing = bench_report.build_report(str(tmp_path))
        assert set(missing) == set(bench_report.ARTIFACTS)
        assert "Missing artifacts" in report


class TestRegistrySmoke:
    """Registry round-trip smoke: the artifact path CI's lifecycle relies
    on — register → reopen → load — must stay bit-exact end to end."""

    def test_register_reopen_load_roundtrip(self, tmp_path):
        import numpy as np

        from repro.core import SelfPacedEnsembleClassifier
        from repro.datasets import make_checkerboard
        from repro.lifecycle import ArtifactRegistry

        X, y = make_checkerboard(n_minority=40, n_majority=400, random_state=0)
        clf = SelfPacedEnsembleClassifier(n_estimators=3, random_state=0).fit(X, y)
        version = ArtifactRegistry(tmp_path / "reg").register(clf)
        reopened = ArtifactRegistry(tmp_path / "reg")
        assert reopened.versions() == [version]
        loaded = reopened.load(version)
        assert np.array_equal(loaded.predict_proba(X), clf.predict_proba(X))
