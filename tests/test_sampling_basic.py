"""Tests for random/NearMiss samplers and the sampler base contract."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NotEnoughSamplesError
from repro.sampling import NearMiss, RandomOverSampler, RandomUnderSampler
from repro.sampling.base import split_classes


def _data(n_maj=300, n_min=30, seed=0, d=3):
    rng = np.random.RandomState(seed)
    X = np.vstack([rng.randn(n_maj, d), rng.randn(n_min, d) + 2.0])
    y = np.concatenate([np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)])
    return X, y


class TestSplitClasses:
    def test_indices(self):
        X, y = _data(5, 2)
        maj, mino = split_classes(X, y)
        assert len(maj) == 5 and len(mino) == 2

    def test_missing_class_raises(self):
        with pytest.raises(NotEnoughSamplesError):
            split_classes(np.ones((3, 1)), np.zeros(3, dtype=int))


class TestRandomUnderSampler:
    def test_balanced_output(self):
        X, y = _data()
        Xr, yr = RandomUnderSampler(random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == (yr == 1).sum() == 30

    def test_keeps_all_minority(self):
        X, y = _data()
        sampler = RandomUnderSampler(random_state=0)
        Xr, yr = sampler.fit_resample(X, y)
        minority_rows = {tuple(row) for row in X[y == 1]}
        assert {tuple(row) for row in Xr[yr == 1]} == minority_rows

    def test_samples_come_from_original(self):
        X, y = _data()
        Xr, yr = RandomUnderSampler(random_state=0).fit_resample(X, y)
        original = {tuple(row) for row in X}
        assert all(tuple(row) in original for row in Xr)

    def test_ratio(self):
        X, y = _data()
        _, yr = RandomUnderSampler(ratio=2.0, random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == 60

    def test_sample_indices_recorded(self):
        X, y = _data()
        sampler = RandomUnderSampler(random_state=0)
        Xr, _ = sampler.fit_resample(X, y)
        assert np.allclose(X[sampler.sample_indices_], Xr)

    def test_deterministic(self):
        X, y = _data()
        a = RandomUnderSampler(random_state=3).fit_resample(X, y)[0]
        b = RandomUnderSampler(random_state=3).fit_resample(X, y)[0]
        assert np.allclose(a, b)

    def test_invalid_ratio(self):
        X, y = _data()
        with pytest.raises(ValueError):
            RandomUnderSampler(ratio=0).fit_resample(X, y)

    def test_rejects_multiclass(self):
        X = np.ones((6, 2))
        with pytest.raises(Exception):
            RandomUnderSampler().fit_resample(X, [0, 1, 2, 0, 1, 2])

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=50, max_value=200))
    def test_balance_property(self, n_min, n_maj):
        X, y = _data(n_maj, n_min)
        _, yr = RandomUnderSampler(random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == (yr == 1).sum() == n_min


class TestRandomOverSampler:
    def test_balanced_output(self):
        X, y = _data()
        _, yr = RandomOverSampler(random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == (yr == 1).sum() == 300

    def test_new_minority_are_duplicates(self):
        X, y = _data()
        Xr, yr = RandomOverSampler(random_state=0).fit_resample(X, y)
        minority_rows = {tuple(row) for row in X[y == 1]}
        assert all(tuple(row) in minority_rows for row in Xr[yr == 1])

    def test_majority_untouched(self):
        X, y = _data()
        Xr, yr = RandomOverSampler(random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == 300


class TestNearMiss:
    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_balanced_output(self, version):
        X, y = _data()
        _, yr = NearMiss(version=version, random_state=0).fit_resample(X, y)
        assert (yr == 0).sum() == (yr == 1).sum() == 30

    def test_version1_prefers_close_majority(self):
        """NearMiss-1 keeps the majority samples nearest to the minority."""
        rng = np.random.RandomState(0)
        near = rng.randn(50, 2) * 0.3 + 2.0      # close to minority at (2, 2)
        far = rng.randn(250, 2) * 0.3 - 5.0      # far away
        X = np.vstack([near, far, rng.randn(30, 2) * 0.3 + 2.0])
        y = np.concatenate([np.zeros(300, int), np.ones(30, int)])
        sampler = NearMiss(version=1)
        Xr, yr = sampler.fit_resample(X, y)
        kept_majority = Xr[yr == 0]
        assert (kept_majority.mean(axis=0) > 0).all()  # from the near blob

    def test_invalid_version(self):
        X, y = _data()
        with pytest.raises(ValueError):
            NearMiss(version=4).fit_resample(X, y)

    def test_subset_of_original(self):
        X, y = _data()
        Xr, _ = NearMiss(version=2).fit_resample(X, y)
        original = {tuple(row) for row in X}
        assert all(tuple(row) in original for row in Xr)
