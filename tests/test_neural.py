"""Tests for the MLP classifier and neural building blocks."""

import numpy as np
import pytest

from repro.neural import (
    ACTIVATIONS,
    AdamOptimizer,
    MLPClassifier,
    SGDOptimizer,
    log_loss,
    softmax,
)


class TestActivations:
    def test_relu(self):
        fn, grad = ACTIVATIONS["relu"]
        z = np.array([-1.0, 0.0, 2.0])
        assert fn(z).tolist() == [0.0, 0.0, 2.0]
        assert grad(z, fn(z)).tolist() == [0.0, 0.0, 1.0]

    def test_tanh_gradient(self):
        fn, grad = ACTIVATIONS["tanh"]
        z = np.array([0.3])
        a = fn(z)
        numeric = (fn(z + 1e-6) - fn(z - 1e-6)) / 2e-6
        assert np.allclose(grad(z, a), numeric, atol=1e-6)

    def test_logistic_range(self):
        fn, _ = ACTIVATIONS["logistic"]
        z = np.array([-100.0, 0.0, 100.0])
        out = fn(z)
        assert out[0] < 1e-6 and out[1] == 0.5 and out[2] > 1 - 1e-6

    def test_softmax_rows_sum(self, rng):
        p = softmax(rng.randn(10, 4))
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_softmax_stability(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(p, 0.5)

    def test_log_loss_perfect(self):
        proba = np.array([[0.0, 1.0], [1.0, 0.0]])
        onehot = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert log_loss(proba, onehot) < 1e-10


class TestOptimizers:
    def test_adam_minimises_quadratic(self):
        x = np.array([5.0])
        opt = AdamOptimizer([x], lr=0.1)
        for _ in range(500):
            opt.step([2 * x])  # gradient of x^2
        assert abs(x[0]) < 0.1

    def test_sgd_momentum_minimises(self):
        x = np.array([3.0])
        opt = SGDOptimizer([x], lr=0.05, momentum=0.5)
        for _ in range(300):
            opt.step([2 * x])
        assert abs(x[0]) < 0.1


class TestMLP:
    def test_learns_xor(self):
        rng = np.random.RandomState(0)
        X = rng.uniform(-1, 1, size=(600, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        clf = MLPClassifier(
            hidden_layer_sizes=(32,), max_epochs=60, random_state=0
        ).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_loss_decreases(self, binary_blobs):
        X, y = binary_blobs
        clf = MLPClassifier(hidden_layer_sizes=(16,), max_epochs=15, random_state=0)
        clf.fit(X, y)
        assert clf.loss_curve_[-1] < clf.loss_curve_[0]

    def test_early_stopping_can_trigger(self, binary_blobs):
        X, y = binary_blobs
        clf = MLPClassifier(
            hidden_layer_sizes=(8,),
            max_epochs=200,
            tol=10.0,  # absurd tolerance: no epoch ever "improves"
            n_iter_no_change=2,
            random_state=0,
        ).fit(X, y)
        assert clf.n_epochs_ <= 3

    def test_sgd_solver(self, binary_blobs):
        X, y = binary_blobs
        clf = MLPClassifier(
            solver="sgd", learning_rate=0.05, max_epochs=20, random_state=0
        ).fit(X, y)
        assert clf.score(X, y) > 0.8

    def test_two_hidden_layers(self, binary_blobs):
        X, y = binary_blobs
        clf = MLPClassifier(hidden_layer_sizes=(16, 8), max_epochs=15, random_state=0)
        assert clf.fit(X, y).score(X, y) > 0.8

    def test_proba_rows_sum(self, binary_blobs):
        X, y = binary_blobs
        proba = (
            MLPClassifier(max_epochs=5, random_state=0).fit(X, y).predict_proba(X[:7])
        )
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_stratified_batches(self, imbalanced_data):
        X, y = imbalanced_data
        clf = MLPClassifier(
            max_epochs=8, batch_order="stratified", random_state=0
        ).fit(X, y)
        assert hasattr(clf, "n_epochs_")

    def test_invalid_activation(self, binary_blobs):
        X, y = binary_blobs
        with pytest.raises(ValueError):
            MLPClassifier(activation="swish").fit(X, y)

    def test_invalid_solver(self, binary_blobs):
        X, y = binary_blobs
        with pytest.raises(ValueError):
            MLPClassifier(solver="rmsprop").fit(X, y)

    def test_deterministic(self, binary_blobs):
        X, y = binary_blobs
        p1 = MLPClassifier(max_epochs=5, random_state=1).fit(X, y).predict_proba(X)
        p2 = MLPClassifier(max_epochs=5, random_state=1).fit(X, y).predict_proba(X)
        assert np.allclose(p1, p2)
