"""Shared fixtures: small, fast datasets reused across the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.RandomState(42)


@pytest.fixture
def imbalanced_data(rng):
    """Separable-ish imbalanced blobs: 400 majority vs 40 minority."""
    X_maj = rng.randn(400, 4)
    X_min = rng.randn(40, 4) * 0.7 + np.array([2.0, 2.0, 0.0, 0.0])
    X = np.vstack([X_maj, X_min])
    y = np.concatenate([np.zeros(400, dtype=int), np.ones(40, dtype=int)])
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


@pytest.fixture
def overlapped_data(rng):
    """Heavily overlapping imbalanced blobs (noise-sensitive methods suffer)."""
    X_maj = rng.randn(600, 3)
    X_min = rng.randn(60, 3) * 1.0 + np.array([0.8, 0.8, 0.0])
    X = np.vstack([X_maj, X_min])
    y = np.concatenate([np.zeros(600, dtype=int), np.ones(60, dtype=int)])
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


@pytest.fixture
def binary_blobs(rng):
    """Balanced, separable 2-class problem for classifier sanity checks."""
    X0 = rng.randn(150, 3) - 1.5
    X1 = rng.randn(150, 3) + 1.5
    X = np.vstack([X0, X1])
    y = np.concatenate([np.zeros(150, dtype=int), np.ones(150, dtype=int)])
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


@pytest.fixture
def checkerboard_small():
    from repro.datasets import make_checkerboard

    return make_checkerboard(n_minority=150, n_majority=1500, random_state=7)
