"""Monitoring subsystem: prequential windows, drift detectors, DriftMonitor.

Pins the contracts of the monitoring issue: ring windows are bounded and
ordered, label delay joins the streams in order, single-class windows are
nan (never a crash), detectors are deterministic and quiet on drift-free
control streams while alarming on injected covariate / concept / prior
drift.
"""

import numpy as np
import pytest

from repro.datasets import make_checkerboard
from repro.monitoring import (
    DDMDetector,
    DriftLevel,
    DriftMonitor,
    DriftReport,
    FeatureDriftDetector,
    PrequentialEvaluator,
    PrevalenceShiftDetector,
    ReferenceSketch,
    RingWindow,
)
from repro.streaming import ArraySource


@pytest.fixture(scope="module")
def data():
    return make_checkerboard(n_minority=300, n_majority=3000, random_state=0)


@pytest.fixture(scope="module")
def sketch(data):
    X, y = data
    return ReferenceSketch(n_bins=12).fit(X, y)


class TestRingWindow:
    def test_bounded_and_ordered(self):
        ring = RingWindow(5)
        ring.extend([1.0, 2.0, 3.0])
        assert list(ring.values()) == [1.0, 2.0, 3.0]
        ring.extend([4.0, 5.0, 6.0, 7.0])
        assert len(ring) == 5
        assert list(ring.values()) == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_oversized_extend_keeps_newest(self):
        ring = RingWindow(3)
        ring.extend(np.arange(10.0))
        assert list(ring.values()) == [7.0, 8.0, 9.0]

    def test_2d_rows(self):
        ring = RingWindow(4, n_columns=2)
        ring.extend(np.arange(12.0).reshape(6, 2))
        assert ring.values().shape == (4, 2)
        assert ring.values()[0, 0] == 4.0

    def test_shape_mismatch_rejected(self):
        ring = RingWindow(4, n_columns=2)
        with pytest.raises(ValueError):
            ring.extend(np.zeros((3, 5)))


class TestPrequentialEvaluator:
    def test_zero_delay_metrics(self):
        ev = PrequentialEvaluator(window_size=100, threshold=0.5)
        y = np.array([0, 0, 0, 1, 1, 0, 1, 0])
        s = np.array([0.1, 0.2, 0.1, 0.9, 0.8, 0.6, 0.3, 0.2])
        ev.add(s, y)
        m = ev.metrics()
        assert m["n"] == 8
        assert m["prevalence"] == pytest.approx(3 / 8)
        assert m["error_rate"] == pytest.approx(2 / 8)  # 0.6 FP + 0.3 FN
        assert 0.0 <= m["auprc"] <= 1.0
        assert m["minority_recall"] == pytest.approx(2 / 3)

    def test_label_delay_joins_in_order(self):
        ev = PrequentialEvaluator(window_size=10)
        ev.push_scores([0.9, 0.1])
        ev.push_scores([0.8])
        assert ev.n_pending == 3
        scores = ev.push_labels([1, 0])  # oldest two
        assert list(scores) == [0.9, 0.1]
        assert ev.n_pending == 1
        y_true, y_score = ev.window()
        assert list(y_true) == [1, 0]
        assert list(y_score) == [0.9, 0.1]

    def test_labels_beyond_pending_rejected(self):
        ev = PrequentialEvaluator(window_size=10)
        ev.push_scores([0.5])
        with pytest.raises(ValueError):
            ev.push_labels([1, 0])

    def test_all_majority_window_is_nan_not_crash(self):
        ev = PrequentialEvaluator(window_size=50)
        ev.add(np.random.RandomState(0).uniform(size=20) * 0.3, np.zeros(20, int))
        m = ev.metrics()
        assert np.isnan(m["auprc"]) and np.isnan(m["f1"])
        assert np.isnan(m["minority_recall"])
        assert m["prevalence"] == 0.0

    def test_empty_window_all_nan(self):
        m = PrequentialEvaluator(window_size=10).metrics()
        assert m["n"] == 0
        assert all(
            np.isnan(v) for k, v in m.items() if k != "n"
        )

    def test_window_is_bounded(self):
        ev = PrequentialEvaluator(window_size=16)
        for _ in range(10):
            ev.add(np.full(8, 0.5), np.ones(8, int))
        assert len(ev) == 16
        assert ev.n_labeled == 80


class TestReferenceSketch:
    def test_counts_cover_reference(self, sketch, data):
        X, y = data
        assert sketch.n_rows_ == len(X)
        assert sketch.counts_.sum() == len(X) * X.shape[1]
        assert sketch.prevalence_ == pytest.approx(float(np.mean(y == 1)))

    def test_fit_source_matches_fit(self, data):
        X, y = data
        direct = ReferenceSketch(n_bins=8).fit(X, y)
        streamed = ReferenceSketch(n_bins=8).fit_source(
            ArraySource(X, y, block_size=97)
        )
        assert np.array_equal(direct.counts_, streamed.counts_)
        assert streamed.prevalence_ == pytest.approx(direct.prevalence_)
        for a, b in zip(direct.binner_.edges_, streamed.binner_.edges_):
            assert np.array_equal(a, b)

    def test_subsampled_edges_deterministic(self, data):
        X, y = data
        a = ReferenceSketch(n_bins=8, max_fit_rows=500).fit(X, random_state=3)
        b = ReferenceSketch(n_bins=8, max_fit_rows=500).fit(X, random_state=3)
        for ea, eb in zip(a.binner_.edges_, b.binner_.edges_):
            assert np.array_equal(ea, eb)

    def test_feature_count_mismatch_rejected(self, sketch):
        with pytest.raises(ValueError):
            sketch.histogram(np.zeros((5, 7)))


class TestFeatureDriftDetector:
    def test_quiet_on_reference_sample(self, sketch, data):
        X, _ = data
        rng = np.random.RandomState(1)
        report = FeatureDriftDetector(sketch).check(X[rng.choice(len(X), 800)])
        assert report.level is DriftLevel.OK
        assert report.detector == "feature_psi_ks"

    def test_alarms_on_shifted_window(self, sketch, data):
        X, _ = data
        report = FeatureDriftDetector(sketch).check(X[:800] + 4.0)
        assert report.level is DriftLevel.ALARM
        assert report.statistic >= 0.25
        assert report.drifted

    def test_deterministic(self, sketch, data):
        X, _ = data
        det = FeatureDriftDetector(sketch)
        r1, r2 = det.check(X[:500] + 1.0), det.check(X[:500] + 1.0)
        assert r1.statistic == r2.statistic and r1.level == r2.level

    def test_warn_band_between_thresholds(self, sketch, data):
        """A mild shift lands between warn and alarm for some magnitude."""
        X, _ = data
        levels = [
            FeatureDriftDetector(sketch).check(X[:800] + mag).level
            for mag in (0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6)
        ]
        assert levels[0] is DriftLevel.OK
        assert levels[-1] is DriftLevel.ALARM
        assert DriftLevel.WARN in levels


class TestDDM:
    def test_quiet_on_stationary_errors(self):
        rng = np.random.RandomState(0)
        ddm = DDMDetector()
        levels = set()
        for _ in range(30):
            levels.add(ddm.update((rng.uniform(size=100) < 0.1).astype(int)).level)
        assert levels == {DriftLevel.OK}

    def test_alarms_on_error_rise_then_resets(self):
        rng = np.random.RandomState(0)
        ddm = DDMDetector()
        for _ in range(10):
            ddm.update((rng.uniform(size=100) < 0.05).astype(int))
        levels = []
        for _ in range(20):
            levels.append(
                ddm.update((rng.uniform(size=100) < 0.4).astype(int)).level
            )
        assert DriftLevel.ALARM in levels
        # reset happened: the detector re-bases on the new error regime
        assert ddm.n < 3000

    def test_minimum_sample_gate(self):
        ddm = DDMDetector(min_samples=50)
        report = ddm.update(np.ones(10, int))
        assert report.level is DriftLevel.OK and np.isnan(report.statistic)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            DDMDetector().update([0, 2, 1])


class TestPrevalenceShift:
    def test_quiet_at_reference_rate(self):
        rng = np.random.RandomState(0)
        det = PrevalenceShiftDetector(0.1)
        y = (rng.uniform(size=2000) < 0.1).astype(int)
        assert det.check(y).level is DriftLevel.OK

    def test_alarms_on_tripled_prior(self):
        rng = np.random.RandomState(0)
        det = PrevalenceShiftDetector(0.1)
        y = (rng.uniform(size=2000) < 0.3).astype(int)
        report = det.check(y)
        assert report.level is DriftLevel.ALARM
        assert report.detail["z"] > 0

    def test_direction_preserved_in_detail(self):
        det = PrevalenceShiftDetector(0.5)
        report = det.check(np.zeros(500, int))
        assert report.detail["z"] < 0 and report.level is DriftLevel.ALARM

    def test_invalid_reference_rejected(self):
        with pytest.raises(ValueError):
            PrevalenceShiftDetector(0.0)


class TestDriftReport:
    def test_ordering_and_str(self):
        report = DriftReport(
            detector="x", level=DriftLevel.WARN, statistic=0.2,
            warn_threshold=0.1, alarm_threshold=0.3,
        )
        assert DriftLevel.OK < DriftLevel.WARN < DriftLevel.ALARM
        assert "WARN" in str(report) and not report.drifted


class TestDriftMonitor:
    def _traffic(self, monitor, X, y, scores, block=100):
        for lo in range(0, len(y), block):
            monitor.observe(
                X[lo : lo + block], scores[lo : lo + block], y[lo : lo + block]
            )

    def test_cold_window_reports_insufficient(self, sketch, data):
        X, y = data
        mon = DriftMonitor(sketch, window_size=1000, min_window=500)
        mon.observe(X[:100], np.zeros(100), y[:100])
        reports = mon.check()
        assert len(reports) == 1
        assert reports[0].detector == "insufficient_window"
        assert reports[0].level is DriftLevel.OK

    def test_quiet_on_control_stream(self, sketch, data):
        X, y = data
        rng = np.random.RandomState(2)
        idx = rng.permutation(len(y))[:1500]
        mon = DriftMonitor(sketch, window_size=1000, min_window=400)
        scores = np.where(y[idx] == 1, 0.7, 0.2) + rng.uniform(size=1500) * 0.1
        self._traffic(mon, X[idx], y[idx], scores)
        assert mon.worst_level() is DriftLevel.OK

    def test_alarms_on_covariate_drift(self, sketch, data):
        X, y = data
        rng = np.random.RandomState(3)
        idx = rng.permutation(len(y))[:1500]
        mon = DriftMonitor(sketch, window_size=1000, min_window=400)
        scores = np.where(y[idx] == 1, 0.7, 0.2)
        self._traffic(mon, X[idx] + 4.0, y[idx], scores)
        by_name = {r.detector: r for r in mon.check()}
        assert by_name["feature_psi_ks"].level is DriftLevel.ALARM

    def test_label_delay_path(self, sketch, data):
        X, y = data
        mon = DriftMonitor(sketch, window_size=600, min_window=100)
        mon.observe(X[:300], np.full(300, 0.2))
        assert mon.metrics()["n"] == 0  # nothing labeled yet
        mon.observe_labels(y[:300])
        assert mon.metrics()["n"] == 300
        Xw, yw, sw = mon.window()
        assert np.array_equal(Xw, X[:300])
        assert np.array_equal(yw, y[:300])

    def test_more_labels_than_rows_rejected(self, sketch, data):
        X, y = data
        mon = DriftMonitor(sketch, window_size=100)
        mon.observe(X[:10], np.zeros(10))
        with pytest.raises(ValueError):
            mon.observe_labels(y[:20])

    def test_window_source_feeds_streaming_trainer(self, sketch, data):
        X, y = data
        mon = DriftMonitor(sketch, window_size=2000, min_window=100)
        mon.observe(X, np.zeros(len(y)), y)
        source = mon.window_source()
        scan_X = source.take(np.arange(5))
        assert scan_X.shape == (5, X.shape[1])

    def test_reset_after_swap_clears_error_baseline(self, sketch, data):
        X, y = data
        mon = DriftMonitor(sketch, window_size=500, min_window=100)
        mon.observe(X[:400], np.where(y[:400] == 1, 0.9, 0.1), y[:400])
        assert mon.ddm.n > 0
        mon.reset_after_swap()
        assert mon.ddm.n == 0 and mon.metrics()["n"] == 400


class TestLabelAlphabets:
    """The monitor consumes the deployment's raw label alphabet: encoded
    internally via positive_label, passed through raw to retraining."""

    def test_minus_one_plus_one_alphabet(self, data):
        X, y = data
        y_pm = np.where(y == 1, 1, -1)
        sketch = ReferenceSketch(n_bins=10).fit(X, y_pm, positive_label=1)
        assert sketch.prevalence_ == pytest.approx(float(np.mean(y == 1)))
        mon = DriftMonitor(sketch, window_size=800, min_window=200, positive_label=1)
        scores = np.where(y_pm == 1, 0.9, 0.1)
        mon.observe(X[:800], scores[:800], y_pm[:800])
        # perfect scorer: zero error rate, correct prevalence
        m = mon.metrics()
        assert m["error_rate"] == 0.0
        assert m["prevalence"] == pytest.approx(float(np.mean(y_pm[:800] == 1)))
        assert mon.worst_level() is DriftLevel.OK
        # the window hands back the raw alphabet for retraining
        _, y_win, _ = mon.window()
        assert set(np.unique(y_win)) <= {-1, 1}
        source = mon.window_source()
        from repro.streaming import label_value_scan

        classes, _, minority_idx = label_value_scan(source)
        assert list(classes) == [-1, 1] and minority_idx == 1

    def test_string_alphabet(self, data):
        X, y = data
        y_str = np.where(y == 1, "fraud", "ok")
        sketch = ReferenceSketch(n_bins=10).fit(X, y_str, positive_label="fraud")
        mon = DriftMonitor(
            sketch, window_size=600, min_window=200, positive_label="fraud"
        )
        scores = np.where(y_str == "fraud", 0.9, 0.1)
        mon.observe(X[:600], scores[:600], y_str[:600])
        assert mon.metrics()["error_rate"] == 0.0
        assert mon.worst_level() is DriftLevel.OK
        _, y_win, _ = mon.window()
        assert set(np.unique(y_win)) <= {"fraud", "ok"}


class TestPendingBound:
    def test_unlabeled_rows_bounded_by_max_pending(self, sketch, data):
        X, _ = data
        mon = DriftMonitor(sketch, window_size=100, max_pending=250)
        mon.observe(X[:200], np.zeros(200))
        with pytest.raises(ValueError, match="max_pending"):
            mon.observe(X[:100], np.zeros(100))
        # delivering labels drains the pending buffers and unblocks
        mon.observe_labels(np.zeros(200, dtype=int))
        mon.observe(X[:100], np.zeros(100))
        assert mon.evaluator.n_pending == 100
