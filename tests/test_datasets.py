"""Tests for every dataset generator/simulator."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    PAYSIM_FEATURE_NAMES,
    PAYSIM_TYPE_NAMES,
    RL_FEATURE_NAMES,
    PaymentSimulator,
    checkerboard_grid,
    dataset_statistics,
    dice_bigram_similarity,
    generate_person_records,
    inject_missing_values,
    load_dataset,
    make_checkerboard,
    make_credit_fraud,
    make_disjoint_gaussians,
    make_kddcup,
    make_overlapping_gaussians,
    make_payment_simulation,
    make_record_linkage,
)
from repro.utils import imbalance_ratio


class TestCheckerboard:
    def test_sizes_and_labels(self):
        X, y = make_checkerboard(n_minority=100, n_majority=1000, random_state=0)
        assert X.shape == (1100, 2)
        assert (y == 1).sum() == 100 and (y == 0).sum() == 1000

    def test_grid_component_counts(self):
        mino, maj = checkerboard_grid(4)
        assert len(mino) == 8 and len(maj) == 8

    def test_components_alternate(self):
        mino, maj = checkerboard_grid(4)
        mino_set = {tuple(c) for c in mino}
        # Adjacent cells never share a class.
        for cx, cy in mino_set:
            assert (cx + 1, cy) not in mino_set

    def test_cov_scale_controls_spread(self):
        X_tight, _ = make_checkerboard(100, 100, cov_scale=0.01, random_state=0)
        X_wide, _ = make_checkerboard(100, 100, cov_scale=0.5, random_state=0)
        assert X_wide.std() > X_tight.std()

    def test_deterministic(self):
        a, _ = make_checkerboard(50, 50, random_state=5)
        b, _ = make_checkerboard(50, 50, random_state=5)
        assert np.allclose(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_checkerboard(0, 10)
        with pytest.raises(ValueError):
            make_checkerboard(10, 10, cov_scale=0)


class TestOverlapGenerators:
    def test_disjoint_ir(self):
        _, y = make_disjoint_gaussians(n_minority=50, imbalance_ratio=10, random_state=0)
        assert imbalance_ratio(y) == pytest.approx(10, rel=0.05)

    def test_overlapping_ir(self):
        _, y = make_overlapping_gaussians(
            n_minority=50, imbalance_ratio=20, random_state=0
        )
        assert imbalance_ratio(y) == pytest.approx(20, rel=0.05)

    def test_disjoint_is_separable(self):
        from repro.tree import DecisionTreeClassifier

        X, y = make_disjoint_gaussians(100, imbalance_ratio=5, random_state=0)
        assert DecisionTreeClassifier(max_depth=4).fit(X, y).score(X, y) > 0.97

    def test_overlapped_is_harder(self):
        from repro.tree import DecisionTreeClassifier
        from repro.metrics import evaluate_classifier

        X_e, y_e = make_disjoint_gaussians(200, imbalance_ratio=10, random_state=0)
        X_h, y_h = make_overlapping_gaussians(200, imbalance_ratio=10, random_state=0)
        clf_e = DecisionTreeClassifier(max_depth=4).fit(X_e, y_e)
        clf_h = DecisionTreeClassifier(max_depth=4).fit(X_h, y_h)
        assert (
            evaluate_classifier(clf_h, X_h, y_h)["AUCPRC"]
            < evaluate_classifier(clf_e, X_e, y_e)["AUCPRC"]
        )

    def test_invalid_ir(self):
        with pytest.raises(ValueError):
            make_disjoint_gaussians(10, imbalance_ratio=0.5)


class TestCreditFraud:
    def test_shape(self):
        X, y = make_credit_fraud(n_samples=5000, random_state=0)
        assert X.shape == (5000, 30)  # 28 PCA + Time + Amount

    def test_imbalance_ratio(self):
        _, y = make_credit_fraud(
            n_samples=20000, imbalance_ratio=99.0, random_state=0
        )
        assert imbalance_ratio(y) == pytest.approx(99.0, rel=0.1)

    def test_amount_positive(self):
        X, _ = make_credit_fraud(n_samples=2000, random_state=0)
        assert (X[:, -1] > 0).all()

    def test_time_within_two_days(self):
        X, _ = make_credit_fraud(n_samples=2000, random_state=0)
        assert 0 <= X[:, -2].min() and X[:, -2].max() < 48.0

    def test_features_commensurate_for_knn(self):
        """No column should dwarf the others (paper: distance methods get
        their 'maximum potential' on this dataset)."""
        X, _ = make_credit_fraud(n_samples=3000, random_state=0)
        stds = X.std(axis=0)
        assert stds.max() / stds.min() < 100

    def test_frauds_partially_separable(self):
        """Clustered frauds should be learnable, overlap fraction not."""
        from repro.metrics import evaluate_classifier
        from repro.tree import DecisionTreeClassifier

        X, y = make_credit_fraud(
            n_samples=20000, imbalance_ratio=50, random_state=0
        )
        clf = DecisionTreeClassifier(max_depth=8, random_state=0).fit(X, y)
        aucprc = evaluate_classifier(clf, X, y)["AUCPRC"]
        assert 0.3 < aucprc  # far better than the 0.02 prevalence

    def test_overlap_fraction_bounds(self):
        with pytest.raises(ValueError):
            make_credit_fraud(n_samples=1000, overlap_fraction=1.5)


class TestPaySim:
    def test_schema(self):
        X, y = make_payment_simulation(n_samples=3000, random_state=0)
        assert X.shape == (3000, len(PAYSIM_FEATURE_NAMES))

    def test_type_codes_valid(self):
        X, _ = make_payment_simulation(n_samples=2000, random_state=0)
        codes = np.unique(X[:, 1])
        assert set(codes.astype(int)) <= set(range(len(PAYSIM_TYPE_NAMES)))

    def test_fraud_rate_tracks_ir(self):
        _, y = make_payment_simulation(
            n_samples=30000, imbalance_ratio=100, random_state=0
        )
        ir = imbalance_ratio(y)
        assert 60 < ir < 170  # stochastic, but near the requested ratio

    def test_frauds_are_transfer_or_cashout(self):
        X, y = make_payment_simulation(n_samples=20000, random_state=0)
        fraud_types = set(X[y == 1, 1].astype(int))
        allowed = {PAYSIM_TYPE_NAMES.index("TRANSFER"), PAYSIM_TYPE_NAMES.index("CASH_OUT")}
        assert fraud_types <= allowed

    def test_balance_consistency_when_funded(self):
        """Funded genuine rows respect oldbalanceOrg - amount = newbalanceOrig.

        Rows with an empty origin account keep their requested amount (the
        famous PaySim errorBalance artefact), so only funded accounts are
        required to balance exactly.
        """
        X, y = make_payment_simulation(n_samples=5000, random_state=0)
        cash_in = PAYSIM_TYPE_NAMES.index("CASH_IN")
        genuine = (y == 0) & (X[:, 1] != cash_in) & (X[:, 3] > 0)
        error = X[genuine, 7]  # errorBalanceOrig column
        assert np.abs(error).max() < 1e-6

    def test_empty_account_rows_exhibit_error_balance(self):
        """A share of rows reproduces PaySim's insufficient-funds artefact."""
        X, y = make_payment_simulation(n_samples=20000, random_state=0)
        assert (np.abs(X[:, 7]) > 1e-6).any()

    def test_amounts_positive(self):
        X, _ = make_payment_simulation(n_samples=2000, random_state=0)
        assert (X[:, 2] > 0).all()

    def test_simulator_object_api(self):
        sim = PaymentSimulator(n_customers=100, random_state=0)
        X, y = sim.simulate(500)
        assert len(y) == 500

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            PaymentSimulator().simulate(0)


class TestRecordLinkage:
    def test_schema(self):
        X, y = make_record_linkage(n_samples=2000, random_state=0)
        assert X.shape == (2000, len(RL_FEATURE_NAMES))

    def test_similarities_in_unit_range(self):
        X, _ = make_record_linkage(n_samples=1000, random_state=0)
        assert (X >= 0).all() and (X <= 1).all()

    def test_matches_have_higher_name_similarity(self):
        X, y = make_record_linkage(n_samples=4000, random_state=0)
        assert X[y == 1, 0].mean() > X[y == 0, 0].mean() + 0.3

    def test_dice_similarity_properties(self):
        assert dice_bigram_similarity("maria", "maria") == 1.0
        assert dice_bigram_similarity("abc", "xyz") == 0.0
        assert 0 < dice_bigram_similarity("maria", "marla") < 1

    def test_dice_symmetry(self):
        assert dice_bigram_similarity("anna", "anne") == dice_bigram_similarity(
            "anne", "anna"
        )

    def test_person_records_fields(self):
        registry = generate_person_records(50, random_state=0)
        assert len(registry["first"]) == 50
        assert set(registry) == {
            "first", "last", "sex", "birth_day", "birth_month", "birth_year",
        }

    def test_task_is_learnable(self):
        from repro.metrics import evaluate_classifier
        from repro.tree import DecisionTreeClassifier

        X, y = make_record_linkage(n_samples=6000, imbalance_ratio=30, random_state=0)
        clf = DecisionTreeClassifier(max_depth=6, random_state=0).fit(X, y)
        assert evaluate_classifier(clf, X, y)["AUCPRC"] > 0.7


class TestKddcup:
    def test_both_tasks(self):
        for task in ("dos_vs_prb", "dos_vs_r2l"):
            X, y = make_kddcup(task, n_samples=5000, random_state=0)
            assert len(y) == 5000 and set(np.unique(y)) == {0, 1}

    def test_paper_ir_defaults(self):
        _, y = make_kddcup("dos_vs_prb", n_samples=20000, random_state=0)
        assert imbalance_ratio(y) == pytest.approx(94.48, rel=0.1)

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            make_kddcup("dos_vs_normal")

    def test_dos_floods_have_high_count(self):
        X, y = make_kddcup("dos_vs_prb", n_samples=5000, random_state=0)
        count_col = 12
        assert X[y == 0, count_col].mean() > X[y == 1, count_col].mean()

    def test_prb_touches_many_services(self):
        X, y = make_kddcup("dos_vs_prb", n_samples=8000, random_state=0)
        service_col = 2
        assert len(np.unique(X[y == 1, service_col])) > len(
            np.unique(X[y == 0, service_col])
        )

    def test_r2l_sessions_longer(self):
        X, y = make_kddcup("dos_vs_r2l", n_samples=20000, random_state=0)
        assert X[y == 1, 0].mean() > X[y == 0, 0].mean()


class TestMissingInjection:
    def test_ratio_respected(self, rng):
        X = rng.randn(100, 10)
        X_miss = inject_missing_values(X, 0.25, random_state=0)
        assert (X_miss == 0).mean() == pytest.approx(0.25, abs=0.03)

    def test_zero_ratio_identity(self, rng):
        X = rng.randn(20, 3)
        assert np.allclose(inject_missing_values(X, 0.0), X)

    def test_nan_mode(self, rng):
        X = rng.randn(50, 4)
        X_miss = inject_missing_values(X, 0.5, fill_value=None, random_state=0)
        assert np.isnan(X_miss).mean() == pytest.approx(0.5, abs=0.05)

    def test_original_untouched(self, rng):
        X = rng.randn(10, 2)
        X_copy = X.copy()
        inject_missing_values(X, 0.9, random_state=0)
        assert np.allclose(X, X_copy)

    def test_invalid_ratio(self, rng):
        with pytest.raises(ValueError):
            inject_missing_values(rng.randn(5, 2), 1.5)


class TestRegistry:
    def test_all_datasets_load(self):
        for name in DATASETS:
            ds = load_dataset(name, scale=0.05, random_state=0)
            assert ds.n_samples >= 200
            assert set(np.unique(ds.y)) == {0, 1}

    def test_scale_changes_size(self):
        small = load_dataset("credit_fraud", scale=0.05, random_state=0)
        large = load_dataset("credit_fraud", scale=0.1, random_state=0)
        assert large.n_samples > small.n_samples

    def test_statistics_rows(self):
        ds = load_dataset("credit_fraud", scale=0.05, random_state=0)
        stats = dataset_statistics(ds)
        assert stats["Paper #Sample"] == 284807
        assert stats["Paper IR"] == 578.88

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            load_dataset("bogus")

    def test_ir_override(self):
        ds = load_dataset("credit_fraud", scale=0.1, imbalance_ratio=20, random_state=0)
        assert ds.imbalance_ratio == pytest.approx(20, rel=0.15)
