"""Tests for hardness functions and the self-paced binning machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    HARDNESS_FUNCTIONS,
    absolute_error,
    allocate_bin_samples,
    cross_entropy,
    cut_hardness_bins,
    resolve_hardness,
    self_paced_bin_weights,
    squared_error,
)


class TestHardnessFunctions:
    def test_absolute_error_majority(self):
        """For majority (y=0) samples AE equals the predicted P(y=1)."""
        proba = np.array([0.1, 0.5, 0.9])
        assert np.allclose(absolute_error(np.zeros(3), proba), proba)

    def test_absolute_error_minority(self):
        proba = np.array([0.1, 0.9])
        assert np.allclose(absolute_error(np.ones(2), proba), [0.9, 0.1])

    def test_squared_is_square_of_absolute(self):
        y = np.array([0.0, 1.0, 0.0])
        proba = np.array([0.3, 0.6, 0.9])
        assert np.allclose(
            squared_error(y, proba), absolute_error(y, proba) ** 2
        )

    def test_cross_entropy_confident_wrong_is_large(self):
        assert cross_entropy(np.ones(1), np.array([0.001]))[0] > 6.0

    def test_cross_entropy_finite_at_extremes(self):
        out = cross_entropy(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        assert np.isfinite(out).all()

    def test_all_nonnegative(self):
        y = np.array([0.0, 1.0, 0.0, 1.0])
        proba = np.array([0.2, 0.8, 0.9, 0.1])
        for fn in (absolute_error, squared_error, cross_entropy):
            assert (fn(y, proba) >= 0).all()

    def test_registry_aliases(self):
        assert HARDNESS_FUNCTIONS["AE"] is absolute_error
        assert HARDNESS_FUNCTIONS["SE"] is squared_error
        assert HARDNESS_FUNCTIONS["CE"] is cross_entropy

    def test_resolve_by_name_and_callable(self):
        assert resolve_hardness("absolute") is absolute_error
        custom = lambda y, p: np.abs(p - y) * 2  # noqa: E731
        assert resolve_hardness(custom) is custom

    def test_resolve_unknown(self):
        with pytest.raises(ValueError, match="Unknown hardness"):
            resolve_hardness("bogus")

    @settings(max_examples=30)
    @given(
        arrays(
            np.float64,
            10,
            elements=st.floats(min_value=0.001, max_value=0.999),
        )
    )
    def test_decomposability_order(self, proba):
        """SE <= AE on [0,1] errors (x^2 <= x for x in [0,1])."""
        y = np.zeros(10)
        assert (squared_error(y, proba) <= absolute_error(y, proba) + 1e-12).all()


class TestCutHardnessBins:
    def test_populations_sum(self, rng):
        h = rng.uniform(size=500)
        bins = cut_hardness_bins(h, 20)
        assert bins.populations.sum() == 500

    def test_assignment_within_edges(self, rng):
        h = rng.uniform(size=200)
        bins = cut_hardness_bins(h, 10)
        for i, value in enumerate(h):
            b = bins.assignments[i]
            assert bins.edges[b] - 1e-9 <= value <= bins.edges[b + 1] + 1e-9

    def test_avg_times_population_is_contribution(self, rng):
        h = rng.uniform(size=300)
        bins = cut_hardness_bins(h, 15)
        assert np.allclose(
            bins.avg_hardness * bins.populations, bins.total_contribution
        )

    def test_degenerate_constant_hardness(self):
        bins = cut_hardness_bins(np.full(10, 0.5), 5)
        assert bins.degenerate
        assert bins.populations[0] == 10

    def test_max_value_in_last_bin(self):
        h = np.array([0.0, 0.5, 1.0])
        bins = cut_hardness_bins(h, 4)
        assert bins.assignments[2] == 3

    def test_single_bin(self, rng):
        bins = cut_hardness_bins(rng.uniform(size=50), 1)
        assert bins.populations[0] == 50

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            cut_hardness_bins(np.ones(3), 0)

    def test_empty_hardness_rejected(self):
        with pytest.raises(ValueError):
            cut_hardness_bins(np.array([]), 5)

    @settings(max_examples=30)
    @given(
        arrays(
            np.float64,
            st.integers(min_value=1, max_value=100),
            elements=st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        st.integers(min_value=1, max_value=30),
    )
    def test_population_conservation_property(self, h, k):
        bins = cut_hardness_bins(h, k)
        assert bins.populations.sum() == len(h)
        assert np.isclose(bins.total_contribution.sum(), h.sum())


class TestSelfPacedWeights:
    def test_alpha_zero_is_inverse_hardness(self):
        bins = cut_hardness_bins(np.array([0.1, 0.1, 0.9, 0.9]), 2)
        w = self_paced_bin_weights(bins, 0.0)
        assert np.allclose(w, 1.0 / bins.avg_hardness)

    def test_large_alpha_flattens(self):
        bins = cut_hardness_bins(np.array([0.1, 0.1, 0.9, 0.9]), 2)
        w = self_paced_bin_weights(bins, 1e12)
        assert w[0] == pytest.approx(w[1], rel=1e-6)

    def test_empty_bins_zero_weight(self):
        h = np.array([0.0, 0.01, 0.99, 1.0])  # middle bins empty with k=4
        bins = cut_hardness_bins(h, 4)
        w = self_paced_bin_weights(bins, 0.1)
        assert (w[bins.populations == 0] == 0).all()

    def test_negative_alpha_rejected(self):
        bins = cut_hardness_bins(np.array([0.1, 0.9]), 2)
        with pytest.raises(ValueError):
            self_paced_bin_weights(bins, -0.5)

    def test_zero_hardness_bins_fallback(self):
        """All-zero hardness with alpha=0: uniform weights, not inf."""
        bins = cut_hardness_bins(np.zeros(10), 3)
        w = self_paced_bin_weights(bins, 0.0)
        assert np.isfinite(w).all() and w.sum() > 0


class TestAllocateBinSamples:
    def test_exact_total(self):
        counts = allocate_bin_samples(
            np.array([1.0, 1.0, 1.0]), np.array([100, 100, 100]), 30
        )
        assert counts.sum() == 30

    def test_caps_at_population(self):
        counts = allocate_bin_samples(
            np.array([1000.0, 1.0]), np.array([3, 100]), 50
        )
        assert counts[0] <= 3
        assert counts.sum() == 50

    def test_zero_weight_gets_nothing(self):
        counts = allocate_bin_samples(np.array([0.0, 1.0]), np.array([50, 50]), 20)
        assert counts[0] == 0 and counts[1] == 20

    def test_total_exceeds_population(self):
        counts = allocate_bin_samples(np.array([1.0, 1.0]), np.array([5, 5]), 100)
        assert counts.sum() == 10

    def test_proportionality(self):
        counts = allocate_bin_samples(
            np.array([3.0, 1.0]), np.array([1000, 1000]), 400
        )
        assert counts[0] == pytest.approx(300, abs=2)
        assert counts[1] == pytest.approx(100, abs=2)

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            allocate_bin_samples(np.ones(2), np.ones(2, dtype=int), -1)

    @settings(max_examples=40)
    @given(
        st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=20),
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=200),
    )
    def test_allocation_invariants(self, weights, populations, n_total):
        k = min(len(weights), len(populations))
        weights = np.asarray(weights[:k])
        populations = np.asarray(populations[:k])
        counts = allocate_bin_samples(weights, populations, n_total)
        assert (counts <= populations).all()
        assert (counts >= 0).all()
        # Bins with zero weight never receive samples, so the reachable
        # budget is capped by the population carrying positive weight.
        usable = int(populations[weights > 0].sum())
        assert counts.sum() == min(n_total, usable)
