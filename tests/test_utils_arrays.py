"""Tests for array helpers and timing utilities."""

import numpy as np
import pytest

from repro.utils import (
    Timer,
    class_distribution,
    imbalance_ratio,
    majority_minority_split,
    safe_vstack,
    shuffle_together,
    stratified_indices,
    timed_call,
)


class TestClassDistribution:
    def test_counts(self):
        assert class_distribution([0, 0, 1, 0]) == {0: 3, 1: 1}

    def test_multi_label(self):
        assert class_distribution([2, 1, 2]) == {1: 1, 2: 2}


class TestImbalanceRatio:
    def test_basic(self):
        y = [0] * 90 + [1] * 10
        assert imbalance_ratio(y) == pytest.approx(9.0)

    def test_no_minority_is_inf(self):
        assert imbalance_ratio([0, 0]) == float("inf")

    def test_balanced_is_one(self):
        assert imbalance_ratio([0, 1]) == 1.0


class TestMajorityMinoritySplit:
    def test_split_indices(self):
        y = np.array([0, 1, 0, 1, 0])
        maj, mino = majority_minority_split(np.zeros((5, 1)), y)
        assert maj.tolist() == [0, 2, 4]
        assert mino.tolist() == [1, 3]


class TestStratifiedIndices:
    def test_is_permutation(self):
        rng = np.random.RandomState(0)
        y = np.array([0] * 20 + [1] * 5)
        order = stratified_indices(y, rng)
        assert sorted(order.tolist()) == list(range(25))

    def test_prefix_contains_minority(self):
        """Any reasonable prefix should contain some of both classes."""
        rng = np.random.RandomState(1)
        y = np.array([0] * 90 + [1] * 10)
        order = stratified_indices(y, rng)
        first_half = y[order[:50]]
        assert (first_half == 1).sum() >= 2


class TestSafeVstack:
    def test_skips_empty(self):
        out = safe_vstack([np.zeros((0, 2)), np.ones((2, 2))])
        assert out.shape == (2, 2)

    def test_all_empty_raises(self):
        with pytest.raises(ValueError):
            safe_vstack([np.zeros((0, 2))])


class TestShuffleTogether:
    def test_alignment_preserved(self):
        rng = np.random.RandomState(0)
        X = np.arange(10).reshape(-1, 1).astype(float)
        y = np.arange(10)
        Xs, ys = shuffle_together(X, y, rng)
        assert np.array_equal(Xs.ravel().astype(int), ys)


class TestTiming:
    def test_timer_measures(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0

    def test_timed_call_returns_result(self):
        result, seconds = timed_call(lambda a: a + 1, 2)
        assert result == 3 and seconds >= 0.0
