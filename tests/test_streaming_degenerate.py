"""Degenerate streaming inputs: tiny sources, lopsided blocks, edge shapes.

The satellite coverage the issue asks for: sources that fit in a single
block, blocks containing only one class, and sources shorter than one
chunk must all behave exactly like their in-memory counterparts.
"""

import numpy as np
import pytest

from repro.core import SelfPacedEnsembleClassifier
from repro.exceptions import DataValidationError
from repro.imbalance_ensemble import UnderBaggingClassifier
from repro.streaming import (
    ArraySource,
    CSVSource,
    StreamingSelfPacedEnsembleClassifier,
    class_index_scan,
    save_csv,
)
from repro.tree import DecisionTreeClassifier


def _base():
    return DecisionTreeClassifier(max_depth=3, random_state=0)


def _tiny(rng, n_maj=30, n_min=6):
    X = np.vstack([rng.randn(n_maj, 3), rng.randn(n_min, 3) + 2.0])
    y = np.concatenate([np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)])
    perm = rng.permutation(len(y))
    return X[perm], y[perm]


class TestSingleBlockSources:
    def test_source_shorter_than_one_chunk(self, rng):
        """block_size far beyond n_rows: one short block, same model."""
        X, y = _tiny(rng)
        ref = SelfPacedEnsembleClassifier(_base(), n_estimators=3, random_state=0)
        ref.fit(X, y)
        stream = StreamingSelfPacedEnsembleClassifier(
            _base(), n_estimators=3, random_state=0
        ).fit(ArraySource(X, y, block_size=10_000))
        assert np.array_equal(ref.predict_proba(X), stream.predict_proba(X))

    def test_single_block_scan(self, rng):
        X, y = _tiny(rng)
        scan = class_index_scan(ArraySource(X, y, block_size=10_000))
        assert scan.n_rows == len(y)
        assert np.array_equal(scan.maj_idx, np.flatnonzero(y == 0))

    def test_block_size_one(self, rng):
        """The pathological opposite: every row its own block."""
        X, y = _tiny(rng, n_maj=15, n_min=4)
        ref = SelfPacedEnsembleClassifier(_base(), n_estimators=2, random_state=1)
        ref.fit(X, y)
        stream = StreamingSelfPacedEnsembleClassifier(
            _base(), n_estimators=2, random_state=1
        ).fit(ArraySource(X, y, block_size=1))
        assert np.array_equal(ref.predict_proba(X), stream.predict_proba(X))


class TestOneClassBlocks:
    def test_blocks_of_a_single_class_each(self, rng):
        """Class-sorted data: every block is pure-majority or pure-minority."""
        n_maj, n_min = 64, 16
        X = np.vstack([rng.randn(n_maj, 3), rng.randn(n_min, 3) + 2.0])
        y = np.concatenate(
            [np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)]
        )
        source = ArraySource(X, y, block_size=16)  # blocks never mix classes
        assert all(
            len(np.unique(yb)) == 1 for _, yb in source.iter_blocks()
        )
        ref = SelfPacedEnsembleClassifier(_base(), n_estimators=4, random_state=2)
        ref.fit(X, y)
        stream = StreamingSelfPacedEnsembleClassifier(
            _base(), n_estimators=4, random_state=2
        ).fit(source)
        assert np.array_equal(ref.predict_proba(X), stream.predict_proba(X))

    def test_one_class_blocks_reservoir_mode(self, rng):
        n_maj, n_min = 64, 16
        X = np.vstack([rng.randn(n_maj, 3), rng.randn(n_min, 3) + 2.0])
        y = np.concatenate(
            [np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)]
        )
        model = StreamingSelfPacedEnsembleClassifier(
            _base(), n_estimators=3, random_state=2, mode="reservoir"
        ).fit(ArraySource(X, y, block_size=16))
        assert len(model.estimators_) == 3

    def test_one_class_blocks_fit_source(self, rng):
        n_maj, n_min = 40, 10
        X = np.vstack([rng.randn(n_maj, 2), rng.randn(n_min, 2) + 2.0])
        y = np.concatenate(
            [np.zeros(n_maj, dtype=int), np.ones(n_min, dtype=int)]
        )
        ref = UnderBaggingClassifier(_base(), n_estimators=3, random_state=5)
        ref.fit(X, y)
        src = UnderBaggingClassifier(_base(), n_estimators=3, random_state=5)
        src.fit_source(ArraySource(X, y, block_size=10))
        assert np.array_equal(ref.predict_proba(X), src.predict_proba(X))


class TestDegenerateShapes:
    def test_minority_of_one(self, rng):
        X = np.vstack([rng.randn(20, 2), [[5.0, 5.0]]])
        y = np.array([0] * 20 + [1])
        model = StreamingSelfPacedEnsembleClassifier(
            _base(), n_estimators=3, random_state=0
        ).fit(ArraySource(X, y, block_size=7))
        assert model.predict_proba(X).shape == (21, 2)

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataValidationError):
            class_index_scan(CSVSource(path))

    def test_single_class_source_raises(self, rng):
        X = rng.randn(12, 2)
        y = np.zeros(12, dtype=int)
        with pytest.raises(DataValidationError):
            StreamingSelfPacedEnsembleClassifier(_base()).fit(ArraySource(X, y))

    def test_csv_shorter_than_one_chunk(self, rng, tmp_path):
        X, y = _tiny(rng, n_maj=10, n_min=3)
        path = tmp_path / "tiny.csv"
        save_csv(path, X, y)
        scan = class_index_scan(CSVSource(path, block_size=4096))
        assert (scan.n_majority, scan.n_minority) == (10, 3)

    def test_reservoir_budget_exceeds_majority(self, rng):
        """|P| > |N|-per-bin capacity paths: budget capped by stream size."""
        X = np.vstack([rng.randn(8, 2), rng.randn(12, 2) + 2.0])
        y = np.array([0] * 8 + [1] * 12)
        model = StreamingSelfPacedEnsembleClassifier(
            _base(), n_estimators=3, random_state=0, mode="reservoir"
        ).fit(ArraySource(X, y, block_size=5))
        assert len(model.estimators_) == 3
