"""Network-intrusion detection on the KDD-style traffic simulator.

Reproduces the paper's two KDDCUP pairings — DOS vs PRB (moderate IR) and
DOS vs R2L (extreme IR ~3449:1) — with AdaBoost10 as the base learner,
comparing RandUnder / Easy / Cascade / SPE exactly as Table IV does.

Run:  python examples/network_intrusion_kdd.py
"""

from repro import SelfPacedEnsembleClassifier, clone
from repro.datasets import make_kddcup
from repro.ensemble import AdaBoostClassifier
from repro.experiments import render_table
from repro.imbalance_ensemble import BalanceCascadeClassifier, EasyEnsembleClassifier
from repro.metrics import evaluate_classifier
from repro.model_selection import train_valid_test_split
from repro.sampling import RandomUnderSampler
from repro.tree import DecisionTreeClassifier


def run_task(task: str, n_samples: int, imbalance_ratio: float) -> None:
    X, y = make_kddcup(
        task, n_samples=n_samples, imbalance_ratio=imbalance_ratio, random_state=11
    )
    X_tr, _, X_te, y_tr, _, y_te = train_valid_test_split(X, y, random_state=11)
    base = AdaBoostClassifier(
        estimator=DecisionTreeClassifier(max_depth=3),
        n_estimators=10,
        random_state=0,
    )

    rows = []
    X_r, y_r = RandomUnderSampler(random_state=0).fit_resample(X_tr, y_tr)
    model = clone(base).fit(X_r, y_r)
    scores = evaluate_classifier(model, X_te, y_te)
    rows.append(["RandUnder", *(f"{scores[m]:.3f}" for m in scores)])

    for name, ensemble in (
        ("Easy10", EasyEnsembleClassifier(DecisionTreeClassifier(max_depth=3), n_estimators=10, random_state=0)),
        ("Cascade10", BalanceCascadeClassifier(clone(base), n_estimators=10, random_state=0)),
        ("SPE10", SelfPacedEnsembleClassifier(clone(base), n_estimators=10, random_state=0)),
    ):
        ensemble.fit(X_tr, y_tr)
        scores = evaluate_classifier(ensemble, X_te, y_te)
        rows.append([name, *(f"{scores[m]:.3f}" for m in scores)])

    print(
        render_table(
            ["Method", "AUCPRC", "F1", "GM", "MCC"],
            rows,
            title=f"\nKDDCUP ({task}), n={n_samples}, IR={imbalance_ratio} — AdaBoost10 base",
        )
    )


def main() -> None:
    # Bench-scale IRs; pass the paper's 94.48 / 3448.82 at full scale.
    run_task("dos_vs_prb", n_samples=30_000, imbalance_ratio=94.48)
    run_task("dos_vs_r2l", n_samples=40_000, imbalance_ratio=400.0)


if __name__ == "__main__":
    main()
