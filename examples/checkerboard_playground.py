"""Checkerboard playground: see the data, the hardness, and the surfaces.

An ASCII tour of the paper's core intuition (Figs 2, 4 and 6):

1. the checkerboard dataset itself;
2. the classification-hardness distribution of the majority class under a
   converged ensemble (trivial / borderline / noise samples);
3. which majority samples SPE's self-paced under-sampling picks at
   alpha = 0 vs alpha -> inf;
4. the prediction surfaces of SPE vs BalanceCascade under heavy overlap.

Run:  python examples/checkerboard_playground.py
"""

import numpy as np

from repro import SelfPacedEnsembleClassifier
from repro.core import cut_hardness_bins, resolve_hardness, self_paced_under_sample
from repro.datasets import make_checkerboard
from repro.experiments import ascii_heatmap, ascii_scatter, prediction_grid, render_series
from repro.imbalance_ensemble import BalanceCascadeClassifier
from repro.tree import DecisionTreeClassifier


def main() -> None:
    X, y = make_checkerboard(
        n_minority=500, n_majority=5000, cov_scale=0.15, random_state=1
    )
    print("1) The checkerboard ('o' = minority, '.' = majority), cov=0.15:\n")
    print(ascii_scatter(X, y, width=64, height=22))

    base = DecisionTreeClassifier(max_depth=10, random_state=0)
    spe = SelfPacedEnsembleClassifier(base, n_estimators=10, random_state=0).fit(X, y)

    # --- hardness distribution over the majority class -----------------
    maj = y == 0
    proba_maj = spe.predict_proba(X[maj])[:, 1]
    hardness = resolve_hardness("absolute")(np.zeros(maj.sum()), proba_maj)
    bins = cut_hardness_bins(hardness, 10)
    print("\n2) Majority hardness distribution (trivial -> noise):\n")
    print(
        render_series(
            "population per hardness bin",
            [f"{e:.2f}" for e in bins.edges[:-1]],
            bins.populations.astype(float),
            digits=0,
        )
    )

    # --- what self-paced under-sampling selects ------------------------
    rng = np.random.RandomState(0)
    n_min = int((y == 1).sum())
    print("\n3) Majority samples selected by self-paced under-sampling:\n")
    for alpha, label in ((0.0, "alpha=0 (harmonise)"), (1e15, "alpha->inf (skeleton)")):
        idx, _ = self_paced_under_sample(hardness, 10, alpha, n_min, rng)
        chosen = np.flatnonzero(maj)[idx]
        mask = np.zeros(len(y), dtype=int)
        mask[chosen] = 1
        print(f"--- {label}: mean hardness of picks = {hardness[idx].mean():.3f}")
        print(ascii_scatter(X[mask == 1], np.ones(mask.sum(), int), width=64, height=14))

    # --- surfaces under overlap: SPE vs Cascade -------------------------
    cascade = BalanceCascadeClassifier(
        DecisionTreeClassifier(max_depth=10, random_state=0),
        n_estimators=10,
        random_state=0,
    ).fit(X, y)
    lims = ((X[:, 0].min(), X[:, 0].max()), (X[:, 1].min(), X[:, 1].max()))
    print("\n4) P(minority) surfaces — SPE keeps the checkerboard cleaner:\n")
    for name, model in (("SPE", spe), ("Cascade", cascade)):
        _, _, grid = prediction_grid(model, lims[0], lims[1], resolution=48)
        print(f"--- {name}")
        print(ascii_heatmap(grid))
        print()


if __name__ == "__main__":
    main()
