"""Quickstart: Self-paced Ensemble in ~20 lines.

Trains SPE on the paper's checkerboard toy task and compares it against
training one tree on a random balanced subset.

Run:  python examples/quickstart.py
"""

from repro import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.metrics import classification_report, evaluate_classifier
from repro.model_selection import train_test_split
from repro.sampling import RandomUnderSampler
from repro.tree import DecisionTreeClassifier


def main() -> None:
    # The paper's synthetic benchmark: 16 Gaussians, IR = 10.
    X, y = make_checkerboard(n_minority=1000, n_majority=10000, random_state=42)
    X_train, X_test, y_train, y_test = train_test_split(
        X, y, test_size=0.2, random_state=42
    )

    # Self-paced Ensemble: 10 trees, each on all minority + a self-paced
    # under-sample of the majority guided by classification hardness.
    spe = SelfPacedEnsembleClassifier(
        estimator=DecisionTreeClassifier(max_depth=10, random_state=0),
        n_estimators=10,
        k_bins=20,
        hardness="absolute",
        random_state=0,
    ).fit(X_train, y_train)

    # Baseline: one tree on one random balanced subset.
    X_rus, y_rus = RandomUnderSampler(random_state=0).fit_resample(X_train, y_train)
    baseline = DecisionTreeClassifier(max_depth=10, random_state=0).fit(X_rus, y_rus)

    print("=== SPE (10 base models) ===")
    print({k: round(v, 3) for k, v in evaluate_classifier(spe, X_test, y_test).items()})
    print(classification_report(y_test, spe.predict(X_test)))
    print()
    print("=== Random under-sampling + single tree ===")
    print(
        {k: round(v, 3) for k, v in evaluate_classifier(baseline, X_test, y_test).items()}
    )


if __name__ == "__main__":
    main()
