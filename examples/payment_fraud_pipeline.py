"""Mobile-money fraud pipeline on the PaySim-style simulator.

Demonstrates the paper's "Payment Simulation" scenario: simulate
transactions with the agent-based simulator, then boost a GBDT (the
paper's strongest base learner on this task) with SPE. Includes the
GBDT-with-validation early-stopping idiom the paper mentions, and a
decision-threshold sweep on the validation split.

Run:  python examples/payment_fraud_pipeline.py [n_transactions]
"""

import sys

import numpy as np

from repro import SelfPacedEnsembleClassifier
from repro.datasets import PAYSIM_FEATURE_NAMES, PaymentSimulator
from repro.ensemble import GradientBoostingClassifier
from repro.metrics import evaluate_classifier, f1_score
from repro.model_selection import train_valid_test_split


def main(n_transactions: int = 40_000) -> None:
    # --- simulate one month of mobile-money traffic --------------------
    simulator = PaymentSimulator(
        n_customers=2000,
        fraud_rate=1 / 120.0,          # example scale; paper IR is 773.70
        partial_drain_fraction=0.3,    # harder frauds: partial balance theft
        random_state=3,
    )
    X, y = simulator.simulate(n_transactions)
    print(f"simulated {len(y)} transactions, {int(y.sum())} frauds")
    print(f"schema: {PAYSIM_FEATURE_NAMES}")

    X_tr, X_va, X_te, y_tr, y_va, y_te = train_valid_test_split(X, y, random_state=3)

    # --- plain GBDT with early stopping (the paper's strong baseline) --
    gbdt = GradientBoostingClassifier(
        n_estimators=200,
        max_depth=5,
        learning_rate=0.2,
        early_stopping_rounds=10,
        random_state=0,
    )
    gbdt.fit(X_tr, y_tr, eval_set=(X_va, y_va))
    print(f"\nplain GBDT stopped after {len(gbdt.trees_)} rounds")
    print("plain GBDT:", {k: round(v, 3) for k, v in evaluate_classifier(gbdt, X_te, y_te).items()})

    # --- SPE-boosted GBDT ----------------------------------------------
    spe = SelfPacedEnsembleClassifier(
        estimator=GradientBoostingClassifier(
            n_estimators=10, max_depth=5, learning_rate=0.3, random_state=0
        ),
        n_estimators=10,
        random_state=0,
    ).fit(X_tr, y_tr)
    print("SPE(GBDT10):", {k: round(v, 3) for k, v in evaluate_classifier(spe, X_te, y_te).items()})

    # --- pick an operating threshold on the validation split -----------
    proba_va = spe.predict_proba(X_va)[:, 1]
    thresholds = np.linspace(0.1, 0.9, 17)
    f1s = [f1_score(y_va, (proba_va >= t).astype(int)) for t in thresholds]
    best_t = float(thresholds[int(np.argmax(f1s))])
    proba_te = spe.predict_proba(X_te)[:, 1]
    print(f"\nvalidation-tuned threshold: {best_t:.2f}")
    print(
        "test F1 at 0.50:",
        round(f1_score(y_te, (proba_te >= 0.5).astype(int)), 3),
        "| at tuned threshold:",
        round(f1_score(y_te, (proba_te >= best_t).astype(int)), 3),
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40_000)
