"""Fraud stream with drift: detect → retrain → shadow → hot-swap, live.

The missing half of the fraud scenario: ``credit_fraud_detection.py``
stops at a fitted model, but real fraud traffic *moves* — fraudsters
change modus operandi (covariate drift) and attack waves triple the fraud
rate overnight (prior drift). This script runs the full post-deployment
loop on the credit-fraud surrogate:

1. train a streaming SPE on "day 0" traffic, register it in an
   :class:`~repro.lifecycle.ArtifactRegistry`, and serve it through a
   :class:`~repro.serving.ModelServer`;
2. replay a drift-free control phase — the
   :class:`~repro.monitoring.DriftMonitor` stays quiet and no retrain is
   spent;
3. inject covariate drift (fraud clusters shift along the leading PCA
   components) plus prior drift (an attack wave raises the fraud rate) —
   the detectors escalate to ALARM, the
   :class:`~repro.lifecycle.LifecycleController` retrains a challenger
   from the monitor's live window via ``fit_source``, shadow-scores it
   against the champion on that same window, and promotes it through
   :meth:`~repro.serving.ModelServer.swap_model` — with the server
   taking traffic the whole time;
4. print the timeline: drift reports, shadow scores, the registry
   manifest, and the server's per-version request counters.

Run:  python examples/fraud_drift_lifecycle.py [n_samples]
"""

import sys

import numpy as np

from repro.datasets import make_credit_fraud
from repro.lifecycle import ArtifactRegistry, LifecycleController, RetrainPolicy
from repro.monitoring import ReferenceSketch, DriftMonitor
from repro.serving import ServerConfig, serve
from repro.streaming import ArraySource, StreamingSelfPacedEnsembleClassifier
from repro.tree import DecisionTreeClassifier


def make_stream(n_samples: int, *, drifted: bool, seed: int):
    """Credit-fraud traffic; drifted phases shift features + fraud rate."""
    X, y = make_credit_fraud(
        n_samples=n_samples,
        imbalance_ratio=40.0 if drifted else 120.0,  # attack wave: 3x prior
        fraud_shift=1.5 if drifted else 3.5,  # new MOs sit closer to genuine
        random_state=seed,
    )
    if drifted:
        # fraudsters move along the leading components; genuine traffic
        # drifts too (new merchant mix shifts the PCA marginals).
        X = X.copy()
        X[:, :6] += 2.0
    order = np.random.RandomState(seed).permutation(len(y))
    return X[order], y[order]


def main(n_samples: int = 30_000, n_estimators: int = 10, registry_dir=None) -> dict:
    import tempfile

    if registry_dir is None:
        registry_dir = tempfile.mkdtemp(prefix="fraud-registry-")

    # -- day 0: train, register, serve ---------------------------------
    X0, y0 = make_stream(n_samples, drifted=False, seed=7)
    champion = StreamingSelfPacedEnsembleClassifier(
        DecisionTreeClassifier(max_depth=8, random_state=0),
        n_estimators=n_estimators,
        random_state=0,
    ).fit_source(ArraySource(X0, y0))

    registry = ArtifactRegistry(registry_dir)
    v1 = registry.register(champion, tags={"phase": "bootstrap"})
    registry.set_champion(v1)
    server = serve(registry.load(v1), ServerConfig(model_version=v1))
    print(f"champion {v1} serving (packed={server.packed_})")

    sketch = ReferenceSketch(n_bins=16).fit(X0, y0)
    monitor = DriftMonitor(
        sketch, window_size=max(2000, n_samples // 10), min_window=500
    )
    controller = LifecycleController(
        server,
        registry,
        monitor,
        train_fn=lambda source: StreamingSelfPacedEnsembleClassifier(
            DecisionTreeClassifier(max_depth=8, random_state=0),
            n_estimators=n_estimators,
            random_state=1,
        ).fit_source(source),
        policy=RetrainPolicy(warn_quorum=2, cooldown=2),
    )

    def replay(X, y, label: str, batch: int = 500) -> None:
        print(f"\n== {label}: {len(y)} rows, fraud rate {y.mean():.4f} ==")
        for lo in range(0, len(y), batch):
            event = controller.process(X[lo : lo + batch], y[lo : lo + batch])
            if event.action.name != "NONE" or event.promoted:
                worst = event.reports[0] if event.reports else None
                print(f"  row {lo + event.n_rows}: action={event.action.name}"
                      + (f"  worst={worst}" if worst else ""))
            if event.shadow is not None:
                s = event.shadow
                print(
                    f"    shadow[{s.metric}]: champion={s.champion_score:.3f} "
                    f"challenger={s.challenger_score:.3f} -> "
                    f"{'PROMOTE' if s.promote else 'keep champion'}"
                )
            if event.promoted:
                print(f"    hot-swapped to {event.promoted_version} "
                      f"(zero requests dropped); traffic continues")

    # -- phase 1: stable traffic — must stay quiet ----------------------
    Xc, yc = make_stream(n_samples // 2, drifted=False, seed=11)
    replay(Xc, yc, "control phase (no drift)")
    promoted_in_control = any(e.promoted for e in controller.events)
    print(f"retrains during control: "
          f"{sum(e.action.name != 'NONE' for e in controller.events)}")

    # -- phase 2: attack wave — detect, retrain, promote ----------------
    Xd, yd = make_stream(n_samples // 2, drifted=True, seed=13)
    replay(Xd, yd, "drift phase (new MOs + attack wave)")

    stats = server.stats()
    print("\n== outcome ==")
    print(f"registry versions: {registry.versions()} champion={registry.champion}")
    print(f"server: {stats['n_requests']} requests / {stats['n_batches']} batches, "
          f"{stats['n_overflows']} overflows, {stats['n_swaps']} swap(s)")
    print(f"requests by version: {stats['requests_by_version']}")
    metrics = monitor.metrics()
    print(f"live window: auprc={metrics['auprc']:.3f} "
          f"recall={metrics['minority_recall']:.3f} "
          f"prevalence={metrics['prevalence']:.4f}")
    server.close()
    return {
        "promoted_in_control": promoted_in_control,
        "promoted_in_drift": any(e.promoted for e in controller.events),
        "champion": registry.champion,
        "versions": registry.versions(),
        "stats": stats,
    }


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000)
