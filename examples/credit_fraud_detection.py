"""Credit-card fraud detection — the paper's flagship real-world scenario.

Follows the paper's protocol end to end on the credit-fraud surrogate:
stratified 60/20/20 split, SPE against the Table IV baselines (RandUnder,
Clean, Easy, Cascade), evaluated with AUCPRC / F1 / G-mean / MCC.

Run:  python examples/credit_fraud_detection.py [n_samples]
"""

import sys

from repro import SelfPacedEnsembleClassifier, clone
from repro.datasets import make_credit_fraud
from repro.experiments import render_table
from repro.imbalance_ensemble import BalanceCascadeClassifier, EasyEnsembleClassifier
from repro.metrics import evaluate_classifier
from repro.model_selection import train_valid_test_split
from repro.sampling import NeighbourhoodCleaningRule, RandomUnderSampler
from repro.tree import DecisionTreeClassifier


def main(n_samples: int = 40_000) -> None:
    # IR 120 keeps enough minority samples at example scale; the real
    # dataset's 578.88:1 is one flag away (imbalance_ratio=578.88).
    X, y = make_credit_fraud(
        n_samples=n_samples, imbalance_ratio=120.0, random_state=7
    )
    X_tr, X_va, X_te, y_tr, y_va, y_te = train_valid_test_split(X, y, random_state=7)
    print(
        f"train={len(y_tr)} (frauds={int(y_tr.sum())})  "
        f"valid={len(y_va)}  test={len(y_te)} (frauds={int(y_te.sum())})"
    )

    base = DecisionTreeClassifier(max_depth=10, random_state=0)
    rows = []

    # -- data-level baselines ------------------------------------------
    for name, sampler in (
        ("RandUnder", RandomUnderSampler(random_state=0)),
        ("Clean (NCR)", NeighbourhoodCleaningRule()),
    ):
        X_res, y_res = sampler.fit_resample(X_tr, y_tr)
        model = clone(base).fit(X_res, y_res)
        scores = evaluate_classifier(model, X_te, y_te)
        rows.append([name, *(f"{scores[m]:.3f}" for m in scores)])

    # -- ensemble methods ----------------------------------------------
    for name, ensemble in (
        ("Easy10", EasyEnsembleClassifier(clone(base), n_estimators=10, random_state=0)),
        ("Cascade10", BalanceCascadeClassifier(clone(base), n_estimators=10, random_state=0)),
        ("SPE10", SelfPacedEnsembleClassifier(clone(base), n_estimators=10, random_state=0)),
    ):
        ensemble.fit(X_tr, y_tr)
        scores = evaluate_classifier(ensemble, X_te, y_te)
        rows.append([name, *(f"{scores[m]:.3f}" for m in scores)])

    print()
    print(
        render_table(
            ["Method", "AUCPRC", "F1", "GM", "MCC"],
            rows,
            title="Fraud detection on the credit-fraud surrogate (DT base)",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40_000)
