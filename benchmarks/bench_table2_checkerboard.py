"""Table II — AUCPRC on the 4x4 checkerboard, 8 classifiers x 6 methods.

Paper setup: |P| = 1000, |N| = 10000, cov 0.1·I2, train/test drawn
independently from the same distribution, 10 runs. Bench scale defaults to
0.3x the paper size and 2 runs (REPRO_SCALE / REPRO_RUNS adjust).
"""

from conftest import bench_runs, bench_scale, save_result

from repro.datasets import make_checkerboard
from repro.experiments import (
    core_comparison_methods,
    render_table,
    run_matrix,
    table2_classifiers,
)


def test_table2_checkerboard(run_once):
    scale = bench_scale() * 0.3
    n_min, n_maj = int(1000 * scale), int(10000 * scale)
    X_train, y_train = make_checkerboard(n_min, n_maj, random_state=0)
    X_test, y_test = make_checkerboard(n_min, n_maj, random_state=1000)

    def run():
        return run_matrix(
            core_comparison_methods(n_estimators=10),
            table2_classifiers(mlp_epochs=15, svc_iter=6000),
            X_train,
            y_train,
            X_test,
            y_test,
            n_runs=bench_runs(),
            seed=0,
        )

    result = run_once(run)
    save_result(
        "table2_checkerboard",
        result.render(
            "Table II: generalized performance (AUCPRC & co) on checkerboard "
            f"(|P|={n_min}, |N|={n_maj}, {bench_runs()} runs)"
        ),
    )
