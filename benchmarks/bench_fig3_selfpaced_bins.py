"""Fig 3 — self-paced under-sampling bins on the Payment surrogate.

Left panels: per-bin population; right panels: per-bin total hardness
contribution; for the original majority set and the subsets sampled at
alpha = 0, alpha = 0.1, alpha -> inf. (Paper note: log-scale populations —
the numbers below differ by orders of magnitude across bins.)
"""

import numpy as np
from conftest import bench_scale, save_result

from repro.datasets import load_dataset
from repro.experiments import fig3_selfpaced_bins, render_series


def test_fig3_selfpaced_bins(run_once):
    ds = load_dataset("payment_simulation", scale=bench_scale() * 0.2, random_state=0)

    def run():
        return fig3_selfpaced_bins(
            ds.X, ds.y, alphas=(0.0, 0.1, np.inf), k_bins=20, n_estimators=10,
            random_state=0,
        )

    data = run_once(run)
    blocks = []
    for panel in ("original", "alpha=0", "alpha=0.1", "alpha=inf"):
        pops = data[panel]["population"].astype(float)
        contrib = data[panel]["contribution"]
        blocks.append(
            render_series(f"{panel} - population", range(len(pops)), pops, digits=0)
        )
        blocks.append(
            render_series(
                f"{panel} - hardness contribution", range(len(contrib)), contrib
            )
        )
    save_result(
        "fig3_selfpaced_bins",
        "Fig 3: how the self-paced factor alpha controls under-sampling "
        f"(Payment surrogate, n={ds.n_samples}, k=20 bins)\n\n"
        + "\n\n".join(blocks),
    )
