"""Chaos harness: the serving plane's SLOs under deterministic faults.

Replays a PaySim-style scoring burst through the ``serve()`` fleet while a
seeded :class:`repro.chaos.FaultPlan` breaks it on schedule — one worker
is killed mid-burst, a second is killed the instant a fleet-wide model
swap reaches it — and *asserts* the fault-tolerance SLOs instead of
eyeballing them:

* **zero hung futures** — every submitted request resolves within a
  bounded wait: scored, or failed with a *typed* error
  (``WorkerCrashedError`` / ``DeadlineExceededError`` /
  ``ServerOverloadedError``). A future that is still pending after the
  grace window is a hang, and the bench fails.
* **zero silent drops** — submitted == scored + typed failures, exactly.
  Nothing vanishes, nothing is scored twice (each future resolves once).
* **bounded recovery** — after the burst the pool is back at full
  capacity (every slot alive and answering) within the respawn-backoff
  bound, measured and recorded.
* **swap survives the crash** — the fleet converges onto the new version
  even though a worker died mid-broadcast (the respawn source is the new
  artifact).

A second phase stalls a worker under tight per-request deadlines: the
stalled requests must fail *typed* (``DeadlineExceededError``), never
block the caller for the length of the stall.

The plan is seeded and the traffic is generated — the same faults hit the
same requests on every run. ``REPRO_SCALE`` scales the burst; runs
standalone or under pytest like every other bench.
"""

import json
import os
import pathlib
import tempfile
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from conftest import bench_scale, save_result

from repro import telemetry
from repro.chaos import FaultPlan, KillOnSwap, KillWorker, StallWorker
from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_payment_simulation
from repro.exceptions import (
    DeadlineExceededError,
    ServerOverloadedError,
    WorkerCrashedError,
)
from repro.persistence import save_model
from repro.serving import serve
from repro.tree import DecisionTreeClassifier

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_chaos.json"
BATCH = 32  # rows per request — small on purpose: more requests in flight
REQUEST_DEADLINE_S = 10.0  # generous per-request budget; expiry = failure
HANG_GRACE_S = 30.0  # a future unresolved this long after the burst hung
RECOVERY_BOUND_S = 15.0
RESPAWN_BACKOFF_S = 0.1


def _reconcile_telemetry(pool, stats: dict) -> dict:
    """One ``telemetry.snapshot()`` after the burst must tell the same
    story as the legacy ``stats()`` dict — the registry is the source of
    truth and ``stats()`` a view, so any disagreement is a bug."""
    label = {"pool": pool.telemetry_label_}
    counters = {
        "n_requests": "repro_pool_requests_total",
        "n_crashes": "repro_pool_crashes_total",
        "n_respawns": "repro_pool_respawns_total",
        "n_deadline_expired": "repro_pool_deadline_expired_total",
        "n_swaps": "repro_pool_swaps_total",
    }
    reconciled = {}
    for stat_key, metric in counters.items():
        registry_value = int(telemetry.metric_value(metric, label))
        assert registry_value == stats[stat_key], (
            f"{metric}={registry_value} disagrees with "
            f"stats()[{stat_key!r}]={stats[stat_key]}"
        )
        reconciled[metric] = registry_value
    roundtrip = telemetry.metric_value("repro_pool_roundtrip_seconds", label)
    swap = telemetry.metric_value("repro_pool_swap_seconds", label)
    assert roundtrip["count"] > 0, "no roundtrip latencies recorded"
    assert swap["count"] >= 1, "the mid-burst fleet swap left no duration"
    snap = telemetry.snapshot()
    assert "repro_pool_requests_total" in snap["metrics"]
    return {
        "stats_match_registry": True,
        "counters": reconciled,
        "roundtrip_p50_s": roundtrip["p50"],
        "roundtrip_p99_s": roundtrip["p99"],
        "swap_count": swap["count"],
        "swap_p99_s": swap["p99"],
    }


def _fit_and_save(tmp_dir):
    X, y = make_payment_simulation(n_samples=4000, random_state=0)
    clf = SelfPacedEnsembleClassifier(
        estimator=DecisionTreeClassifier(max_depth=6, random_state=0),
        n_estimators=5,
        random_state=0,
    ).fit(X, y)
    retrained = SelfPacedEnsembleClassifier(
        estimator=DecisionTreeClassifier(max_depth=6, random_state=0),
        n_estimators=5,
        random_state=1,
    ).fit(X, y)
    path_v1 = os.path.join(tmp_dir, "paysim_v1.npz")
    path_v2 = os.path.join(tmp_dir, "paysim_v2.npz")
    save_model(clf, path_v1)
    save_model(retrained, path_v2)
    rng = np.random.RandomState(77)
    X_serve = X[rng.randint(0, len(X), size=8192)]
    return path_v1, path_v2, X_serve


def _settle(futures):
    """Resolve every future within the grace window; classify outcomes."""
    outcomes = {"scored": 0, "crashed": 0, "deadline": 0, "hung": 0, "other": 0}
    versions = set()
    for future in futures:
        try:
            scored = future.result(timeout=HANG_GRACE_S)
        except DeadlineExceededError:
            outcomes["deadline"] += 1
        except WorkerCrashedError:
            outcomes["crashed"] += 1
        except FutureTimeoutError:
            outcomes["hung"] += 1  # SLO violation: asserted below
        except BaseException:
            outcomes["other"] += 1  # untyped failure: asserted below
        else:
            outcomes["scored"] += 1
            versions.add(scored.model_version)
    return outcomes, versions


def run_burst_phase(path_v1, path_v2, X_serve, scale: float) -> dict:
    """Kill two workers — one mid-burst, one mid-swap — under load."""
    n_requests = max(80, int(400 * scale))
    swap_at = n_requests // 2
    plan = FaultPlan(
        [
            # worker 0 dies serving its 10th request of the burst
            KillWorker(worker=0, after_requests=10),
            # worker 1 dies the instant the fleet swap broadcast reaches it
            KillOnSwap(worker=1, on_swap=1),
        ],
        seed=7,
    )
    futures = []
    rejected_overload = 0
    rejected_no_workers = 0
    swap_ms = None
    burst_start = time.perf_counter()
    with serve(
        path_v1,
        n_workers=2,
        model_version="v1",
        max_pending=256,
        poll_interval=0.02,
        respawn_backoff=RESPAWN_BACKOFF_S,
        chaos=plan,
    ) as pool:
        for i in range(n_requests):
            if i == swap_at:
                t0 = time.perf_counter()
                pool.swap_model(path_v2, version="v2", wait=False)
                swap_ms = round((time.perf_counter() - t0) * 1e3, 2)
            # Closed-loop pacing: cap requests in flight, like a client
            # fleet with bounded concurrency. An unpaced spray would park
            # the whole burst on the two doomed workers before the first
            # crash is even detectable.
            while sum(1 for f in futures if not f.done()) >= 32:
                time.sleep(0.001)
            rows = X_serve[(i * BATCH) % (len(X_serve) - BATCH) :][:BATCH]
            try:
                futures.append(
                    pool.submit_scored(rows, deadline=REQUEST_DEADLINE_S)
                )
            except ServerOverloadedError:
                rejected_overload += 1  # typed push-back at the door
                time.sleep(0.002)
            except WorkerCrashedError:
                rejected_no_workers += 1  # whole fleet briefly down
                time.sleep(0.01)
        outcomes, versions = _settle(futures)
        burst_s = time.perf_counter() - burst_start

        recovery_start = time.perf_counter()
        pool.wait_healthy(timeout=RECOVERY_BOUND_S)
        recovery_s = round(time.perf_counter() - recovery_start, 3)
        # convergence: both slots answering from the swapped version
        deadline = time.monotonic() + RECOVERY_BOUND_S
        while time.monotonic() < deadline:
            stats = pool.stats()
            if set(stats["model_versions"].values()) == {"v2"}:
                break
            time.sleep(0.05)
        stats = pool.stats()
        post_swap = pool.score(X_serve[:BATCH])
        # fresh stats(): post_swap itself is request n+1 in both ledgers
        reconciliation = _reconcile_telemetry(pool, pool.stats())

    typed_failures = (
        outcomes["crashed"] + outcomes["deadline"]
        + rejected_overload + rejected_no_workers
    )
    accounted = outcomes["scored"] + typed_failures
    submitted = n_requests  # every loop iteration ended in exactly one bucket
    assert outcomes["hung"] == 0, f"{outcomes['hung']} futures hung past {HANG_GRACE_S}s"
    assert outcomes["other"] == 0, f"{outcomes['other']} requests failed UNtyped"
    assert accounted == submitted, (
        f"silent drops: {submitted} submitted, {accounted} accounted for"
    )
    assert stats["n_crashes"] >= 2, stats
    assert stats["n_respawns"] >= 2, stats
    assert set(stats["model_versions"].values()) == {"v2"}, stats["model_versions"]
    assert post_swap.model_version == "v2"
    assert outcomes["scored"] > 0 and "v1" in versions, versions
    return {
        "n_requests": submitted,
        "plan": {"seed": plan.seed, "faults": [repr(f) for f in plan.faults]},
        "outcomes": outcomes,
        "rejected_overload": rejected_overload,
        "rejected_no_live_workers": rejected_no_workers,
        "typed_failures": typed_failures,
        "silent_drops": submitted - accounted,
        "versions_served": sorted(versions),
        "swap_broadcast_ms": swap_ms,
        "burst_s": round(burst_s, 3),
        "recovery_s": recovery_s,
        "recovery_bound_s": RECOVERY_BOUND_S,
        "n_crashes": stats["n_crashes"],
        "n_respawns": stats["n_respawns"],
        "worker_generations": stats["worker_generations"],
        "fleet_converged_to": sorted(set(stats["model_versions"].values())),
        "telemetry": reconciliation,
    }


def run_deadline_phase(path_v1, X_serve) -> dict:
    """A stalled worker under tight deadlines: typed expiry, no blocking."""
    plan = FaultPlan(
        [StallWorker(worker=0, after_requests=3, seconds=1.5)], seed=7
    )
    with serve(
        path_v1,
        n_workers=1,
        model_version="v1",
        poll_interval=0.02,
        respawn_backoff=RESPAWN_BACKOFF_S,
        chaos=plan,
    ) as pool:
        futures = [
            pool.submit_scored(
                X_serve[i * BATCH : (i + 1) * BATCH], deadline=0.25
            )
            for i in range(10)
        ]
        outcomes, _ = _settle(futures)
        expired = pool.stats()["n_deadline_expired"]
    assert outcomes["hung"] == 0 and outcomes["other"] == 0, outcomes
    assert outcomes["deadline"] >= 1, (
        f"the 1.5s stall never expired a 0.25s deadline: {outcomes}"
    )
    assert expired >= outcomes["deadline"]
    return {
        "stall_s": 1.5,
        "deadline_s": 0.25,
        "n_requests": 10,
        "outcomes": outcomes,
        "pool_n_deadline_expired": expired,
    }


def run_chaos_bench(scale: float) -> dict:
    with tempfile.TemporaryDirectory() as tmp_dir:
        path_v1, path_v2, X_serve = _fit_and_save(tmp_dir)
        burst = run_burst_phase(path_v1, path_v2, X_serve, scale)
        deadlines = run_deadline_phase(path_v1, X_serve)
    return {
        "benchmark": "chaos",
        "dataset": {"name": "payment_simulation", "request_batch": BATCH},
        "burst": burst,
        "deadlines": deadlines,
        "headline": {
            "zero_hung_futures": burst["outcomes"]["hung"] == 0
            and deadlines["outcomes"]["hung"] == 0,
            "zero_silent_drops": burst["silent_drops"] == 0,
            "all_failures_typed": burst["outcomes"]["other"] == 0
            and deadlines["outcomes"]["other"] == 0,
            "n_workers_killed": burst["n_crashes"],
            "killed_mid_swap": True,
            "recovery_s": burst["recovery_s"],
            "fleet_converged": burst["fleet_converged_to"] == ["v2"],
            "stats_matches_registry": burst["telemetry"]["stats_match_registry"],
        },
    }


def _render(report: dict) -> str:
    burst = report["burst"]
    dl = report["deadlines"]
    out = burst["outcomes"]
    return "\n".join(
        [
            "Chaos harness (PaySim burst, seeded FaultPlan: kill w0 mid-burst, "
            "kill w1 mid-swap)",
            f"burst: {burst['n_requests']} requests -> {out['scored']} scored, "
            f"{burst['typed_failures']} failed typed "
            f"(crash={out['crashed']}, deadline={out['deadline']}, "
            f"overload={burst['rejected_overload']}, "
            f"fleet-down={burst['rejected_no_live_workers']}), "
            f"{out['hung']} hung, {burst['silent_drops']} silently dropped",
            f"faults: {burst['n_crashes']} crashes, {burst['n_respawns']} respawns, "
            f"generations {burst['worker_generations']}; recovery "
            f"{burst['recovery_s']}s (bound {burst['recovery_bound_s']}s)",
            f"swap: broadcast {burst['swap_broadcast_ms']}ms mid-burst, one worker "
            f"killed mid-swap, fleet converged to {burst['fleet_converged_to']}",
            f"deadlines: {dl['n_requests']} requests vs a {dl['stall_s']}s stall at "
            f"deadline={dl['deadline_s']}s -> {dl['outcomes']['deadline']} expired "
            f"typed, {dl['outcomes']['scored']} scored, {dl['outcomes']['hung']} hung",
            f"telemetry: snapshot reconciles with stats() "
            f"({burst['telemetry']['counters']}), roundtrip p99 "
            f"{burst['telemetry']['roundtrip_p99_s']:.4f}s, "
            f"{burst['telemetry']['swap_count']} swap duration(s) recorded",
        ]
    )


def run_and_save() -> dict:
    report = run_chaos_bench(bench_scale())
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    save_result("chaos", _render(report))
    print(f"wrote {ARTIFACT}")
    return report


def test_chaos_bench(run_once):
    run_once(run_and_save)


if __name__ == "__main__":
    run_and_save()
