"""Table V — ORG + 12 re-samplers + SPE on Credit Fraud, 5 classifiers.

Reports AUCPRC per classifier plus the #Sample and re-sampling time columns
that make the paper's efficiency argument: distance-based cleaning costs
minutes-to-hours while SPE's subsets cost milliseconds.
"""

import numpy as np
from conftest import bench_runs, bench_scale, save_result

from repro.datasets import load_dataset
from repro.experiments import (
    evaluate_combination,
    render_table,
    table5_classifiers,
    table5_methods,
)
from repro.experiments.formatting import mean_std
from repro.model_selection import train_valid_test_split


def test_table5_resampling(run_once):
    ds = load_dataset("credit_fraud", scale=bench_scale() * 0.25, random_state=0)
    X_tr, _, X_te, y_tr, _, y_te = train_valid_test_split(ds.X, ds.y, random_state=0)
    classifiers = table5_classifiers()
    methods = table5_methods(n_estimators=10)

    def run():
        rows = []
        for method in methods:
            cells = [method.name]
            n_samples = "-"
            resample_time = "-"
            for clf_name, base in classifiers.items():
                record = evaluate_combination(
                    method,
                    base,
                    X_tr,
                    y_tr,
                    X_te,
                    y_te,
                    n_runs=bench_runs(),
                    seed=0,
                    classifier_name=clf_name,
                )
                cells.append(mean_std(record.metrics["AUCPRC"]))
                n_samples = str(int(np.mean(record.n_training_samples)))
                resample_time = f"{np.mean(record.resample_seconds):.3f}"
            rows.append(cells + [n_samples, resample_time])
        return rows

    rows = run_once(run)
    save_result(
        "table5_resampling",
        render_table(
            ["Method", *classifiers.keys(), "#Sample", "ResampleTime(s)"],
            rows,
            title=(
                "Table V: AUCPRC of 12 re-sampling methods + ORG + SPE on "
                f"Credit Fraud surrogate (n={ds.n_samples}, {bench_runs()} runs)"
            ),
        ),
    )
