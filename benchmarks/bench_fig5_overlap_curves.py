"""Fig 5 — training curves of SPE vs Cascade under growing class overlap.

Per-iteration test AUCPRC on checkerboards with cov 0.05 / 0.10 / 0.15.
The reproduction target: Cascade's curve bends down in late iterations as
overlap grows (noise overfitting); SPE's keeps rising or plateaus.
"""

from conftest import bench_runs, bench_scale, save_result

from repro.experiments import fig5_training_curves, render_series


def test_fig5_training_curves(run_once):
    scale = bench_scale()

    def run():
        return fig5_training_curves(
            cov_scales=(0.05, 0.10, 0.15),
            n_estimators=10,
            n_minority=int(500 * scale),
            n_majority=int(5000 * scale),
            random_state=0,
        )

    data = run_once(run)
    blocks = []
    verdicts = []
    for cov, curves in data.items():
        for method, curve in curves.items():
            blocks.append(
                render_series(
                    f"cov={cov:.2f} / {method} (test AUCPRC per iteration)",
                    range(1, len(curve) + 1),
                    curve,
                )
            )
        spe, cascade = curves["SPE"], curves["Cascade"]
        late_drop = max(cascade) - cascade[-1]
        verdicts.append(
            f"cov={cov:.2f}: SPE final={spe[-1]:.3f}  Cascade final="
            f"{cascade[-1]:.3f}  Cascade late-iteration drop={late_drop:.3f}"
        )
    save_result(
        "fig5_overlap_curves",
        "Fig 5: training curve under different levels of overlap\n\n"
        + "\n".join(verdicts)
        + "\n\n"
        + "\n\n".join(blocks),
    )
