"""Telemetry plane: overhead bound, histogram accuracy, reconciliation.

The telemetry plane only earns its keep if it is (a) too cheap to ever
turn off in production, (b) numerically honest about the latencies it
summarises, and (c) consistent with the legacy ``stats()`` dicts it now
backs. This bench *asserts* all three instead of eyeballing them:

* **overhead** — the same synchronous serving workload through one
  :class:`~repro.serving.ModelServer`, once with sampling on (spans +
  latency histograms) and once with sampling off (counters only), best
  of :data:`REPEATS` runs each. The on/off throughput gap must stay
  under :data:`OVERHEAD_BOUND_PCT` (5 %).
* **histogram accuracy** — a seeded log-uniform latency sample pushed
  through a :class:`~repro.telemetry.Histogram`; the interpolated
  p50/p99 must land within one log-bucket ratio (≤ 2.5×) of the exact
  sample percentiles, and ``sum``/``count`` must be exact.
* **reconciliation** — a traced burst through a fresh server: the
  registry (``repro_server_*``), the ``stats()`` view, and the stitched
  span timeline must all tell the same story — same request count, same
  batch count, every traced request carrying queue-wait and kernel
  spans.

Writes ``BENCH_telemetry.json`` at the repo root; runs standalone or
under pytest like every other bench. ``REPRO_SCALE`` scales the bursts.
"""

import json
import pathlib
import time

import numpy as np

from conftest import bench_scale, save_result

from repro import telemetry
from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_payment_simulation
from repro.serving import ModelServer
from repro.tree import DecisionTreeClassifier

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_telemetry.json"
BATCH = 1024  # rows per request — production-shaped scoring batches
REPEATS = 3  # best-of-N per sampling mode
OVERHEAD_BOUND_PCT = 5.0
#: Adjacent log-scale buckets are at most 2.5× apart, so an interpolated
#: quantile can sit at most one bucket ratio away from the exact value.
BUCKET_RATIO = 2.5


def _fit_model():
    X, y = make_payment_simulation(n_samples=3000, random_state=0)
    clf = SelfPacedEnsembleClassifier(
        estimator=DecisionTreeClassifier(max_depth=8, random_state=0),
        n_estimators=10,
        random_state=0,
    ).fit(X, y)
    rng = np.random.RandomState(77)
    X_serve = X[rng.randint(0, len(X), size=4096)]
    return clf, X_serve


def _timed_burst(clf, X_serve, n_requests: int) -> float:
    """Seconds for ``n_requests`` synchronous scores on a fresh server."""
    with ModelServer(clf) as server:
        for i in range(20):  # warm the queue, the kernel, the caches
            server.predict_proba(X_serve[:BATCH])
        start = time.perf_counter()
        for i in range(n_requests):
            lo = (i * BATCH) % (len(X_serve) - BATCH)
            server.predict_proba(X_serve[lo : lo + BATCH])
        return time.perf_counter() - start


def run_overhead_phase(clf, X_serve, scale: float) -> dict:
    """Sampling-on vs sampling-off serve throughput, best of REPEATS.

    The two modes run *interleaved* (on, off, on, off, ...) and each
    mode's best run wins: clock drift on a busy host moves both modes
    together, so back-to-back pairs plus min-of-N isolate the telemetry
    cost instead of measuring whichever mode ran while the machine was
    warm."""
    n_requests = max(100, int(400 * scale))
    timings = {"sampling_on": [], "sampling_off": []}
    previous = telemetry.set_sampling(True)
    try:
        for _ in range(REPEATS):
            for mode, enabled in (
                ("sampling_on", True),
                ("sampling_off", False),
            ):
                telemetry.set_sampling(enabled)
                timings[mode].append(_timed_burst(clf, X_serve, n_requests))
    finally:
        telemetry.set_sampling(previous)
    timings = {mode: min(runs) for mode, runs in timings.items()}
    t_on, t_off = timings["sampling_on"], timings["sampling_off"]
    overhead_pct = (t_on - t_off) / t_off * 100.0
    assert overhead_pct < OVERHEAD_BOUND_PCT, (
        f"telemetry sampling overhead {overhead_pct:.2f}% exceeds the "
        f"{OVERHEAD_BOUND_PCT}% budget ({t_on:.3f}s on vs {t_off:.3f}s off "
        f"over {n_requests} requests)"
    )
    return {
        "n_requests": n_requests,
        "rows_per_request": BATCH,
        "repeats": REPEATS,
        "best_s": {k: round(v, 4) for k, v in timings.items()},
        "throughput_rows_s": {
            k: round(n_requests * BATCH / v) for k, v in timings.items()
        },
        "overhead_pct": round(overhead_pct, 3),
        "overhead_bound_pct": OVERHEAD_BOUND_PCT,
        "within_bound": overhead_pct < OVERHEAD_BOUND_PCT,
    }


def run_histogram_accuracy_phase() -> dict:
    """Interpolated p50/p99 vs exact percentiles of a known sample."""
    registry = telemetry.MetricsRegistry("bench-telemetry")
    hist = registry.histogram(
        "bench_latency_seconds", "Seeded log-uniform latency sample."
    )
    rng = np.random.RandomState(0)
    values = 10.0 ** rng.uniform(-4.5, -0.5, size=20000)  # 32µs .. 316ms
    for value in values:
        hist.observe(float(value))
    reading = telemetry.metric_value("bench_latency_seconds", registry=registry)
    checks = {}
    for q, key in ((50, "p50"), (99, "p99")):
        exact = float(np.percentile(values, q))
        estimate = reading[key]
        ratio = estimate / exact
        assert 1.0 / BUCKET_RATIO <= ratio <= BUCKET_RATIO, (
            f"histogram {key} estimate {estimate:.6f}s is {ratio:.2f}x the "
            f"exact {exact:.6f}s — outside one log-bucket ratio"
        )
        checks[key] = {
            "exact_s": round(exact, 6),
            "estimate_s": round(estimate, 6),
            "ratio": round(ratio, 3),
        }
    assert reading["count"] == len(values)
    assert abs(reading["sum"] - float(values.sum())) < 1e-6 * values.sum()
    return {
        "n_observations": len(values),
        "distribution": "10**U(-4.5,-0.5) seconds, seed 0",
        "bucket_ratio_bound": BUCKET_RATIO,
        "quantiles": checks,
        "sum_exact": True,
    }


def run_reconciliation_phase(clf, X_serve) -> dict:
    """Registry, ``stats()``, and the span timeline must agree."""
    n_requests = 50
    previous = telemetry.set_sampling(True)
    try:
        with ModelServer(clf) as server:
            label = {"server": server.telemetry_label_}
            trace_ids = []
            for i in range(n_requests):
                with telemetry.trace("bench.request", request=str(i)):
                    trace_ids.append(telemetry.current_context()[0])
                    server.score(X_serve[:BATCH])
            stats = server.stats()
            requests_total = telemetry.metric_value(
                "repro_server_requests_total", label
            )
            rows_total = telemetry.metric_value("repro_server_rows_total", label)
            queue_wait = telemetry.metric_value(
                "repro_server_queue_wait_seconds", label
            )
            kernel = telemetry.metric_value(
                "repro_server_kernel_eval_seconds", label
            )
            snap = telemetry.snapshot()
            exposition = telemetry.render_prometheus()
            span_names = set()
            for trace_id in trace_ids:
                span_names.update(
                    span.name for span in telemetry.drain_trace(trace_id)
                )
    finally:
        telemetry.set_sampling(previous)

    assert stats["n_requests"] == n_requests == int(requests_total)
    assert stats["n_rows"] == n_requests * BATCH == int(rows_total)
    assert queue_wait["count"] == n_requests, queue_wait
    assert kernel["count"] == stats["n_batches"], (kernel, stats["n_batches"])
    assert queue_wait["p50"] >= 0.0 and queue_wait["p99"] >= queue_wait["p50"]
    assert "repro_server_requests_total" in snap["metrics"]
    assert "repro_server_queue_wait_seconds_bucket" in exposition
    assert {"bench.request", "server.queue_wait", "server.kernel_eval"} <= (
        span_names
    ), span_names
    return {
        "n_requests": n_requests,
        "stats_n_requests": stats["n_requests"],
        "registry_requests_total": int(requests_total),
        "stats_n_batches": stats["n_batches"],
        "registry_kernel_count": kernel["count"],
        "queue_wait_p50_s": queue_wait["p50"],
        "queue_wait_p99_s": queue_wait["p99"],
        "kernel_p50_s": kernel["p50"],
        "kernel_p99_s": kernel["p99"],
        "span_names": sorted(span_names),
        "stats_matches_registry": True,
    }


def run_telemetry_bench(scale: float) -> dict:
    clf, X_serve = _fit_model()
    overhead = run_overhead_phase(clf, X_serve, scale)
    accuracy = run_histogram_accuracy_phase()
    reconciliation = run_reconciliation_phase(clf, X_serve)
    return {
        "benchmark": "telemetry",
        "dataset": {"name": "payment_simulation", "request_batch": BATCH},
        "overhead": overhead,
        "histogram_accuracy": accuracy,
        "reconciliation": reconciliation,
        "headline": {
            "overhead_pct": overhead["overhead_pct"],
            "overhead_within_5pct": overhead["within_bound"],
            "p99_within_one_bucket": accuracy["quantiles"]["p99"]["ratio"]
            <= BUCKET_RATIO,
            "stats_matches_registry": reconciliation["stats_matches_registry"],
        },
    }


def _render(report: dict) -> str:
    ov = report["overhead"]
    acc = report["histogram_accuracy"]
    rec = report["reconciliation"]
    return "\n".join(
        [
            "Telemetry plane (sampling overhead, histogram accuracy, "
            "stats() reconciliation)",
            f"overhead: {ov['n_requests']} requests x {ov['rows_per_request']} "
            f"rows, best of {ov['repeats']}: sampling on {ov['best_s']['sampling_on']}s "
            f"vs off {ov['best_s']['sampling_off']}s -> {ov['overhead_pct']}% "
            f"(bound {ov['overhead_bound_pct']}%)",
            f"histogram: p50 {acc['quantiles']['p50']['estimate_s']}s vs exact "
            f"{acc['quantiles']['p50']['exact_s']}s (x{acc['quantiles']['p50']['ratio']}), "
            f"p99 {acc['quantiles']['p99']['estimate_s']}s vs exact "
            f"{acc['quantiles']['p99']['exact_s']}s (x{acc['quantiles']['p99']['ratio']}) "
            f"over {acc['n_observations']} observations",
            f"reconciliation: {rec['n_requests']} traced requests -> "
            f"stats()={rec['stats_n_requests']} == registry={rec['registry_requests_total']}, "
            f"{rec['stats_n_batches']} batches == {rec['registry_kernel_count']} kernel "
            f"timings, spans {rec['span_names']}",
        ]
    )


def run_and_save() -> dict:
    report = run_telemetry_bench(bench_scale())
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    save_result("telemetry", _render(report))
    print(f"wrote {ARTIFACT}")
    return report


def test_telemetry_bench(run_once):
    run_once(run_and_save)


if __name__ == "__main__":
    run_and_save()
