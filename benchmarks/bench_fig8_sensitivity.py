"""Fig 8 — SPE10 sensitivity to the bin count k and the hardness function H.

Reproduction target: performance is flat for k >= 10 across AE / SE / CE
hardness, with degradation only at very small k (coarse hardness
approximation) — the paper's robustness claim.
"""

import numpy as np
from conftest import bench_runs, bench_scale, save_result

from repro.datasets import load_dataset
from repro.experiments import fig8_sensitivity, render_series
from repro.model_selection import train_valid_test_split
from repro.tree import DecisionTreeClassifier

_KS = (1, 2, 5, 10, 20, 35, 50)


def _run_for(ds_name: str):
    ds = load_dataset(ds_name, scale=bench_scale() * 0.15, random_state=0)
    X_tr, _, X_te, y_tr, _, y_te = train_valid_test_split(ds.X, ds.y, random_state=0)
    return fig8_sensitivity(
        X_tr, y_tr, X_te, y_te,
        ks=_KS,
        hardness_functions=("absolute", "squared", "cross_entropy"),
        n_estimators=10,
        estimator=DecisionTreeClassifier(max_depth=8, random_state=0),
        n_runs=bench_runs(),
        random_state=0,
    )


def test_fig8a_credit_fraud(run_once):
    data = run_once(lambda: _run_for("credit_fraud"))
    blocks = [
        render_series(
            f"Credit Fraud / SPE-{h} (AUCPRC vs k bins)",
            list(series),
            [float(np.mean(v)) for v in series.values()],
        )
        for h, series in data.items()
    ]
    save_result(
        "fig8a_credit_fraud",
        "Fig 8(a): SPE10 sensitivity to k and hardness function "
        "(Credit Fraud surrogate)\n\n" + "\n\n".join(blocks),
    )


def test_fig8b_payment(run_once):
    data = run_once(lambda: _run_for("payment_simulation"))
    blocks = [
        render_series(
            f"Payment / SPE-{h} (AUCPRC vs k bins)",
            list(series),
            [float(np.mean(v)) for v in series.values()],
        )
        for h, series in data.items()
    ]
    save_result(
        "fig8b_payment",
        "Fig 8(b): SPE10 sensitivity to k and hardness function "
        "(Payment surrogate)\n\n" + "\n\n".join(blocks),
    )
