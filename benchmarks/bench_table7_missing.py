"""Table VII — AUCPRC of 6 ensemble methods under missing values.

Paper protocol: replace 0/25/50/75% of all feature values (train AND test)
with 0, then train each ensemble (C4.5 base, n = 10).
"""

from conftest import bench_runs, bench_scale, save_result

from repro.datasets import inject_missing_values, load_dataset
from repro.experiments import default_c45, render_table, run_matrix, table6_methods
from repro.experiments.formatting import mean_std
from repro.model_selection import train_valid_test_split


def test_table7_missing_values(run_once):
    ds = load_dataset("credit_fraud", scale=bench_scale() * 0.25, random_state=0)
    method_names = [m.name for m in table6_methods(10)]

    def run():
        rows = []
        for ratio in (0.0, 0.25, 0.5, 0.75):
            X_miss = inject_missing_values(ds.X, ratio, random_state=0)
            X_tr, _, X_te, y_tr, _, y_te = train_valid_test_split(
                X_miss, ds.y, random_state=0
            )
            result = run_matrix(
                table6_methods(n_estimators=10),
                {"C4.5": default_c45()},
                X_tr,
                y_tr,
                X_te,
                y_te,
                n_runs=bench_runs(),
                seed=0,
            )
            row = [f"{int(ratio * 100)}%"]
            for name in method_names:
                row.append(mean_std(result.get("C4.5", name).metrics["AUCPRC"]))
            rows.append(row)
        return rows

    rows = run_once(run)
    save_result(
        "table7_missing",
        render_table(
            ["Missing", *[f"{m}10" for m in method_names]],
            rows,
            title=(
                "Table VII: AUCPRC of 6 ensemble methods with missing values "
                f"(Credit Fraud surrogate n={ds.n_samples}, {bench_runs()} runs)"
            ),
        ),
    )
