"""Fig 7 — AUCPRC vs number of base classifiers (n = 1..100).

Six ensemble methods on the Credit Fraud surrogate and four on the Payment
surrogate (the paper omits SMOTEBoost/SMOTEBagging there for cost — we
reproduce that omission for the same reason).
"""

import numpy as np
from conftest import bench_runs, bench_scale, save_result

from repro.datasets import load_dataset
from repro.experiments import (
    ensemble_figure_methods,
    fig7_n_estimators_sweep,
    render_series,
)
from repro.model_selection import train_valid_test_split
from repro.tree import DecisionTreeClassifier

_NS = (1, 2, 5, 10, 20, 50, 100)
#: SMOTE-based ensembles train every base model on ~2|N| samples, so their
#: sweep stops earlier (the paper itself omits them on the Payment task for
#: exactly this cost reason).
_NS_EXPENSIVE = (1, 2, 5, 10, 20)
_EXPENSIVE = ("SMOTEBoost", "SMOTEBagging")


def _sweep(ds_name: str, methods):
    ds = load_dataset(ds_name, scale=bench_scale() * 0.15, random_state=0)
    X_tr, _, X_te, y_tr, _, y_te = train_valid_test_split(ds.X, ds.y, random_state=0)
    if methods is None:
        methods = ensemble_figure_methods()
    cheap = {k: v for k, v in methods.items() if k not in _EXPENSIVE}
    costly = {k: v for k, v in methods.items() if k in _EXPENSIVE}
    base = DecisionTreeClassifier(max_depth=8, random_state=0)
    data = fig7_n_estimators_sweep(
        X_tr, y_tr, X_te, y_te,
        ns=_NS,
        methods=cheap,
        estimator=base,
        n_runs=bench_runs(),
        random_state=0,
    )
    if costly:
        data.update(
            fig7_n_estimators_sweep(
                X_tr, y_tr, X_te, y_te,
                ns=_NS_EXPENSIVE,
                methods=costly,
                estimator=base,
                n_runs=bench_runs(),
                random_state=0,
            )
        )
    return data


def test_fig7a_credit_fraud(run_once):
    data = run_once(lambda: _sweep("credit_fraud", None))
    blocks = [
        render_series(
            f"Credit Fraud / {name} (AUCPRC vs n)",
            list(series),
            [float(np.mean(v)) for v in series.values()],
        )
        for name, series in data.items()
    ]
    save_result(
        "fig7a_credit_fraud",
        "Fig 7(a): ensemble methods vs number of base classifiers "
        "(Credit Fraud surrogate)\n\n" + "\n\n".join(blocks),
    )


def test_fig7b_payment(run_once):
    methods = {
        k: v
        for k, v in ensemble_figure_methods().items()
        if k in ("SPE", "Cascade", "UnderBagging", "RUSBoost")
    }
    data = run_once(lambda: _sweep("payment_simulation", methods))
    blocks = [
        render_series(
            f"Payment Simulation / {name} (AUCPRC vs n)",
            list(series),
            [float(np.mean(v)) for v in series.values()],
        )
        for name, series in data.items()
    ]
    save_result(
        "fig7b_payment",
        "Fig 7(b): ensemble methods vs number of base classifiers "
        "(Payment surrogate; SMOTE-based methods omitted as in the paper)\n\n"
        + "\n\n".join(blocks),
    )
