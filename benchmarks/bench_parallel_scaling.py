"""Parallel-engine scaling: ensemble fit/predict wall-clock vs ``n_jobs``.

Times ``SelfPacedEnsembleClassifier`` and ``BaggingClassifier`` on a large
checkerboard dataset for ``n_jobs`` ∈ {1, 2, 4}, checks the engine's
determinism guarantee (all settings must produce identical probabilities),
and writes the machine-readable artefact ``BENCH_parallel.json`` at the
repository root — the seed of the repo's performance trajectory.

Runs standalone (``python benchmarks/bench_parallel_scaling.py``) or under
pytest like every other bench. ``REPRO_SCALE`` scales the dataset.
"""

import json
import os
import pathlib

import numpy as np

from conftest import bench_scale, save_result

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.ensemble import BaggingClassifier
from repro.tree import DecisionTreeClassifier
from repro.utils.timing import timed_call

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_parallel.json"
N_JOBS_GRID = (1, 2, 4)
BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "thread")


def _build_model(name: str, n_jobs: int):
    base = DecisionTreeClassifier(max_depth=8, random_state=0)
    if name == "SelfPacedEnsembleClassifier":
        return SelfPacedEnsembleClassifier(
            estimator=base,
            n_estimators=10,
            n_jobs=n_jobs,
            backend=BACKEND,
            random_state=0,
        )
    return BaggingClassifier(
        estimator=base,
        n_estimators=10,
        n_jobs=n_jobs,
        backend=BACKEND,
        random_state=0,
    )


def run_scaling(scale: float) -> dict:
    n_min, n_maj = max(50, int(2000 * scale)), max(500, int(20000 * scale))
    X_train, y_train = make_checkerboard(n_min, n_maj, random_state=0)
    X_test, _ = make_checkerboard(n_min, n_maj, random_state=1000)

    results = []
    for model_name in ("SelfPacedEnsembleClassifier", "BaggingClassifier"):
        reference = None
        for n_jobs in N_JOBS_GRID:
            model = _build_model(model_name, n_jobs)
            _, fit_seconds = timed_call(model.fit, X_train, y_train)
            proba, predict_seconds = timed_call(model.predict_proba, X_test)
            if reference is None:
                reference = proba
            max_diff = float(np.max(np.abs(proba - reference)))
            results.append(
                {
                    "model": model_name,
                    "backend": BACKEND,
                    "n_jobs": n_jobs,
                    "fit_seconds": round(fit_seconds, 4),
                    "predict_seconds": round(predict_seconds, 4),
                    "max_abs_diff_vs_n_jobs_1": max_diff,
                }
            )
            assert max_diff == 0.0, (
                f"{model_name} with n_jobs={n_jobs} diverged from n_jobs=1"
            )

    return {
        "benchmark": "parallel_scaling",
        "dataset": {
            "name": "checkerboard",
            "n_minority": n_min,
            "n_majority": n_maj,
            "n_features": int(X_train.shape[1]),
        },
        "cpu_count": os.cpu_count(),
        "n_jobs_grid": list(N_JOBS_GRID),
        "results": results,
    }


def _render(report: dict) -> str:
    ds = report["dataset"]
    lines = [
        "Parallel scaling: fit/predict seconds vs n_jobs "
        f"(checkerboard |P|={ds['n_minority']}, |N|={ds['n_majority']}, "
        f"backend={BACKEND}, cpus={report['cpu_count']})",
        f"{'model':<30} {'n_jobs':>6} {'fit_s':>10} {'predict_s':>10}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['model']:<30} {row['n_jobs']:>6} "
            f"{row['fit_seconds']:>10.4f} {row['predict_seconds']:>10.4f}"
        )
    return "\n".join(lines)


def run_and_save() -> dict:
    report = run_scaling(bench_scale())
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    save_result("parallel_scaling", _render(report))
    print(f"wrote {ARTIFACT}")
    return report


def test_parallel_scaling(run_once):
    run_once(run_and_save)


if __name__ == "__main__":
    run_and_save()
