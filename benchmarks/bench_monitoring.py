"""Monitoring overhead + hot-swap latency: the cost of staying fresh.

Two questions the monitoring/lifecycle subsystem must answer with
numbers:

* **drift-check overhead** — what does watching the stream cost per 10k
  rows? Measured as the wall time of ``DriftMonitor.observe`` (window
  maintenance) and ``DriftMonitor.check`` (PSI/KS + DDM + prevalence)
  over a 10k-row replay, excluding model scoring (that cost exists with
  or without monitoring).
* **swap latency / blocked requests** — how long does
  ``ModelServer.swap_model`` take (dominated by the off-thread kernel
  pre-build), and how many concurrent requests fail or stall while swaps
  happen? The design claim is *zero*: the packed kernel is built before
  the atomic pointer flip, so traffic never waits on a re-pack. The
  bench hammers the server from background threads through a burst of
  swaps, counts failures (asserted == 0 — this is the contract, not a
  flaky latency floor) and records the p99 request latency during swaps
  next to the no-swap baseline.

``REPRO_SCALE`` scales the dataset; runs standalone or under pytest like
every other bench. Results → ``BENCH_monitoring.json`` (CI artifact).
"""

import json
import os
import pathlib
import threading
import time

import numpy as np

from conftest import bench_scale, save_result

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.monitoring import DriftMonitor, ReferenceSketch
from repro.serving import ModelServer
from repro.tree import DecisionTreeClassifier

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_monitoring.json"
N_ESTIMATORS = 10
N_SWAPS = 10
TRAFFIC_THREADS = 4


def _percentiles(values_ms):
    arr = np.asarray(values_ms)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
    }


def bench_drift_overhead(X, y, scores, batch_rows: int = 1000) -> dict:
    """Wall time of observe + check per 10k monitored rows."""
    sketch = ReferenceSketch(n_bins=16).fit(X, y)
    monitor = DriftMonitor(sketch, window_size=10_000, min_window=500)
    n_rows = len(y)
    observe_s = 0.0
    for lo in range(0, n_rows, batch_rows):
        hi = lo + batch_rows
        start = time.perf_counter()
        monitor.observe(X[lo:hi], scores[lo:hi], y[lo:hi])
        observe_s += time.perf_counter() - start
    check_times = []
    for _ in range(10):
        start = time.perf_counter()
        reports = monitor.check()
        check_times.append(time.perf_counter() - start)
    assert reports, "monitor produced no reports"
    per_10k = 10_000 / n_rows
    return {
        "rows_replayed": int(n_rows),
        "batch_rows": batch_rows,
        "observe_ms_per_10k_rows": round(observe_s * 1e3 * per_10k, 3),
        "check_ms": round(float(np.median(check_times)) * 1e3, 3),
        "check_ms_per_10k_rows": round(
            float(np.median(check_times)) * 1e3 * per_10k, 3
        ),
        "detectors": [r.detector for r in reports],
    }


def bench_swap(champion, challenger, X_serve) -> dict:
    """Swap latency + request health under concurrent traffic."""
    server = ModelServer(champion, model_version="champion")
    rows = X_serve[:16]

    # baseline request latency, no swaps in flight
    baseline = []
    for _ in range(200):
        start = time.perf_counter()
        server.predict_proba(rows)
        baseline.append((time.perf_counter() - start) * 1e3)

    failures = []
    during_swap_lat = []
    served = [0]
    stop = threading.Event()

    def traffic():
        while not stop.is_set():
            start = time.perf_counter()
            try:
                server.predict_proba(rows)
            except BaseException as exc:
                failures.append(repr(exc))
                return
            during_swap_lat.append((time.perf_counter() - start) * 1e3)
            served[0] += 1

    threads = [threading.Thread(target=traffic) for _ in range(TRAFFIC_THREADS)]
    for t in threads:
        t.start()
    swap_lat = []
    models = [challenger, champion]
    for i in range(N_SWAPS):
        start = time.perf_counter()
        server.swap_model(models[i % 2], version=f"swap-{i}")
        swap_lat.append((time.perf_counter() - start) * 1e3)
        time.sleep(0.01)  # let traffic interleave between swaps
    stop.set()
    for t in threads:
        t.join()
    stats = server.stats()
    server.close()

    # The contract, not a latency race: zero requests failed or were
    # rejected while N_SWAPS hot-swaps ran under constant traffic.
    blocked = len(failures) + stats["n_overflows"]
    assert blocked == 0, f"requests blocked during swap: {failures}"
    assert stats["n_swaps"] == N_SWAPS
    return {
        "n_swaps": N_SWAPS,
        "traffic_threads": TRAFFIC_THREADS,
        "swap_latency_ms": _percentiles(swap_lat),
        "requests_during_swaps": served[0],
        "requests_failed_or_blocked": blocked,
        "request_latency_baseline_ms": _percentiles(baseline),
        "request_latency_during_swaps_ms": _percentiles(during_swap_lat),
        "versions_served": len(stats["requests_by_version"]),
    }


def run_monitoring_bench(scale: float) -> dict:
    n_min = max(100, int(1000 * scale))
    n_maj = max(1000, int(40000 * scale))
    X, y = make_checkerboard(n_min, n_maj, random_state=0)
    base = DecisionTreeClassifier(max_depth=8, random_state=0)
    champion = SelfPacedEnsembleClassifier(
        estimator=base, n_estimators=N_ESTIMATORS, random_state=0
    ).fit(X, y)
    challenger = SelfPacedEnsembleClassifier(
        estimator=base, n_estimators=N_ESTIMATORS, random_state=1
    ).fit(X, y)

    rng = np.random.RandomState(7)
    replay = rng.permutation(len(y))[: min(len(y), max(2000, int(20000 * scale)))]
    scores = champion.predict_proba(X[replay])[:, 1]

    drift = bench_drift_overhead(X[replay], y[replay], scores)
    swap = bench_swap(champion, challenger, X)

    return {
        "benchmark": "monitoring",
        "dataset": {
            "name": "checkerboard",
            "n_minority": n_min,
            "n_majority": n_maj,
            "n_features": int(X.shape[1]),
            "imbalance_ratio": round(n_maj / n_min, 1),
        },
        "config": {"n_estimators": N_ESTIMATORS, "max_depth": 8},
        "cpu_count": os.cpu_count(),
        "drift_check": drift,
        "hot_swap": swap,
        "headline": {
            "drift_overhead_ms_per_10k_rows": round(
                drift["observe_ms_per_10k_rows"] + drift["check_ms_per_10k_rows"],
                3,
            ),
            "swap_p50_ms": swap["swap_latency_ms"]["p50_ms"],
            "requests_blocked_during_swap": swap["requests_failed_or_blocked"],
        },
    }


def _render(report: dict) -> str:
    ds = report["dataset"]
    drift = report["drift_check"]
    swap = report["hot_swap"]
    return "\n".join(
        [
            "Monitoring overhead + hot swap (checkerboard "
            f"|P|={ds['n_minority']}, |N|={ds['n_majority']}, "
            f"IR={ds['imbalance_ratio']}, {report['config']['n_estimators']} trees)",
            f"drift check: observe {drift['observe_ms_per_10k_rows']:.2f} ms / 10k rows, "
            f"full check {drift['check_ms']:.2f} ms "
            f"({drift['check_ms_per_10k_rows']:.2f} ms / 10k rows)",
            f"hot swap:    p50 {swap['swap_latency_ms']['p50_ms']:.2f} ms / "
            f"p99 {swap['swap_latency_ms']['p99_ms']:.2f} ms over {swap['n_swaps']} swaps",
            f"traffic:     {swap['requests_during_swaps']} requests across "
            f"{swap['traffic_threads']} threads during swaps — "
            f"{swap['requests_failed_or_blocked']} failed/blocked (asserted 0); "
            f"req p99 {swap['request_latency_during_swaps_ms']['p99_ms']:.3f} ms "
            f"vs baseline {swap['request_latency_baseline_ms']['p99_ms']:.3f} ms",
        ]
    )


def run_and_save() -> dict:
    report = run_monitoring_bench(bench_scale())
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    save_result("monitoring", _render(report))
    print(f"wrote {ARTIFACT}")
    return report


def test_monitoring_bench(run_once):
    run_once(run_and_save)


if __name__ == "__main__":
    run_and_save()
