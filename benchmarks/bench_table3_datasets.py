"""Table III — statistics of the real-world datasets (surrogates).

Prints each surrogate's bench-scale statistics next to the paper-scale
numbers recorded from Table III.
"""

from conftest import bench_scale, save_result

from repro.datasets import dataset_statistics, load_dataset
from repro.experiments import render_table

_REAL_WORLD = (
    "credit_fraud",
    "kddcup_dos_vs_prb",
    "kddcup_dos_vs_r2l",
    "record_linkage",
    "payment_simulation",
)


def test_table3_dataset_statistics(run_once):
    def run():
        rows = []
        for name in _REAL_WORLD:
            ds = load_dataset(name, scale=bench_scale() * 0.25, random_state=0)
            stats = dataset_statistics(ds)
            rows.append(
                [
                    stats["Dataset"],
                    stats["#Attribute"],
                    stats["#Sample"],
                    stats["Feature Format"],
                    stats["Imbalance Ratio"],
                    stats["Paper #Sample"],
                    stats["Paper IR"],
                ]
            )
        return rows

    rows = run_once(run)
    save_result(
        "table3_datasets",
        render_table(
            [
                "Dataset",
                "#Attr",
                "#Sample(bench)",
                "Feature Format",
                "IR(bench)",
                "#Sample(paper)",
                "IR(paper)",
            ],
            rows,
            title="Table III: statistics of the real-world dataset surrogates",
        ),
    )
