"""Fastpath speedups: SPE fit, majority scoring, and ensemble predict_proba.

Times the two hot paths the fastpath subsystem targets on the checkerboard
benchmark at the paper's "highly imbalanced" shape (IR = 100):

* **SPE end-to-end fit** — legacy (fastpath kernels disabled, per-member
  binning) vs fastpath (packed/code-table scoring + ``shared_binning``).
* **Ensemble ``predict_proba``** — the chunked per-tree path vs the packed
  path, in bulk (one big batch) and serving style (512-row batches), for
  both a default-config model (packed traversal kernel) and a
  shared-binning model (compiled code-table).

Every timed pair is also checked for the fastpath equivalence contract:
the packed path must be *bit-identical* to the per-tree path on the same
model, and the fastpath-scored SPE fit must be bit-identical to the
legacy-scored fit at the same configuration. Speedup floors are asserted
(``REPRO_FASTPATH_MIN_SPEEDUP``, default 1.2 — conservative so shared CI
runners don't flake; the committed full-scale run shows the real margins).

Writes ``BENCH_fastpath.json`` at the repo root. ``REPRO_SCALE`` scales the
dataset; runs standalone or under pytest like every other bench.
"""

import json
import os
import pathlib
import time

import numpy as np

from conftest import bench_scale, save_result

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.fastpath import fastpath_disabled
from repro.parallel import ensemble_predict_proba
from repro.tree import DecisionTreeClassifier

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_fastpath.json"
MIN_SPEEDUP = float(os.environ.get("REPRO_FASTPATH_MIN_SPEEDUP", "1.2"))
SERVE_BATCH = 512
N_ESTIMATORS = 10


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _serve(estimators, X, classes, packed):
    out = []
    for lo in range(0, X.shape[0], SERVE_BATCH):
        out.append(
            ensemble_predict_proba(
                estimators, X[lo : lo + SERVE_BATCH], classes, packed=packed
            )
        )
    return np.vstack(out)


def run_fastpath_bench(scale: float) -> dict:
    n_min = max(60, int(500 * scale))
    n_maj = max(600, int(50000 * scale))
    repeats = 3
    X, y = make_checkerboard(n_min, n_maj, random_state=0)
    X_test, _ = make_checkerboard(n_min, n_maj, random_state=1000)
    base = DecisionTreeClassifier(max_depth=8, random_state=0)
    classes = np.array([0, 1])

    def build(shared):
        return SelfPacedEnsembleClassifier(
            estimator=base,
            n_estimators=N_ESTIMATORS,
            shared_binning=shared,
            random_state=0,
        )

    results = {}

    # --- SPE end-to-end fit -------------------------------------------- #
    def fit_legacy():
        with fastpath_disabled():
            return build(shared=False).fit(X, y)

    model_legacy, t_fit_legacy = _best_of(fit_legacy, repeats)
    model_fast, t_fit_fast = _best_of(lambda: build(shared=True).fit(X, y), repeats)
    results["fit"] = {
        "legacy_seconds": round(t_fit_legacy, 4),
        "fastpath_seconds": round(t_fit_fast, 4),
        "speedup": round(t_fit_legacy / t_fit_fast, 2),
    }

    # Scoring-path equivalence: same config, fastpath on vs off must give
    # bit-identical ensembles (same hardness → same draws → same trees).
    with fastpath_disabled():
        ref = build(shared=True).fit(X, y).predict_proba(X_test)
    check = model_fast.predict_proba(X_test)
    with fastpath_disabled():
        check_legacy_eval = model_fast.predict_proba(X_test)
    assert np.array_equal(ref, check_legacy_eval), "scoring fastpath diverged"
    assert np.array_equal(check, check_legacy_eval), "packed predict diverged"

    # --- predict_proba: packed traversal (default-config model) --------- #
    trees = model_legacy.estimators_
    proba_fast, t_bulk_fast = _best_of(
        lambda: ensemble_predict_proba(trees, X_test, classes), repeats
    )
    proba_legacy, t_bulk_legacy = _best_of(
        lambda: ensemble_predict_proba(trees, X_test, classes, packed="never"),
        repeats,
    )
    assert np.array_equal(proba_fast, proba_legacy), "packed traversal diverged"
    _, t_serve_fast = _best_of(lambda: _serve(trees, X_test, classes, "auto"), repeats)
    _, t_serve_legacy = _best_of(
        lambda: _serve(trees, X_test, classes, "never"), repeats
    )
    results["predict_packed"] = {
        "bulk_legacy_seconds": round(t_bulk_legacy, 4),
        "bulk_fastpath_seconds": round(t_bulk_fast, 4),
        "bulk_speedup": round(t_bulk_legacy / t_bulk_fast, 2),
        "serve_batch": SERVE_BATCH,
        "serve_speedup": round(t_serve_legacy / t_serve_fast, 2),
    }

    # --- predict_proba: compiled code table (shared-binning model) ------ #
    strees = model_fast.estimators_
    lut_fast, t_lut_fast = _best_of(
        lambda: ensemble_predict_proba(strees, X_test, classes), repeats
    )
    lut_legacy, t_lut_legacy = _best_of(
        lambda: ensemble_predict_proba(strees, X_test, classes, packed="never"),
        repeats,
    )
    assert np.array_equal(lut_fast, lut_legacy), "code-table predict diverged"
    _, t_slut_fast = _best_of(lambda: _serve(strees, X_test, classes, "auto"), repeats)
    _, t_slut_legacy = _best_of(
        lambda: _serve(strees, X_test, classes, "never"), repeats
    )
    results["predict_codetable"] = {
        "bulk_legacy_seconds": round(t_lut_legacy, 4),
        "bulk_fastpath_seconds": round(t_lut_fast, 4),
        "bulk_speedup": round(t_lut_legacy / t_lut_fast, 2),
        "serve_batch": SERVE_BATCH,
        "serve_speedup": round(t_slut_legacy / t_slut_fast, 2),
    }

    headline_predict = results["predict_codetable"]["bulk_speedup"]
    report = {
        "benchmark": "fastpath",
        "dataset": {
            "name": "checkerboard",
            "n_minority": n_min,
            "n_majority": n_maj,
            "n_features": int(X.shape[1]),
            "imbalance_ratio": round(n_maj / n_min, 1),
        },
        "config": {
            "n_estimators": N_ESTIMATORS,
            "max_depth": 8,
            "min_speedup_asserted": MIN_SPEEDUP,
        },
        "cpu_count": os.cpu_count(),
        "results": results,
        "headline": {
            "spe_fit_speedup": results["fit"]["speedup"],
            "predict_proba_speedup": headline_predict,
            "bit_identical": True,
        },
    }

    assert results["fit"]["speedup"] >= MIN_SPEEDUP, (
        f"SPE fit speedup {results['fit']['speedup']} < floor {MIN_SPEEDUP}"
    )
    assert headline_predict >= MIN_SPEEDUP, (
        f"predict_proba speedup {headline_predict} < floor {MIN_SPEEDUP}"
    )
    return report


def _render(report: dict) -> str:
    ds = report["dataset"]
    r = report["results"]
    lines = [
        "Fastpath speedups (checkerboard "
        f"|P|={ds['n_minority']}, |N|={ds['n_majority']}, IR={ds['imbalance_ratio']}, "
        f"{report['config']['n_estimators']} trees, depth 8) — all paths bit-identical",
        f"{'path':<28} {'legacy_s':>10} {'fast_s':>10} {'speedup':>8}",
        f"{'SPE fit (shared_binning)':<28} {r['fit']['legacy_seconds']:>10.4f} "
        f"{r['fit']['fastpath_seconds']:>10.4f} {r['fit']['speedup']:>7.2f}x",
        f"{'predict bulk (packed)':<28} {r['predict_packed']['bulk_legacy_seconds']:>10.4f} "
        f"{r['predict_packed']['bulk_fastpath_seconds']:>10.4f} "
        f"{r['predict_packed']['bulk_speedup']:>7.2f}x",
        f"{'predict bulk (code table)':<28} {r['predict_codetable']['bulk_legacy_seconds']:>10.4f} "
        f"{r['predict_codetable']['bulk_fastpath_seconds']:>10.4f} "
        f"{r['predict_codetable']['bulk_speedup']:>7.2f}x",
        f"{'serve x512 (packed)':<28} {'':>10} {'':>10} "
        f"{r['predict_packed']['serve_speedup']:>7.2f}x",
        f"{'serve x512 (code table)':<28} {'':>10} {'':>10} "
        f"{r['predict_codetable']['serve_speedup']:>7.2f}x",
    ]
    return "\n".join(lines)


def run_and_save() -> dict:
    report = run_fastpath_bench(bench_scale())
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    save_result("fastpath", _render(report))
    print(f"wrote {ARTIFACT}")
    return report


def test_fastpath_bench(run_once):
    run_once(run_and_save)


if __name__ == "__main__":
    run_and_save()
