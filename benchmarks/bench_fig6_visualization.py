"""Fig 6 — training sets and prediction surfaces on the checkerboard.

For Clean / SMOTE / Easy / Cascade / SPE: the training set each method
feeds its (5th and 10th) base model, and the final P(y=1) surface, rendered
as ASCII. The paper's qualitative story: Cascade's 10th training set is
dominated by outliers; SPE keeps a skeleton of easy samples plus the
borderline region; SPE's surface recovers the checkerboard most cleanly.
"""

import numpy as np
from conftest import bench_scale, save_result

from repro.experiments import ascii_heatmap, ascii_scatter, fig6_training_views


def test_fig6_training_views(run_once):
    scale = bench_scale()

    def run():
        return fig6_training_views(
            n_minority=int(300 * scale),
            n_majority=int(3000 * scale),
            resolution=40,
            random_state=0,
        )

    data = run_once(run)
    blocks = []
    for method in ("Clean", "SMOTE", "Easy", "Cascade", "SPE"):
        view = data[method]
        for i, (X_set, y_set) in enumerate(view["training_sets"], start=1):
            label = (
                f"{method} training set"
                if len(view["training_sets"]) == 1
                else f"{method} training set of model #{5 if i == 1 else 10}"
            )
            blocks.append(
                f"{label} (n={len(y_set)}, minority={int((y_set == 1).sum())})\n"
                + ascii_scatter(X_set, y_set, width=60, height=20)
            )
        blocks.append(
            f"{method} predicted P(y=1) surface\n" + ascii_heatmap(view["grid"])
        )
    save_result(
        "fig6_visualization",
        "Fig 6: training-set / prediction visualization on checkerboard\n\n"
        + "\n\n".join(blocks),
    )
