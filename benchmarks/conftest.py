"""Shared benchmark plumbing.

Every bench regenerates one table or figure of the paper at laptop scale,
prints it, and writes it to ``benchmarks/results/<name>.txt``. Scale knobs:

* ``REPRO_SCALE``  — dataset-size multiplier (default 1.0 = quick bench scale;
  raise toward paper scale when you have the time budget);
* ``REPRO_RUNS``   — independent runs per cell (paper uses 10; default 2).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the ``bench`` marker, so the
    PR-gating ``make test-fast`` (-m "not slow and not bench") skips it even
    when a bench file is passed to pytest explicitly. The hook registers
    session-wide, so filter to this directory before marking."""
    bench_dir = str(pathlib.Path(__file__).parent)
    for item in items:
        if str(item.path).startswith(bench_dir):
            item.add_marker(pytest.mark.bench)


def bench_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def bench_runs() -> int:
    return int(os.environ.get("REPRO_RUNS", "2"))


def save_result(name: str, text: str) -> None:
    """Print a reproduction artefact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


@pytest.fixture
def run_once(benchmark):
    """Run the workload exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
