"""Serving path: cold artifact load latency + warm micro-batch latency.

Measures the production loop the persistence + serving subsystem exists
for — train once, save, then serve heavy traffic:

* **cold load** — ``load_model`` + ``ModelServer`` construction (which
  eagerly builds the packed kernel / code table), i.e. the time from
  "process starts" to "first request can be served warm";
* **warm micro-batch latency** — p50/p99 per-request latency through the
  server's batching queue at request sizes 1 / 64 / 512, for both a
  default-config SPE (packed-forest kernel) and a shared-binning SPE
  (compiled code table).

Correctness is asserted on every configuration: the loaded server's
probabilities must be *bit-identical* to the in-process model's. No
latency floor is asserted (shared CI runners flake); the numbers are
recorded in ``BENCH_serving.json`` for trend tracking.

``REPRO_SCALE`` scales the dataset; runs standalone or under pytest like
every other bench.
"""

import json
import os
import pathlib
import tempfile
import time

import numpy as np

from conftest import bench_scale, save_result

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.persistence import load_model, save_model
from repro.serving import ModelServer
from repro.tree import DecisionTreeClassifier

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_serving.json"
BATCH_SIZES = (1, 64, 512)
N_ESTIMATORS = 10
COLD_REPEATS = 5


def _percentiles(latencies_ms):
    arr = np.asarray(latencies_ms)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
    }


def _bench_variant(name, clf, X_serve, tmp_dir, requests_per_batch):
    path = os.path.join(tmp_dir, f"{name}.npz")
    save_model(clf, path)
    artifact_kb = round(os.path.getsize(path) / 1024, 1)

    cold = []
    for _ in range(COLD_REPEATS):
        start = time.perf_counter()
        server = ModelServer(load_model(path))
        cold.append((time.perf_counter() - start) * 1e3)
        server.close()
    server = ModelServer(load_model(path))
    assert server.packed_, f"{name}: artifact did not load into a packed kernel"

    batches = {}
    for batch in BATCH_SIZES:
        n_requests = requests_per_batch[batch]
        rows = [
            X_serve[(i * batch) % (len(X_serve) - batch) :][:batch]
            for i in range(n_requests)
        ]
        # bit-identity of the served path vs the in-process model
        assert np.array_equal(server.predict_proba(rows[0]), clf.predict_proba(rows[0]))
        latencies = []
        for chunk in rows:
            start = time.perf_counter()
            server.predict_proba(chunk)
            latencies.append((time.perf_counter() - start) * 1e3)
        batches[str(batch)] = {"n_requests": n_requests, **_percentiles(latencies)}
    server.close()
    return {
        "artifact_kb": artifact_kb,
        "cold_load_ms": _percentiles(cold) | {"repeats": COLD_REPEATS},
        "warm_batches": batches,
        "code_table": True if name == "spe_codetable" else False,
    }


def run_serving_bench(scale: float) -> dict:
    n_min = max(60, int(500 * scale))
    n_maj = max(600, int(50000 * scale))
    X, y = make_checkerboard(n_min, n_maj, random_state=0)
    X_serve, _ = make_checkerboard(n_min, n_maj, random_state=1000)
    base = DecisionTreeClassifier(max_depth=8, random_state=0)
    requests_per_batch = {1: max(50, int(200 * scale)), 64: 50, 512: 20}

    results = {}
    with tempfile.TemporaryDirectory() as tmp_dir:
        spe = SelfPacedEnsembleClassifier(
            estimator=base, n_estimators=N_ESTIMATORS, random_state=0
        ).fit(X, y)
        results["spe_packed"] = _bench_variant(
            "spe_packed", spe, X_serve, tmp_dir, requests_per_batch
        )
        spe_shared = SelfPacedEnsembleClassifier(
            estimator=base,
            n_estimators=N_ESTIMATORS,
            shared_binning=True,
            random_state=0,
        ).fit(X, y)
        results["spe_codetable"] = _bench_variant(
            "spe_codetable", spe_shared, X_serve, tmp_dir, requests_per_batch
        )

    return {
        "benchmark": "serving",
        "dataset": {
            "name": "checkerboard",
            "n_minority": n_min,
            "n_majority": n_maj,
            "n_features": int(X.shape[1]),
            "imbalance_ratio": round(n_maj / n_min, 1),
        },
        "config": {
            "n_estimators": N_ESTIMATORS,
            "max_depth": 8,
            "batch_sizes": list(BATCH_SIZES),
        },
        "cpu_count": os.cpu_count(),
        "results": results,
        "headline": {
            "cold_load_p50_ms": results["spe_codetable"]["cold_load_ms"]["p50_ms"],
            "batch1_p50_ms": results["spe_codetable"]["warm_batches"]["1"]["p50_ms"],
            "bit_identical": True,
        },
    }


def _render(report: dict) -> str:
    ds = report["dataset"]
    lines = [
        "Serving latency (checkerboard "
        f"|P|={ds['n_minority']}, |N|={ds['n_majority']}, IR={ds['imbalance_ratio']}, "
        f"{report['config']['n_estimators']} trees) — served == in-process, bit-identical",
        f"{'variant':<16} {'cold p50':>10} {'b=1 p50/p99':>16} {'b=64 p50/p99':>16} "
        f"{'b=512 p50/p99':>16}",
    ]
    for name, res in report["results"].items():
        batches = res["warm_batches"]
        lines.append(
            f"{name:<16} {res['cold_load_ms']['p50_ms']:>8.2f}ms "
            + " ".join(
                f"{batches[str(b)]['p50_ms']:>7.3f}/{batches[str(b)]['p99_ms']:<7.3f}"
                for b in (1, 64, 512)
            )
        )
    return "\n".join(lines)


def run_and_save() -> dict:
    report = run_serving_bench(bench_scale())
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    save_result("serving", _render(report))
    print(f"wrote {ARTIFACT}")
    return report


def test_serving_bench(run_once):
    run_once(run_and_save)


if __name__ == "__main__":
    run_and_save()
