"""Serving path: single-server latency + multi-process fleet behaviour.

Measures the production loop the persistence + serving subsystem exists
for — train once, save, then serve heavy traffic:

* **cold load** — ``load_model`` + ``ModelServer`` construction (which
  eagerly builds the packed kernel / code table), i.e. the time from
  "process starts" to "first request can be served warm";
* **warm micro-batch latency** — p50/p99 per-request latency through the
  server's batching queue at request sizes 1 / 64 / 512, for both a
  default-config SPE (packed-forest kernel) and a shared-binning SPE
  (compiled code table);
* **fleet phases** (the ``WorkerPool`` serving plane) —
  throughput-vs-workers curve (1/2/4 forked workers over one mmap'd
  artifact), per-extra-worker *private* memory against the artifact size
  (the zero-copy claim: the model lives once in the page cache, workers
  pay only interpreter churn), bounded-queue saturation/overflow
  behaviour, and a fleet-wide hot swap under sustained load.

Correctness is asserted on every configuration: bit-identity of the
served path, the overflow contract (admitted work is always served), and
**zero dropped requests across a fleet swap**. Performance *floors* are
asserted only where this machine can honestly show them: the >=2x
speedup at 4 workers needs >=4 usable cores, and the <10% memory bound
needs the full-scale artifact (churn is constant, the artifact scales) —
when a floor is skipped, the JSON records ``asserted: false`` with the
reason instead of silently passing.

``REPRO_SCALE`` scales the dataset; runs standalone or under pytest like
every other bench.
"""

import json
import os
import pathlib
import tempfile
import threading
import time

import numpy as np

from conftest import bench_scale, save_result

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import make_checkerboard
from repro.exceptions import ServerOverloadedError
from repro.persistence import load_model, save_model
from repro.serving import ModelServer, WorkerPool

from repro.tree import DecisionTreeClassifier

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_serving.json"
BATCH_SIZES = (1, 64, 512)
N_ESTIMATORS = 10
COLD_REPEATS = 5
FLEET_WORKERS = (1, 2, 4)
FLEET_BATCH = 256
MEMORY_LIMIT_PCT = 10.0
SPEEDUP_FLOOR_AT_4 = 2.0


def _percentiles(latencies_ms):
    arr = np.asarray(latencies_ms)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
    }


def _bench_variant(name, clf, X_serve, tmp_dir, requests_per_batch):
    path = os.path.join(tmp_dir, f"{name}.npz")
    save_model(clf, path)
    artifact_kb = round(os.path.getsize(path) / 1024, 1)

    cold = []
    for _ in range(COLD_REPEATS):
        start = time.perf_counter()
        server = ModelServer(load_model(path))
        cold.append((time.perf_counter() - start) * 1e3)
        server.close()
    server = ModelServer(load_model(path))
    assert server.packed_, f"{name}: artifact did not load into a packed kernel"

    batches = {}
    for batch in BATCH_SIZES:
        n_requests = requests_per_batch[batch]
        rows = [
            X_serve[(i * batch) % (len(X_serve) - batch) :][:batch]
            for i in range(n_requests)
        ]
        # bit-identity of the served path vs the in-process model
        assert np.array_equal(server.predict_proba(rows[0]), clf.predict_proba(rows[0]))
        latencies = []
        for chunk in rows:
            start = time.perf_counter()
            server.predict_proba(chunk)
            latencies.append((time.perf_counter() - start) * 1e3)
        batches[str(batch)] = {"n_requests": n_requests, **_percentiles(latencies)}
    server.close()
    return {
        "artifact_kb": artifact_kb,
        "cold_load_ms": _percentiles(cold) | {"repeats": COLD_REPEATS},
        "warm_batches": batches,
        "code_table": True if name == "spe_codetable" else False,
    }


# --------------------------------------------------------------------- #
# fleet phases (WorkerPool serving plane)
# --------------------------------------------------------------------- #
def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _fit_fleet_model(scale: float):
    """A deliberately *large* SPE whose artifact dwarfs per-worker churn.

    Pure-noise features grow the member trees to their depth bound, so the
    artifact scales with the data while per-worker interpreter churn (the
    thing the memory phase subtracts the model from) stays constant.
    """
    rng = np.random.RandomState(7)
    n = max(20000, int(200000 * scale))
    X = rng.normal(size=(n, 8))
    y = (rng.uniform(size=n) < 0.3).astype(int)
    clf = SelfPacedEnsembleClassifier(
        estimator=DecisionTreeClassifier(max_depth=20, random_state=0),
        n_estimators=max(8, int(18 * scale)),
        random_state=0,
    ).fit(X, y)
    return clf


def _pump(pool, X_serve, n_requests, batch=FLEET_BATCH):
    """Fire ``n_requests`` batches through the pool as fast as admission
    allows; returns (rows/s, futures). Push-back is retried, never dropped."""
    futures = []
    start = time.perf_counter()
    i = 0
    while len(futures) < n_requests:
        rows = X_serve[(i * batch) % (len(X_serve) - batch) :][:batch]
        i += 1
        try:
            futures.append(pool.submit(rows))
        except ServerOverloadedError:
            time.sleep(0.0005)
    for future in futures:
        future.result()
    elapsed = time.perf_counter() - start
    return n_requests * batch / elapsed, futures


def _fleet_throughput(path, X_serve, n_requests):
    curve = []
    for n_workers in FLEET_WORKERS:
        with WorkerPool(
            path, n_workers=n_workers, mmap=True, max_pending=512
        ) as pool:
            _pump(pool, X_serve, max(10, n_requests // 10))  # warm-up
            rows_per_s, _ = _pump(pool, X_serve, n_requests)
        curve.append({"workers": n_workers, "rows_per_s": round(rows_per_s, 1)})
    base = curve[0]["rows_per_s"]
    for row in curve:
        row["speedup_vs_1"] = round(row["rows_per_s"] / base, 2)
    achieved = curve[-1]["speedup_vs_1"]
    cores = _usable_cores()
    assertable = cores >= max(FLEET_WORKERS)
    if assertable:
        assert achieved >= SPEEDUP_FLOOR_AT_4, (
            f"fleet throughput must scale >= {SPEEDUP_FLOOR_AT_4}x at "
            f"{max(FLEET_WORKERS)} workers, got {achieved}x"
        )
    scaling = {
        "target_speedup_at_4": SPEEDUP_FLOOR_AT_4,
        "achieved_speedup_at_4": achieved,
        "usable_cores": cores,
        "asserted": assertable,
    }
    if not assertable:
        scaling["reason"] = (
            f"only {cores} usable core(s): forked workers time-slice one "
            "CPU, so the >=2x floor cannot be honestly demonstrated here"
        )
    return curve, scaling


def _fleet_memory(path, artifact_kb, X_serve, scale):
    """Per-extra-worker private RSS after sustained traffic, vs artifact.

    Workers inherit the mmap'd arrays and the pre-fork packed kernel
    copy-on-write; serving never writes them, so each worker's *private*
    pages are interpreter churn, not a model copy. ``baseline_private_kb``
    is sampled at worker start, before its ModelServer exists.
    """
    with WorkerPool(
        path, n_workers=max(FLEET_WORKERS), mmap=True, max_pending=512
    ) as pool:
        _pump(pool, X_serve, 40)
        per_worker = pool.worker_stats()
    deltas = {
        wid: round(stats["private_kb"] - stats["baseline_private_kb"], 1)
        for wid, stats in per_worker.items()
        if stats["private_kb"] is not None
    }
    memory = {
        "artifact_kb": artifact_kb,
        "limit_pct_of_artifact": MEMORY_LIMIT_PCT,
        "per_worker_private_delta_kb": {str(k): v for k, v in deltas.items()},
    }
    if not deltas:  # smaps_rollup unavailable (non-Linux)
        memory.update(asserted=False, reason="/proc/self/smaps_rollup unavailable")
        return memory
    worst = max(deltas.values())
    worst_pct = round(100.0 * worst / artifact_kb, 2)
    memory["worst_delta_kb"] = worst
    memory["worst_delta_pct_of_artifact"] = worst_pct
    # Churn is ~constant; the artifact scales with REPRO_SCALE. The <10%
    # bound is the full-scale claim — at smoke scale the same churn sits
    # against a small artifact, so asserting would test the scale knob,
    # not the sharing.
    assertable = scale >= 1.0
    memory["asserted"] = assertable
    if assertable:
        assert worst_pct < MEMORY_LIMIT_PCT, (
            f"per-extra-worker private delta {worst} KiB is "
            f"{worst_pct}% of the {artifact_kb} KiB artifact "
            f"(limit {MEMORY_LIMIT_PCT}%) — the fleet is copying the model"
        )
    else:
        memory["reason"] = (
            f"smoke scale {scale}: constant churn vs a down-scaled artifact"
        )
    return memory


def _fleet_overflow(path, X_serve):
    """Saturation: a 1-worker pool with a tiny admission bound must push
    back with ServerOverloadedError and still serve everything admitted."""
    with WorkerPool(path, n_workers=1, mmap=True, max_pending=2) as pool:
        futures = []
        for i in range(400):
            rows = X_serve[(i * FLEET_BATCH) % (len(X_serve) - FLEET_BATCH) :][
                :FLEET_BATCH
            ]
            try:
                futures.append(pool.submit(rows))
            except ServerOverloadedError:
                pass
        for future in futures:
            assert future.result().shape[1] == 2
        rejected = pool.n_overflows_
    assert rejected > 0, "saturating a max_pending=2 pool never overflowed"
    return {
        "max_pending": 2,
        "n_submitted": 400,
        "n_admitted": len(futures),
        "n_rejected": rejected,
        "all_admitted_served": True,
    }


def _fleet_swap_under_load(path_v1, path_v2, X_serve):
    """Fleet-wide hot swap under sustained traffic: every submitted
    request resolves (old or new version), zero dropped, fleet converges."""
    dropped, served_versions = [], set()
    with WorkerPool(
        path_v1, n_workers=2, mmap=True, model_version="v1", max_pending=512
    ) as pool:
        futures, stop = [], threading.Event()

        def traffic():
            i = 0
            while not stop.is_set() and len(futures) < 600:
                rows = X_serve[(i * 64) % (len(X_serve) - 64) :][:64]
                i += 1
                try:
                    futures.append(pool.submit_scored(rows))
                except ServerOverloadedError:
                    stop.wait(0.001)

        threads = [threading.Thread(target=traffic) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.2)  # traffic flowing before the swap lands
        swap_start = time.perf_counter()
        pool.swap_model(path_v2, version="v2")
        swap_ms = (time.perf_counter() - swap_start) * 1e3
        converged = pool.stats()["model_versions"]
        # post-convergence traffic: the curve must show the fleet actually
        # answering from the new version, not just acking the broadcast
        post_swap = [pool.submit_scored(X_serve[:64]) for _ in range(10)]
        stop.set()
        for thread in threads:
            thread.join()
        futures.extend(post_swap)
        for future in futures:
            try:
                served_versions.add(future.result().model_version)
            except BaseException as exc:  # a dropped/failed request
                dropped.append(repr(exc))
    assert not dropped, f"requests dropped across the fleet swap: {dropped[:3]}"
    assert set(converged.values()) == {"v2"}, converged
    assert {"v1", "v2"} <= served_versions, served_versions
    return {
        "n_requests": len(futures),
        "n_dropped": len(dropped),
        "swap_broadcast_ms": round(swap_ms, 1),
        "versions_served": sorted(served_versions),
        "fleet_converged": True,
    }


def run_fleet_bench(scale: float, tmp_dir: str) -> dict:
    clf = _fit_fleet_model(scale)
    path_v1 = os.path.join(tmp_dir, "fleet_v1.npz")
    path_v2 = os.path.join(tmp_dir, "fleet_v2.npz")
    save_model(clf, path_v1)
    save_model(clf, path_v2)  # same bytes, new version: swap cost is real
    artifact_kb = round(os.path.getsize(path_v1) / 1024, 1)
    rng = np.random.RandomState(1000)
    X_serve = rng.normal(size=(8192, 8))

    n_requests = max(20, int(120 * scale))
    curve, scaling = _fleet_throughput(path_v1, X_serve, n_requests)
    memory = _fleet_memory(path_v1, artifact_kb, X_serve, scale)
    overflow = _fleet_overflow(path_v1, X_serve)
    swap = _fleet_swap_under_load(path_v1, path_v2, X_serve)
    return {
        "artifact_kb": artifact_kb,
        "request_batch": FLEET_BATCH,
        "workers_curve": curve,
        "scaling": scaling,
        "memory": memory,
        "overflow": overflow,
        "swap_under_load": swap,
    }


def run_serving_bench(scale: float) -> dict:
    n_min = max(60, int(500 * scale))
    n_maj = max(600, int(50000 * scale))
    X, y = make_checkerboard(n_min, n_maj, random_state=0)
    X_serve, _ = make_checkerboard(n_min, n_maj, random_state=1000)
    base = DecisionTreeClassifier(max_depth=8, random_state=0)
    requests_per_batch = {1: max(50, int(200 * scale)), 64: 50, 512: 20}

    results = {}
    with tempfile.TemporaryDirectory() as tmp_dir:
        spe = SelfPacedEnsembleClassifier(
            estimator=base, n_estimators=N_ESTIMATORS, random_state=0
        ).fit(X, y)
        results["spe_packed"] = _bench_variant(
            "spe_packed", spe, X_serve, tmp_dir, requests_per_batch
        )
        spe_shared = SelfPacedEnsembleClassifier(
            estimator=base,
            n_estimators=N_ESTIMATORS,
            shared_binning=True,
            random_state=0,
        ).fit(X, y)
        results["spe_codetable"] = _bench_variant(
            "spe_codetable", spe_shared, X_serve, tmp_dir, requests_per_batch
        )
        fleet = run_fleet_bench(scale, tmp_dir)

    return {
        "benchmark": "serving",
        "dataset": {
            "name": "checkerboard",
            "n_minority": n_min,
            "n_majority": n_maj,
            "n_features": int(X.shape[1]),
            "imbalance_ratio": round(n_maj / n_min, 1),
        },
        "config": {
            "n_estimators": N_ESTIMATORS,
            "max_depth": 8,
            "batch_sizes": list(BATCH_SIZES),
        },
        "cpu_count": os.cpu_count(),
        "results": results,
        "fleet": fleet,
        "headline": {
            "cold_load_p50_ms": results["spe_codetable"]["cold_load_ms"]["p50_ms"],
            "batch1_p50_ms": results["spe_codetable"]["warm_batches"]["1"]["p50_ms"],
            "bit_identical": True,
            "fleet_rows_per_s_4w": fleet["workers_curve"][-1]["rows_per_s"],
            "fleet_speedup_at_4w": fleet["scaling"]["achieved_speedup_at_4"],
            "fleet_worker_delta_pct": fleet["memory"].get(
                "worst_delta_pct_of_artifact"
            ),
            "swap_zero_dropped": fleet["swap_under_load"]["n_dropped"] == 0,
        },
    }


def _render(report: dict) -> str:
    ds = report["dataset"]
    lines = [
        "Serving latency (checkerboard "
        f"|P|={ds['n_minority']}, |N|={ds['n_majority']}, IR={ds['imbalance_ratio']}, "
        f"{report['config']['n_estimators']} trees) — served == in-process, bit-identical",
        f"{'variant':<16} {'cold p50':>10} {'b=1 p50/p99':>16} {'b=64 p50/p99':>16} "
        f"{'b=512 p50/p99':>16}",
    ]
    for name, res in report["results"].items():
        batches = res["warm_batches"]
        lines.append(
            f"{name:<16} {res['cold_load_ms']['p50_ms']:>8.2f}ms "
            + " ".join(
                f"{batches[str(b)]['p50_ms']:>7.3f}/{batches[str(b)]['p99_ms']:<7.3f}"
                for b in (1, 64, 512)
            )
        )
    fleet = report["fleet"]
    curve = " ".join(
        f"{row['workers']}w={row['rows_per_s']:.0f}r/s({row['speedup_vs_1']}x)"
        for row in fleet["workers_curve"]
    )
    memory = fleet["memory"]
    delta = (
        f"{memory['worst_delta_kb']:.0f}KiB/worker "
        f"({memory['worst_delta_pct_of_artifact']}% of "
        f"{memory['artifact_kb']:.0f}KiB artifact)"
        if "worst_delta_kb" in memory
        else "n/a"
    )
    swap = fleet["swap_under_load"]
    lines += [
        f"fleet (mmap'd, {fleet['request_batch']}-row requests): {curve}"
        + ("" if fleet["scaling"]["asserted"] else "  [speedup floor not asserted: "
           + fleet["scaling"]["reason"] + "]"),
        f"fleet memory: {delta}; overflow: "
        f"{fleet['overflow']['n_rejected']} rejected at the door, "
        f"all {fleet['overflow']['n_admitted']} admitted served",
        f"fleet swap under load: {swap['n_requests']} requests, "
        f"{swap['n_dropped']} dropped, versions {swap['versions_served']}, "
        f"broadcast {swap['swap_broadcast_ms']}ms",
    ]
    return "\n".join(lines)


def run_and_save() -> dict:
    report = run_serving_bench(bench_scale())
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    save_result("serving", _render(report))
    print(f"wrote {ARTIFACT}")
    return report


def test_serving_bench(run_once):
    run_once(run_and_save)


if __name__ == "__main__":
    run_and_save()
