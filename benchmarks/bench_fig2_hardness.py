"""Fig 2 — hardness distributions: overlap x imbalance ratio x model.

The figure's message, as numbers: on the disjoint dataset the hard-bin
population stays flat as IR grows; on the overlapped dataset it explodes;
and KNN and AdaBoost disagree about which samples are hard (hardness is
model-specific).
"""

from conftest import bench_scale, save_result

from repro.experiments import fig2_hardness_distributions, render_series


def test_fig2_hardness_distributions(run_once):
    def run():
        return fig2_hardness_distributions(
            imbalance_ratios=(1.0, 10.0, 100.0),
            n_minority=int(200 * bench_scale()),
            k_bins=10,
            random_state=0,
        )

    data = run_once(run)
    blocks = []
    for ds_name, models in data.items():
        for model_name, by_ir in models.items():
            for ir, pops in by_ir.items():
                blocks.append(
                    render_series(
                        f"{ds_name} / {model_name} / IR={ir:g} "
                        "(population per hardness bin 0.0->1.0)",
                        [f"bin{i}" for i in range(len(pops))],
                        pops.astype(float),
                        digits=0,
                    )
                )
    # Headline statistic: growth of the hard-half population with IR.
    summary = []
    for ds_name, models in data.items():
        for model_name, by_ir in models.items():
            irs = sorted(by_ir)
            hard = [int(by_ir[ir][5:].sum()) for ir in irs]
            summary.append(
                f"{ds_name:>10} / {model_name:<8} hard-sample count by IR "
                f"{irs}: {hard}"
            )
    save_result(
        "fig2_hardness",
        "Fig 2: classification hardness distributions\n\n"
        + "\n".join(summary)
        + "\n\n"
        + "\n\n".join(blocks),
    )
