"""Streaming-training memory: peak RAM vs dataset rows, out-of-core vs in-memory.

Trains ``SelfPacedEnsembleClassifier`` (full in-memory arrays) against
``StreamingSelfPacedEnsembleClassifier`` (``mode="exact"`` and
``mode="reservoir"``) over an on-disk ``NPYSource`` while growing the
majority class, and records per-run peak memory two ways:

* ``tracemalloc`` peak — Python/NumPy allocations during ``fit`` only (the
  metric the sublinearity check uses; memory-mapped file pages never appear
  here because they are not allocations);
* ``ru_maxrss`` — the OS-level high-water mark, reported for context.

Each (mode, rows) cell runs in its own subprocess so high-water marks never
leak between configurations. The parent fits a log-log slope of peak
allocation vs rows per mode and asserts the streaming paths stay sublinear
(slope well under 1) while writing the machine-readable artefact
``BENCH_streaming.json`` at the repository root. A fixed probe set's
probability digest is also compared to double-check the exact streaming
mode reproduces the in-memory model bit-for-bit end to end.

Runs standalone (``python benchmarks/bench_streaming_memory.py``) or under
pytest. ``REPRO_SCALE`` scales the row grid.
"""

import argparse
import hashlib
import json
import os
import pathlib
import resource
import subprocess
import sys
import tempfile
import tracemalloc

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
ARTIFACT = REPO_ROOT / "BENCH_streaming.json"
SRC_DIR = REPO_ROOT / "src"

N_FEATURES = 32
N_MINORITY = 150
N_ESTIMATORS = 5
MODES = ("in_memory", "stream_exact", "stream_reservoir")
#: Streaming peak-allocation growth must stay well below proportional.
SUBLINEAR_SLOPE_LIMIT = 0.5


def _make_dataset(n_majority: int, directory: pathlib.Path) -> dict:
    """Write a wide checkerboard-based task as .npy files; returns paths."""
    from repro.datasets import make_checkerboard

    rng = np.random.RandomState(0)
    X_core, y = make_checkerboard(
        n_minority=N_MINORITY, n_majority=n_majority, random_state=0
    )
    # Pad to N_FEATURES columns so the feature matrix (the term streaming
    # removes from memory) dominates the footprint at bench scale.
    noise = rng.randn(len(y), N_FEATURES - X_core.shape[1])
    X = np.hstack([X_core, noise])
    x_path = directory / f"x_{n_majority}.npy"
    y_path = directory / f"y_{n_majority}.npy"
    np.save(x_path, X)
    np.save(y_path, y)
    return {"x": str(x_path), "y": str(y_path), "rows": int(len(y))}


def _probe_set() -> np.ndarray:
    from repro.datasets import make_checkerboard

    rng = np.random.RandomState(123)
    X_core, _ = make_checkerboard(
        n_minority=100, n_majority=400, random_state=123
    )
    return np.hstack([X_core, rng.randn(len(X_core), N_FEATURES - X_core.shape[1])])


def _build_model(mode: str):
    from repro.core import SelfPacedEnsembleClassifier
    from repro.streaming import StreamingSelfPacedEnsembleClassifier
    from repro.tree import DecisionTreeClassifier

    base = DecisionTreeClassifier(max_depth=8, random_state=0)
    common = dict(
        estimator=base, n_estimators=N_ESTIMATORS, k_bins=10, random_state=0
    )
    if mode == "in_memory":
        return SelfPacedEnsembleClassifier(**common)
    return StreamingSelfPacedEnsembleClassifier(
        mode="exact" if mode == "stream_exact" else "reservoir", **common
    )


def run_worker(config: dict) -> dict:
    """One (mode, dataset) measurement; prints a JSON result line."""
    from repro.streaming import NPYSource
    from repro.utils.timing import timed_call

    mode = config["mode"]
    model = _build_model(mode)
    tracemalloc.start()
    if mode == "in_memory":
        X = np.load(config["x"])
        y = np.load(config["y"])
        _, fit_seconds = timed_call(model.fit, X, y)
    else:
        # Fixed 4096-row blocks: small enough that every grid point streams
        # multiple blocks, so the per-block transient is a constant and the
        # slope isolates what actually grows with the dataset.
        source = NPYSource(config["x"], config["y"], block_size=4096)
        _, fit_seconds = timed_call(model.fit, source)
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    proba = model.predict_proba(_probe_set())
    return {
        "mode": mode,
        "rows": config["rows"],
        "fit_seconds": round(fit_seconds, 4),
        "tracemalloc_peak_mb": round(traced_peak / 2**20, 3),
        "ru_maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "proba_digest": hashlib.sha256(
            np.ascontiguousarray(proba).tobytes()
        ).hexdigest()[:16],
    }


def _spawn_worker(config: dict) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    out = subprocess.run(
        [sys.executable, str(pathlib.Path(__file__).resolve()), "--worker",
         json.dumps(config)],
        capture_output=True,
        text=True,
        env=env,
    )
    if out.returncode != 0:
        raise RuntimeError(
            f"bench worker {config['mode']}@{config['rows']} failed "
            f"(exit {out.returncode}):\n{out.stderr}"
        )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _loglog_slope(rows, peaks) -> float:
    """Least-squares slope of log(peak) vs log(rows) — 1.0 means linear."""
    lx, ly = np.log(np.asarray(rows, float)), np.log(np.asarray(peaks, float))
    return float(np.polyfit(lx, ly, 1)[0])


def run_streaming_memory(scale: float) -> dict:
    majority_grid = [max(2000, int(round(n * scale))) for n in (20000, 40000, 80000)]
    results = []
    with tempfile.TemporaryDirectory(prefix="bench_streaming_") as tmp:
        datasets = [
            _make_dataset(n_maj, pathlib.Path(tmp)) for n_maj in majority_grid
        ]
        for mode in MODES:
            for dataset in datasets:
                results.append(_spawn_worker({"mode": mode, **dataset}))

    by_mode = {
        mode: [r for r in results if r["mode"] == mode] for mode in MODES
    }
    scaling = {
        mode: round(
            _loglog_slope(
                [r["rows"] for r in rows],
                [r["tracemalloc_peak_mb"] for r in rows],
            ),
            3,
        )
        for mode, rows in by_mode.items()
    }
    for mode in ("stream_exact", "stream_reservoir"):
        assert scaling[mode] < SUBLINEAR_SLOPE_LIMIT, (
            f"{mode} peak memory slope {scaling[mode]} is not sublinear"
        )
    for exact, ref in zip(by_mode["stream_exact"], by_mode["in_memory"]):
        assert exact["proba_digest"] == ref["proba_digest"], (
            f"exact streaming diverged from in-memory at rows={ref['rows']}"
        )
    return {
        "benchmark": "streaming_memory",
        "dataset": {
            "name": "checkerboard+noise",
            "n_features": N_FEATURES,
            "n_minority": N_MINORITY,
            "majority_grid": majority_grid,
        },
        "n_estimators": N_ESTIMATORS,
        "memory_metric": "tracemalloc peak during fit (MB); ru_maxrss for context",
        "results": results,
        "peak_memory_slope_vs_rows": scaling,
        "sublinear_slope_limit": SUBLINEAR_SLOPE_LIMIT,
        "streaming_sublinear": True,
    }


def _render(report: dict) -> str:
    lines = [
        "Streaming training memory: peak alloc / RSS / wall-time vs rows "
        f"(|P|={report['dataset']['n_minority']}, "
        f"d={report['dataset']['n_features']}, "
        f"n_estimators={report['n_estimators']})",
        f"{'mode':<18} {'rows':>8} {'fit_s':>8} {'peak_alloc_mb':>14} "
        f"{'rss_mb':>8}",
    ]
    for row in report["results"]:
        lines.append(
            f"{row['mode']:<18} {row['rows']:>8} {row['fit_seconds']:>8.3f} "
            f"{row['tracemalloc_peak_mb']:>14.3f} {row['ru_maxrss_mb']:>8.1f}"
        )
    lines.append(
        "log-log slope of peak alloc vs rows (1.0 = linear): "
        + ", ".join(
            f"{m}={s}" for m, s in report["peak_memory_slope_vs_rows"].items()
        )
    )
    return "\n".join(lines)


def run_and_save() -> dict:
    from conftest import bench_scale, save_result

    report = run_streaming_memory(bench_scale())
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    save_result("streaming_memory", _render(report))
    print(f"wrote {ARTIFACT}")
    return report


def test_streaming_memory(run_once):
    run_once(run_and_save)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--worker", help="internal: JSON config for one cell")
    args = parser.parse_args()
    if args.worker:
        print(json.dumps(run_worker(json.loads(args.worker))))
    else:
        sys.path.insert(0, str(pathlib.Path(__file__).parent))
        run_and_save()


if __name__ == "__main__":
    main()
