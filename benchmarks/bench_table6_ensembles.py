"""Table VI — 6 ensemble methods x n in {10, 20, 50}, C4.5 base model.

Reports the four paper metrics plus the #Sample row showing the
two-orders-of-magnitude sample-efficiency gap between under-sampling
ensembles (SPE, Cascade, RUSBoost, UnderBagging) and the SMOTE-based ones.
"""

from conftest import bench_runs, bench_scale, save_result

from repro.datasets import load_dataset
from repro.experiments import default_c45, run_matrix, table6_methods
from repro.model_selection import train_valid_test_split


def test_table6_ensembles(run_once):
    ds = load_dataset("credit_fraud", scale=bench_scale() * 0.25, random_state=0)
    X_tr, _, X_te, y_tr, _, y_te = train_valid_test_split(ds.X, ds.y, random_state=0)

    def run():
        sections = []
        for n in (10, 20, 50):
            result = run_matrix(
                table6_methods(n_estimators=n),
                {"C4.5": default_c45()},
                X_tr,
                y_tr,
                X_te,
                y_te,
                n_runs=bench_runs(),
                seed=0,
            )
            sections.append(result.render(f"--- n = {n} base classifiers ---"))
        return "\n\n".join(sections)

    text = run_once(run)
    save_result(
        "table6_ensembles",
        "Table VI: 6 ensemble methods with different ensemble sizes "
        f"(C4.5 base, Credit Fraud surrogate n={ds.n_samples})\n\n" + text,
    )
