"""Table IV — 6 methods x matched classifiers on 5 real-world surrogates.

Matches the paper's pairing: KNN/DT/MLP on Credit Fraud, AdaBoost10 on the
two KDD tasks, GBDT10 on Record Linkage and Payment Simulation. Clean and
SMOTE are skipped on the four large categorical datasets, reproducing the
"- - -" cells (no usable distance metric / prohibitive cost).
"""

from conftest import bench_runs, bench_scale, save_result

from repro.datasets import load_dataset
from repro.experiments import (
    core_comparison_methods,
    run_matrix,
    table2_classifiers,
    table4_dataset_plan,
)
from repro.model_selection import train_valid_test_split

_DISTANCE_FREE = ("RandUnder", "Easy", "Cascade", "SPE")


def test_table4_realworld(run_once):
    plan = table4_dataset_plan()
    all_classifiers = table2_classifiers(mlp_epochs=15)

    def run():
        sections = []
        for ds_name, clf_names in plan.items():
            ds = load_dataset(ds_name, scale=bench_scale() * 0.2, random_state=0)
            X_tr, _, X_te, y_tr, _, y_te = train_valid_test_split(
                ds.X, ds.y, random_state=0
            )
            methods = core_comparison_methods(n_estimators=10)
            if ds_name != "credit_fraud":
                methods = [m for m in methods if m.name in _DISTANCE_FREE]
            result = run_matrix(
                methods,
                {name: all_classifiers[name] for name in clf_names},
                X_tr,
                y_tr,
                X_te,
                y_te,
                n_runs=bench_runs(),
                seed=0,
            )
            sections.append(result.render(f"--- {ds_name} ---"))
        return "\n\n".join(sections)

    text = run_once(run)
    save_result(
        "table4_realworld",
        "Table IV: generalized performance on 5 real-world surrogate datasets\n"
        "(Clean/SMOTE omitted on categorical/large tasks as in the paper)\n\n"
        + text,
    )
