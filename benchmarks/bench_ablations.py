"""Ablations beyond the paper (DESIGN.md section 7).

1. alpha schedule — the paper's tan(i*pi/2n) vs linear growth vs constant
   alpha (pure harmonise, alpha = 0, for every iteration) vs alpha = inf
   (uniform bins — no hardness information at all).
2. cold-start inclusion — vote with vs without the random-under-sampling
   cold-start model f0.
"""

import numpy as np
from conftest import bench_runs, bench_scale, save_result

from repro.core import SelfPacedEnsembleClassifier
from repro.datasets import load_dataset
from repro.experiments import render_table
from repro.experiments.formatting import mean_std
from repro.metrics import evaluate_classifier
from repro.model_selection import train_valid_test_split
from repro.tree import DecisionTreeClassifier

_FINITE_INF = 1e15


def _data():
    ds = load_dataset("credit_fraud", scale=bench_scale() * 0.2, random_state=0)
    return train_valid_test_split(ds.X, ds.y, random_state=0)


def _evaluate(variants, X_tr, y_tr, X_te, y_te):
    rows = []
    for name, kwargs in variants:
        scores = []
        for run in range(bench_runs()):
            spe = SelfPacedEnsembleClassifier(
                DecisionTreeClassifier(max_depth=8, random_state=run),
                n_estimators=10,
                random_state=run,
                **kwargs,
            ).fit(X_tr, y_tr)
            scores.append(evaluate_classifier(spe, X_te, y_te)["AUCPRC"])
        rows.append([name, mean_std(scores)])
    return rows


def test_ablation_alpha_schedule(run_once):
    X_tr, _, X_te, y_tr, _, y_te = _data()
    variants = [
        ("tan (paper)", {"alpha_schedule": "tan"}),
        ("linear", {"alpha_schedule": "linear"}),
        ("constant alpha=0 (pure harmonise)", {"alpha_schedule": lambda i, n: 0.0}),
        ("constant alpha=inf (uniform bins)", {"alpha_schedule": lambda i, n: _FINITE_INF}),
    ]
    rows = run_once(lambda: _evaluate(variants, X_tr, y_tr, X_te, y_te))
    save_result(
        "ablation_alpha_schedule",
        render_table(
            ["alpha schedule", "AUCPRC"],
            rows,
            title="Ablation: self-paced factor schedule (SPE10, Credit Fraud surrogate)",
        ),
    )


def test_ablation_cold_start(run_once):
    X_tr, _, X_te, y_tr, _, y_te = _data()
    variants = [
        ("cold start in vote (reference impl.)", {"include_cold_start": True}),
        ("cold start excluded (Algorithm 1 line 12)", {"include_cold_start": False}),
    ]
    rows = run_once(lambda: _evaluate(variants, X_tr, y_tr, X_te, y_te))
    save_result(
        "ablation_cold_start",
        render_table(
            ["variant", "AUCPRC"],
            rows,
            title="Ablation: cold-start model inclusion (SPE10, Credit Fraud surrogate)",
        ),
    )


def test_ablation_static_vs_selfpaced_hardness(run_once):
    """SPE's *dynamic* self-paced hardness vs the closest static prior art:
    InstanceHardnessThreshold (one-shot hardness filter) and a bagging of
    one-round self-paced under-samples at fixed alpha — isolating how much
    the iterative schedule itself contributes."""
    from repro.core import SelfPacedUnderSampler
    from repro.imbalance_ensemble import ResampleEnsembleClassifier

    X_tr, _, X_te, y_tr, _, y_te = _data()

    def evaluate(factory):
        scores = []
        for run in range(bench_runs()):
            model = factory(run)
            model.fit(X_tr, y_tr)
            scores.append(evaluate_classifier(model, X_te, y_te)["AUCPRC"])
        return mean_std(scores)

    def tree(run):
        return DecisionTreeClassifier(max_depth=8, random_state=run)

    rows = run_once(
        lambda: [
            [
                "SPE10 (dynamic self-paced hardness)",
                evaluate(
                    lambda run: SelfPacedEnsembleClassifier(
                        tree(run), n_estimators=10, random_state=run
                    )
                ),
            ],
            [
                "bagged one-round self-paced sampler (alpha=0.1)",
                evaluate(
                    lambda run: ResampleEnsembleClassifier(
                        sampler=SelfPacedUnderSampler(alpha=0.1),
                        estimator=tree(run),
                        n_estimators=10,
                        random_state=run,
                    )
                ),
            ],
            [
                "IHT + single tree (static hardness filter)",
                evaluate(
                    lambda run: _IHTPipeline(tree(run), run)
                ),
            ],
        ]
    )
    save_result(
        "ablation_static_vs_selfpaced",
        render_table(
            ["variant", "AUCPRC"],
            rows,
            title=(
                "Ablation: dynamic self-paced hardness vs static hardness "
                "filtering (Credit Fraud surrogate)"
            ),
        ),
    )


class _IHTPipeline:
    """fit/predict_proba wrapper: IHT resample then fit one classifier."""

    def __init__(self, estimator, seed):
        from repro.sampling import InstanceHardnessThreshold

        self._sampler = InstanceHardnessThreshold(random_state=seed)
        self._estimator = estimator

    def fit(self, X, y):
        X_res, y_res = self._sampler.fit_resample(X, y)
        self._estimator.fit(X_res, y_res)
        self.classes_ = self._estimator.classes_
        return self

    def predict_proba(self, X):
        return self._estimator.predict_proba(X)


def test_ablation_hardness_recompute(run_once):
    """Freeze hardness at iteration 1 vs recompute per iteration (paper:
    update hardness in each iteration, Algorithm 1 lines 4-5)."""
    X_tr, _, X_te, y_tr, _, y_te = _data()

    class FrozenHardness:
        """Callable returning the first iteration's hardness forever."""

        def __init__(self):
            self.frozen = None

        def __call__(self, y_true, proba):
            if self.frozen is None or len(self.frozen) != len(proba):
                self.frozen = np.abs(proba - y_true)
            return self.frozen

    variants = [
        ("recompute each iteration (paper)", {"hardness": "absolute"}),
        ("frozen after first iteration", {"hardness": FrozenHardness()}),
    ]
    rows = run_once(lambda: _evaluate(variants, X_tr, y_tr, X_te, y_te))
    save_result(
        "ablation_hardness_recompute",
        render_table(
            ["variant", "AUCPRC"],
            rows,
            title="Ablation: per-iteration hardness refresh (SPE10, Credit Fraud surrogate)",
        ),
    )
