#!/usr/bin/env python
"""repro-lint runner: the repo's static-analysis gate (``make lint``).

Runs every checker in :mod:`tools.analysis` over the given paths,
subtracts the checked-in baseline (``tools/analysis/baseline.json``),
and exits non-zero when any finding remains. The shipped baseline is
empty for ``src/repro`` — new violations there fail the build outright.

Usage::

    python tools/repro_lint.py [paths...]             # text findings
    python tools/repro_lint.py --format=json --out LINT_report.json
    python tools/repro_lint.py --list-rules
    python tools/repro_lint.py --write-baseline       # deliberate only:
                                                      # `make lint-fix-baseline`

Default paths: ``src tests benchmarks tools``. ``--skip registry``
drops the (slow, library-importing) registry audit for editor loops;
every other checker is pure-AST and needs nothing importable.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TOOLS_DIR)
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)

from analysis import (  # noqa: E402 — sys.path bootstrap above
    apply_baseline,
    default_checkers,
    known_rules,
    lint_paths,
    load_baseline,
    write_baseline,
    DEFAULT_BASELINE,
)

DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")
REPORT_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro_lint.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src tests benchmarks tools)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="stdout format; json prints the full report object",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the JSON report to FILE (any --format)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE,
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline (report everything)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate the baseline from current findings and exit 0 "
             "(deliberate act: `make lint-fix-baseline`)",
    )
    parser.add_argument(
        "--skip", metavar="CHECKER", action="append", default=[],
        help="drop a checker by name (repeatable); e.g. --skip registry",
    )
    parser.add_argument(
        "--only", metavar="CHECKER", action="append", default=[],
        help="run only these checkers (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every checker and rule, then exit",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    checkers = default_checkers()
    names = {c.name for c in checkers}
    for requested in list(args.only) + list(args.skip):
        if requested not in names:
            print(f"repro-lint: unknown checker {requested!r} "
                  f"(known: {', '.join(sorted(names))})", file=sys.stderr)
            return 2
    if args.only:
        checkers = [c for c in checkers if c.name in args.only]
    checkers = [c for c in checkers if c.name not in args.skip]

    if args.list_rules:
        for checker in checkers:
            print(f"{checker.name}:")
            for rule, description in sorted(checker.rules.items()):
                print(f"  {rule:26s} {description}")
        return 0

    paths = args.paths or [os.path.join(REPO_ROOT, p) for p in DEFAULT_PATHS]
    result = lint_paths(paths, checkers)

    if args.write_baseline:
        entries = write_baseline(result.findings, args.baseline)
        print(f"repro-lint: baseline regenerated with {sum(entries.values())} "
              f"finding(s) ({len(entries)} distinct) at {args.baseline}")
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    remaining, baseline_suppressed, stale = apply_baseline(result.findings, baseline)

    report = {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "paths": [os.path.relpath(p, REPO_ROOT) for p in paths],
        "checkers": result.checkers_run,
        "files_scanned": result.files_scanned,
        "rules": known_rules(checkers),
        "findings": [f.to_json() for f in remaining],
        "summary": {
            "total": len(remaining),
            "by_rule": {},
            "pragma_suppressed": result.pragma_suppressed,
            "baseline_suppressed": baseline_suppressed,
            "baseline_stale": stale,
        },
    }
    for finding in remaining:
        by_rule = report["summary"]["by_rule"]
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")

    if args.format == "json":
        if not args.out:
            json.dump(report, sys.stdout, indent=2)
            sys.stdout.write("\n")
        # Humans still get the findings on stderr when the gate fails.
        for finding in remaining:
            print(finding.render(), file=sys.stderr)
    else:
        for finding in remaining:
            print(finding.render())

    status = "FAILED" if remaining else "OK"
    summary = (
        f"repro-lint {status}: {len(remaining)} finding(s) over "
        f"{result.files_scanned} file(s) "
        f"[{len(result.checkers_run)} checkers; "
        f"{result.pragma_suppressed} pragma-suppressed, "
        f"{baseline_suppressed} baselined]"
    )
    print(summary, file=sys.stderr if args.format == "json" and not args.out else sys.stdout)
    if stale:
        print(
            f"repro-lint: note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer match anything "
            "— regenerate deliberately with `make lint-fix-baseline`",
            file=sys.stderr,
        )
    return 1 if remaining else 0


if __name__ == "__main__":
    sys.exit(main())
