"""Exception contract: failures are typed, never swallowed.

The serving plane's "every failure is typed, no future ever hangs"
guarantee (DESIGN.md fault-tolerance section) has a static counterpart:

``bare-except``
    ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` too and
    hides the type; name the exception.

``swallowed-exception``
    ``except Exception: pass`` (or ``...``/``continue``) drops a failure
    on the floor. Where that is genuinely the right call (a supervisor
    that must never die), the site must say so with a pragma.

``untyped-public-raise``
    A *public* callable in ``src/repro`` may only raise library
    exceptions (anything defined in ``repro/exceptions.py``) or a small
    stdlib allowlist of semantically precise types. ``RuntimeError`` and
    ``TimeoutError`` are deliberately **not** allowlisted: the serving
    API's callers dispatch on exception type, so those must be wrapped
    in (or subclassed by) a ``repro.exceptions`` type.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Optional, Set

from .core import Checker, Finding, REPO_ROOT, SourceFile

#: Precise stdlib types public APIs may raise directly.
STDLIB_RAISE_ALLOWLIST = {
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "NotImplementedError",
    "StopIteration",
    "FileNotFoundError",
    "FileExistsError",
    "IsADirectoryError",
    "PermissionError",
    "OSError",
    "ImportError",
    "OverflowError",
    "ZeroDivisionError",
    "DeprecationWarning",
    "UserWarning",
}

#: Fallback when repro/exceptions.py is not on disk (snippet linting in
#: a scratch tree). Kept loose on purpose — the real list is parsed.
_FALLBACK_LIBRARY_EXCEPTIONS = {"ReproError"}


def library_exception_names() -> Set[str]:
    """Class names defined in ``src/repro/exceptions.py`` (parsed, not
    imported — the linter must run without the library importable)."""
    path = os.path.join(REPO_ROOT, "src", "repro", "exceptions.py")
    if not os.path.exists(path):
        return set(_FALLBACK_LIBRARY_EXCEPTIONS)
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    return {
        node.name for node in tree.body if isinstance(node, ast.ClassDef)
    } | {"ReproError"}


def _is_swallow_body(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # a docstring/ellipsis is still silence
        return False
    return True


def _broad_handler_name(handler: ast.ExceptHandler) -> Optional[str]:
    """'Exception'/'BaseException' if the handler catches that broadly."""
    node = handler.type
    if node is None:
        return "bare"
    names = []
    if isinstance(node, ast.Tuple):
        names = [n.id for n in node.elts if isinstance(n, ast.Name)]
    elif isinstance(node, ast.Name):
        names = [node.id]
    for name in names:
        if name in ("Exception", "BaseException"):
            return name
    return None


class ExceptionContractChecker(Checker):
    """Bare excepts, silent swallows, untyped public raises."""

    name = "exceptions"
    rules = {
        "bare-except": (
            "except: catches KeyboardInterrupt/SystemExit and hides the "
            "failure type; catch a named exception"
        ),
        "swallowed-exception": (
            "a broad except whose body is only pass/continue silently "
            "drops the failure; handle, log, re-raise — or pragma why not"
        ),
        "untyped-public-raise": (
            "public src/repro callables must raise repro.exceptions "
            "types or precise stdlib types, never bare "
            "RuntimeError/TimeoutError/Exception"
        ),
    }

    def __init__(self) -> None:
        self.library_exceptions = library_exception_names()

    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from self._check_handlers(src)
        if src.path.startswith("src/"):
            yield from self._check_raises(src)

    def _check_handlers(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_handler_name(node)
            if broad == "bare":
                yield self.finding(
                    src, "bare-except", node.lineno,
                    "bare `except:` — name the exception type "
                    "(`except Exception:` at minimum)",
                )
            if broad is not None and _is_swallow_body(node.body):
                caught = "except:" if broad == "bare" else f"except {broad}:"
                yield self.finding(
                    src, "swallowed-exception", node.lineno,
                    f"`{caught} pass` silently swallows the failure",
                )

    def _check_raises(self, src: SourceFile) -> Iterator[Finding]:
        # Walk with a public/private visibility stack: a raise is "public"
        # when every enclosing function and class is public-named.
        findings: List[Finding] = []
        allow = self.library_exceptions | STDLIB_RAISE_ALLOWLIST

        def walk(node: ast.AST, public: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                public = public and not node.name.startswith("_")
            if isinstance(node, ast.Raise) and public and node.exc is not None:
                exc = node.exc
                name: Optional[str] = None
                if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                    # `raise exc` re-raising a bound variable is fine.
                    if name and name[:1].islower():
                        name = None
                if name is not None and name not in allow and name[0].isupper():
                    findings.append(
                        self.finding(
                            src, "untyped-public-raise", node.lineno,
                            f"public API raises {name}; use a typed "
                            "repro.exceptions class (or subclass it into "
                            "one) so callers can dispatch",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                walk(child, public)

        walk(src.tree, True)
        yield from findings
