"""Classifier-registry completeness as a repro-lint checker.

Wraps :func:`repro.registry.registry_problems` — every exported
classifier registered, every registered class honouring the estimator
contract, every named preset constructing and fitting — so ``make lint``
is a single runner invocation with one exit code. This is the one
checker that imports the library (and fits presets), so it is a
:class:`~tools.analysis.core.ProjectChecker` the runner can ``--skip``
for fast editor loops; the AST checkers never need an importable tree.
"""

from __future__ import annotations

import os
import sys
from typing import Iterator, Sequence

from .core import ClassIndex, Finding, ProjectChecker, REPO_ROOT, SourceFile

REGISTRY_PATH = "src/repro/registry/core.py"


class RegistryChecker(ProjectChecker):
    """Registry drift audit (imports the library; skippable)."""

    name = "registry"
    scope = ("src/",)
    rules = {
        "registry-drift": (
            "the classifier registry disagrees with the zoo: unregistered "
            "export, contract violation, or a preset that no longer fits"
        ),
    }

    def __init__(self, check_presets: bool = True):
        self.check_presets = check_presets

    def check_project(
        self, sources: Sequence[SourceFile], index: ClassIndex
    ) -> Iterator[Finding]:
        # Only audit when the scanned set actually contains the registry —
        # linting a scratch snippet tree must not import the library.
        if not any(src.path == REGISTRY_PATH for src in sources):
            return
        src_dir = os.path.join(REPO_ROOT, "src")
        if src_dir not in sys.path:
            sys.path.insert(0, src_dir)
        from repro.registry import registry_problems

        for problem in registry_problems(check_presets=self.check_presets):
            yield Finding("registry-drift", REGISTRY_PATH, 1, str(problem))
