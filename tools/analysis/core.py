"""Core of the repro-lint static-analysis framework.

Everything in :mod:`tools.analysis` is dependency-free (stdlib ``ast`` +
``tokenize`` only) so the lint gate runs on a bare Python, before any of
the library's own imports succeed.

The moving parts:

``Finding``
    One rule violation: rule id, severity, repo-relative ``path:line``,
    and a human message. Findings are value objects — the baseline and
    the pragma machinery both work on them.

``SourceFile``
    A parsed module: source text, AST, and the ``# repro-lint:`` pragma
    map extracted from its comment tokens.

``Checker`` / ``ProjectChecker``
    The extension points. A ``Checker`` sees one ``SourceFile`` at a
    time; a ``ProjectChecker`` additionally sees the whole scanned set
    at once (plus a :class:`ClassIndex`) for cross-module rules such as
    lock-acquisition-order cycles or registry drift.

``lint_paths`` / ``lint_text``
    The engine: discover files, parse once, run every applicable
    checker, apply pragmas, and return a :class:`LintResult`.

Baselines (:func:`load_baseline` / :func:`write_baseline` /
:func:`apply_baseline`) grandfather pre-existing findings: a baseline
entry is ``rule::path::message`` (line numbers are deliberately *not*
part of the key so unrelated edits don't invalidate it) with a count.
The shipped baseline lives at ``tools/analysis/baseline.json`` and is
empty — regenerating it is a deliberate act (``make lint-fix-baseline``),
never something the runner does implicitly.

Suppression pragmas:

``# repro-lint: disable=rule-a,rule-b``
    On the line a finding is reported at — suppresses those rules there.

``# repro-lint: disable-file=rule-a``
    On a comment-only line — suppresses the rules for the whole file.

Unknown rule names in a pragma are themselves reported (``bad-pragma``)
so suppressions cannot rot silently.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: Rules emitted by the engine itself (always considered "known").
ENGINE_RULES = {
    "syntax-error": "file does not parse; nothing else can be checked",
    "bad-pragma": "a repro-lint pragma names a rule that does not exist",
}

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\- ]+)"
)


def relpath(path: str) -> str:
    """Repo-relative POSIX path for stable finding/baseline keys."""
    ap = os.path.abspath(path)
    if ap.startswith(REPO_ROOT + os.sep):
        ap = ap[len(REPO_ROOT) + 1 :]
    return ap.replace(os.sep, "/")


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"

    @property
    def key(self) -> str:
        """Baseline identity: stable across line-number drift."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
        }


class SourceFile:
    """A parsed Python module plus its suppression pragmas."""

    def __init__(self, path: str, text: str):
        self.path = relpath(path)
        self.text = text
        self.parse_error: Optional[Finding] = None
        #: line number -> rules disabled on that line
        self.line_pragmas: Dict[int, Set[str]] = {}
        #: rules disabled for the whole file
        self.file_pragmas: Set[str] = set()
        #: (line, rule) pairs named by pragmas, for bad-pragma validation
        self.pragma_mentions: List[Tuple[int, str]] = []
        try:
            self.tree: Optional[ast.Module] = ast.parse(text)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = Finding(
                "syntax-error", self.path, exc.lineno or 1, exc.msg or "syntax error"
            )
            return
        self._scan_pragmas()

    @classmethod
    def from_path(cls, path: str) -> "SourceFile":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(path, handle.read())

    def _scan_pragmas(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except tokenize.TokenError:
            return
        code_lines: Set[int] = set()
        comments: List[Tuple[int, str]] = []
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                for line in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(line)
        for line, comment in comments:
            match = _PRAGMA_RE.search(comment)
            if not match:
                continue
            kind = match.group(1)
            rules = {r.strip() for r in match.group(2).split(",") if r.strip()}
            for rule in rules:
                self.pragma_mentions.append((line, rule))
            if kind == "disable-file" and line not in code_lines:
                self.file_pragmas |= rules
            else:
                self.line_pragmas.setdefault(line, set()).update(rules)

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_pragmas or "all" in self.file_pragmas:
            return True
        on_line = self.line_pragmas.get(finding.line, ())
        return finding.rule in on_line or "all" in on_line


class ClassIndex:
    """Project-wide class hierarchy: name -> (base names, method docs).

    Base resolution is by class *name* (last attribute segment for
    ``module.Class`` bases). That is deliberately approximate — good
    enough for the docstring-inheritance exemption and cheap enough to
    build on every run.
    """

    def __init__(self) -> None:
        self._classes: Dict[str, Tuple[List[str], Dict[str, bool]]] = {}

    def add_source(self, src: SourceFile) -> None:
        if src.tree is None:
            return
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases: List[str] = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            methods: Dict[str, bool] = {}
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[sub.name] = bool(ast.get_docstring(sub))
            self._classes.setdefault(node.name, (bases, methods))

    def method_documented_in_ancestors(
        self, class_name: str, method: str, _seen: Optional[Set[str]] = None
    ) -> bool:
        """True when any (transitive, name-resolved) base documents ``method``."""
        seen = _seen if _seen is not None else set()
        if class_name in seen or class_name not in self._classes:
            return False
        seen.add(class_name)
        for base in self._classes[class_name][0]:
            entry = self._classes.get(base)
            if entry is not None and entry[1].get(method):
                return True
            if self.method_documented_in_ancestors(base, method, seen):
                return True
        return False


class Checker:
    """Base class: one module at a time.

    Subclasses set ``name`` (checker id for ``--skip``/``--only``),
    ``rules`` (rule id -> one-line description; every Finding's rule must
    be listed here), and optionally ``scope`` — path prefixes the checker
    applies to (``None`` = every scanned file).
    """

    name: str = "base"
    rules: Dict[str, str] = {}
    scope: Optional[Tuple[str, ...]] = None

    def applies_to(self, src: SourceFile) -> bool:
        if self.scope is None:
            return True
        return any(src.path.startswith(prefix) for prefix in self.scope)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, src: SourceFile, rule: str, line: int, message: str) -> Finding:
        assert rule in self.rules, f"{self.name}: unregistered rule {rule!r}"
        return Finding(rule, src.path, line, message)


class ProjectChecker(Checker):
    """A checker that needs the whole scanned set at once."""

    def check(self, src: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, sources: Sequence[SourceFile], index: ClassIndex
    ) -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class LintResult:
    """Outcome of one engine run (before baseline subtraction)."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    pragma_suppressed: int = 0
    checkers_run: List[str] = field(default_factory=list)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Yield every ``.py`` file under ``paths`` (files or directories)."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if d not in ("__pycache__", ".git", ".pytest_cache")
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def known_rules(checkers: Sequence[Checker]) -> Dict[str, str]:
    """Rule id -> description over ``checkers`` plus the engine's own."""
    rules = dict(ENGINE_RULES)
    for checker in checkers:
        rules.update(checker.rules)
    return rules


def lint_sources(
    sources: Sequence[SourceFile], checkers: Sequence[Checker]
) -> LintResult:
    """Run ``checkers`` over parsed ``sources``; apply pragmas."""
    result = LintResult(files_scanned=len(sources))
    result.checkers_run = [c.name for c in checkers]
    # Pragma validation runs against EVERY registered rule, not just the
    # selected checkers' — `--only api` must not turn a valid
    # `disable=unseeded-rng` pragma into a bad-pragma finding.
    from . import default_checkers

    rules = known_rules(list(checkers) + default_checkers())

    index = ClassIndex()
    for src in sources:
        index.add_source(src)

    raw: List[Finding] = []
    for src in sources:
        if src.parse_error is not None:
            raw.append(src.parse_error)
            continue
        for line, rule in src.pragma_mentions:
            if rule != "all" and rule not in rules:
                raw.append(
                    Finding(
                        "bad-pragma",
                        src.path,
                        line,
                        f"pragma disables unknown rule {rule!r}",
                    )
                )
        for checker in checkers:
            if not checker.applies_to(src):
                continue
            raw.extend(checker.check(src))
    for checker in checkers:
        if isinstance(checker, ProjectChecker):
            scoped = [s for s in sources if checker.applies_to(s)]
            raw.extend(checker.check_project(scoped, index))

    by_path = {src.path: src for src in sources}
    for finding in raw:
        src = by_path.get(finding.path)
        if src is not None and src.suppressed(finding):
            result.pragma_suppressed += 1
        else:
            result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return result


def lint_paths(
    paths: Iterable[str], checkers: Optional[Sequence[Checker]] = None
) -> LintResult:
    """Discover, parse, and lint every Python file under ``paths``."""
    if checkers is None:
        from . import default_checkers

        checkers = default_checkers()
    sources = [SourceFile.from_path(p) for p in iter_python_files(paths)]
    return lint_sources(sources, checkers)


def lint_text(
    text: str,
    path: str = "src/repro/_snippet.py",
    checkers: Optional[Sequence[Checker]] = None,
) -> List[Finding]:
    """Lint a source string (tests, docs). Default ``path`` sits inside
    ``src/repro`` so path-scoped checkers apply."""
    if checkers is None:
        from . import default_checkers

        # Everything except the registry audit, which imports the library
        # and fits presets — far too heavy for a snippet.
        checkers = [c for c in default_checkers() if c.name != "registry"]
    return lint_sources([SourceFile(path, text)], checkers).findings


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #
BASELINE_VERSION = 1
DEFAULT_BASELINE = os.path.join(
    REPO_ROOT, "tools", "analysis", "baseline.json"
)


def load_baseline(path: str = DEFAULT_BASELINE) -> Dict[str, int]:
    """``finding.key -> grandfathered count``; missing file = empty."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has unsupported version {data.get('version')!r}"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"baseline {path} entries must be an object")
    return {str(k): int(v) for k, v in entries.items()}


def write_baseline(
    findings: Sequence[Finding], path: str = DEFAULT_BASELINE
) -> Dict[str, int]:
    """Persist ``findings`` as the new grandfathered set (sorted keys)."""
    entries: Dict[str, int] = {}
    for finding in findings:
        entries[finding.key] = entries.get(finding.key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered repro-lint findings. Regenerate ONLY via "
            "`make lint-fix-baseline`; keep empty for src/repro."
        ),
        "entries": dict(sorted(entries.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return entries


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int, List[str]]:
    """Subtract baselined findings.

    Returns ``(remaining, n_suppressed, stale_keys)`` where ``stale_keys``
    are baseline entries that no longer match anything (candidates for a
    deliberate regeneration — reported, never fatal).
    """
    budget = dict(baseline)
    remaining: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if budget.get(finding.key, 0) > 0:
            budget[finding.key] -= 1
            suppressed += 1
        else:
            remaining.append(finding)
    stale = sorted(key for key, count in budget.items() if count > 0)
    return remaining, suppressed, stale
