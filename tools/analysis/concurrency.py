"""Concurrency discipline: what may happen while a lock is held.

The serving plane's liveness argument (DESIGN.md, fault-tolerance
section) rests on three static properties:

* nothing that can block unboundedly runs while a ``threading`` lock is
  held (``lock-blocking-call``);
* every ``.acquire()`` is paired with a ``finally: release()`` — or,
  preferably, rewritten as a ``with`` block (``lock-acquire-discipline``);
* the cross-module lock-acquisition-order graph is acyclic, including
  the degenerate cycle of re-acquiring a non-reentrant ``Lock`` you
  already hold (``lock-order-cycle``).

Lock identification is lexical: a ``with`` context expression that is a
name or attribute containing ``lock`` / ``mutex`` (``self._lock``,
``swap_lock``, ...). Blocking calls are recognised structurally:
``time.sleep``, thread/process ``.join()``, un-timed ``Queue.put/get``
on queue-named receivers, ``subprocess`` invocations, ``os.fork``, and
``multiprocessing`` ``Process(...)`` spawns. Nested ``def``/``lambda``
bodies are excluded — they execute later, not under the lock.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import Checker, ClassIndex, Finding, ProjectChecker, SourceFile

_LOCKISH_RE = re.compile(r"lock|mutex", re.IGNORECASE)
_QUEUEISH_RE = re.compile(r"^(q|.*_q|.*queue.*)$", re.IGNORECASE)
_THREADISH_RE = re.compile(
    r"thread|proc|process|worker|collector|supervisor|child", re.IGNORECASE
)


def _name_of(node: ast.AST) -> str:
    """Trailing identifier of a Name/Attribute, else ''."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted rendering (``self._lock``, ``np.random.rand``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        parts.append(_dotted(node.func) + "()")
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def is_lockish(expr: ast.AST) -> bool:
    """Does this ``with`` context expression look like a lock?

    Accepts bare lock names/attributes and ``lock.acquire_timeout()``-style
    wrapper calls whose receiver is lockish.
    """
    if isinstance(expr, ast.Call):
        return is_lockish(expr.func.value) if isinstance(expr.func, ast.Attribute) else False
    name = _name_of(expr)
    return bool(name) and bool(_LOCKISH_RE.search(name)) and not name.startswith("unlock")


def _has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _blocking_reason(call: ast.Call) -> Optional[str]:
    """Why this call may block unboundedly, or ``None``."""
    func = call.func
    tail = _name_of(func)
    dotted = _dotted(func) if isinstance(func, (ast.Name, ast.Attribute)) else tail

    if tail == "sleep" and isinstance(func, ast.Attribute) and _name_of(func.value) == "time":
        return "time.sleep() while holding a lock stalls every waiter"
    if tail == "fork" and dotted.endswith("os.fork"):
        return "os.fork() while holding a lock duplicates the held lock state"
    if isinstance(func, ast.Attribute) and _name_of(func.value) == "subprocess":
        return "subprocess call under a lock blocks on an external process"
    if tail == "Process":
        return "process spawn under a lock serialises the fleet behind it"
    if tail == "join" and isinstance(func, ast.Attribute):
        receiver = func.value
        # Exclude str.join: a string-literal receiver, or a 1-arg call on a
        # non-thread-named receiver (thread joins take 0 args or a timeout).
        if isinstance(receiver, ast.Constant):
            return None
        # A bounded join (explicit timeout) is accepted, like a timed
        # queue put/get.
        if _has_kwarg(call, "timeout") or (
            len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, (int, float))
        ):
            return None
        looks_threadish = bool(_THREADISH_RE.search(_dotted(receiver)))
        if looks_threadish or (not call.args and not call.keywords):
            return (
                f"{_dotted(receiver)}.join() under a lock can deadlock with "
                "the joined task needing that lock"
            )
        return None
    if tail in ("put", "get") and isinstance(func, ast.Attribute):
        receiver_name = _name_of(func.value)
        if _QUEUEISH_RE.match(receiver_name):
            if _has_kwarg(call, "timeout"):
                return None
            for kw in call.keywords:
                if kw.arg == "block" and isinstance(kw.value, ast.Constant) and kw.value.value is False:
                    return None
            return (
                f"{_dotted(func)}() without a timeout under a lock blocks "
                "every other lock user on queue capacity"
            )
    return None


def _module_globals(src: SourceFile) -> Set[str]:
    """Names bound by assignments at module top level."""
    names: Set[str] = set()
    for node in src.tree.body if src.tree else ():
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _lock_label(
    src: SourceFile,
    expr: ast.AST,
    class_name: Optional[str],
    func_name: Optional[str],
    module_globals: Set[str] = frozenset(),
) -> str:
    """Stable identity for a lock expression, for the order graph.

    ``self._lock`` inside class ``C`` -> ``module.C._lock`` (shared by
    every method of the class); a module-global lock -> module-scoped
    (shared by every function that acquires it); any other local lock ->
    scoped to its function.
    """
    module = src.path.rsplit("/", 1)[-1].removesuffix(".py")
    dotted = _dotted(expr.func.value) if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute) else _dotted(expr)
    if dotted.startswith("self.") and class_name:
        return f"{module}.{class_name}.{dotted[5:]}"
    if "." not in dotted and dotted not in module_globals and func_name:
        return f"{module}.{func_name}.{dotted}"
    return f"{module}.{dotted}"


class ConcurrencyChecker(ProjectChecker):
    """Lock discipline: blocking-under-lock, acquire pairing, lock order."""

    name = "concurrency"
    rules = {
        "lock-blocking-call": (
            "a call that can block unboundedly (sleep, join, un-timed "
            "queue put/get, process spawn) runs while a lock is held"
        ),
        "lock-acquire-discipline": (
            ".acquire() outside a with-statement must sit in a try whose "
            "finally releases the same lock"
        ),
        "lock-order-cycle": (
            "the cross-module lock-acquisition-order graph has a cycle "
            "(or a non-reentrant lock is re-acquired while held)"
        ),
    }

    # ------------------------------------------------------------------ #
    # per-file rules
    # ------------------------------------------------------------------ #
    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from self._check_blocking(src)
        yield from self._check_acquire(src)

    def _check_blocking(self, src: SourceFile) -> Iterator[Finding]:
        findings: List[Finding] = []

        def walk(node: ast.AST, lock_depth: int) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # A nested def runs later, not under the current lock.
                for child in ast.iter_child_nodes(node):
                    walk(child, 0)
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                entered = sum(1 for item in node.items if is_lockish(item.context_expr))
                for item in node.items:
                    walk(item.context_expr, lock_depth)
                for child in node.body:
                    walk(child, lock_depth + entered)
                return
            if isinstance(node, ast.Call) and lock_depth > 0:
                reason = _blocking_reason(node)
                if reason is not None:
                    findings.append(
                        self.finding(src, "lock-blocking-call", node.lineno, reason)
                    )
            for child in ast.iter_child_nodes(node):
                walk(child, lock_depth)

        walk(src.tree, 0)
        yield from findings

    def _check_acquire(self, src: SourceFile) -> Iterator[Finding]:
        # Find every .acquire() call on a lockish receiver and test whether
        # it is covered by a try/finally releasing the same receiver —
        # either enclosing it or immediately following it.
        parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(src.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and is_lockish(node.func.value)
            ):
                continue
            receiver = _dotted(node.func.value)
            if self._release_guarded(node, receiver, parents):
                continue
            yield self.finding(
                src,
                "lock-acquire-discipline",
                node.lineno,
                f"{receiver}.acquire() without a with-block or a "
                f"try/finally releasing {receiver} leaks the lock on error",
            )

    @staticmethod
    def _release_guarded(
        node: ast.AST, receiver: str, parents: Dict[ast.AST, ast.AST]
    ) -> bool:
        """Is ``node`` adjacent to a Try whose finally releases ``receiver``?

        Covers both shapes: ``acquire()`` as the statement *before* the
        try, and ``acquire()`` inside the try body.
        """

        def finally_releases(try_node: ast.Try) -> bool:
            for stmt in try_node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "release"
                        and _dotted(sub.func.value) == receiver
                    ):
                        return True
            return False

        current: Optional[ast.AST] = node
        while current is not None:
            parent = parents.get(current)
            if isinstance(parent, ast.Try) and current in parent.body and finally_releases(parent):
                return True
            if parent is not None and hasattr(parent, "body") and isinstance(getattr(parent, "body"), list):
                body = getattr(parent, "body")
                if current in body:
                    idx = body.index(current)
                    nxt = body[idx + 1] if idx + 1 < len(body) else None
                    if isinstance(nxt, ast.Try) and finally_releases(nxt):
                        return True
            current = parent
        return False

    # ------------------------------------------------------------------ #
    # project rule: lock-acquisition-order graph
    # ------------------------------------------------------------------ #
    def check_project(
        self, sources: Sequence[SourceFile], index: ClassIndex
    ) -> Iterator[Finding]:
        edges: Dict[str, Set[str]] = {}
        edge_sites: Dict[Tuple[str, str], Tuple[str, int]] = {}
        reentrant: Set[str] = set()

        for src in sources:
            if src.tree is None:
                continue
            module_globals = _module_globals(src)
            # Locks constructed as RLock() are re-entrant: a self-edge on
            # them is legal.
            for node in ast.walk(src.tree):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and _name_of(node.value.func) == "RLock"
                ):
                    for target in node.targets:
                        class_name = self._enclosing_class(src, node)
                        reentrant.add(
                            _lock_label(src, target, class_name, None, module_globals)
                        )
            self._collect_edges(src, edges, edge_sites, module_globals)

        for finding in self._cycles(edges, edge_sites, reentrant):
            yield finding

    @staticmethod
    def _enclosing_class(src: SourceFile, node: ast.AST) -> Optional[str]:
        for cls in ast.walk(src.tree):
            if isinstance(cls, ast.ClassDef):
                for sub in ast.walk(cls):
                    if sub is node:
                        return cls.name
        return None

    def _collect_edges(
        self,
        src: SourceFile,
        edges: Dict[str, Set[str]],
        edge_sites: Dict[Tuple[str, str], Tuple[str, int]],
        module_globals: Set[str] = frozenset(),
    ) -> None:
        def walk(
            node: ast.AST,
            held: List[str],
            class_name: Optional[str],
            func_name: Optional[str],
        ) -> None:
            if isinstance(node, ast.ClassDef):
                for child in ast.iter_child_nodes(node):
                    walk(child, held, node.name, func_name)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Conservative: a nested def may run on another thread, so
                # locks held lexically outside it are not held inside.
                for child in ast.iter_child_nodes(node):
                    walk(child, [], class_name, node.name)
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                entered: List[str] = []
                for item in node.items:
                    if is_lockish(item.context_expr):
                        label = _lock_label(
                            src, item.context_expr, class_name, func_name,
                            module_globals,
                        )
                        for holder in held + entered:
                            edges.setdefault(holder, set()).add(label)
                            edge_sites.setdefault(
                                (holder, label), (src.path, node.lineno)
                            )
                        entered.append(label)
                for child in node.body:
                    walk(child, held + entered, class_name, func_name)
                return
            for child in ast.iter_child_nodes(node):
                walk(child, held, class_name, func_name)

        walk(src.tree, [], None, None)

    def _cycles(
        self,
        edges: Dict[str, Set[str]],
        edge_sites: Dict[Tuple[str, str], Tuple[str, int]],
        reentrant: Set[str],
    ) -> Iterator[Finding]:
        reported: Set[Tuple[str, ...]] = set()

        # Self-edges: re-acquiring a held non-reentrant lock.
        for lock, targets in sorted(edges.items()):
            if lock in targets and lock not in reentrant:
                path, line = edge_sites[(lock, lock)]
                yield Finding(
                    "lock-order-cycle",
                    path,
                    line,
                    f"lock {lock} is re-acquired while already held "
                    "(non-reentrant Lock: guaranteed deadlock)",
                )

        # Proper cycles via DFS with an explicit stack.
        state: Dict[str, int] = {}
        stack: List[str] = []

        def visit(lock: str) -> Iterator[Tuple[str, ...]]:
            state[lock] = 1
            stack.append(lock)
            for target in sorted(edges.get(lock, ())):
                if target == lock:
                    continue
                if state.get(target, 0) == 1:
                    cycle = tuple(stack[stack.index(target) :] + [target])
                    canon = tuple(sorted(set(cycle)))
                    if canon not in reported:
                        reported.add(canon)
                        yield cycle
                elif state.get(target, 0) == 0:
                    yield from visit(target)
            stack.pop()
            state[lock] = 2

        for lock in sorted(edges):
            if state.get(lock, 0) == 0:
                for cycle in visit(lock):
                    first_edge = (cycle[0], cycle[1])
                    path, line = edge_sites.get(first_edge, ("", 1))
                    yield Finding(
                        "lock-order-cycle",
                        path,
                        line,
                        "lock acquisition order cycle: " + " -> ".join(cycle),
                    )
