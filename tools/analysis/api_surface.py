"""API surface hygiene for ``src/``: honest ``__all__``, documented
public callables.

``all-undefined-name``
    Every name listed in ``__all__`` is actually bound in the module
    (def/class/assignment/import, anywhere including conditional
    branches).

``missing-reexport``
    In a package ``__init__.py`` that declares ``__all__``, a public
    name imported from a submodule and *used nowhere else in the module*
    exists only to be re-exported — so it must appear in ``__all__``,
    or the import is dead.

``missing-docstring``
    Public modules' public callables carry docstrings: module-level
    functions and classes, and public methods/properties of public
    classes. A method that overrides one documented on any ancestor
    (resolved through the project-wide :class:`~tools.analysis.core.ClassIndex`)
    inherits that contract and is exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set

from .core import ClassIndex, Finding, ProjectChecker, SourceFile


def _module_all(tree: ast.Module) -> "tuple[List[str], int] | None":
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            try:
                value = ast.literal_eval(node.value)
            except (ValueError, SyntaxError):
                return None
            if isinstance(value, (list, tuple)):
                return [str(v) for v in value], node.lineno
    return None


def _bound_names(tree: ast.Module) -> Set[str]:
    bound: Set[str] = set()

    def scan(stmts: Sequence[ast.stmt]) -> None:
        for node in stmts:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            bound.add(sub.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    bound.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.If):
                scan(node.body)
                scan(node.orelse)
            elif isinstance(node, ast.Try):
                scan(node.body)
                for handler in node.handlers:
                    scan(handler.body)
                scan(node.orelse)
                scan(node.finalbody)
            elif isinstance(node, (ast.For, ast.While, ast.With)):
                scan(node.body)

    scan(tree.body)
    return bound


class ApiSurfaceChecker(ProjectChecker):
    """``__all__`` honesty and public docstrings (scoped to ``src/``)."""

    name = "api"
    scope = ("src/",)
    rules = {
        "all-undefined-name": "__all__ lists a name the module never binds",
        "missing-reexport": (
            "a public name imported only for re-export is missing from "
            "__all__ (or the import is dead)"
        ),
        "missing-docstring": (
            "public callables need docstrings; overriding a documented "
            "ancestor method inherits its contract and is exempt"
        ),
    }

    def check(self, src: SourceFile) -> Iterator[Finding]:
        declared = _module_all(src.tree)
        if declared is not None:
            names, line = declared
            bound = _bound_names(src.tree)
            for name in names:
                if name not in bound:
                    yield self.finding(
                        src, "all-undefined-name", line,
                        f"__all__ lists {name!r} but the module never "
                        "defines or imports it",
                    )
        if src.path.endswith("/__init__.py") and declared is not None:
            yield from self._check_reexports(src, declared[0])

    def _check_reexports(self, src: SourceFile, all_names: List[str]) -> Iterator[Finding]:
        imported: Dict[str, int] = {}
        for node in src.tree.body:
            if isinstance(node, ast.ImportFrom) and node.level > 0:
                for alias in node.names:
                    name = alias.asname or alias.name
                    if not name.startswith("_") and name != "*":
                        imported[name] = node.lineno
        if not imported:
            return
        used: Set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
        for name, line in sorted(imported.items(), key=lambda kv: kv[1]):
            if name not in all_names and name not in used:
                yield self.finding(
                    src, "missing-reexport", line,
                    f"{name!r} is imported from a submodule but neither "
                    "used nor re-exported via __all__",
                )

    # ------------------------------------------------------------------ #
    # docstrings need the project-wide class index
    # ------------------------------------------------------------------ #
    def check_project(
        self, sources: Sequence[SourceFile], index: ClassIndex
    ) -> Iterator[Finding]:
        for src in sources:
            if src.tree is None or not self.applies_to(src):
                continue
            if any(part.startswith("_") for part in src.path.split("/")[:-1]):
                continue
            module_private = src.path.rsplit("/", 1)[-1].startswith("_") and not src.path.endswith("__init__.py")
            if module_private:
                continue
            yield from self._check_docstrings(src, index)

    def _check_docstrings(self, src: SourceFile, index: ClassIndex) -> Iterator[Finding]:
        for node in src.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    kind = "class" if isinstance(node, ast.ClassDef) else "function"
                    yield self.finding(
                        src, "missing-docstring", node.lineno,
                        f"public {kind} {node.name} has no docstring",
                    )
                if isinstance(node, ast.ClassDef):
                    for sub in node.body:
                        if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            continue
                        if sub.name.startswith("_") or ast.get_docstring(sub):
                            continue
                        if index.method_documented_in_ancestors(node.name, sub.name):
                            continue
                        yield self.finding(
                            src, "missing-docstring", sub.lineno,
                            f"public method {node.name}.{sub.name} has no "
                            "docstring (and no documented ancestor to "
                            "inherit one from)",
                        )
