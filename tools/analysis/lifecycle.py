"""Resource lifecycle: every thread and process has a shutdown story.

``unjoined-thread``
    A ``threading.Thread(...)`` that is neither ``daemon=True`` nor
    ``.join()``-ed anywhere in its owning scope outlives its creator
    silently and blocks interpreter exit.

``unreaped-process``
    A class that spawns ``multiprocessing`` ``Process`` objects must
    have a teardown method (``close``/``shutdown``/``stop``/``__exit__``/
    ``__del__``) from which a ``.terminate()`` or ``.join()`` on them is
    reachable (directly or through one ``self._helper()`` hop) —
    otherwise worker processes leak past the object's lifetime.

Both rules are ownership heuristics over names: a thread assigned to
``self._collector`` is searched for ``self._collector.join(...)`` over
the whole class; a local is searched over its enclosing function.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import Checker, Finding, SourceFile

_TEARDOWN_METHODS = ("close", "shutdown", "stop", "terminate", "__exit__", "__del__")


def _is_thread_ctor(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "Thread"
    if isinstance(func, ast.Attribute):
        return func.attr == "Thread"
    return False


def _is_process_ctor(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "Process"
    if isinstance(func, ast.Attribute):
        return func.attr == "Process"
    return False


def _kwarg_is_true(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name:
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


def _target_repr(node: ast.AST) -> Optional[str]:
    """``self._x`` / ``name`` assignment target as a string, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _receiver_repr(node: ast.AST) -> Optional[str]:
    return _target_repr(node)


class ResourceLifecycleChecker(Checker):
    """Threads daemonized-or-joined; processes reaped from teardown."""

    name = "lifecycle"
    rules = {
        "unjoined-thread": (
            "a Thread that is neither daemon=True nor joined in its "
            "owning scope leaks and blocks interpreter exit"
        ),
        "unreaped-process": (
            "a class spawning multiprocessing Processes needs a teardown "
            "method (close/shutdown/stop/__exit__) that joins or "
            "terminates them"
        ),
    }

    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from self._check_threads(src)
        yield from self._check_processes(src)

    # ------------------------------------------------------------------ #
    # threads
    # ------------------------------------------------------------------ #
    def _check_threads(self, src: SourceFile) -> Iterator[Finding]:
        # scope = enclosing ClassDef for self.X targets, else enclosing
        # FunctionDef, else the module.
        scopes: List[Tuple[ast.AST, ast.Call, Optional[str]]] = []

        def owner_scope(stack: List[ast.AST], target: Optional[str]) -> ast.AST:
            if target is not None and target.startswith("self."):
                for node in reversed(stack):
                    if isinstance(node, ast.ClassDef):
                        return node
            for node in reversed(stack):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    return node
            return src.tree

        def walk(node: ast.AST, stack: List[ast.AST]) -> None:
            if isinstance(node, ast.Call) and _is_thread_ctor(node):
                if not _kwarg_is_true(node, "daemon"):
                    target = None
                    collection = False
                    parent = stack[-1] if stack else None
                    if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                        target = _target_repr(parent.targets[0])
                    elif (
                        # threads = [Thread(...) for _ in range(n)]
                        isinstance(parent, (ast.ListComp, ast.SetComp, ast.GeneratorExp))
                        and len(stack) >= 2
                        and isinstance(stack[-2], ast.Assign)
                        and len(stack[-2].targets) == 1
                    ):
                        target = _target_repr(stack[-2].targets[0])
                        collection = True
                    elif (
                        # pool.append(Thread(...))
                        isinstance(parent, ast.Call)
                        and isinstance(parent.func, ast.Attribute)
                        and parent.func.attr == "append"
                    ):
                        target = _target_repr(parent.func.value)
                        collection = True
                    scopes.append(
                        (owner_scope(stack, target), node, target, collection)
                    )
            stack.append(node)
            for child in ast.iter_child_nodes(node):
                walk(child, stack)
            stack.pop()

        walk(src.tree, [])

        for scope, ctor, target, collection in scopes:
            if target is None:
                yield self.finding(
                    src, "unjoined-thread", ctor.lineno,
                    "Thread is neither daemon=True nor assigned anywhere "
                    "it could be joined",
                )
                continue
            joined = (
                self._collection_joined_in_scope(scope, target)
                if collection
                else self._joined_in_scope(scope, target)
            )
            if not joined:
                yield self.finding(
                    src, "unjoined-thread", ctor.lineno,
                    f"Thread assigned to {target} is neither daemon=True "
                    f"nor joined in its owning scope",
                )

    @staticmethod
    def _joined_in_scope(scope: ast.AST, target: str) -> bool:
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and _receiver_repr(node.func.value) == target
            ):
                return True
            # joined through an intermediate local: `t = self._x; t.join()`
            # is common after dropping a lock — accept any bare `.join()`
            # on a local that was assigned from the target.
            if (
                isinstance(node, ast.Assign)
                and _target_repr(node.value) == target
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                alias = node.targets[0].id
                for sub in ast.walk(scope):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "join"
                        and _receiver_repr(sub.func.value) == alias
                    ):
                        return True
        return False

    @staticmethod
    def _collection_joined_in_scope(scope: ast.AST, target: str) -> bool:
        """``for t in <target>: t.join()`` anywhere in the owning scope."""
        for node in ast.walk(scope):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if _receiver_repr(node.iter) != target or not isinstance(
                node.target, ast.Name
            ):
                continue
            loop_var = node.target.id
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "join"
                    and _receiver_repr(sub.func.value) == loop_var
                ):
                    return True
        return False

    # ------------------------------------------------------------------ #
    # processes
    # ------------------------------------------------------------------ #
    def _check_processes(self, src: SourceFile) -> Iterator[Finding]:
        for node in src.tree.body if src.tree else ():
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    def _check_class(self, src: SourceFile, cls: ast.ClassDef) -> Iterator[Finding]:
        spawn_sites: List[ast.Call] = []
        for node in ast.walk(cls):
            if isinstance(node, ast.Call) and _is_process_ctor(node):
                spawn_sites.append(node)
        if not spawn_sites:
            return

        methods: Dict[str, ast.AST] = {
            sub.name: sub
            for sub in cls.body
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        def reaps(method: ast.AST, hops: int) -> bool:
            for node in ast.walk(method):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in ("terminate", "join", "kill"):
                        return True
                    # one self-call hop: close() -> self._teardown_fleet()
                    if (
                        hops > 0
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and node.func.attr in methods
                    ):
                        if reaps(methods[node.func.attr], hops - 1):
                            return True
            return False

        for name in _TEARDOWN_METHODS:
            if name in methods and reaps(methods[name], hops=1):
                return
        yield self.finding(
            src, "unreaped-process", spawn_sites[0].lineno,
            f"class {cls.name} spawns Process objects but no teardown "
            f"method ({'/'.join(_TEARDOWN_METHODS)}) joins or terminates "
            "them",
        )
