"""Determinism contract: every random draw is seeded, every deadline is
monotonic.

The paper's self-paced sampling is deterministic given a seed, and the
repo's bit-identity guarantees (across backends, across save/load,
across the serving fleet) only hold because no code path touches global
RNG state. Statically that means:

``unseeded-rng``
    No calls on the *global* ``numpy.random`` module (``np.random.rand``
    et al.) or the stdlib ``random`` module; no ``RandomState()`` /
    ``default_rng()`` / ``random.Random()`` constructed without a seed.
    Seeded constructors (``RandomState(7)``, ``default_rng(seed)``) and
    :func:`repro.utils.validation.check_random_state` are the approved
    sources of randomness.

``wall-clock-deadline``
    No ``time.time()``. Deadlines, timeouts, and durations must use
    ``time.monotonic()`` / ``time.perf_counter()`` — the serving plane's
    deadline contract breaks under NTP steps otherwise. Genuine
    wall-clock timestamps (manifest mtimes, log lines) are rare and must
    carry an explicit pragma justifying themselves.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from .core import Checker, Finding, SourceFile

#: numpy.random attributes that are legitimate *factories/types*, not draws.
_NP_RANDOM_OK = {
    "RandomState",
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "MT19937",
}

#: stdlib random-module callables that consume or mutate global state.
_STDLIB_RANDOM_FUNCS = {
    "random",
    "uniform",
    "randint",
    "randrange",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "seed",
    "gauss",
    "normalvariate",
    "betavariate",
    "expovariate",
    "triangular",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "lognormvariate",
    "getrandbits",
    "randbytes",
}


def _attr_chain(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


class DeterminismChecker(Checker):
    """Unseeded RNG and wall-clock misuse."""

    name = "determinism"
    rules = {
        "unseeded-rng": (
            "global/unseeded RNG use breaks the seeded bit-identity "
            "contract; thread a seeded RandomState/Generator through "
            "instead"
        ),
        "wall-clock-deadline": (
            "time.time() is not monotonic; deadlines and durations must "
            "use time.monotonic()/perf_counter() (pragma genuine "
            "wall-clock timestamps)"
        ),
    }

    def check(self, src: SourceFile) -> Iterator[Finding]:
        imports_stdlib_random = False
        numpy_aliases: Set[str] = set()
        from_numpy_random: Set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        imports_stdlib_random = True
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("numpy.random", "numpy.random.mtrand"):
                    for alias in node.names:
                        from_numpy_random.add(alias.asname or alias.name)

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain:
                continue
            yield from self._check_call(
                src, node, chain, imports_stdlib_random, numpy_aliases,
                from_numpy_random,
            )

    def _check_call(
        self,
        src: SourceFile,
        node: ast.Call,
        chain: List[str],
        imports_stdlib_random: bool,
        numpy_aliases: Set[str],
        from_numpy_random: Set[str],
    ) -> Iterator[Finding]:
        dotted = ".".join(chain)
        unseeded = not node.args and not node.keywords

        # numpy global module: np.random.<draw>(...) / numpy.random...
        if len(chain) >= 3 and chain[0] in numpy_aliases and chain[1] == "random":
            func = chain[2]
            if func in _NP_RANDOM_OK:
                if func in ("RandomState", "default_rng") and unseeded and len(chain) == 3:
                    yield self.finding(
                        src, "unseeded-rng", node.lineno,
                        f"{dotted}() without a seed is nondeterministic",
                    )
            else:
                yield self.finding(
                    src, "unseeded-rng", node.lineno,
                    f"{dotted}() draws from numpy's *global* RNG — pass a "
                    "seeded RandomState/Generator through instead",
                )
            return

        # from numpy.random import RandomState / default_rng
        if len(chain) == 1 and chain[0] in from_numpy_random:
            if chain[0] in ("RandomState", "default_rng") and unseeded:
                yield self.finding(
                    src, "unseeded-rng", node.lineno,
                    f"{dotted}() without a seed is nondeterministic",
                )
            return

        # stdlib random module
        if imports_stdlib_random and len(chain) == 2 and chain[0] == "random":
            if chain[1] in _STDLIB_RANDOM_FUNCS:
                yield self.finding(
                    src, "unseeded-rng", node.lineno,
                    f"{dotted}() uses the stdlib global RNG — use a seeded "
                    "random.Random(seed) (or better, numpy) instead",
                )
            elif chain[1] == "Random" and unseeded:
                yield self.finding(
                    src, "unseeded-rng", node.lineno,
                    "random.Random() without a seed is nondeterministic",
                )
            return

        # wall clock
        if len(chain) == 2 and chain[0] == "time" and chain[1] == "time":
            yield self.finding(
                src, "wall-clock-deadline", node.lineno,
                "time.time() jumps with the wall clock; use "
                "time.monotonic() (deadlines) or perf_counter() (timings)",
            )
