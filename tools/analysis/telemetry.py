"""Telemetry contract: latency is measured by the telemetry plane only.

The serving/monitoring/lifecycle stack reports every duration through
``repro.telemetry`` (``timer`` / ``stopwatch`` / ``Stopwatch``), so each
latency lands in a histogram, respects the sampling switch, and keeps its
clock-handling bugs in one audited module. Hand-rolled elapsed-time math
scattered through instrumented modules would silently bypass all three.

``raw-latency-timing``
    In instrumented modules (the serving plane and the fit path), no
    ``time.perf_counter()`` calls, and no ``time.monotonic()`` as the
    *left* operand of a subtraction — the elapsed-time idiom
    ``time.monotonic() - start``. Deadline arithmetic keeps its shape:
    ``time.monotonic() + budget`` (computing an expiry) and
    ``expires_at - time.monotonic()`` (remaining budget, monotonic on
    the right) stay legal, as do plain comparisons against an expiry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .core import Checker, Finding, SourceFile

#: Modules that must route latency through repro.telemetry. The telemetry
#: package itself (and utils/experiments, which predate the plane and sit
#: outside it) are deliberately not listed.
_INSTRUMENTED = (
    "src/repro/serving/",
    "src/repro/monitoring/",
    "src/repro/lifecycle/",
    "src/repro/core/",
    "src/repro/tree/",
    "src/repro/parallel/",
    "src/repro/fastpath/",
    "src/repro/chaos/",
    "src/repro/streaming/",
)


def _is_clock_call(node: ast.AST, func_name: str) -> bool:
    """``time.<func_name>()`` with no arguments."""
    return (
        isinstance(node, ast.Call)
        and not node.args
        and not node.keywords
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == func_name
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "time"
    )


class TelemetryChecker(Checker):
    """Raw latency math in modules the telemetry plane instruments."""

    name = "telemetry"
    rules = {
        "raw-latency-timing": (
            "instrumented modules must measure latency through "
            "repro.telemetry (timer/stopwatch), not raw clock math — "
            "durations belong in histograms, under the sampling switch"
        ),
    }
    scope = _INSTRUMENTED

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if _is_clock_call(node, "perf_counter"):
                yield self.finding(
                    src, "raw-latency-timing", node.lineno,
                    "time.perf_counter() here starts a hand-rolled latency "
                    "measurement; use telemetry.timer()/stopwatch() so the "
                    "duration lands in a histogram",
                )
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Sub)
                and _is_clock_call(node.left, "monotonic")
            ):
                # monotonic on the LEFT of a subtraction is elapsed-time
                # math (now - start); monotonic on the RIGHT is remaining
                # deadline budget (expires_at - now), which stays legal.
                yield self.finding(
                    src, "raw-latency-timing", node.lineno,
                    "`time.monotonic() - ...` is hand-rolled elapsed-time "
                    "math; use telemetry.timer()/stopwatch() (deadline "
                    "remainders `expires_at - time.monotonic()` stay legal)",
                )
