"""repro-lint: AST-based static analysis enforcing this codebase's
concurrency, determinism, exception, resource-lifecycle, and API-surface
contracts.

Dependency-free (stdlib only, except the registry audit which imports
the library itself). Entry points:

* ``python tools/repro_lint.py src tests benchmarks tools`` — the CLI.
* :func:`lint_paths` / :func:`lint_text` — the same engine from Python
  (used by the test suite and the README example).

Add a checker by subclassing :class:`Checker` (one module at a time) or
:class:`ProjectChecker` (whole scanned set at once), declaring its
``rules`` mapping, and appending it to :func:`default_checkers`. See
DESIGN.md, "Static analysis: repro-lint".
"""

from .core import (
    Checker,
    ClassIndex,
    Finding,
    LintResult,
    ProjectChecker,
    SourceFile,
    apply_baseline,
    iter_python_files,
    known_rules,
    lint_paths,
    lint_sources,
    lint_text,
    load_baseline,
    write_baseline,
    DEFAULT_BASELINE,
)
from .api_surface import ApiSurfaceChecker
from .concurrency import ConcurrencyChecker
from .contracts import ExceptionContractChecker, STDLIB_RAISE_ALLOWLIST
from .determinism import DeterminismChecker
from .lifecycle import ResourceLifecycleChecker
from .registry_audit import RegistryChecker
from .telemetry import TelemetryChecker

__all__ = [
    "ApiSurfaceChecker",
    "Checker",
    "ClassIndex",
    "ConcurrencyChecker",
    "DEFAULT_BASELINE",
    "DeterminismChecker",
    "ExceptionContractChecker",
    "Finding",
    "LintResult",
    "ProjectChecker",
    "RegistryChecker",
    "ResourceLifecycleChecker",
    "STDLIB_RAISE_ALLOWLIST",
    "SourceFile",
    "TelemetryChecker",
    "apply_baseline",
    "default_checkers",
    "iter_python_files",
    "known_rules",
    "lint_paths",
    "lint_sources",
    "lint_text",
    "load_baseline",
    "write_baseline",
]


def default_checkers():
    """The shipped checker suite, in reporting order."""
    return [
        ConcurrencyChecker(),
        DeterminismChecker(),
        ExceptionContractChecker(),
        ResourceLifecycleChecker(),
        ApiSurfaceChecker(),
        TelemetryChecker(),
        RegistryChecker(),
    ]
