"""Regenerate README's fastpath performance table from BENCH_fastpath.json.

Run after ``make bench-fastpath``:

    python tools/update_readme_bench.py

Rewrites the block between the ``BENCH_FASTPATH_TABLE_START`` / ``_END``
markers in README.md so the published numbers always come from the
committed benchmark artifact, never from hand-editing.
"""

import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
README = REPO_ROOT / "README.md"
ARTIFACT = REPO_ROOT / "BENCH_fastpath.json"
START = "<!-- BENCH_FASTPATH_TABLE_START -->"
END = "<!-- BENCH_FASTPATH_TABLE_END -->"


def render_table(report: dict) -> str:
    ds = report["dataset"]
    r = report["results"]
    packed = r["predict_packed"]
    table = r["predict_codetable"]
    lines = [
        f"Checkerboard |P|={ds['n_minority']}, |N|={ds['n_majority']} "
        f"(IR {ds['imbalance_ratio']}), {report['config']['n_estimators']} "
        "depth-8 trees; every fastpath/legacy pair asserted bit-identical.",
        "",
        "| Path | Legacy | Fastpath | Speedup |",
        "|---|---|---|---|",
        "| SPE end-to-end fit (`shared_binning=True`) "
        f"| {r['fit']['legacy_seconds']:.3f}s | {r['fit']['fastpath_seconds']:.3f}s "
        f"| **{r['fit']['speedup']:.2f}×** |",
        "| `predict_proba`, bulk, packed kernel "
        f"| {packed['bulk_legacy_seconds']:.3f}s | {packed['bulk_fastpath_seconds']:.3f}s "
        f"| **{packed['bulk_speedup']:.2f}×** |",
        "| `predict_proba`, bulk, compiled code table "
        f"| {table['bulk_legacy_seconds']:.3f}s | {table['bulk_fastpath_seconds']:.3f}s "
        f"| **{table['bulk_speedup']:.2f}×** |",
        f"| `predict_proba`, {packed['serve_batch']}-row serving batches, packed "
        f"| | | **{packed['serve_speedup']:.2f}×** |",
        f"| `predict_proba`, {table['serve_batch']}-row serving batches, code table "
        f"| | | **{table['serve_speedup']:.2f}×** |",
    ]
    return "\n".join(lines)


def main() -> int:
    report = json.loads(ARTIFACT.read_text())
    readme = README.read_text()
    pattern = re.compile(
        re.escape(START) + r".*?" + re.escape(END), flags=re.DOTALL
    )
    if not pattern.search(readme):
        print("README markers not found", file=sys.stderr)
        return 1
    README.write_text(
        pattern.sub(f"{START}\n{render_table(report)}\n{END}", readme)
    )
    print(f"README table regenerated from {ARTIFACT.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
