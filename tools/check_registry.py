#!/usr/bin/env python
"""Registry completeness gate — thin shim over repro-lint's ``registry``
checker.

Historically ``make lint`` called this script directly; the audit now
lives in :mod:`tools.analysis.registry_audit` and runs as part of the
single ``tools/repro_lint.py`` invocation. This entrypoint is kept for
muscle memory and scripts that still call it: it delegates to the same
checker and exits with the same semantics (0 clean, 1 on drift).
"""

from __future__ import annotations

import os
import sys

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)


def main() -> int:
    from repro_lint import main as lint_main

    src = os.path.join(os.path.dirname(TOOLS_DIR), "src")
    return lint_main([src, "--only", "registry", "--no-baseline"])


if __name__ == "__main__":
    sys.exit(main())
