#!/usr/bin/env python
"""Registry completeness gate, run by ``make lint``.

Fails (exit 1) when the classifier registry has drifted from the zoo:
an exported classifier missing a ``register_classifier`` entry, a
registered class violating the estimator contract, or a named preset that
no longer constructs and fits. See
:func:`repro.registry.registry_problems` for the exact audit.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))


def main() -> int:
    from repro.registry import list_classifiers, registry_problems

    problems = registry_problems(check_presets=True)
    if problems:
        print(f"registry check FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    names = list_classifiers()
    print(f"registry check OK: {len(names)} classifiers registered, all "
          f"contracts hold, all presets fit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
