"""Line-coverage runner for ``make coverage`` — works with or without
third-party coverage tooling.

Preference order:

1. ``pytest --cov=repro`` via pytest-cov (what the CI coverage job
   installs) — the issue-spec coverage path, with coverage.py's reporting;
2. ``coverage run -m pytest`` when only coverage.py is present;
3. a dependency-free stdlib fallback: a ``sys.settrace`` collector that
   instruments *only* frames whose code lives under ``src/repro`` (every
   other frame opts out of tracing, so numpy / pytest internals run at full
   speed), then reports approximate statement coverage per module against
   an ``ast``-derived statement count.

All three paths run the fast test selection (``-m "not slow and not
bench"``) so the summary lands in seconds, and print an informational
per-package summary; the exit code is the test run's exit code — coverage
percentage is reported, never gated on.
"""

from __future__ import annotations

import ast
import importlib.util
import os
import pathlib
import subprocess
import sys
import threading
from collections import defaultdict

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
PACKAGE_ROOT = SRC_ROOT / "repro"
PYTEST_ARGS = ["-q", "-m", "not slow and not bench", "tests"]


def _has_module(name: str) -> bool:
    return importlib.util.find_spec(name) is not None


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run_with_pytest_cov() -> int:
    print("coverage: using pytest-cov")
    return subprocess.call(
        [sys.executable, "-m", "pytest", "--cov=repro", "--cov-report=term"]
        + PYTEST_ARGS,
        cwd=REPO_ROOT,
        env=_env(),
    )


def _run_with_coverage_py() -> int:
    print("coverage: using coverage.py")
    code = subprocess.call(
        [sys.executable, "-m", "coverage", "run", "-m", "pytest"] + PYTEST_ARGS,
        cwd=REPO_ROOT,
        env=_env(),
    )
    subprocess.call(
        [sys.executable, "-m", "coverage", "report"], cwd=REPO_ROOT, env=_env()
    )
    return code


# --------------------------------------------------------------------- #
# stdlib fallback
# --------------------------------------------------------------------- #
def _statement_lines(path: pathlib.Path) -> set:
    """Line numbers of executable statements (docstrings excluded)."""
    tree = ast.parse(path.read_text())
    lines = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue  # bare string/constant expression == docstring
        lines.add(node.lineno)
    return lines


def _run_with_stdlib_tracer() -> int:
    print("coverage: pytest-cov/coverage.py not installed; "
          "using the stdlib settrace fallback (approximate statement coverage)")
    prefix = str(PACKAGE_ROOT) + os.sep
    hit = defaultdict(set)

    def local_trace(frame, event, arg):
        if event == "line":
            hit[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if frame.f_code.co_filename.startswith(prefix):
            return local_trace
        return None

    os.chdir(REPO_ROOT)
    sys.path.insert(0, str(SRC_ROOT))
    import pytest  # deferred: tracing must not slow the import

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        code = pytest.main(PYTEST_ARGS)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    print(f"\n{'module':<44} {'stmts':>6} {'hit':>6} {'cover':>7}")
    total_stmts = total_hit = 0
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        stmts = _statement_lines(path)
        covered = hit.get(str(path), set()) & stmts
        total_stmts += len(stmts)
        total_hit += len(covered)
        name = str(path.relative_to(SRC_ROOT))
        pct = 100.0 * len(covered) / len(stmts) if stmts else 100.0
        print(f"{name:<44} {len(stmts):>6} {len(covered):>6} {pct:>6.1f}%")
    overall = 100.0 * total_hit / total_stmts if total_stmts else 100.0
    print(f"{'TOTAL':<44} {total_stmts:>6} {total_hit:>6} {overall:>6.1f}%")
    return int(code)


def main() -> int:
    if _has_module("pytest_cov"):
        return _run_with_pytest_cov()
    if _has_module("coverage"):
        return _run_with_coverage_py()
    return _run_with_stdlib_tracer()


if __name__ == "__main__":
    sys.exit(main())
