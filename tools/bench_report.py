#!/usr/bin/env python
"""Consolidate the BENCH_*.json artifacts into one trajectory report.

``make bench-smoke`` writes six independent JSON artifacts (parallel
scaling, streaming memory, fastpath speedups, serving latency, monitoring
overhead, chaos SLOs). This tool flattens them into a single markdown document —
``BENCH_report.md`` at the repo root — with a headline table up top (the
numbers each benchmark itself calls out) and a full flattened metric
appendix, so one file tracks the whole performance trajectory across
commits instead of five diverging ones.

Missing artifacts are reported, not fatal: the report covers whatever has
been run.

Usage: python tools/bench_report.py [--out BENCH_report.md]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The artifacts `make bench-smoke` produces, in the order it runs them.
ARTIFACTS = (
    "BENCH_parallel.json",
    "BENCH_streaming.json",
    "BENCH_fastpath.json",
    "BENCH_serving.json",
    "BENCH_monitoring.json",
    "BENCH_chaos.json",
    "BENCH_telemetry.json",
)

#: Top-level keys that are configuration, not measured metrics.
_NON_METRIC_KEYS = {"benchmark", "dataset", "config", "headline", "memory_metric"}

#: repro-lint report written by `make lint`; summarised in the headline.
LINT_REPORT = "LINT_report.json"


def lint_summary_line(root: str = REPO_ROOT) -> str:
    """One-line repro-lint summary from ``LINT_report.json``, if present."""
    path = os.path.join(root, LINT_REPORT)
    if not os.path.exists(path):
        return f"Lint: no `{LINT_REPORT}` found — run `make lint`."
    try:
        with open(path) as handle:
            doc = json.load(handle)
        summary = doc.get("summary", {})
        total = summary.get("total", "?")
        suppressed = summary.get("pragma_suppressed", 0)
        baselined = summary.get("baseline_suppressed", 0)
        files = doc.get("files_scanned", "?")
        status = "clean" if total == 0 else f"**{total} finding(s)**"
    except (ValueError, OSError):
        return f"Lint: `{LINT_REPORT}` unreadable — rerun `make lint`."
    return (
        f"Lint: repro-lint {status} over {files} files "
        f"({suppressed} pragma-suppressed, {baselined} baselined)."
    )


def flatten_numeric(value: Any, prefix: str = "") -> List[Tuple[str, Any]]:
    """Depth-first (dotted-path, scalar) pairs for every numeric/bool leaf."""
    out: List[Tuple[str, Any]] = []
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.extend(flatten_numeric(child, path))
    elif isinstance(value, list):
        for index, child in enumerate(value):
            # Lists of row dicts (parallel/streaming results) label rows by
            # their identifying string fields instead of a bare index.
            label = str(index)
            if isinstance(child, dict):
                tags = [
                    str(child[k])
                    for k in ("model", "mode", "backend", "n_jobs", "rows",
                              "workers", "tenant")
                    if k in child
                ]
                if tags:
                    label = "/".join(tags)
            out.extend(flatten_numeric(child, f"{prefix}[{label}]"))
    elif isinstance(value, bool) or isinstance(value, (int, float)):
        out.append((prefix, value))
    return out


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _markdown_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return lines


def build_report(root: str = REPO_ROOT) -> Tuple[str, List[str]]:
    """Return ``(markdown, missing_artifact_names)``."""
    headline_rows: List[List[str]] = []
    detail_sections: List[str] = []
    missing: List[str] = []

    for name in ARTIFACTS:
        path = os.path.join(root, name)
        if not os.path.exists(path):
            missing.append(name)
            continue
        with open(path) as handle:
            doc: Dict[str, Any] = json.load(handle)
        bench = doc.get("benchmark", name)
        dataset = doc.get("dataset", {})
        dataset_label = dataset.get("name", "-") if isinstance(dataset, dict) else "-"

        for key, value in flatten_numeric(doc.get("headline", {})):
            headline_rows.append([str(bench), key, _fmt(value)])

        detail_rows = []
        for key, value in sorted(
            pair
            for top_key, top_value in doc.items()
            if top_key not in _NON_METRIC_KEYS
            for pair in flatten_numeric(top_value, top_key)
        ):
            detail_rows.append([key, _fmt(value)])
        section = [f"### {bench} (`{name}`, dataset: {dataset_label})", ""]
        section.extend(_markdown_table(["metric", "value"], detail_rows))
        detail_sections.append("\n".join(section))

    lines = [
        "# Benchmark trajectory report",
        "",
        "Consolidated from the `BENCH_*.json` artifacts written by",
        "`make bench-smoke` (regenerate with `python tools/bench_report.py`).",
        "",
        lint_summary_line(root),
        "",
        "## Headlines",
        "",
    ]
    if headline_rows:
        lines.extend(
            _markdown_table(["benchmark", "metric", "value"], headline_rows)
        )
    else:
        lines.append("_No benchmark headlines available._")
    if missing:
        lines += ["", "Missing artifacts (benchmark not run): " + ", ".join(missing)]
    lines += ["", "## All metrics", ""]
    lines.extend(detail_sections or ["_No benchmark artifacts found._"])
    return "\n".join(lines) + "\n", missing


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_report.md"),
        help="output markdown path (default: BENCH_report.md at repo root)",
    )
    args = parser.parse_args(argv)

    report, missing = build_report()
    with open(args.out, "w") as handle:
        handle.write(report)

    # Headline table (everything up to the appendix) goes to stdout.
    print(report.split("\n## All metrics", 1)[0].rstrip())
    print(f"\nwrote {args.out}")
    if missing:
        print(f"note: {len(missing)} artifact(s) missing: {', '.join(missing)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
