# Single-command entrypoints for CI and local verification.
# .github/workflows/ci.yml invokes exactly these targets — keep them green.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast coverage bench-smoke lint

# Tier-1 suite (the ROADMAP verify command). Runs everything, including
# tests marked `slow`.
test:
	$(PYTHON) -m pytest -x -q

# PR-gating subset: skips `slow` experiment/figure reproductions and
# anything marked `bench` (markers registered in pyproject.toml).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow and not bench"

# Informational line-coverage summary for src/repro. Uses pytest-cov /
# coverage.py when installed (the CI coverage job installs them); otherwise
# falls back to the dependency-free stdlib tracer in tools/coverage_run.py.
coverage:
	$(PYTHON) tools/coverage_run.py

# Fast end-to-end run of the perf benchmarks; writes BENCH_parallel.json
# and BENCH_streaming.json at the repo root (uploaded as CI artifacts).
bench-smoke:
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_parallel_scaling.py
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_streaming_memory.py

# No third-party linters in the toolchain: byte-compile everything so
# syntax/undefined-future errors fail fast.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples tools
