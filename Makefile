# Single-command entrypoints for CI and local verification.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke lint

# Tier-1 suite (the ROADMAP verify command).
test:
	$(PYTHON) -m pytest -x -q

# Fast end-to-end run of the parallel-scaling benchmark; writes
# BENCH_parallel.json at the repo root.
bench-smoke:
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_parallel_scaling.py

# No third-party linters in the toolchain: byte-compile everything so
# syntax/undefined-future errors fail fast.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
