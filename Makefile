# Single-command entrypoints for CI and local verification.
# .github/workflows/ci.yml invokes exactly these targets — keep them green.
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast coverage bench-smoke bench-fastpath bench-serving bench-monitoring bench-chaos bench-telemetry lint lint-fix-baseline

# Tier-1 suite (the ROADMAP verify command). Runs everything, including
# tests marked `slow`.
test:
	$(PYTHON) -m pytest -x -q

# PR-gating subset: skips `slow` experiment/figure reproductions and
# anything marked `bench` (markers registered in pyproject.toml).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow and not bench"

# Informational line-coverage summary for src/repro. Uses pytest-cov /
# coverage.py when installed (the CI coverage job installs them); otherwise
# falls back to the dependency-free stdlib tracer in tools/coverage_run.py.
coverage:
	$(PYTHON) tools/coverage_run.py

# Fast end-to-end run of the perf benchmarks; writes BENCH_parallel.json,
# BENCH_streaming.json, BENCH_fastpath.json, BENCH_serving.json,
# BENCH_monitoring.json, BENCH_chaos.json, and BENCH_telemetry.json at
# the repo root (uploaded as CI artifacts). The fastpath smoke asserts a
# conservative >=1.2x speedup floor (REPRO_FASTPATH_MIN_SPEEDUP) so
# shared runners don't flake; the serving smoke asserts bit-identity of
# the served path and records latency percentiles without a floor; the
# monitoring smoke asserts the hot-swap zero-blocked-requests contract;
# the chaos smoke asserts the fault-tolerance SLOs (zero hung futures,
# zero silent drops, typed failures, bounded recovery) under a seeded
# FaultPlan plus telemetry-vs-stats() reconciliation; the telemetry
# smoke asserts the <5% sampling-overhead budget, histogram quantile
# accuracy, and registry/stats()/span agreement — all correctness
# properties, not timings.
bench-smoke:
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_parallel_scaling.py
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_streaming_memory.py
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_fastpath.py
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_serving.py
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_monitoring.py
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_chaos.py
	REPRO_SCALE=0.25 $(PYTHON) benchmarks/bench_telemetry.py
	$(PYTHON) tools/bench_report.py

# Full-scale fastpath speedup benchmark (fit / score / predict, legacy vs
# packed + shared-binning paths, bit-identity asserted on every pair).
bench-fastpath:
	$(PYTHON) benchmarks/bench_fastpath.py

# Full-scale serving benchmark: cold artifact load + warm micro-batch
# latency (p50/p99 at request sizes 1/64/512) for the packed-forest and
# code-table serving paths, then the multi-process fleet phases — the
# 1/2/4-worker throughput curve, per-worker private-memory deltas vs the
# mmap'd artifact (zero-copy claim), admission-control overflow, and a
# fleet-wide hot swap under load with zero dropped requests asserted.
bench-serving:
	$(PYTHON) benchmarks/bench_serving.py

# Full-scale monitoring benchmark: drift-check overhead per 10k monitored
# rows plus hot-swap latency and the zero-blocked-requests assertion under
# concurrent traffic.
bench-monitoring:
	$(PYTHON) benchmarks/bench_monitoring.py

# Full-scale chaos harness: replay a PaySim burst through the serve()
# fleet while a seeded FaultPlan kills one worker mid-burst and another
# mid-swap; asserts the SLOs (zero hung futures, zero silent drops, every
# failure typed, recovery within the respawn-backoff bound, fleet
# converged onto the swapped version) and writes BENCH_chaos.json.
bench-chaos:
	$(PYTHON) benchmarks/bench_chaos.py

# Full-scale telemetry-plane benchmark: sampling-overhead bound (<5% on
# a production-shaped serving workload, interleaved on/off trials),
# histogram p50/p99 accuracy against exact percentiles of a seeded
# sample, and the registry/stats()/span reconciliation; writes
# BENCH_telemetry.json.
bench-telemetry:
	$(PYTHON) benchmarks/bench_telemetry.py

# No third-party linters in the toolchain: byte-compile everything so
# syntax/undefined-future errors fail fast, then run repro-lint — the
# repo's own AST-based static-analysis suite (tools/repro_lint.py). It
# enforces the concurrency, determinism, exception-contract, resource-
# lifecycle, and API-surface rules (see DESIGN.md) and folds in the
# classifier-registry audit, so this is the single lint gate with one
# exit code. Writes LINT_report.json (uploaded as a CI artifact).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples tools
	$(PYTHON) tools/repro_lint.py src tests benchmarks tools --format=json --out LINT_report.json

# Deliberate act only: regenerate the grandfathered-findings baseline
# (tools/analysis/baseline.json) from the current findings. The shipped
# baseline is empty for src/repro — keep it that way; fix findings
# instead of baselining them whenever possible.
lint-fix-baseline:
	$(PYTHON) tools/repro_lint.py src tests benchmarks tools --write-baseline
