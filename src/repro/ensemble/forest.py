"""Random forest: bagged trees with per-node feature subsampling."""

from __future__ import annotations

from functools import partial
from typing import Dict, Optional, Union

import numpy as np

from ..base import BaseEstimator, ClassifierMixin
from ..fastpath import SharedBinContext, check_shared_binning_backend
from ..fastpath.bincontext import FINE_FACTOR, MAX_FINE_BINS
from ..parallel import ensemble_predict_proba, fit_ensemble_parallel
from ..tree import DecisionTreeClassifier
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["RandomForestClassifier"]


def _forest_sample(
    index: int,
    rng: np.random.RandomState,
    X: np.ndarray,
    y: np.ndarray,
    bootstrap: bool,
    n_classes: int,
):
    n = X.shape[0]
    if not bootstrap:
        return X, y
    idx = rng.randint(0, n, size=n)
    tries = 0
    while n_classes > 1 and len(np.unique(y[idx])) < 2 and tries < 10:
        idx = rng.randint(0, n, size=n)
        tries += 1
    return X[idx], y[idx]


def _make_forest_tree(rng: np.random.RandomState, params: Dict) -> DecisionTreeClassifier:
    return DecisionTreeClassifier(
        random_state=rng.randint(np.iinfo(np.int32).max), **params
    )


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Breiman-style random forest over the library's histogram CART trees.

    Tree fits and chunked ``predict_proba`` run through the
    :mod:`repro.parallel` engine; ``n_jobs`` / ``backend`` never change the
    forest grown under a fixed ``random_state``.

    ``shared_binning=True`` bins the training matrix once and fits every
    tree on views of the cached codes (each member previously re-binned a
    full-size bootstrap). Statistically equivalent, not bit-identical, to
    the default per-member binning — see ``DESIGN.md`` → "fastpath".
    """

    def __init__(
        self,
        n_estimators: int = 10,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[None, str, int, float] = "sqrt",
        bootstrap: bool = True,
        max_bins: int = 64,
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        shared_binning: bool = False,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_bins = max_bins
        self.n_jobs = n_jobs
        self.backend = backend
        self.shared_binning = shared_binning
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        tree_params = dict(
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            max_bins=self.max_bins,
        )
        if self.shared_binning:
            check_shared_binning_backend(self.backend)
            fine = max(
                self.max_bins, min(MAX_FINE_BINS, FINE_FACTOR * self.max_bins)
            )
            X_fit = SharedBinContext(X, max_bins=fine).all_rows()
        else:
            X_fit = X
        self.estimators_, _ = fit_ensemble_parallel(
            X_fit,
            y,
            n_estimators=self.n_estimators,
            sample_fn=partial(
                _forest_sample,
                bootstrap=self.bootstrap,
                n_classes=len(self.classes_),
            ),
            make_model=partial(_make_forest_tree, params=tree_params),
            random_state=rng,
            backend=self.backend,
            n_jobs=self.n_jobs,
        )
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        return ensemble_predict_proba(
            self.estimators_,
            X,
            self.classes_,
            n_jobs=self.n_jobs,
            backend=self.backend,
        )

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __serving_ensemble__(self):
        """(voting members, member class vector) for serving-time warm-up."""
        check_is_fitted(self, ["estimators_"])
        return self.estimators_, self.classes_

    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`)."""
        check_is_fitted(self, ["estimators_"])
        from ..persistence.state import export_ensemble_state

        return export_ensemble_state(self)

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        from ..persistence.state import restore_ensemble_state

        restore_ensemble_state(self, meta, arrays, children)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to 1."""
        check_is_fitted(self, ["estimators_"])
        importances = np.mean(
            [tree.feature_importances_ for tree in self.estimators_], axis=0
        )
        total = importances.sum()
        return importances / total if total > 0 else importances
