"""Random forest: bagged trees with per-node feature subsampling."""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..base import BaseEstimator, ClassifierMixin
from ..tree import DecisionTreeClassifier
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)
from .bagging import average_ensemble_proba

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Breiman-style random forest over the library's histogram CART trees."""

    def __init__(
        self,
        n_estimators: int = 10,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[None, str, int, float] = "sqrt",
        bootstrap: bool = True,
        max_bins: int = 64,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        n = X.shape[0]
        self.estimators_: List[DecisionTreeClassifier] = []
        for _ in range(self.n_estimators):
            idx = rng.randint(0, n, size=n) if self.bootstrap else np.arange(n)
            if len(self.classes_) > 1:
                tries = 0
                while len(np.unique(y[idx])) < 2 and tries < 10 and self.bootstrap:
                    idx = rng.randint(0, n, size=n)
                    tries += 1
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                max_bins=self.max_bins,
                random_state=rng.randint(np.iinfo(np.int32).max),
            )
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        return average_ensemble_proba(self.estimators_, X, self.classes_)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def feature_importances_(self) -> np.ndarray:
        check_is_fitted(self, ["estimators_"])
        importances = np.mean(
            [tree.feature_importances_ for tree in self.estimators_], axis=0
        )
        total = importances.sum()
        return importances / total if total > 0 else importances
