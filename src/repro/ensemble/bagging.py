"""Bootstrap-aggregating classifier (Breiman, 1996)."""

from __future__ import annotations

from functools import partial
from typing import Optional

import numpy as np

from ..base import BaseEstimator, ClassifierMixin, clone
from ..fastpath import check_shared_binning_backend, shared_bin_context_for
from ..parallel import ensemble_predict_proba, fit_ensemble_parallel
from ..tree import DecisionTreeClassifier
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = [
    "BaggingClassifier",
    "average_ensemble_proba",
    "ensemble_predict_proba",
    "make_member_model",
]


def average_ensemble_proba(estimators, X, classes: np.ndarray) -> np.ndarray:
    """Serial shorthand for :func:`repro.parallel.ensemble_predict_proba`.

    Kept as the historical name; the chunked engine behind it aligns each
    estimator's classes into the full class space before averaging.
    """
    return ensemble_predict_proba(estimators, X, classes, backend="serial")


def make_member_model(rng: np.random.RandomState, estimator=None):
    """Default ensemble-member factory shared across the ensemble layers:
    resolve ``estimator`` (``None`` → fresh tree, a registry name → a new
    instance, an instance → a clone) and seed it from the member's private
    RNG. Strings keep process-backend fits cheap to pickle and let any
    ensemble take ``estimator="logistic"`` etc. directly."""
    if estimator is None:
        model = DecisionTreeClassifier()
    elif isinstance(estimator, str):
        from ..registry import make_classifier

        model = make_classifier(estimator)
    else:
        from ..registry import resolve_estimator

        model = clone(resolve_estimator(estimator))
    if hasattr(model, "random_state"):
        model.random_state = rng.randint(np.iinfo(np.int32).max)
    return model


def _bootstrap_sample(
    index: int,
    rng: np.random.RandomState,
    X: np.ndarray,
    y: np.ndarray,
    size: int,
    bootstrap: bool,
    n_classes: int,
):
    if bootstrap:
        idx = rng.randint(0, X.shape[0], size=size)
        # Guarantee both classes appear whenever the data has both:
        # resample until the subset is non-degenerate (tiny cost).
        tries = 0
        while n_classes > 1 and len(np.unique(y[idx])) < 2 and tries < 10:
            idx = rng.randint(0, X.shape[0], size=size)
            tries += 1
    else:
        idx = rng.permutation(X.shape[0])[:size]
    return X[idx], y[idx]


class BaggingClassifier(BaseEstimator, ClassifierMixin):
    """Train ``n_estimators`` clones on bootstrap resamples and average.

    ``n_jobs`` / ``backend`` drive both the per-member fits and the chunked
    ``predict_proba`` through :mod:`repro.parallel`; results are identical
    for every backend and worker count at a fixed ``random_state``.

    ``shared_binning=True`` (tree members only) bins the training matrix
    once and fits every bootstrap member on views of the cached codes — the
    biggest win of the bin-once context, since plain bagging re-binned a
    full-size bootstrap per member. Bin edges then come from the full
    matrix, so the fitted trees are statistically equivalent but not
    bit-identical to the default per-member-binned ones.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        max_samples: float = 1.0,
        bootstrap: bool = True,
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        shared_binning: bool = False,
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.bootstrap = bootstrap
        self.n_jobs = n_jobs
        self.backend = backend
        self.shared_binning = shared_binning
        self.random_state = random_state

    def fit(self, X, y) -> "BaggingClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.max_samples <= 1.0:
            raise ValueError("max_samples must be in (0, 1]")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        size = max(1, int(round(self.max_samples * X.shape[0])))
        if self.shared_binning:
            check_shared_binning_backend(self.backend)
            X_fit = shared_bin_context_for(self.estimator, X).all_rows()
        else:
            X_fit = X
        self.estimators_, _ = fit_ensemble_parallel(
            X_fit,
            y,
            n_estimators=self.n_estimators,
            sample_fn=partial(
                _bootstrap_sample,
                size=size,
                bootstrap=self.bootstrap,
                n_classes=len(self.classes_),
            ),
            make_model=partial(make_member_model, estimator=self.estimator),
            random_state=rng,
            backend=self.backend,
            n_jobs=self.n_jobs,
        )
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        return ensemble_predict_proba(
            self.estimators_,
            X,
            self.classes_,
            n_jobs=self.n_jobs,
            backend=self.backend,
        )

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __serving_ensemble__(self):
        """(voting members, member class vector) for serving-time warm-up.

        Bagging is label-generic already: members are fitted on the raw
        labels, so the serving class vector is ``classes_`` itself.
        """
        check_is_fitted(self, ["estimators_"])
        return self.estimators_, self.classes_

    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`)."""
        check_is_fitted(self, ["estimators_"])
        from ..persistence.state import export_ensemble_state

        return export_ensemble_state(self)

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        from ..persistence.state import restore_ensemble_state

        restore_ensemble_state(self, meta, arrays, children)
