"""Bootstrap-aggregating classifier (Breiman, 1996)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..base import BaseEstimator, ClassifierMixin, clone
from ..tree import DecisionTreeClassifier
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["BaggingClassifier", "average_ensemble_proba"]


def average_ensemble_proba(estimators, X, classes: np.ndarray) -> np.ndarray:
    """Average ``predict_proba`` over fitted estimators, aligning classes.

    Each estimator may have seen a subset of the classes (an extreme-IR
    bootstrap can miss the minority entirely); probabilities are mapped into
    the full class space before averaging.
    """
    proba = np.zeros((X.shape[0], len(classes)))
    class_pos = {c: i for i, c in enumerate(classes.tolist())}
    for est in estimators:
        p = est.predict_proba(X)
        cols = [class_pos[c] for c in est.classes_.tolist()]
        proba[:, cols] += p
    proba /= len(estimators)
    return proba


class BaggingClassifier(BaseEstimator, ClassifierMixin):
    """Train ``n_estimators`` clones on bootstrap resamples and average."""

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        max_samples: float = 1.0,
        bootstrap: bool = True,
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.bootstrap = bootstrap
        self.random_state = random_state

    def _make_base(self):
        if self.estimator is None:
            return DecisionTreeClassifier()
        return clone(self.estimator)

    def fit(self, X, y) -> "BaggingClassifier":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.max_samples <= 1.0:
            raise ValueError("max_samples must be in (0, 1]")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        n = X.shape[0]
        size = max(1, int(round(self.max_samples * n)))
        self.estimators_: List = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                idx = rng.randint(0, n, size=size)
            else:
                idx = rng.permutation(n)[:size]
            # Guarantee both classes appear whenever the data has both:
            # resample until the subset is non-degenerate (tiny cost).
            if len(self.classes_) > 1:
                tries = 0
                while len(np.unique(y[idx])) < 2 and tries < 10:
                    idx = rng.randint(0, n, size=size) if self.bootstrap else idx
                    tries += 1
            model = self._make_base()
            if hasattr(model, "random_state"):
                model.random_state = rng.randint(np.iinfo(np.int32).max)
            model.fit(X[idx], y[idx])
            self.estimators_.append(model)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        return average_ensemble_proba(self.estimators_, X, self.classes_)

    def predict(self, X) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
