"""Adaptive Boosting (Freund & Schapire, 1997) — SAMME and SAMME.R.

Base learners that accept ``sample_weight`` in ``fit`` are trained with the
boosting weights directly; others (KNN, MLP, ...) are trained on a weighted
bootstrap resample — the classical workaround that lets AdaBoost "boost any
canonical classifier", which the paper's experiments rely on.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..base import BaseEstimator, ClassifierMixin, clone, supports_sample_weight
from ..tree import DecisionTreeClassifier
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["AdaBoostClassifier", "fit_supports_sample_weight"]

#: Historical name — the capability check now lives in the estimator
#: contract (:func:`repro.base.supports_sample_weight`).
fit_supports_sample_weight = supports_sample_weight


class AdaBoostClassifier(BaseEstimator, ClassifierMixin):
    """Multi-class AdaBoost.

    ``algorithm='SAMME'`` (default) uses discrete class votes weighted by
    ``log((1-err)/err)``; ``'SAMME.R'`` uses real-valued class-probability
    votes, converging faster for well-calibrated learners.
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        learning_rate: float = 1.0,
        algorithm: str = "SAMME",
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.algorithm = algorithm
        self.random_state = random_state

    def _make_base(self):
        if self.estimator is None:
            return DecisionTreeClassifier(max_depth=1)
        from ..registry import resolve_estimator

        return clone(resolve_estimator(self.estimator))

    def _fit_one(self, X, y, w, rng):
        model = self._make_base()
        if hasattr(model, "random_state"):
            model.random_state = rng.randint(np.iinfo(np.int32).max)
        if fit_supports_sample_weight(model):
            model.fit(X, y, sample_weight=w * len(y))
        else:
            idx = rng.choice(len(y), size=len(y), p=w)
            if len(np.unique(y[idx])) < len(np.unique(y)):
                # Degenerate resample: retry once, then fall back to all data.
                idx = rng.choice(len(y), size=len(y), p=w)
                if len(np.unique(y[idx])) < len(np.unique(y)):
                    idx = np.arange(len(y))
            model.fit(X[idx], y[idx])
        return model

    def fit(self, X, y) -> "AdaBoostClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        if self.algorithm not in ("SAMME", "SAMME.R"):
            raise ValueError(f"Unknown algorithm {self.algorithm!r}")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_ = np.unique(y)
        K = len(self.classes_)
        n = X.shape[0]
        w = np.full(n, 1.0 / n)
        self.estimators_: List = []
        self.estimator_weights_: List[float] = []
        y_codes = np.searchsorted(self.classes_, y)

        for _ in range(self.n_estimators):
            model = self._fit_one(X, y, w, rng)
            if self.algorithm == "SAMME.R":
                proba = np.clip(model.predict_proba(X), 1e-12, None)
                cols = np.searchsorted(self.classes_, model.classes_)
                full = np.full((n, K), 1e-12)
                full[:, cols] = proba
                log_proba = np.log(full)
                # Weight update from Zhu et al. (2009), eq. (4).
                coding = np.full((n, K), -1.0 / (K - 1)) if K > 1 else np.ones((n, K))
                coding[np.arange(n), y_codes] = 1.0
                estimator_weight = 1.0  # SAMME.R uses unit weights
                w *= np.exp(
                    -self.learning_rate
                    * ((K - 1.0) / K)
                    * np.einsum("ij,ij->i", coding, log_proba)
                )
            else:
                pred = model.predict(X)
                incorrect = pred != y
                err = float(np.sum(w * incorrect))
                if err <= 0:
                    # Perfect learner: give it a large but finite weight.
                    self.estimators_.append(model)
                    self.estimator_weights_.append(10.0 + np.log(max(K - 1, 1)))
                    break
                if err >= 1.0 - 1.0 / K:
                    # No better than chance — re-randomise the weights slightly
                    # and skip (standard SAMME early-out keeps prior models).
                    if not self.estimators_:
                        self.estimators_.append(model)
                        self.estimator_weights_.append(1.0)
                    break
                estimator_weight = self.learning_rate * (
                    np.log((1.0 - err) / err) + np.log(max(K - 1, 1))
                )
                w *= np.exp(estimator_weight * incorrect)
            self.estimators_.append(model)
            self.estimator_weights_.append(float(estimator_weight))
            total = w.sum()
            if not np.isfinite(total) or total <= 0:
                break
            w /= total
        self.n_features_in_ = X.shape[1]
        return self

    def decision_scores(self, X) -> np.ndarray:
        """Per-class aggregated votes (n_samples, n_classes)."""
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        K = len(self.classes_)
        scores = np.zeros((X.shape[0], K))
        for model, alpha in zip(self.estimators_, self.estimator_weights_):
            if self.algorithm == "SAMME.R":
                proba = np.clip(model.predict_proba(X), 1e-12, None)
                cols = np.searchsorted(self.classes_, model.classes_)
                full = np.full((X.shape[0], K), 1e-12)
                full[:, cols] = proba
                log_proba = np.log(full)
                scores += (K - 1) * (log_proba - log_proba.mean(axis=1, keepdims=True))
            else:
                pred = model.predict(X)
                cols = np.searchsorted(self.classes_, pred)
                scores[np.arange(X.shape[0]), cols] += alpha
        return scores

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        scores = self.decision_scores(X)
        K = len(self.classes_)
        if K == 1:
            return np.ones((scores.shape[0], 1))
        if self.algorithm == "SAMME":
            # Weighted vote shares: sum of alpha over estimators voting for
            # each class, normalised — a graded score in [0, 1] per class.
            totals = scores.sum(axis=1, keepdims=True)
            uniform = np.full_like(scores, 1.0 / K)
            with np.errstate(invalid="ignore", divide="ignore"):
                proba = np.where(totals > 0, scores / np.where(totals > 0, totals, 1.0), uniform)
            return proba
        # SAMME.R: softmax of the mean real-valued decision (Zhu et al. 2009).
        scores = scores / (max(len(self.estimators_), 1) * max(K - 1, 1))
        scores = scores - scores.max(axis=1, keepdims=True)
        e = np.exp(scores)
        return e / e.sum(axis=1, keepdims=True)

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        scores = self.decision_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`)."""
        check_is_fitted(self, ["estimators_"])
        meta = {"n_features_in": int(self.n_features_in_)}
        arrays = {
            "classes": np.asarray(self.classes_),
            "estimator_weights": np.asarray(self.estimator_weights_, dtype=np.float64),
        }
        return meta, arrays, {"estimators": list(self.estimators_)}

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        self.classes_ = np.asarray(arrays["classes"])
        self.estimator_weights_ = [float(w) for w in arrays["estimator_weights"]]
        self.estimators_ = list(children["estimators"])
        self.n_features_in_ = int(meta["n_features_in"])
