"""Canonical ensemble learners: Bagging, Random Forest, AdaBoost, GBDT."""

from .adaboost import AdaBoostClassifier, fit_supports_sample_weight
from .bagging import BaggingClassifier, average_ensemble_proba
from .forest import RandomForestClassifier
from .gbdt import GradientBoostingClassifier, GradientRegressionTree

__all__ = [
    "AdaBoostClassifier",
    "fit_supports_sample_weight",
    "BaggingClassifier",
    "average_ensemble_proba",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "GradientRegressionTree",
]
