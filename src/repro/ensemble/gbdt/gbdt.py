"""Gradient-boosted decision trees with binary log-loss.

Functional substitute for the paper's LightGBM learner: histogram split
finding, shrinkage, stochastic row subsampling (Friedman, 2002 — reference
[37] of the paper), and early stopping against a validation set (the paper
notes "some classifiers like GBDT need validation set for early stopping").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ...base import BaseEstimator, ClassifierMixin
from ...tree import FeatureBinner
from ...utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)
from .regression_tree import GradientRegressionTree

__all__ = ["GradientBoostingClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


def _log_loss(y: np.ndarray, p: np.ndarray) -> float:
    eps = 1e-12
    return float(-np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Binary GBDT ("boost rounds" = ``n_estimators`` in the paper's Table II).

    ``fit(X, y, eval_set=(X_val, y_val))`` activates early stopping with
    ``early_stopping_rounds`` patience on validation log-loss.
    """

    def __init__(
        self,
        n_estimators: int = 10,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        reg_lambda: float = 1.0,
        max_bins: int = 64,
        early_stopping_rounds: Optional[int] = None,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.reg_lambda = reg_lambda
        self.max_bins = max_bins
        self.early_stopping_rounds = early_stopping_rounds
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None, eval_set: Optional[Tuple] = None):
        """Fit on ``X``/``y`` (optional weights/eval set); returns ``self``."""
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        X, y = check_X_y(X, y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        if len(self.classes_) > 2:
            raise ValueError("GradientBoostingClassifier is binary only")
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        t = y_enc.astype(float)
        if sample_weight is None:
            w = np.ones(n)
        else:
            w = np.asarray(sample_weight, dtype=float)
            w = w * (n / max(w.sum(), 1e-300))

        if len(self.classes_) == 1:
            self.init_score_ = 50.0
            self.trees_: List[GradientRegressionTree] = []
            self.n_features_in_ = X.shape[1]
            return self

        binner = FeatureBinner(max_bins=self.max_bins)
        X_binned = binner.fit_transform(X)
        self._binner = binner

        pos_rate = np.clip(np.average(t, weights=w), 1e-6, 1 - 1e-6)
        self.init_score_ = float(np.log(pos_rate / (1.0 - pos_rate)))
        raw = np.full(n, self.init_score_)

        use_valid = eval_set is not None and self.early_stopping_rounds is not None
        if eval_set is not None:
            X_val, y_val = eval_set
            X_val = check_array(X_val)
            y_val = np.searchsorted(self.classes_, np.asarray(y_val)).astype(float)
            raw_val = np.full(X_val.shape[0], self.init_score_)
        best_loss, best_round, stall = np.inf, 0, 0

        self.trees_ = []
        self.train_loss_: List[float] = []
        self.valid_loss_: List[float] = []
        for _ in range(self.n_estimators):
            p = _sigmoid(raw)
            grad = (p - t) * w
            hess = np.maximum(p * (1 - p), 1e-6) * w
            if self.subsample < 1.0:
                rows = rng.rand(n) < self.subsample
                if rows.sum() < 2 * self.min_samples_leaf:
                    rows = np.ones(n, dtype=bool)
            else:
                rows = slice(None)
            tree = GradientRegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                reg_lambda=self.reg_lambda,
            )
            tree.fit(X_binned[rows], grad[rows], hess[rows], binner)
            self.trees_.append(tree)
            raw += self.learning_rate * tree.predict(X)
            self.train_loss_.append(_log_loss(t, _sigmoid(raw)))
            if eval_set is not None:
                raw_val += self.learning_rate * tree.predict(X_val)
                val_loss = _log_loss(y_val, _sigmoid(raw_val))
                self.valid_loss_.append(val_loss)
                if use_valid:
                    if val_loss < best_loss - 1e-9:
                        best_loss, best_round, stall = val_loss, len(self.trees_), 0
                    else:
                        stall += 1
                        if stall >= self.early_stopping_rounds:
                            self.trees_ = self.trees_[:best_round]
                            break
        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X) -> np.ndarray:
        """Real-valued scores for the positive class."""
        check_is_fitted(self, ["trees_"])
        X = check_array(X)
        raw = np.full(X.shape[0], self.init_score_)
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def staged_decision_function(self, X):
        """Yield the raw score after each boosting round (Fig 5-style curves)."""
        check_is_fitted(self, ["trees_"])
        X = check_array(X)
        raw = np.full(X.shape[0], self.init_score_)
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict(X)
            yield raw.copy()

    def predict_proba(self, X) -> np.ndarray:
        # Fitted check before touching classes_, so an unfitted model raises
        # the uniform NotFittedError rather than a bare AttributeError.
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["trees_"])
        if len(self.classes_) == 1:
            X = check_array(X)
            return np.ones((X.shape[0], 1))
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`).

        The boosted trees predict on raw feature rows, so the training-time
        binner and the loss curves are fit-time state and are not persisted.
        """
        check_is_fitted(self, ["trees_"])
        meta = {
            "n_features_in": int(self.n_features_in_),
            "init_score": float(self.init_score_),
        }
        arrays = {"classes": np.asarray(self.classes_)}
        return meta, arrays, {"trees": list(self.trees_)}

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        self.classes_ = np.asarray(arrays["classes"])
        self.trees_ = list(children.get("trees", []))
        self.init_score_ = float(meta["init_score"])
        self.n_features_in_ = int(meta["n_features_in"])
