"""Histogram regression tree fitted on gradient/hessian statistics.

This is the weak learner inside :class:`GradientBoostingClassifier`. Split
quality uses the second-order gain (as in XGBoost/LightGBM):

``gain = 1/2 * [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)]``

and leaves output the Newton step ``−G/(H+λ)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ...tree import FeatureBinner

__all__ = ["GradientRegressionTree"]

_LEAF = -1


@dataclass
class _Node:
    indices: np.ndarray
    depth: int
    parent: int
    is_left: bool


@dataclass
class _Arrays:
    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[float] = field(default_factory=list)

    def add(self, value: float) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(value)
        return len(self.feature) - 1


class GradientRegressionTree:
    """Depth-limited regression tree on (gradient, hessian) targets."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        min_child_weight: float = 1e-3,
        reg_lambda: float = 1.0,
        min_gain: float = 1e-7,
    ):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain

    def fit(
        self,
        X_binned: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        binner: FeatureBinner,
    ) -> "GradientRegressionTree":
        """Fit on binned features and grad/hess targets; returns ``self``."""
        lam = self.reg_lambda
        arrays = _Arrays()
        stack = [_Node(np.arange(X_binned.shape[0]), 0, _LEAF, False)]
        while stack:
            rec = stack.pop()
            idx = rec.indices
            g = grad[idx]
            h = hess[idx]
            G, H = g.sum(), h.sum()
            node_id = arrays.add(-G / (H + lam))
            if rec.parent != _LEAF:
                if rec.is_left:
                    arrays.left[rec.parent] = node_id
                else:
                    arrays.right[rec.parent] = node_id
            if rec.depth >= self.max_depth or len(idx) < 2 * self.min_samples_leaf:
                continue

            parent_score = G * G / (H + lam)
            best_gain, best_feature, best_code = self.min_gain, _LEAF, -1
            codes_node = X_binned[idx]
            for j in range(X_binned.shape[1]):
                n_bins = int(binner.n_bins_[j])
                if n_bins < 2:
                    continue
                codes_j = codes_node[:, j].astype(np.int64)
                g_hist = np.bincount(codes_j, weights=g, minlength=n_bins)
                h_hist = np.bincount(codes_j, weights=h, minlength=n_bins)
                c_hist = np.bincount(codes_j, minlength=n_bins)
                GL = np.cumsum(g_hist)[:-1]
                HL = np.cumsum(h_hist)[:-1]
                CL = np.cumsum(c_hist)[:-1]
                GR = G - GL
                HR = H - HL
                CR = len(idx) - CL
                gains = 0.5 * (
                    GL * GL / (HL + lam) + GR * GR / (HR + lam) - parent_score
                )
                invalid = (
                    (CL < self.min_samples_leaf)
                    | (CR < self.min_samples_leaf)
                    | (HL < self.min_child_weight)
                    | (HR < self.min_child_weight)
                )
                gains[invalid] = -np.inf
                local_best = int(np.argmax(gains))
                if gains[local_best] > best_gain:
                    best_gain = float(gains[local_best])
                    best_feature = int(j)
                    best_code = local_best

            if best_feature == _LEAF:
                continue
            arrays.feature[node_id] = best_feature
            arrays.threshold[node_id] = binner.threshold_value(best_feature, best_code)
            go_left = codes_node[:, best_feature] <= best_code
            stack.append(_Node(idx[~go_left], rec.depth + 1, node_id, False))
            stack.append(_Node(idx[go_left], rec.depth + 1, node_id, True))

        self.feature_ = np.asarray(arrays.feature, dtype=np.int64)
        self.threshold_ = np.asarray(arrays.threshold, dtype=np.float64)
        self.left_ = np.asarray(arrays.left, dtype=np.int64)
        self.right_ = np.asarray(arrays.right, dtype=np.int64)
        self.value_ = np.asarray(arrays.value, dtype=np.float64)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf outputs for raw (un-binned) feature rows."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            active = np.flatnonzero(self.feature_[node] != _LEAF)
            if active.size == 0:
                break
            cur = node[active]
            feat = self.feature_[cur]
            go_left = X[active, feat] < self.threshold_[cur]
            node[active] = np.where(go_left, self.left_[cur], self.right_[cur])
        return self.value_[node]

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self.feature_)

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`).

        Not a :class:`~repro.base.BaseEstimator`, so restore goes through
        the :meth:`__from_state_arrays__` classmethod; the construction
        hyper-parameters only matter at fit time and travel in the meta
        for fidelity.
        """
        meta = {
            "max_depth": int(self.max_depth),
            "min_samples_leaf": int(self.min_samples_leaf),
            "min_child_weight": float(self.min_child_weight),
            "reg_lambda": float(self.reg_lambda),
            "min_gain": float(self.min_gain),
        }
        arrays = {
            "feature": np.asarray(self.feature_, dtype=np.int64),
            "threshold": np.asarray(self.threshold_, dtype=np.float64),
            "left": np.asarray(self.left_, dtype=np.int64),
            "right": np.asarray(self.right_, dtype=np.int64),
            "value": np.asarray(self.value_, dtype=np.float64),
        }
        return meta, arrays, {}

    @classmethod
    def __from_state_arrays__(cls, meta, arrays, children) -> "GradientRegressionTree":
        tree = cls(
            max_depth=int(meta["max_depth"]),
            min_samples_leaf=int(meta["min_samples_leaf"]),
            min_child_weight=float(meta["min_child_weight"]),
            reg_lambda=float(meta["reg_lambda"]),
            min_gain=float(meta["min_gain"]),
        )
        tree.feature_ = np.asarray(arrays["feature"], dtype=np.int64)
        tree.threshold_ = np.asarray(arrays["threshold"], dtype=np.float64)
        tree.left_ = np.asarray(arrays["left"], dtype=np.int64)
        tree.right_ = np.asarray(arrays["right"], dtype=np.int64)
        tree.value_ = np.asarray(arrays["value"], dtype=np.float64)
        return tree
