"""Histogram gradient-boosted decision trees (LightGBM substitute)."""

from .gbdt import GradientBoostingClassifier
from .regression_tree import GradientRegressionTree

__all__ = ["GradientBoostingClassifier", "GradientRegressionTree"]
