"""Self-paced Ensemble (paper Algorithm 1) — the core contribution.

Training pipeline (Fig 1 of the paper):

1. cold start: fit ``f₀`` on a random balanced subset;
2. for ``i = 1 .. n−1``:
   a. hardness of every *majority* sample w.r.t. the running ensemble
      ``F_i = mean(f₀ .. f_{i−1})``;
   b. cut the majority into ``k`` equal-width hardness bins;
   c. self-paced factor ``α = tan(π/2 · i/n)`` (paper line 7; see
      :func:`tan_self_paced_factor` for the pinned (i, n) convention);
   d. sample ``|P| · p_ℓ/Σp`` majority points from bin ℓ, ``p_ℓ = 1/(h_ℓ+α)``;
   e. fit ``f_i`` on sampled majority ∪ all minority;
3. predict with the average probability of all base models.

Early iterations (α≈0) harmonise hardness — borderline samples dominate;
late iterations (α→∞) sample every bin equally — a "skeleton" of easy
samples is kept, preventing the outlier-overfitting that degrades
BalanceCascade (paper Fig 5/6).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from .. import telemetry
from ..base import BaseEstimator, ClassifierMixin
from ..ensemble.bagging import make_member_model
from ..fastpath import (
    BinnedSubset,
    CodeTable,
    PackedForest,
    ScoringMatrix,
    fastpath_enabled,
    shared_bin_context_for,
)
from ..parallel import ensemble_predict_proba, fit_ensemble_member
from ..utils.validation import (
    BinaryLabelEncoderMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
    encode_binary_labels,
)
from .binning import (
    HardnessBins,
    allocate_bin_samples,
    cut_hardness_bins,
    self_paced_bin_weights,
)
from .hardness import resolve_hardness

__all__ = [
    "SelfPacedEnsembleClassifier",
    "tan_self_paced_factor",
    "linear_self_paced_factor",
    "self_paced_under_sample",
]


def tan_self_paced_factor(iteration: int, n_iterations: int) -> float:
    """``α = tan(π/2 · i / n)`` growth schedule (paper line 7 of Algorithm 1).

    Convention (pinned by ``tests/test_core_self_paced.py``): ``n`` is the
    total ensemble size ``n_estimators`` and ``i`` the 1-based self-paced
    iteration, so :meth:`SelfPacedEnsembleClassifier.fit` evaluates the
    schedule at ``i = 1 .. n−1`` exactly as the paper's ``tan(iπ/2n)``.
    ``i = 0`` gives α = 0 (pure hardness harmonise); ``i = n`` evaluates tan
    at π/2 — effectively ∞, flattening the bin weights — but ``fit`` never
    reaches it: the last trained model uses the large-but-finite
    ``tan(π/2 · (n−1)/n)``. (Earlier revisions passed ``n_estimators − 1``
    here, which drove every final iteration — and, for ``n_estimators=2``,
    the *only* self-paced iteration — straight into the ∞ clamp.)
    Floating-point rounding can push ``π/2 · i/n`` a hair past π/2 where
    tan wraps negative, so the result is clamped to a large positive value.
    """
    if n_iterations <= 0:
        return 0.0
    value = float(np.tan(np.pi / 2.0 * min(iteration / n_iterations, 1.0)))
    return value if value >= 0.0 else 1e16


def linear_self_paced_factor(iteration: int, n_iterations: int) -> float:
    """Linear α growth in [0, 1] — an ablation alternative to ``tan``."""
    if n_iterations <= 0:
        return 0.0
    return iteration / n_iterations


_SCHEDULES = {"tan": tan_self_paced_factor, "linear": linear_self_paced_factor}


def _majority_union_minority_sample(
    index: int,
    rng: np.random.RandomState,
    X_sub_maj,
    y_unused,
    X_min,
) -> Tuple[np.ndarray, np.ndarray]:
    """Engine ``sample_fn`` for one SPE member: shuffled sampled-majority ∪
    all-minority training set (labels rebuilt as 0/1).

    With ``shared_binning`` both inputs are :class:`BinnedSubset` views of
    the same :class:`~repro.fastpath.SharedBinContext`; concatenation and
    shuffling then stay pure index arithmetic (no feature rows copied), and
    the RNG consumption is identical to the array path.
    """
    y_train = np.concatenate(
        [
            np.zeros(len(X_sub_maj), dtype=int),
            np.ones(len(X_min), dtype=int),
        ]
    )
    if isinstance(X_sub_maj, BinnedSubset):
        X_train = X_sub_maj.concat(X_min)
    else:
        X_train = np.vstack([X_sub_maj, X_min])
    perm = rng.permutation(len(y_train))
    return X_train[perm], y_train[perm]


def self_paced_under_sample(
    hardness: np.ndarray,
    k_bins: int,
    alpha: float,
    n_samples: int,
    rng: np.random.RandomState,
) -> Tuple[np.ndarray, HardnessBins]:
    """Indices of a self-paced under-sample of the given hardness population.

    Returns ``(selected_indices, bins)``; exposed as a standalone function so
    the Fig 3 bench (bin population / contribution under different α) can
    drive it directly.

    Bin membership is gathered with one stable argsort over the assignments
    instead of a per-bin ``np.flatnonzero`` scan (O(n log n) total instead
    of O(k·n)). A stable sort keeps equal keys in ascending original order,
    so each bin's member array — and therefore every ``rng.choice`` draw —
    is bit-identical to the per-bin-scan formulation (pinned by
    ``tests/test_fastpath_units.py``).
    """
    bins = cut_hardness_bins(hardness, k_bins)
    if bins.degenerate:
        n = min(n_samples, hardness.size)
        return rng.choice(hardness.size, size=n, replace=False), bins
    weights = self_paced_bin_weights(bins, alpha)
    counts = allocate_bin_samples(weights, bins.populations, n_samples)
    order = np.argsort(bins.assignments, kind="stable")
    starts = np.searchsorted(bins.assignments[order], np.arange(bins.k + 1))
    chosen: List[np.ndarray] = []
    for b in np.flatnonzero(counts > 0):
        members = order[starts[b] : starts[b + 1]]
        chosen.append(rng.choice(members, size=int(counts[b]), replace=False))
    if not chosen:
        n = min(n_samples, hardness.size)
        return rng.choice(hardness.size, size=n, replace=False), bins
    return np.concatenate(chosen), bins


class InMemoryMajorityAccess:
    """Majority-class data operations for the in-memory training path.

    Algorithm 1 touches the majority set in exactly three ways — gather rows
    by global index (cold start), gather rows by majority-local index
    (self-paced subsets), and score a model over every majority row. The fit
    loop is written against this three-method seam so the out-of-core path
    (:class:`repro.streaming.StreamingSelfPacedEnsembleClassifier`) can swap
    in block-streaming implementations while sharing the loop — and with it
    the RNG consumption order that makes the two paths bit-identical.

    Scoring fast path: the majority matrix is fixed across all iterations,
    so on the first tree-model score it is rank-coded exactly once into a
    :class:`~repro.fastpath.ScoringMatrix` (smallest unsigned dtype that
    fits each feature's cardinality — ``uint8`` up to 256 distinct values)
    and every subsequent score runs the packed kernel over the small integer
    codes. Threshold→code-cut mapping makes the routing exactly the raw
    float comparisons, so the returned probabilities are bit-identical to
    the legacy ``proba_fn`` path (gated by the fastpath equivalence suite);
    non-tree models, or ``REPRO_FASTPATH=0``, fall back to ``proba_fn``.

    With ``bin_context`` set (``shared_binning=True``), the gather methods
    hand out :class:`BinnedSubset` views so member trees fit directly on the
    shared pre-binned codes.
    """

    def __init__(
        self,
        X: np.ndarray,
        maj_idx: np.ndarray,
        proba_fn: Callable,
        bin_context=None,
    ):
        self._X = X
        self._maj_idx = maj_idx
        self._X_maj = X[maj_idx]
        self._proba_fn = proba_fn
        self._context = bin_context
        self._scoring: Optional[ScoringMatrix] = None
        self._fine_codes_maj: Optional[np.ndarray] = None

    def take_global(self, indices: np.ndarray) -> np.ndarray:
        """Rows by global dataset index (the cold-start draw)."""
        if self._context is not None:
            return self._context.view(indices)
        return self._X[indices]

    def take(self, local_indices: np.ndarray) -> np.ndarray:
        """Rows by majority-local index (the self-paced subsets)."""
        if self._context is not None:
            return self._context.view(self._maj_idx[local_indices])
        return self._X_maj[local_indices]

    def score(self, model) -> np.ndarray:
        """Positive-class probability of ``model`` on every majority row."""
        if fastpath_enabled():
            forest = PackedForest.from_estimators([model], np.array([0, 1]))
            if forest is not None and forest.n_features == self._X_maj.shape[1]:
                scored = self._score_shared_member(model, forest)
                if scored is not None:
                    return scored
                if self._scoring is None:
                    self._scoring = ScoringMatrix(self._X_maj)
                return self._scoring.score(forest)[:, 1]
        return self._proba_fn(model, self._X_maj)

    def _score_shared_member(self, model, forest) -> Optional[np.ndarray]:
        """Decision-table scoring for a member fitted against this fit's
        shared bin context: compile the member's (small) per-cell table,
        then score all majority rows with d LUT gathers over the cached
        fine codes — no tree traversal over rows at all."""
        if (
            self._context is None
            or getattr(model, "_shared_bin_context", None) is not self._context
        ):
            return None
        member_binner = getattr(model, "_member_binner", None)
        if member_binner is None:
            return None
        table = CodeTable.maybe_build(forest, member_binner)
        if table is None:
            return None
        if self._fine_codes_maj is None:
            self._fine_codes_maj = self._context.codes[self._maj_idx]
        remap = getattr(model, "_member_remap", None)
        fine = self._fine_codes_maj
        cells = np.zeros(len(fine), dtype=np.int64)
        for j in range(fine.shape[1]):
            if remap is None:
                cells += table.strides[j] * fine[:, j].astype(np.int64)
            else:
                cells += (remap[j] * table.strides[j])[fine[:, j]]
        return table.table[cells, 1]


class SelfPacedEnsembleClassifier(
    BaseEstimator, ClassifierMixin, BinaryLabelEncoderMixin
):
    """Self-paced Ensemble (SPE) for highly imbalanced binary classification.

    Parameters
    ----------
    estimator : classifier, default ``DecisionTreeClassifier()``
        Any probabilistic classifier following the library's API. The paper
        demonstrates C4.5, KNN, SVM, MLP, AdaBoost, Bagging, Random Forest
        and GBDT.
    n_estimators : int, default 10
        Number of base models ``n``. Training cost is ``n`` fits on
        ``2|P|``-sized subsets — the efficiency headline of Table V.
    k_bins : int, default 20
        Number of hardness bins ``k``. The paper finds performance stable
        for ``k ≥ 10`` (Fig 8).
    hardness : str or callable, default ``"absolute"``
        Hardness function ``H``; one of ``"absolute"``/``"squared"``/
        ``"cross_entropy"`` (aliases ``"AE"``/``"SE"``/``"CE"``) or any
        ``(y_true, proba_pos) -> np.ndarray``.
    alpha_schedule : str or callable, default ``"tan"``
        Growth of the self-paced factor; ``"tan"`` is the paper's
        ``tan(iπ/2n)``; a callable receives ``(iteration, n_iterations)``.
    include_cold_start : bool, default True
        Whether the random-under-sampling cold-start model ``f₀`` joins the
        final vote (the released reference implementation includes it;
        Algorithm 1's summary line formally averages ``f₁..f_n``).
    record_bins : bool, default False
        Keep per-iteration :class:`HardnessBins` and α in ``bin_history_``
        (used by the Fig 3 reproduction).
    n_jobs : int, optional
        Workers for the chunked scoring paths (per-iteration majority
        re-scoring and ``predict_proba``); ``None``/1 serial, ``-1`` all
        CPUs. Training stays iteration-sequential (Algorithm 1 is a
        cascade), so results are identical for every ``n_jobs``.
    backend : {"serial", "thread", "process"}, default "thread"
        Executor used by the scoring paths (see :mod:`repro.parallel`).
    chunk_size : int, optional
        Rows per scoring task; default
        :data:`repro.parallel.DEFAULT_CHUNK_SIZE`. Any value yields the
        same probabilities.
    shared_binning : bool, default False
        Bin the training matrix once (:class:`repro.fastpath.SharedBinContext`)
        and fit every member tree on row-subset views of the cached integer
        codes instead of re-running ``FeatureBinner.fit`` per member.
        Requires a tree base estimator. Bin edges are then computed over the
        full matrix rather than each member's subset, so the fitted ensemble
        is statistically equivalent but *not* bit-identical to the default
        path (which is why this is opt-in). RNG consumption is unchanged:
        the same rows are drawn for every member in both modes.
    random_state : int / RandomState, optional

    Notes
    -----
    Two further fastpath knobs act on SPE without changing any result:
    the packed-forest kernel behind ``predict_proba`` and the rank-coded
    majority scoring inside ``fit`` are bit-identical to the legacy
    per-tree loops and are on by default — set ``REPRO_FASTPATH=0`` (or use
    :func:`repro.fastpath.fastpath_disabled`) to fall back, e.g. for A/B
    timing (``benchmarks/bench_fastpath.py``).

    Attributes
    ----------
    estimators_ : fitted base models (trained on the internal 0/1 encoding).
    classes_ : sorted array of the two original labels; ``predict`` returns
        values from it and ``predict_proba`` columns follow its order.
        Arbitrary binary label alphabets ({-1, 1}, strings, ...) are
        accepted: ``fit`` maps the rarer label (tie → the second sorted
        label) to the internal minority code 1.
    minority_class_ / majority_class_ : the original labels assigned to the
        internal minority (1) / majority (0) codes.
    n_training_samples_ : total training samples over all base fits.
    train_curve_ : per-iteration eval AUCPRC (only with ``fit(..., eval_set)``).
    bin_history_ : list of 3-tuples ``(alpha, majority_bins, subset_bins)``
        (only with ``record_bins=True``) — the Fig 3 data.

    Examples
    --------
    >>> from repro.core import SelfPacedEnsembleClassifier
    >>> from repro.datasets import make_checkerboard
    >>> X, y = make_checkerboard(n_minority=100, n_majority=1000, random_state=0)
    >>> spe = SelfPacedEnsembleClassifier(n_estimators=10, random_state=0).fit(X, y)
    >>> proba = spe.predict_proba(X)[:, 1]
    """

    def __init__(
        self,
        estimator=None,
        n_estimators: int = 10,
        k_bins: int = 20,
        hardness: Union[str, Callable] = "absolute",
        alpha_schedule: Union[str, Callable] = "tan",
        include_cold_start: bool = True,
        record_bins: bool = False,
        n_jobs: Optional[int] = None,
        backend: str = "thread",
        chunk_size: Optional[int] = None,
        shared_binning: bool = False,
        random_state=None,
    ):
        self.estimator = estimator
        self.n_estimators = n_estimators
        self.k_bins = k_bins
        self.hardness = hardness
        self.alpha_schedule = alpha_schedule
        self.include_cold_start = include_cold_start
        self.record_bins = record_bins
        self.n_jobs = n_jobs
        self.backend = backend
        self.chunk_size = chunk_size
        self.shared_binning = shared_binning
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    def _resolve_schedule(self) -> Callable[[int, int], float]:
        if callable(self.alpha_schedule):
            return self.alpha_schedule
        try:
            return _SCHEDULES[self.alpha_schedule]
        except KeyError:
            raise ValueError(
                f"Unknown alpha_schedule {self.alpha_schedule!r}; expected one "
                f"of {sorted(_SCHEDULES)} or a callable (i, n) -> alpha"
            ) from None

    def _proba_pos(self, model, X: np.ndarray) -> np.ndarray:
        """Minority-class probability, robust to single-class base fits.

        Base models are always trained on the internal 0/1 encoding
        (0 = majority, 1 = minority) regardless of the original label
        alphabet, so the class vector here is the internal one — column 1 is
        the minority probability whatever ``classes_`` holds. Scored through
        the chunked inference engine so large majority sets stream in
        cache-friendly blocks, split across ``n_jobs`` workers.
        """
        return ensemble_predict_proba(
            [model],
            X,
            np.array([0, 1]),  # the internal encoding, not classes_
            n_jobs=self.n_jobs,
            backend=self.backend,
            chunk_size=self.chunk_size,
        )[:, 1]

    # ------------------------------------------------------------------ #
    def fit(self, X, y, eval_set: Optional[Tuple] = None) -> "SelfPacedEnsembleClassifier":
        """Fit the ensemble.

        With ``eval_set=(X_e, y_e)`` the running ensemble's AUCPRC on the
        eval data is recorded after every iteration in ``train_curve_``
        (the paper's Fig 5 training curves).
        """
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if self.k_bins < 1:
            raise ValueError("k_bins must be >= 1")
        X, y = check_X_y(X, y)
        classes, y, minority_idx = encode_binary_labels(y)
        self._set_label_encoding(classes, minority_idx)
        rng = check_random_state(self.random_state)
        maj_idx = np.flatnonzero(y == 0)
        min_idx = np.flatnonzero(y == 1)
        if len(min_idx) == 0 or len(maj_idx) == 0:
            raise ValueError("SPE requires both classes present (0=majority, 1=minority)")
        if self.shared_binning:
            with telemetry.stage_timer("shared_binning"):
                context = shared_bin_context_for(self.estimator, X, y=y)
        else:
            context = None
        majority = InMemoryMajorityAccess(
            X, maj_idx, self._proba_pos, bin_context=context
        )
        X_min = context.view(min_idx) if context is not None else X[min_idx]
        self._fit_loop(majority, X_min, maj_idx, rng, eval_set)
        self.n_features_in_ = X.shape[1]
        return self

    def _fit_loop(
        self,
        majority,
        X_min: np.ndarray,
        maj_idx: np.ndarray,
        rng: np.random.RandomState,
        eval_set: Optional[Tuple],
    ) -> None:
        """Algorithm 1 against the majority-access seam.

        ``majority`` supplies ``take_global`` / ``take`` / ``score`` (see
        :class:`InMemoryMajorityAccess`); everything else — RNG consumption
        order, hardness maths, bin bookkeeping — lives here exactly once, so
        the in-memory and streaming classifiers cannot drift apart.
        """
        hardness_fn = resolve_hardness(self.hardness)
        schedule = self._resolve_schedule()
        n_min = len(X_min)

        self.estimators_: List = []
        self.n_training_samples_ = 0
        # One entry per recorded iteration: (alpha, majority_bins, subset_bins)
        # — the bins over the full majority hardness and over the selected
        # subset's hardness (shape pinned by tests/test_core_self_paced.py).
        self.bin_history_: List[Tuple[float, HardnessBins, HardnessBins]] = []
        self.train_curve_: List[float] = []
        if eval_set is not None:
            X_eval = check_array(np.asarray(eval_set[0], dtype=float))
            # Eval labels arrive in the original alphabet; AUCPRC needs the
            # internal 0/1 codes.
            y_eval = self._encode_labels(np.asarray(eval_set[1]))
            proba_eval = np.zeros(X_eval.shape[0])

        sample_fn = partial(_majority_union_minority_sample, X_min=X_min)
        make_model = partial(make_member_model, estimator=self.estimator)

        def train_one(X_sub_maj: np.ndarray) -> None:
            """Fit one base model on sampled majority ∪ all minority."""
            with telemetry.stage_timer("member_fit"):
                model, n_trained = fit_ensemble_member(
                    len(self.estimators_), rng, X_sub_maj, None, sample_fn,
                    make_model,
                )
            self.estimators_.append(model)
            self.n_training_samples_ += n_trained

        # --- cold start: random balanced subset (Algorithm 1, line 2) ----
        cold = rng.choice(maj_idx, size=min(n_min, len(maj_idx)), replace=False)
        train_one(majority.take_global(cold))
        with telemetry.stage_timer("ensemble_score"):
            proba_maj = majority.score(self.estimators_[0])
        if eval_set is not None:
            proba_eval = self._proba_pos(self.estimators_[0], X_eval)
            self._record_eval(y_eval, proba_eval)

        # --- self-paced iterations (Algorithm 1, lines 3-11) --------------
        # Schedule convention: α_i = tan(π/2 · i/n) with n = n_estimators,
        # the paper's tan(iπ/2n). Every trained iteration gets a finite α;
        # the π/2 clamp inside the schedule guards only the i = n limit.
        n_iter = self.n_estimators
        y_maj_zeros = np.zeros(len(maj_idx))
        for i in range(1, self.n_estimators):
            hardness = hardness_fn(y_maj_zeros, proba_maj)
            alpha = schedule(i, n_iter)
            with telemetry.stage_timer("self_paced_sampling"):
                selected, bins = self_paced_under_sample(
                    hardness, self.k_bins, alpha, n_min, rng
                )
            if self.record_bins:
                sub_bins = cut_hardness_bins(hardness[selected], self.k_bins)
                self.bin_history_.append((alpha, bins, sub_bins))
            train_one(majority.take(selected))
            # Incremental running-average update (Algorithm 1, line 4).
            n_models = len(self.estimators_)
            with telemetry.stage_timer("ensemble_score"):
                latest = majority.score(self.estimators_[-1])
            proba_maj = (proba_maj * (n_models - 1) + latest) / n_models
            if eval_set is not None:
                latest_eval = self._proba_pos(self.estimators_[-1], X_eval)
                proba_eval = (proba_eval * (n_models - 1) + latest_eval) / n_models
                self._record_eval(y_eval, proba_eval)

    def _record_eval(self, y_eval: np.ndarray, proba_eval: np.ndarray) -> None:
        from ..metrics import average_precision_score

        self.train_curve_.append(float(average_precision_score(y_eval, proba_eval)))

    # ------------------------------------------------------------------ #
    def _voting_estimators(self) -> List:
        if self.include_cold_start or len(self.estimators_) == 1:
            return self.estimators_
        return self.estimators_[1:]

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["estimators_"])
        X = check_array(X)
        internal = ensemble_predict_proba(
            self._voting_estimators(),
            X,
            np.array([0, 1]),  # members are fitted on the internal encoding
            n_jobs=self.n_jobs,
            backend=self.backend,
            chunk_size=self.chunk_size,
        )
        return self._decode_proba(internal)

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __serving_ensemble__(self):
        """(voting members, member class vector) for serving-time warm-up —
        the exact pair ``predict_proba`` feeds to the packed-forest cache."""
        check_is_fitted(self, ["estimators_"])
        return self._voting_estimators(), np.array([0, 1])

    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`)."""
        check_is_fitted(self, ["estimators_"])
        from ..persistence.state import export_ensemble_state

        meta, arrays, children = export_ensemble_state(self)
        meta["n_training_samples"] = int(getattr(self, "n_training_samples_", 0))
        return meta, arrays, children

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        from ..persistence.state import restore_ensemble_state

        restore_ensemble_state(self, meta, arrays, children)
        self.n_training_samples_ = int(meta.get("n_training_samples", 0))
