"""Classification hardness functions (paper Section IV).

Hardness ``H(x, y, F)`` is any *decomposable* error of a trained classifier
``F`` on a sample: the dataset-level error must be the sum of per-sample
hardness values. The paper evaluates three (Section VI-C4, Fig 8):

* Absolute Error   ``H_AE = |F(x) − y|``   (the default everywhere)
* Squared Error    ``H_SE = (F(x) − y)²``  (Brier score)
* Cross Entropy    ``H_CE = −y·log F(x) − (1−y)·log(1−F(x))``

All take the true labels and the ensemble's positive-class probability and
return a non-negative per-sample array. Custom callables with the same
signature plug straight into :class:`SelfPacedEnsembleClassifier`.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

import numpy as np

__all__ = [
    "absolute_error",
    "squared_error",
    "cross_entropy",
    "HARDNESS_FUNCTIONS",
    "resolve_hardness",
]

HardnessFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]

_EPS = 1e-12


def absolute_error(y_true: np.ndarray, proba_pos: np.ndarray) -> np.ndarray:
    """``|F(x) − y|`` — bounded in [0, 1]."""
    return np.abs(proba_pos - y_true)


def squared_error(y_true: np.ndarray, proba_pos: np.ndarray) -> np.ndarray:
    """``(F(x) − y)²`` (Brier score) — bounded in [0, 1]."""
    diff = proba_pos - y_true
    return diff * diff


def cross_entropy(y_true: np.ndarray, proba_pos: np.ndarray) -> np.ndarray:
    """``−y·log F(x) − (1−y)·log(1−F(x))`` — unbounded above.

    Probabilities are clipped away from {0, 1} so noise samples get large
    but finite hardness (and equal-width binning over the observed range
    stays well defined).
    """
    p = np.clip(proba_pos, _EPS, 1.0 - _EPS)
    return -(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p))


HARDNESS_FUNCTIONS: Dict[str, HardnessFunction] = {
    "absolute": absolute_error,
    "squared": squared_error,
    "cross_entropy": cross_entropy,
}

#: paper-style aliases
HARDNESS_FUNCTIONS["AE"] = absolute_error
HARDNESS_FUNCTIONS["SE"] = squared_error
HARDNESS_FUNCTIONS["CE"] = cross_entropy


def resolve_hardness(hardness: Union[str, HardnessFunction]) -> HardnessFunction:
    """Resolve a hardness name or pass through a custom callable."""
    if callable(hardness):
        return hardness
    try:
        return HARDNESS_FUNCTIONS[hardness]
    except KeyError:
        raise ValueError(
            f"Unknown hardness function {hardness!r}; expected one of "
            f"{sorted(set(HARDNESS_FUNCTIONS))} or a callable "
            "(y_true, proba_pos) -> hardness"
        ) from None
