"""Hardness binning and self-paced sampling weights (paper Section V).

The majority set is cut into ``k`` equal-width bins over the observed
hardness range (the paper's ``B_ℓ`` with ``H ∈ [0, 1]`` w.l.o.g.; using the
observed range also accommodates the unbounded cross-entropy hardness).
Bin ``ℓ`` receives unnormalised sampling weight ``p_ℓ = 1 / (h_ℓ + α)``
where ``h_ℓ`` is the bin's *average* hardness contribution and ``α`` the
self-paced factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["HardnessBins", "cut_hardness_bins", "self_paced_bin_weights", "allocate_bin_samples"]


@dataclass
class HardnessBins:
    """Result of binning hardness values.

    Attributes
    ----------
    assignments : (n,) bin index of every sample, in ``[0, k)``.
    populations : (k,) number of samples per bin.
    avg_hardness : (k,) mean hardness per bin (NaN-free: 0 for empty bins).
    total_contribution : (k,) summed hardness per bin (Fig 3's right panels).
    edges : (k+1,) bin boundaries over the observed hardness range.
    """

    assignments: np.ndarray
    populations: np.ndarray
    avg_hardness: np.ndarray
    total_contribution: np.ndarray
    edges: np.ndarray

    @property
    def k(self) -> int:
        """Number of hardness bins."""
        return len(self.populations)

    @property
    def degenerate(self) -> bool:
        """True when all hardness values coincide (no usable distribution)."""
        return bool(self.edges[0] == self.edges[-1])


def cut_hardness_bins(hardness: np.ndarray, k: int) -> HardnessBins:
    """Split samples into ``k`` equal-width bins over ``[min(H), max(H)]``."""
    if k < 1:
        raise ValueError("k (number of bins) must be >= 1")
    hardness = np.asarray(hardness, dtype=float)
    if hardness.ndim != 1 or hardness.size == 0:
        raise ValueError("hardness must be a non-empty 1D array")
    lo, hi = float(hardness.min()), float(hardness.max())
    edges = np.linspace(lo, hi, k + 1)
    if hi > lo:
        width = (hi - lo) / k
        assignments = np.minimum(((hardness - lo) / width).astype(int), k - 1)
    else:
        assignments = np.zeros(hardness.size, dtype=int)
    populations = np.bincount(assignments, minlength=k)
    totals = np.bincount(assignments, weights=hardness, minlength=k)
    with np.errstate(invalid="ignore"):
        avg = np.where(populations > 0, totals / np.maximum(populations, 1), 0.0)
    return HardnessBins(
        assignments=assignments,
        populations=populations,
        avg_hardness=avg,
        total_contribution=totals,
        edges=edges,
    )


def self_paced_bin_weights(bins: HardnessBins, alpha: float) -> np.ndarray:
    """Unnormalised sampling weights ``p_ℓ = 1 / (h_ℓ + α)``; 0 for empty bins.

    ``α = 0`` reproduces pure hardness harmonising (each bin contributes the
    same total hardness in expectation); ``α → ∞`` flattens the weights so
    every non-empty bin is sampled equally — keeping the easy-sample
    "skeleton" the paper credits for SPE's noise robustness.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    with np.errstate(divide="ignore"):
        weights = 1.0 / (bins.avg_hardness + alpha)
    # h_ℓ = α = 0 gives p_ℓ = 1/0 → the harmonise limit where a zero-hardness
    # bin dominates the draw (paper Fig 3(b): the trivial bin floods the
    # subset). Represent it by a huge finite weight; the allocator caps it at
    # the bin population and redistributes the remainder.
    weights[~np.isfinite(weights)] = 1e18
    weights[bins.populations == 0] = 0.0
    if weights.sum() <= 0:
        weights = (bins.populations > 0).astype(float)
    return weights


def allocate_bin_samples(
    weights: np.ndarray,
    populations: np.ndarray,
    n_total: int,
) -> np.ndarray:
    """Integer per-bin sample counts ``≈ n_total · p_ℓ / Σp``, capped by bin size.

    Uses largest-remainder rounding, then redistributes any shortfall caused
    by capping to the remaining bins (proportionally to their weight) so the
    total equals ``min(n_total, Σ populations)`` exactly — the deterministic
    refinement of the paper's ``p_ℓ/Σp · |P|`` allocation.
    """
    weights = np.asarray(weights, dtype=float)
    populations = np.asarray(populations, dtype=int)
    if n_total < 0:
        raise ValueError("n_total must be non-negative")
    k = len(weights)
    counts = np.zeros(k, dtype=int)
    remaining = min(int(n_total), int(populations.sum()))
    active = (weights > 0) & (populations > 0)
    while remaining > 0 and active.any():
        w = np.where(active, weights, 0.0)
        share = w / w.sum() * remaining
        take = np.minimum(np.floor(share).astype(int), populations - counts)
        if take.sum() == 0:
            # Largest-remainder step: hand out one sample at a time.
            order = np.argsort(-(share - np.floor(share)), kind="stable")
            for bin_idx in order:
                if remaining == 0:
                    break
                if active[bin_idx] and counts[bin_idx] < populations[bin_idx]:
                    counts[bin_idx] += 1
                    remaining -= 1
            active &= counts < populations
            continue
        counts += take
        remaining -= int(take.sum())
        active &= counts < populations
    return counts
