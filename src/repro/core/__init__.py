"""The paper's primary contribution: Self-paced Ensemble (SPE)."""

from .binning import (
    HardnessBins,
    allocate_bin_samples,
    cut_hardness_bins,
    self_paced_bin_weights,
)
from .hardness import (
    HARDNESS_FUNCTIONS,
    absolute_error,
    cross_entropy,
    resolve_hardness,
    squared_error,
)
from .sampler import SelfPacedUnderSampler
from .self_paced import (
    SelfPacedEnsembleClassifier,
    linear_self_paced_factor,
    self_paced_under_sample,
    tan_self_paced_factor,
)

__all__ = [
    "HardnessBins",
    "allocate_bin_samples",
    "cut_hardness_bins",
    "self_paced_bin_weights",
    "HARDNESS_FUNCTIONS",
    "absolute_error",
    "cross_entropy",
    "resolve_hardness",
    "squared_error",
    "SelfPacedEnsembleClassifier",
    "SelfPacedUnderSampler",
    "linear_self_paced_factor",
    "self_paced_under_sample",
    "tan_self_paced_factor",
]
