"""Self-paced under-sampling exposed through the sampler API.

One round of the paper's hardness-harmonised under-sampling as a standalone
``fit_resample`` object, so the mechanism composes with anything that
consumes samplers (e.g. :class:`repro.imbalance_ensemble.ResampleEnsembleClassifier`)
and can be compared head-to-head with the re-samplers of Table V.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..base import clone
from ..sampling.base import BaseSampler, split_classes
from ..tree import DecisionTreeClassifier
from ..utils.validation import check_random_state
from .hardness import resolve_hardness
from .self_paced import self_paced_under_sample

__all__ = ["SelfPacedUnderSampler"]


class SelfPacedUnderSampler(BaseSampler):
    """Balanced under-sampling guided by classification hardness.

    Parameters
    ----------
    estimator : classifier, optional
        Probe model used to score majority hardness. A fresh clone is fitted
        on a random balanced subset (the cold start of Algorithm 1). Pass an
        **already fitted** classifier via ``prefit_estimator`` to reuse an
        existing ensemble instead.
    alpha : float, default 0.0
        Self-paced factor: 0 harmonises the per-bin hardness contribution;
        large values flatten the bin weights toward uniform.
    k_bins : int, default 20
        Number of hardness bins.
    hardness : str or callable, default "absolute"

    Examples
    --------
    >>> from repro.core import SelfPacedUnderSampler
    >>> from repro.datasets import make_checkerboard
    >>> X, y = make_checkerboard(100, 1000, random_state=0)
    >>> X_res, y_res = SelfPacedUnderSampler(random_state=0).fit_resample(X, y)
    >>> int((y_res == 0).sum()) == int((y_res == 1).sum())
    True
    """

    def __init__(
        self,
        estimator=None,
        prefit_estimator=None,
        alpha: float = 0.0,
        k_bins: int = 20,
        hardness: Union[str, Callable] = "absolute",
        random_state=None,
    ):
        self.estimator = estimator
        self.prefit_estimator = prefit_estimator
        self.alpha = alpha
        self.k_bins = k_bins
        self.hardness = hardness
        self.random_state = random_state

    def _probe(self, X, y, maj, mino, rng):
        """Classifier whose errors define majority hardness."""
        if self.prefit_estimator is not None:
            return self.prefit_estimator
        base = (
            DecisionTreeClassifier(max_depth=10)
            if self.estimator is None
            else self.estimator
        )
        model = clone(base)
        if hasattr(model, "random_state"):
            model.random_state = rng.randint(np.iinfo(np.int32).max)
        cold = rng.choice(maj, size=min(len(mino), len(maj)), replace=False)
        idx = rng.permutation(np.concatenate([cold, mino]))
        model.fit(X[idx], y[idx])
        return model

    def _fit_resample(self, X, y):
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        probe = self._probe(X, y, maj, mino, rng)
        proba = probe.predict_proba(X[maj])
        pos_col = list(np.asarray(probe.classes_).tolist()).index(1)
        hardness_fn = resolve_hardness(self.hardness)
        hardness = hardness_fn(np.zeros(len(maj)), proba[:, pos_col])
        selected, _ = self_paced_under_sample(
            hardness, self.k_bins, self.alpha, len(mino), rng
        )
        idx = rng.permutation(np.concatenate([maj[selected], mino]))
        self.sample_indices_ = idx
        return X[idx], y[idx]
