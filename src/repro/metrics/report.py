"""Metric registry and report helpers used by the experiment harness.

``PAPER_METRICS`` maps the four criteria reported throughout the paper's
evaluation (AUCPRC, F1, GM, MCC) to callables with the uniform signature
``metric(y_true, y_pred, y_score) -> float``.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

import numpy as np

from .classification import (
    accuracy_score,
    balanced_accuracy_score,
    f1_score,
    geometric_mean_score,
    matthews_corrcoef,
    precision_score,
    recall_score,
    specificity_score,
)
from .confusion import binary_confusion
from .ranking import average_precision_score, roc_auc_score

__all__ = ["PAPER_METRICS", "ALL_METRICS", "evaluate_classifier", "classification_report"]


PAPER_METRICS: Dict[str, Callable] = {
    "AUCPRC": lambda y_true, y_pred, y_score: average_precision_score(y_true, y_score),
    "F1": lambda y_true, y_pred, y_score: f1_score(y_true, y_pred),
    "GM": lambda y_true, y_pred, y_score: geometric_mean_score(y_true, y_pred),
    "MCC": lambda y_true, y_pred, y_score: matthews_corrcoef(y_true, y_pred),
}

ALL_METRICS: Dict[str, Callable] = {
    **PAPER_METRICS,
    "Accuracy": lambda y_true, y_pred, y_score: accuracy_score(y_true, y_pred),
    "BalancedAccuracy": lambda y_true, y_pred, y_score: balanced_accuracy_score(
        y_true, y_pred
    ),
    "Precision": lambda y_true, y_pred, y_score: precision_score(y_true, y_pred),
    "Recall": lambda y_true, y_pred, y_score: recall_score(y_true, y_pred),
    "Specificity": lambda y_true, y_pred, y_score: specificity_score(y_true, y_pred),
    "ROCAUC": lambda y_true, y_pred, y_score: roc_auc_score(y_true, y_score),
}


def evaluate_classifier(
    estimator,
    X,
    y,
    *,
    metrics: Optional[Mapping[str, Callable]] = None,
    threshold: float = 0.5,
) -> Dict[str, float]:
    """Score a fitted probabilistic classifier on ``(X, y)``.

    Predictions are thresholded from ``predict_proba`` so that ranking and
    threshold metrics are always consistent with each other.
    """
    metrics = PAPER_METRICS if metrics is None else metrics
    y = np.asarray(y)
    y_score = estimator.predict_proba(X)[:, 1]
    y_pred = (y_score >= threshold).astype(int)
    return {
        name: float(fn(y, y_pred, y_score)) for name, fn in metrics.items()
    }


def classification_report(y_true, y_pred, *, digits: int = 3) -> str:
    """Human-readable binary classification report."""
    c = binary_confusion(y_true, y_pred)
    rows = [
        ("precision", precision_score(y_true, y_pred)),
        ("recall", recall_score(y_true, y_pred)),
        ("specificity", specificity_score(y_true, y_pred)),
        ("f1", f1_score(y_true, y_pred)),
        ("g-mean", geometric_mean_score(y_true, y_pred)),
        ("mcc", matthews_corrcoef(y_true, y_pred)),
        ("accuracy", accuracy_score(y_true, y_pred)),
    ]
    width = max(len(name) for name, _ in rows)
    lines = [
        f"confusion: TP={c.tp} FP={c.fp} FN={c.fn} TN={c.tn}",
        "-" * (width + 9),
    ]
    for name, value in rows:
        lines.append(f"{name:<{width}}  {value:.{digits}f}")
    return "\n".join(lines)
