"""Evaluation criteria from the paper (Section II) plus common extras."""

from .classification import (
    accuracy_score,
    balanced_accuracy_score,
    f1_score,
    fbeta_score,
    geometric_mean_score,
    geometric_mean_sensitivity_specificity,
    matthews_corrcoef,
    precision_score,
    recall_score,
    specificity_score,
)
from .confusion import BinaryConfusion, binary_confusion, confusion_matrix
from .ranking import (
    auc,
    average_precision_score,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
    threshold_for_precision,
)
from .report import (
    ALL_METRICS,
    PAPER_METRICS,
    classification_report,
    evaluate_classifier,
)

__all__ = [
    "accuracy_score",
    "balanced_accuracy_score",
    "f1_score",
    "fbeta_score",
    "geometric_mean_score",
    "geometric_mean_sensitivity_specificity",
    "matthews_corrcoef",
    "precision_score",
    "recall_score",
    "specificity_score",
    "BinaryConfusion",
    "binary_confusion",
    "confusion_matrix",
    "auc",
    "average_precision_score",
    "precision_recall_curve",
    "roc_auc_score",
    "roc_curve",
    "threshold_for_precision",
    "ALL_METRICS",
    "PAPER_METRICS",
    "classification_report",
    "evaluate_classifier",
]
