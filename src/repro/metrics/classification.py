"""Threshold metrics used in the paper: precision, recall, F1, G-mean, MCC.

All metrics follow the binary {0, 1} convention with class 1 as the positive
(minority) class, exactly as the paper defines them in Section II.
"""

from __future__ import annotations

import math

import numpy as np

from ..utils.validation import column_or_1d
from .confusion import binary_confusion

__all__ = [
    "accuracy_score",
    "precision_score",
    "recall_score",
    "specificity_score",
    "f1_score",
    "fbeta_score",
    "geometric_mean_score",
    "geometric_mean_sensitivity_specificity",
    "matthews_corrcoef",
    "balanced_accuracy_score",
]


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of correct predictions."""
    y_true = column_or_1d(y_true)
    y_pred = column_or_1d(y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred, *, zero_division: float = 0.0) -> float:
    """``TP / (TP + FP)``."""
    c = binary_confusion(y_true, y_pred)
    denom = c.tp + c.fp
    return c.tp / denom if denom else zero_division


def recall_score(y_true, y_pred, *, zero_division: float = 0.0) -> float:
    """``TP / (TP + FN)`` (sensitivity, true-positive rate)."""
    c = binary_confusion(y_true, y_pred)
    denom = c.tp + c.fn
    return c.tp / denom if denom else zero_division


def specificity_score(y_true, y_pred, *, zero_division: float = 0.0) -> float:
    """``TN / (TN + FP)`` (true-negative rate)."""
    c = binary_confusion(y_true, y_pred)
    denom = c.tn + c.fp
    return c.tn / denom if denom else zero_division


def fbeta_score(y_true, y_pred, *, beta: float = 1.0, zero_division: float = 0.0) -> float:
    """Weighted harmonic mean of precision and recall."""
    p = precision_score(y_true, y_pred, zero_division=zero_division)
    r = recall_score(y_true, y_pred, zero_division=zero_division)
    if p == 0.0 and r == 0.0:
        return zero_division
    b2 = beta * beta
    denom = b2 * p + r
    if denom == 0.0:
        return zero_division
    return (1 + b2) * p * r / denom


def f1_score(y_true, y_pred, *, zero_division: float = 0.0) -> float:
    """``2 * P * R / (P + R)`` — the paper's F1-score."""
    return fbeta_score(y_true, y_pred, beta=1.0, zero_division=zero_division)


def geometric_mean_score(y_true, y_pred, *, zero_division: float = 0.0) -> float:
    """``sqrt(precision * recall)`` — the paper's G-mean (GM) definition.

    Note: the paper defines G-mean over precision and recall (Section II);
    the more common sensitivity/specificity variant is available as
    :func:`geometric_mean_sensitivity_specificity`.
    """
    p = precision_score(y_true, y_pred, zero_division=zero_division)
    r = recall_score(y_true, y_pred, zero_division=zero_division)
    return math.sqrt(p * r)


def geometric_mean_sensitivity_specificity(y_true, y_pred) -> float:
    """``sqrt(TPR * TNR)`` — the conventional imbalanced-learning G-mean."""
    return math.sqrt(recall_score(y_true, y_pred) * specificity_score(y_true, y_pred))


def matthews_corrcoef(y_true, y_pred) -> float:
    """Matthews correlation coefficient, 0.0 when any marginal is empty."""
    c = binary_confusion(y_true, y_pred)
    num = c.tp * c.tn - c.fp * c.fn
    denom = (
        (c.tp + c.fp) * (c.tp + c.fn) * (c.tn + c.fp) * (c.tn + c.fn)
    )
    if denom == 0:
        return 0.0
    return num / math.sqrt(denom)


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Mean of sensitivity and specificity."""
    return 0.5 * (recall_score(y_true, y_pred) + specificity_score(y_true, y_pred))
