"""Ranking metrics: PR curve, AUCPRC (average precision), ROC, AUC.

``average_precision_score`` is the paper's AUCPRC: the step-wise area under
the precision-recall curve, the standard estimator that avoids the optimistic
linear interpolation Davis & Goadrich (2006) warn about.
"""

from __future__ import annotations

import warnings
from typing import Tuple

import numpy as np

from ..exceptions import DataValidationError, UndefinedMetricWarning
from ..utils.validation import column_or_1d

__all__ = [
    "precision_recall_curve",
    "average_precision_score",
    "roc_curve",
    "roc_auc_score",
    "auc",
    "threshold_for_precision",
]


def _check_ranking_inputs(y_true, y_score) -> Tuple[np.ndarray, np.ndarray]:
    y_true = column_or_1d(y_true, name="y_true").astype(int)
    y_score = column_or_1d(y_score, name="y_score").astype(float)
    if y_true.shape[0] != y_score.shape[0]:
        raise DataValidationError(
            f"y_true and y_score length mismatch: {y_true.shape[0]} != "
            f"{y_score.shape[0]}"
        )
    if not np.isin(np.unique(y_true), (0, 1)).all():
        raise DataValidationError("ranking metrics require binary labels in {0, 1}")
    return y_true, y_score


def _single_class_nan(metric: str, y_true: np.ndarray) -> bool:
    """True (after emitting :class:`UndefinedMetricWarning`) when ``y_true``
    holds a single class, making ``metric`` undefined for the window.

    Monitoring windows over highly imbalanced streams are routinely
    all-majority; callers return ``nan`` instead of raising so a windowed
    evaluator degrades to "no signal yet" rather than crashing the loop.
    """
    if np.unique(y_true).size >= 2:
        return False
    present = "positives" if y_true.size and y_true[0] == 1 else "negatives"
    warnings.warn(
        f"{metric} is undefined for a window containing only {present}; "
        "returning nan",
        UndefinedMetricWarning,
        stacklevel=3,
    )
    return True


def _binary_curve(y_true, y_score) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cumulative TP/FP counts at each distinct threshold, descending."""
    order = np.argsort(-y_score, kind="mergesort")
    y_true = y_true[order]
    y_score = y_score[order]
    # Indices where the score changes; each marks a distinct threshold.
    distinct = np.flatnonzero(np.diff(y_score)) if y_score.size > 1 else np.array([], int)
    threshold_idx = np.concatenate([distinct, [y_true.size - 1]])
    tps = np.cumsum(y_true)[threshold_idx].astype(float)
    fps = (threshold_idx + 1) - tps
    return fps, tps, y_score[threshold_idx]


def precision_recall_curve(y_true, y_score):
    """Precision/recall pairs for every distinct threshold.

    Returns ``(precision, recall, thresholds)``, ending with the conventional
    ``(1, 0)`` anchor point, recall decreasing along the arrays.

    Length contract (sklearn-style, pinned by
    ``tests/test_metrics_ranking.py``): ``precision`` and ``recall`` have
    one entry **more** than ``thresholds`` — the final ``(1, 0)`` anchor has
    no threshold. For ``i < len(thresholds)``, ``precision[i]`` /
    ``recall[i]`` are the metrics when classifying positive at
    ``score >= thresholds[i]``; ``thresholds`` is sorted ascending, so index
    0 is the lowest (highest-recall) operating point. Serving-threshold
    tuning (:func:`repro.serving.threshold_for_precision`) relies on this
    alignment.

    A window with **no positives** (routine for monitoring windows over
    highly imbalanced traffic) does not raise: it emits
    :class:`~repro.exceptions.UndefinedMetricWarning` and returns the
    curve with every ``recall`` entry ``nan`` (recall is 0/0 there);
    ``precision`` stays well-defined (0 at every real threshold, the
    conventional 1 at the anchor) and the length contract holds.
    """
    y_true, y_score = _check_ranking_inputs(y_true, y_score)
    n_pos = int(y_true.sum())
    if n_pos == 0:
        _single_class_nan("precision_recall_curve recall", y_true)
        if y_true.size == 0:
            return np.array([1.0]), np.array([np.nan]), np.array([])
        fps, tps, thresholds = _binary_curve(y_true, y_score)
        precision = np.concatenate([(tps / (tps + fps))[::-1], [1.0]])
        recall = np.full(precision.shape, np.nan)
        return precision, recall, thresholds[::-1]
    fps, tps, thresholds = _binary_curve(y_true, y_score)
    precision = tps / (tps + fps)
    recall = tps / n_pos
    # Reverse so recall is decreasing, then append the (1, 0) anchor.
    precision = np.concatenate([precision[::-1], [1.0]])
    recall = np.concatenate([recall[::-1], [0.0]])
    return precision, recall, thresholds[::-1]


def average_precision_score(y_true, y_score) -> float:
    """AUCPRC — step-wise area under the precision-recall curve.

    ``AP = sum_k (R_k - R_{k-1}) * P_k`` over thresholds in decreasing score
    order; equivalently the mean precision at the rank of each positive.

    Returns ``nan`` (with :class:`~repro.exceptions.UndefinedMetricWarning`)
    for a single-class window — ranking quality is meaningless with nothing
    to rank against, and monitoring windows are routinely all-majority.
    """
    y_true, y_score = _check_ranking_inputs(y_true, y_score)
    if _single_class_nan("average_precision_score", y_true):
        return float("nan")
    precision, recall, _ = precision_recall_curve(y_true, y_score)
    # recall is decreasing; -diff gives the positive recall increments.
    return float(-np.sum(np.diff(recall) * precision[:-1]))


def roc_curve(y_true, y_score):
    """ROC curve ``(fpr, tpr, thresholds)`` with the (0,0) anchor prepended."""
    y_true, y_score = _check_ranking_inputs(y_true, y_score)
    fps, tps, thresholds = _binary_curve(y_true, y_score)
    n_pos = tps[-1] if tps.size else 0.0
    n_neg = fps[-1] if fps.size else 0.0
    if n_pos == 0 or n_neg == 0:
        raise DataValidationError("roc_curve needs both classes present")
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def auc(x, y) -> float:
    """Trapezoidal area under a curve given by points ``(x, y)``."""
    x = column_or_1d(x, name="x").astype(float)
    y = column_or_1d(y, name="y").astype(float)
    if x.shape[0] < 2:
        raise DataValidationError("auc needs at least 2 points")
    dx = np.diff(x)
    if np.any(dx < 0) and np.any(dx > 0):
        raise DataValidationError("x must be monotonic for auc")
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2.x rename
    return float(abs(trapezoid(y, x)))


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve (equals the rank-sum statistic).

    Returns ``nan`` (with :class:`~repro.exceptions.UndefinedMetricWarning`)
    for a single-class window instead of raising; :func:`roc_curve` itself
    still raises, since a curve with an undefined axis has no useful shape.
    """
    y_true, y_score = _check_ranking_inputs(y_true, y_score)
    if _single_class_nan("roc_auc_score", y_true):
        return float("nan")
    fpr, tpr, _ = roc_curve(y_true, y_score)
    return auc(fpr, tpr)


def threshold_for_precision(y_true, y_score, min_precision: float) -> float:
    """Lowest decision threshold whose precision meets ``min_precision``.

    Relies on the documented length contract of
    :func:`precision_recall_curve`: ``precision[i]`` is the precision when
    classifying positive at score ``>= thresholds[i]`` for every
    ``i < len(thresholds)`` (the final ``(1, 0)`` anchor has no
    threshold). Scanning from index 0 — the lowest threshold, hence the
    highest recall — the first point meeting the precision target is the
    highest-recall operating point that meets it.

    Edge-case contract (pinned by ``tests/test_serving.py``):

    * **Unreachable target** — when no real threshold reaches
      ``min_precision``, a :class:`ValueError` is raised naming the best
      achievable precision. The curve's trailing ``(1, 0)`` anchor is
      *excluded* from the scan: it has no threshold (no score classifies
      nothing as positive), so "precision 1 by predicting nothing" never
      masquerades as an operating point.
    * **Ties at the boundary** — equal scores collapse into a single
      threshold whose precision already accounts for every tied row, so
      the returned threshold always admits the whole tie group; a target
      only separable *inside* a tie group resolves to the next threshold
      that actually meets it (or raises).
    """
    precision, _, thresholds = precision_recall_curve(y_true, y_score)
    ok = np.flatnonzero(precision[: len(thresholds)] >= min_precision)
    if ok.size == 0:
        achievable = precision[: len(thresholds)]
        best = float(achievable.max()) if achievable.size else 0.0
        raise ValueError(
            f"no threshold reaches precision {min_precision}; max achievable "
            f"is {best}"
        )
    return float(thresholds[ok[0]])
