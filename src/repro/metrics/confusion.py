"""Confusion-matrix primitives (paper Table I)."""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

import numpy as np

from ..exceptions import DataValidationError
from ..utils.validation import column_or_1d, unique_labels

__all__ = ["confusion_matrix", "BinaryConfusion", "binary_confusion"]


def confusion_matrix(y_true, y_pred, *, labels: Optional[Sequence] = None) -> np.ndarray:
    """Confusion matrix ``C`` with ``C[i, j]`` = #samples of class ``labels[i]``
    predicted as class ``labels[j]``.

    Rows are true labels, columns predictions, matching the paper's Table I
    orientation when ``labels=[1, 0]`` (positive first).
    """
    y_true = column_or_1d(y_true, name="y_true")
    y_pred = column_or_1d(y_pred, name="y_pred")
    if y_true.shape[0] != y_pred.shape[0]:
        raise DataValidationError(
            f"y_true and y_pred length mismatch: {y_true.shape[0]} != {y_pred.shape[0]}"
        )
    if labels is None:
        labels = unique_labels(y_true, y_pred)
    labels = np.asarray(labels)
    n = labels.shape[0]
    index = {label: i for i, label in enumerate(labels.tolist())}
    cm = np.zeros((n, n), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            cm[index[t], index[p]] += 1
    return cm


class BinaryConfusion(NamedTuple):
    """True/false positive/negative counts for the binary {0, 1} convention."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def n_positive(self) -> int:
        """Number of positive-class rows (TP + FN)."""
        return self.tp + self.fn

    @property
    def n_negative(self) -> int:
        """Number of negative-class rows (TN + FP)."""
        return self.fp + self.tn


def binary_confusion(y_true, y_pred) -> BinaryConfusion:
    """Vectorised binary confusion counts with class 1 as positive."""
    y_true = column_or_1d(y_true, name="y_true").astype(int)
    y_pred = column_or_1d(y_pred, name="y_pred").astype(int)
    if y_true.shape[0] != y_pred.shape[0]:
        raise DataValidationError(
            f"y_true and y_pred length mismatch: {y_true.shape[0]} != {y_pred.shape[0]}"
        )
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    return BinaryConfusion(tp=tp, fp=fp, fn=fn, tn=tn)
