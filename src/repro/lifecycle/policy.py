"""Retrain policy: typed drift reports in, lifecycle action out.

Detection and reaction are deliberately separate objects: the detectors
(:mod:`repro.monitoring`) state *evidence*, the :class:`RetrainPolicy`
owns the *decision rules* — how many corroborating warnings justify
spending a retrain, and how long to hold fire after acting (retraining on
every window of a sustained drift would burn compute re-learning the same
shift). The default rules:

* any ``ALARM`` → :attr:`Action.RETRAIN_NOW`;
* at least ``warn_quorum`` detectors at ``WARN`` (default 2 — one noisy
  statistic is not a drift) → :attr:`Action.WARM_CHALLENGER`;
* otherwise → :attr:`Action.NONE`;
* after a non-``NONE`` action, ``cooldown`` further decisions return
  ``NONE`` regardless of evidence.

``decide`` is a pure function of (reports, internal cooldown counter), so
a replayed stream makes identical decisions.
"""

from __future__ import annotations

import enum
from typing import Sequence

from ..monitoring.drift import DriftLevel, DriftReport

__all__ = ["Action", "RetrainPolicy"]


class Action(enum.IntEnum):
    """Ordered lifecycle actions (``max`` picks the strongest)."""

    NONE = 0
    #: train a challenger in the background; promote only on a shadow win.
    WARM_CHALLENGER = 1
    #: drift is confirmed — retrain immediately and promote on a shadow win.
    RETRAIN_NOW = 2


class RetrainPolicy:
    """Map :class:`~repro.monitoring.DriftReport` s to an :class:`Action`.

    Parameters
    ----------
    warn_quorum : int, default 2
        Distinct detectors at ``WARN`` (or above) needed to warm a
        challenger.
    cooldown : int, default 3
        Decisions to sit out after any non-``NONE`` action.
    """

    def __init__(self, *, warn_quorum: int = 2, cooldown: int = 3):
        if warn_quorum < 1:
            raise ValueError("warn_quorum must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.warn_quorum = int(warn_quorum)
        self.cooldown = int(cooldown)
        self._cooldown_left = 0

    def decide(self, reports: Sequence[DriftReport]) -> Action:
        """The action the current evidence justifies (stateful cooldown)."""
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return Action.NONE
        action = Action.NONE
        n_warn = sum(1 for r in reports if r.level >= DriftLevel.WARN)
        if any(r.level is DriftLevel.ALARM for r in reports):
            action = Action.RETRAIN_NOW
        elif n_warn >= self.warn_quorum:
            action = Action.WARM_CHALLENGER
        if action is not Action.NONE:
            self._cooldown_left = self.cooldown
        return action

    def reset(self) -> None:
        """Clear the retrain cooldown state."""
        self._cooldown_left = 0
