"""Champion–challenger shadow evaluation: promote only on a metric win.

A retrained model is a *hypothesis*, not a replacement: if the drift was
label noise, or the retrain window was too thin, the challenger can be
worse than the model it would replace. :func:`shadow_evaluate` scores
both models on the same live window — the challenger in "shadow",
affecting no traffic — and compares an imbalance-aware metric (windowed
AUPRC by default; F1 / minority recall at a threshold also supported).

nan-safety is explicit, because monitoring windows can be single-class:
a challenger with a ``nan`` score never wins (no evidence is not a win),
while a ``nan`` champion score loses to any finite challenger score (the
champion demonstrably produced nothing measurable on the live window
either, so finite evidence beats none).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exceptions import UndefinedMetricWarning
from ..metrics import average_precision_score, f1_score, recall_score
from ..serving.server import _resolve_positive_idx

__all__ = ["ShadowResult", "shadow_evaluate"]

#: supported comparison metrics → (needs_threshold, callable)
_METRICS = ("auprc", "f1", "minority_recall")


@dataclass(frozen=True)
class ShadowResult:
    """Outcome of one shadow comparison on a shared window."""

    metric: str
    champion_score: float
    challenger_score: float
    n_rows: int
    #: challenger strictly beat champion by more than ``min_lift``
    promote: bool

    @property
    def lift(self) -> float:
        """Challenger score minus champion score."""
        return self.challenger_score - self.champion_score


def _positive_scores(model, X: np.ndarray) -> np.ndarray:
    proba = model.predict_proba(X)
    classes = np.asarray(getattr(model, "classes_", [0, 1]))
    # same minority/highest-sorted convention the server decodes with
    return proba[:, _resolve_positive_idx(model, classes)]


def _window_metric(metric: str, y: np.ndarray, score: np.ndarray,
                   threshold: float) -> float:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UndefinedMetricWarning)
        if metric == "auprc":
            if np.unique(y).size < 2:
                return float("nan")
            return float(average_precision_score(y, score))
    y_pred = (score >= threshold).astype(np.int64)
    if not y.any():
        return float("nan")
    if metric == "f1":
        return float(f1_score(y, y_pred))
    return float(recall_score(y, y_pred))


def shadow_evaluate(
    champion,
    challenger,
    X_window,
    y_window,
    *,
    metric: str = "auprc",
    threshold: float = 0.5,
    min_lift: float = 0.0,
    positive_label=1,
) -> ShadowResult:
    """Score both models on the live window; challenger must *win* to
    promote.

    Parameters
    ----------
    champion, challenger : fitted binary classifiers (``predict_proba``).
    X_window, y_window : the monitor's labeled window — the freshest
        ground truth available, and identical for both models. Labels may
        use any binary alphabet; rows equal to ``positive_label`` count
        as the minority/positive class.
    metric : {"auprc", "f1", "minority_recall"}, default "auprc"
    threshold : decision threshold for the thresholded metrics.
    min_lift : float, default 0.0
        Required margin: promote only if
        ``challenger > champion + min_lift``. Raising it trades adaptation
        speed for swap stability.
    positive_label : default 1
        The window label treated as positive (the models' minority label
        when the deployment uses a non-{0, 1} alphabet).
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    X_window = np.asarray(X_window, dtype=np.float64)
    y_window = (np.asarray(y_window) == positive_label).astype(np.int64)
    if len(X_window) != len(y_window):
        raise ValueError("X_window and y_window length mismatch")
    champ = _window_metric(
        metric, y_window, _positive_scores(champion, X_window), threshold
    )
    chall = _window_metric(
        metric, y_window, _positive_scores(challenger, X_window), threshold
    )
    if np.isnan(chall):
        promote = False  # no evidence is never a win
    elif np.isnan(champ):
        promote = True  # finite evidence beats none
    else:
        promote = chall > champ + min_lift
    return ShadowResult(
        metric=metric,
        champion_score=float(champ),
        challenger_score=float(chall),
        n_rows=int(len(y_window)),
        promote=bool(promote),
    )
