"""The closed loop: serve → monitor → decide → retrain → shadow → swap.

:class:`LifecycleController` owns one deployed model's whole
post-training life. Per labeled batch it:

1. scores the rows through the :class:`~repro.serving.ModelServer`
   (production path — micro-batched, version-stamped),
2. feeds features / scores / labels to the
   :class:`~repro.monitoring.DriftMonitor`,
3. asks the :class:`~repro.lifecycle.RetrainPolicy` what the drift
   reports justify,
4. on ``WARM_CHALLENGER`` / ``RETRAIN_NOW``: retrains a challenger from
   the monitor's window (handed over as a
   :class:`~repro.streaming.ArraySource`, so the trainer is the same
   out-of-core ``fit_source`` path used at bootstrap),
5. shadow-scores the challenger against the champion on that same window
   and — only on a metric win — registers it in the
   :class:`~repro.lifecycle.ArtifactRegistry`, blesses it champion, and
   hot-swaps it into the server with zero dropped requests.

Every step is observable: :meth:`process` returns a
:class:`LifecycleEvent` with the reports, the action, the shadow scores,
and the promoted version (if any).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .. import telemetry
from ..exceptions import WorkerCrashedError
from ..monitoring.drift import DriftReport
from ..monitoring.monitor import DriftMonitor
from ..serving import ModelServer
from ..streaming import ArraySource
from .challenger import ShadowResult, shadow_evaluate
from .policy import Action, RetrainPolicy
from .registry import ArtifactRegistry

__all__ = ["LifecycleController", "LifecycleEvent", "resolve_train_fn"]


def resolve_train_fn(spec) -> Callable:
    """Normalise a retraining recipe to ``callable(DataSource) -> model``.

    Accepts the historical form (a callable taking the training
    :class:`~repro.streaming.DataSource`) unchanged, and two registry-era
    conveniences: a registered classifier *name* (``"spe"``,
    ``"logistic"``, ...) or an unfitted estimator *instance* used as the
    template. Template retrains clone the template per cycle (hyper-
    parameters are the recipe; fitted state never leaks between cycles)
    and fit out-of-core via ``fit_source`` when the model supports it,
    else materialise the window's blocks and call plain ``fit`` — which is
    what lets any registered model, tree-backed or not, serve as the
    challenger recipe.
    """
    if callable(spec) and not hasattr(spec, "get_params"):
        return spec

    from ..base import clone
    from ..registry import resolve_estimator

    template = resolve_estimator(spec)
    if template is None:
        raise TypeError(
            "train_fn must be a callable(source) -> fitted model, a "
            "registered classifier name, or an estimator instance; got None"
        )

    def train(source):
        model = clone(template)
        fit_source = getattr(model, "fit_source", None)
        if fit_source is not None:
            try:
                return fit_source(source)
            except NotImplementedError:
                pass
        blocks = list(source.iter_blocks())
        X = np.vstack([b[0] for b in blocks])
        y = np.concatenate([b[1] for b in blocks])
        return model.fit(X, y)

    return train


@dataclass(frozen=True)
class LifecycleEvent:
    """What one :meth:`LifecycleController.process` call did."""

    n_rows: int
    model_version: str  #: version that served this batch
    reports: List[DriftReport] = field(default_factory=list)
    action: Action = Action.NONE
    shadow: Optional[ShadowResult] = None
    promoted: bool = False
    promoted_version: Optional[str] = None
    swap_retried: bool = False  #: first fleet swap attempt failed transiently
    swap_error: Optional[str] = None  #: the transient error, if any


class LifecycleController:
    """Drive one served model through monitor → retrain → promote cycles.

    Parameters
    ----------
    server : :class:`~repro.serving.ModelServer`
        The live endpoint; its champion is swapped in place on promotion.
    registry : :class:`~repro.lifecycle.ArtifactRegistry`
        Where promoted challengers are persisted (and champion-flagged)
        *before* the swap — a restart after promotion reloads the same
        model the swap installed.
    monitor : :class:`~repro.monitoring.DriftMonitor`
    train_fn : callable, registered name, or estimator instance
        The retraining recipe, normalised through :func:`resolve_train_fn`:
        a ``callable(DataSource) -> fitted model`` (e.g. ``lambda src:
        StreamingSelfPacedEnsembleClassifier(n_estimators=10,
        random_state=0).fit_source(src)``), a registered classifier name
        (``"spe"``, ``"logistic"``, ...), or an unfitted estimator used as
        a per-cycle clone template. Any registered model works — models
        without an out-of-core ``fit_source`` train on the materialised
        window.
    policy : :class:`~repro.lifecycle.RetrainPolicy`, optional
    metric : {"auprc", "f1", "minority_recall"}, default "auprc"
        Shadow-comparison metric.
    min_lift : float, default 0.0
        Required challenger margin over the champion.
    holdout_fraction : float in [0, 1), default 0.3
        The newest fraction of the monitor window is *withheld* from the
        challenger's training source and used as the shadow-comparison
        window, so the challenger never gets the in-sample advantage of
        being scored on rows it trained on. Falls back to the full window
        for both (documented in-sample comparison) when the split would
        leave the training slice single-class.
    """

    def __init__(
        self,
        server: ModelServer,
        registry: ArtifactRegistry,
        monitor: DriftMonitor,
        train_fn: Callable,
        *,
        policy: Optional[RetrainPolicy] = None,
        metric: str = "auprc",
        min_lift: float = 0.0,
        holdout_fraction: float = 0.3,
    ):
        if not 0.0 <= holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in [0, 1)")
        self.server = server
        self.registry = registry
        self.monitor = monitor
        self.train_fn = resolve_train_fn(train_fn)
        self.policy = policy if policy is not None else RetrainPolicy()
        self.metric = metric
        self.min_lift = float(min_lift)
        self.holdout_fraction = float(holdout_fraction)
        self.events: List[LifecycleEvent] = []
        self._init_metrics()

    def _init_metrics(self) -> None:
        """Register this controller's metric children (labeled per
        instance)."""
        registry = telemetry.get_registry()
        self.telemetry_label_ = telemetry.instance_label("controller")
        label = ("controller",)
        self._m_events_family = registry.counter(
            "repro_lifecycle_events_total",
            "Lifecycle decisions taken, by policy action.",
            labels=("controller", "action"),
        )
        self._m_promotions = registry.counter(
            "repro_lifecycle_promotions_total",
            "Challengers promoted to champion (registered + swapped).",
            labels=label,
        ).labels(self.telemetry_label_)
        self._m_swap_retries = registry.counter(
            "repro_lifecycle_swap_retries_total",
            "Fleet swaps retried after a transient failure.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_promotion_lag = registry.histogram(
            "repro_lifecycle_promotion_lag_seconds",
            "Decision-to-swap lag: retrain + shadow + register + swap.",
            labels=label,
        ).labels(self.telemetry_label_)
        self._h_swap = registry.histogram(
            "repro_lifecycle_swap_seconds",
            "Server/fleet swap duration as seen by the controller "
            "(including the wait-healthy retry path).",
            labels=label,
        ).labels(self.telemetry_label_)

    # ------------------------------------------------------------------ #
    def process(self, X_batch, y_true=None) -> LifecycleEvent:
        """Serve one batch, monitor it, and act on the evidence.

        Pass ``y_true=None`` for rows whose labels lag; deliver them later
        through :meth:`deliver_labels`. Drift checks (and therefore
        retrains) only happen on calls that add labeled rows — unlabeled
        traffic can't move the error or prior statistics.
        """
        X_batch = np.atleast_2d(np.asarray(X_batch, dtype=np.float64))
        scored = self.server.score(X_batch)
        scores = scored.proba[:, self.server.positive_index]
        self.monitor.observe(X_batch, scores, y_true)
        if y_true is None:
            return self._record_event(
                LifecycleEvent(
                    n_rows=len(X_batch), model_version=scored.model_version
                )
            )
        return self._decide_and_act(len(X_batch), scored.model_version)

    def deliver_labels(self, y_true) -> LifecycleEvent:
        """Deliver delayed labels (oldest rows first) and run the loop."""
        y_true = np.atleast_1d(np.asarray(y_true))
        self.monitor.observe_labels(y_true)
        return self._decide_and_act(0, self.server.model_version)

    def _record_event(self, event: LifecycleEvent) -> LifecycleEvent:
        """Append the event and mirror it into the telemetry registry."""
        self._m_events_family.labels(
            self.telemetry_label_, event.action.name
        ).inc()
        if event.promoted:
            self._m_promotions.inc()
        if event.swap_retried:
            self._m_swap_retries.inc()
        self.events.append(event)
        return event

    # ------------------------------------------------------------------ #
    def _decide_and_act(self, n_rows: int, serving_version: str) -> LifecycleEvent:
        reports = self.monitor.check()
        action = self.policy.decide(reports)
        # Promotion lag starts at the decision: everything between "the
        # policy said act" and "the new champion is serving" counts.
        lag_watch = (
            telemetry.stopwatch() if action is not Action.NONE else None
        )
        shadow = None
        promoted = False
        promoted_version = None
        swap_retried = False
        swap_error = None
        X, y, _ = self.monitor.window()
        if action is not Action.NONE and np.unique(y).size < 2:
            # A single-class window cannot train a challenger; keep the
            # decision on record (the drift evidence is real) but skip the
            # retrain until minority rows land.
            return self._record_event(
                LifecycleEvent(
                    n_rows=n_rows,
                    model_version=serving_version,
                    reports=list(reports),
                    action=action,
                )
            )
        if action is not Action.NONE:
            (X_fit, y_fit), (X_shadow, y_shadow) = self._split_window(X, y)
            challenger = self.train_fn(ArraySource(X_fit, y_fit))
            shadow = shadow_evaluate(
                self.server.model,
                challenger,
                X_shadow,
                y_shadow,
                metric=self.metric,
                threshold=self.monitor.evaluator.threshold,
                min_lift=self.min_lift,
                positive_label=self.monitor.positive_label,
            )
            if shadow.promote:
                promoted_version = self.registry.register(
                    challenger,
                    metrics={
                        "shadow_metric": self.metric,
                        "shadow_champion": shadow.champion_score,
                        "shadow_challenger": shadow.challenger_score,
                    },
                    tags={
                        "action": action.name,
                        "replaced": serving_version,
                    },
                )
                self.registry.set_champion(promoted_version)
                if getattr(self.server, "swaps_by_path", False):
                    # Fleet backend (WorkerPool): broadcast the *registered
                    # artifact's path* so every worker re-loads one shared
                    # (mmap'd) copy — the registry write above is exactly
                    # the persisted artifact the fleet converges on. A
                    # transient failure (a worker crashing mid-broadcast,
                    # a convergence timeout) gets exactly one retry after
                    # the fleet reports healthy: the registry is already
                    # consistent (champion set), so the retry republishes
                    # the same artifact — idempotent by construction.
                    target = self.registry.path(promoted_version)
                    swap_watch = telemetry.stopwatch()
                    try:
                        self.server.swap_model(target, version=promoted_version)
                    except (TimeoutError, WorkerCrashedError) as exc:
                        swap_retried = True
                        swap_error = f"{type(exc).__name__}: {exc}"
                        wait_healthy = getattr(self.server, "wait_healthy", None)
                        if wait_healthy is not None:
                            wait_healthy()
                        self.server.swap_model(target, version=promoted_version)
                    swap_watch.observe(self._h_swap)
                else:
                    swap_watch = telemetry.stopwatch()
                    self.server.swap_model(challenger, version=promoted_version)
                    swap_watch.observe(self._h_swap)
                # The promoted model learned the drifted distribution —
                # rebase the monitor on its training window so the "new
                # normal" stops alarming, and reset the error baseline.
                self.monitor.rebase_reference(X_fit, y_fit)
                self.monitor.reset_after_swap()
                promoted = True
                if lag_watch is not None:
                    lag_watch.observe(self._h_promotion_lag)
        event = LifecycleEvent(
            n_rows=n_rows,
            model_version=serving_version,
            reports=list(reports),
            action=action,
            shadow=shadow,
            promoted=promoted,
            promoted_version=promoted_version,
            swap_retried=swap_retried,
            swap_error=swap_error,
        )
        return self._record_event(event)

    def _split_window(self, X: np.ndarray, y: np.ndarray):
        """Oldest rows train the challenger, newest shadow-compare it.

        Returns ``((X_fit, y_fit), (X_shadow, y_shadow))``. Falls back to
        full-window/full-window when ``holdout_fraction`` is 0 or the
        training slice would lose a class (a challenger must see both).
        """
        n_holdout = int(round(len(y) * self.holdout_fraction))
        n_fit = len(y) - n_holdout
        if n_holdout < 1 or np.unique(y[:n_fit]).size < 2:
            return (X, y), (X, y)
        return (X[:n_fit], y[:n_fit]), (X[n_fit:], y[n_fit:])
