"""Versioned artifact registry: a directory of models, one source of truth.

:class:`ArtifactRegistry` manages a directory of
:mod:`repro.persistence` ``.npz`` artifacts plus a single
``manifest.json``:

* **register** — saves the model through :func:`~repro.persistence.
  save_model` under a fresh monotonic version id (``v0001``, ``v0002``,
  ...; ids are never reused, even after deletes), then *verifies* the
  written artifact by reloading it — a model that cannot round-trip never
  enters the manifest — and records the file's SHA-256 alongside caller
  metadata (shadow metrics, drift context, parent version).
* **load** — re-hashes the file against the manifest checksum before
  handing it to :func:`~repro.persistence.load_model` (which then verifies
  its own per-array checksums), so registry corruption and artifact
  corruption both fail loudly as
  :class:`~repro.exceptions.RegistryError` / ``PersistenceError``.
* **champion pointer** — the promotion workflow's output is just
  ``set_champion(version)``; a restarting server asks
  ``registry.champion`` and serves that artifact.

The manifest is written atomically (temp file + ``os.replace``) so a
crash mid-register leaves the previous manifest intact; the orphaned
``.npz`` is harmless and is reused-proof because ids are monotonic.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional

from ..exceptions import PersistenceError, RegistryError
from ..persistence import load_model, save_model

__all__ = ["ArtifactRegistry"]

_MANIFEST = "manifest.json"
_MANIFEST_SCHEMA = 1


def _file_sha256(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class ArtifactRegistry:
    """Directory-backed registry of versioned model artifacts.

    Parameters
    ----------
    root : str or path
        Directory to manage; created if missing. An existing manifest is
        loaded (and validated) so registries persist across processes.

    Examples
    --------
    >>> registry = ArtifactRegistry(tmp_dir)            # doctest: +SKIP
    >>> v1 = registry.register(clf, metrics={"auprc": 0.91})  # doctest: +SKIP
    >>> registry.set_champion(v1)                       # doctest: +SKIP
    >>> model = registry.load(registry.champion)        # doctest: +SKIP
    """

    def __init__(self, root):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._manifest_path = os.path.join(self.root, _MANIFEST)
        if os.path.exists(self._manifest_path):
            self._manifest = self._read_manifest()
        else:
            self._manifest = {
                "schema": _MANIFEST_SCHEMA,
                "next_id": 1,
                "champion": None,
                "versions": {},
            }
            self._write_manifest()

    # ------------------------------------------------------------------ #
    def _read_manifest(self) -> Dict:
        try:
            with open(self._manifest_path, "r") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"{self._manifest_path}: unreadable manifest ({exc})"
            ) from exc
        if manifest.get("schema") != _MANIFEST_SCHEMA:
            raise RegistryError(
                f"{self._manifest_path}: unsupported manifest schema "
                f"{manifest.get('schema')!r}"
            )
        for key in ("next_id", "versions"):
            if key not in manifest:
                raise RegistryError(
                    f"{self._manifest_path}: corrupted manifest — missing {key!r}"
                )
        return manifest

    def _write_manifest(self) -> None:
        # Atomic replace: a crash leaves either the old or the new
        # manifest, never a half-written file.
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".manifest-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self._manifest, handle, indent=2, sort_keys=True)
            os.replace(tmp, self._manifest_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------ #
    def register(self, model, *, metrics: Optional[Dict] = None,
                 tags: Optional[Dict] = None) -> str:
        """Persist ``model`` under the next version id; returns the id.

        The artifact is reloaded immediately after writing — an
        integrity check that catches non-round-trippable models and
        write corruption *before* the version becomes visible.
        """
        version = f"v{self._manifest['next_id']:04d}"
        path = os.path.join(self.root, f"{version}.npz")
        save_model(model, path)
        try:
            load_model(path)  # integrity gate: full checksum + restore
        except PersistenceError:
            os.unlink(path)
            raise
        self._manifest["next_id"] += 1
        self._manifest["versions"][version] = {
            "file": os.path.basename(path),
            "sha256": _file_sha256(path),
            "model_class": type(model).__name__,
            "metrics": dict(metrics or {}),
            "tags": dict(tags or {}),
        }
        self._write_manifest()
        return version

    def load(self, version: Optional[str] = None):
        """Load a registered model (default: the champion).

        The file is re-hashed against the manifest before
        :func:`~repro.persistence.load_model` parses it.
        """
        if version is None:
            version = self.champion
            if version is None:
                raise RegistryError("registry has no champion to load")
        entry = self._entry(version)
        path = self.path(version)
        if not os.path.exists(path):
            raise RegistryError(f"{version}: artifact file {path} is missing")
        if _file_sha256(path) != entry["sha256"]:
            raise RegistryError(
                f"{version}: artifact bytes changed since registration "
                "(checksum mismatch)"
            )
        return load_model(path)

    # ------------------------------------------------------------------ #
    def _entry(self, version: str) -> Dict:
        entry = self._manifest["versions"].get(version)
        if entry is None:
            raise RegistryError(
                f"unknown version {version!r}; registered: {self.versions()}"
            )
        return entry

    def path(self, version: str) -> str:
        """Absolute path of ``version``'s artifact file."""
        return os.path.join(self.root, self._entry(version)["file"])

    def describe(self, version: str) -> Dict:
        """Manifest entry (copy) for a version: checksum, metrics, tags."""
        return json.loads(json.dumps(self._entry(version)))

    def versions(self) -> List[str]:
        """Registered version ids, oldest first.

        Sorted by ``(length, string)``: zero-padded ids order lexically
        among themselves, and a longer id (``v10000`` after the padding
        overflows at ``v9999``) still sorts after every shorter one.
        """
        return sorted(self._manifest["versions"], key=lambda v: (len(v), v))

    @property
    def latest(self) -> Optional[str]:
        """Most recent version id, or ``None`` when empty."""
        versions = self.versions()
        return versions[-1] if versions else None

    @property
    def champion(self) -> Optional[str]:
        """The version currently blessed for serving (or ``None``)."""
        return self._manifest.get("champion")

    def set_champion(self, version: str) -> None:
        """Validate ``version`` and repoint the champion at it."""
        self._entry(version)  # validate
        self._manifest["champion"] = version
        self._write_manifest()

    def __len__(self) -> int:
        return len(self._manifest["versions"])

    def __contains__(self, version) -> bool:
        return version in self._manifest["versions"]
