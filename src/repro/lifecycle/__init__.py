"""Model lifecycle: registry, retrain policy, shadow promotion, hot swap.

The other half of the post-deployment loop (:mod:`repro.monitoring` is
the watching half; this is the acting half):

* :class:`ArtifactRegistry` — a managed directory of versioned,
  checksum-tracked :mod:`repro.persistence` artifacts with monotonic
  version ids and a champion pointer;
* :class:`RetrainPolicy` / :class:`Action` — typed drift reports in,
  ``NONE`` / ``WARM_CHALLENGER`` / ``RETRAIN_NOW`` out, with a warn
  quorum and a retrain cooldown;
* :func:`shadow_evaluate` / :class:`ShadowResult` — champion–challenger
  comparison on the live window; challengers are promoted only on a
  metric win;
* :class:`LifecycleController` / :class:`LifecycleEvent` — the closed
  loop: serve → monitor → decide → retrain from the monitor's window →
  shadow → register → :meth:`~repro.serving.ModelServer.swap_model`.

See ``DESIGN.md`` → "Lifecycle" for the promotion rules and the swap
atomicity argument.
"""

from .challenger import ShadowResult, shadow_evaluate
from .controller import LifecycleController, LifecycleEvent, resolve_train_fn
from .policy import Action, RetrainPolicy
from .registry import ArtifactRegistry

__all__ = [
    "Action",
    "ArtifactRegistry",
    "LifecycleController",
    "LifecycleEvent",
    "RetrainPolicy",
    "ShadowResult",
    "resolve_train_fn",
    "shadow_evaluate",
]
