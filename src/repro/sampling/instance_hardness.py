"""Instance-Hardness-Threshold under-sampling (Smith et al., 2014).

The closest re-sampling prior art to SPE: score every majority sample's
*instance hardness* — one minus the out-of-fold probability of its true
class under a probe classifier — and drop the hardest majority samples
until the classes balance. Unlike SPE it is a one-shot, static filter with
no self-paced schedule and no easy-sample "skeleton", which is exactly the
gap the paper's framework fills; having it in the library makes that
comparison runnable.
"""

from __future__ import annotations

import numpy as np

from ..base import clone
from ..model_selection import StratifiedKFold
from ..tree import DecisionTreeClassifier
from ..utils.validation import check_random_state
from .base import BaseSampler, split_classes

__all__ = ["InstanceHardnessThreshold"]


class InstanceHardnessThreshold(BaseSampler):
    """Remove the majority samples hardest for a cross-validated probe.

    Parameters
    ----------
    estimator : classifier, optional (default depth-8 decision tree)
        Probe whose out-of-fold probabilities define instance hardness.
    cv : int, default 3
        Stratified folds used to obtain unbiased probabilities.
    ratio : float, default 1.0
        Target ``|N'| / |P|`` after under-sampling.
    """

    def __init__(self, estimator=None, cv: int = 3, ratio: float = 1.0, random_state=None):
        self.estimator = estimator
        self.cv = cv
        self.ratio = ratio
        self.random_state = random_state

    def _out_of_fold_proba(self, X, y, rng) -> np.ndarray:
        base = (
            DecisionTreeClassifier(max_depth=8)
            if self.estimator is None
            else self.estimator
        )
        proba_true = np.full(len(y), 0.5)
        splitter = StratifiedKFold(
            n_splits=self.cv, shuffle=True,
            random_state=rng.randint(np.iinfo(np.int32).max),
        )
        for train_idx, test_idx in splitter.split(X, y):
            model = clone(base)
            if hasattr(model, "random_state"):
                model.random_state = rng.randint(np.iinfo(np.int32).max)
            model.fit(X[train_idx], y[train_idx])
            proba = model.predict_proba(X[test_idx])
            classes = list(np.asarray(model.classes_).tolist())
            for label in (0, 1):
                mask = y[test_idx] == label
                if label in classes:
                    proba_true[test_idx[mask]] = proba[mask, classes.index(label)]
                else:
                    proba_true[test_idx[mask]] = 0.0
        return proba_true

    def _fit_resample(self, X, y):
        if self.ratio <= 0:
            raise ValueError("ratio must be positive")
        if self.cv < 2:
            raise ValueError("cv must be >= 2")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        n_keep = min(len(maj), max(1, int(round(self.ratio * len(mino)))))
        proba_true = self._out_of_fold_proba(X, y, rng)
        hardness_maj = 1.0 - proba_true[maj]
        # Keep the *easiest* majority samples (lowest instance hardness),
        # randomised tie-breaking so constant-probability regions don't
        # introduce index-order bias.
        order = np.lexsort((rng.permutation(len(maj)), hardness_maj))
        keep = maj[order[:n_keep]]
        idx = rng.permutation(np.concatenate([keep, mino]))
        self.sample_indices_ = idx
        return X[idx], y[idx]
