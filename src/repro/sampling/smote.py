"""SMOTE-family over-sampling (Chawla et al., 2002; Han et al., 2005)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import NotEnoughSamplesError
from ..neighbors.distance import kneighbors
from ..utils.validation import check_random_state
from .base import BaseSampler, split_classes

__all__ = ["SMOTE", "BorderlineSMOTE", "smote_interpolate"]


def smote_interpolate(
    seeds: np.ndarray,
    neighbors_pool: np.ndarray,
    n_new: int,
    k_neighbors: int,
    rng: np.random.RandomState,
) -> np.ndarray:
    """Generate ``n_new`` synthetic points between seeds and their neighbours.

    ``seeds`` are the minority samples allowed to originate synthetics;
    ``neighbors_pool`` is the minority set in which nearest neighbours are
    searched (SMOTE uses the whole minority class for both).
    """
    if n_new <= 0:
        return np.empty((0, seeds.shape[1]))
    if len(neighbors_pool) < 2:
        raise NotEnoughSamplesError(
            "SMOTE needs at least 2 minority samples to interpolate"
        )
    k = min(k_neighbors, len(neighbors_pool) - 1)
    same_pool = seeds is neighbors_pool or (
        seeds.shape == neighbors_pool.shape and np.shares_memory(seeds, neighbors_pool)
    )
    _, nn = kneighbors(seeds, neighbors_pool, k, exclude_self=same_pool)
    origin = rng.randint(0, len(seeds), size=n_new)
    neighbor_choice = rng.randint(0, nn.shape[1], size=n_new)
    targets = neighbors_pool[nn[origin, neighbor_choice]]
    gaps = rng.uniform(size=(n_new, 1))
    return seeds[origin] + gaps * (targets - seeds[origin])


class SMOTE(BaseSampler):
    """Synthetic Minority Over-sampling TechniquE.

    Generates ``ratio * |N| - |P|`` synthetic minority samples by linear
    interpolation between each seed and one of its ``k_neighbors`` nearest
    minority neighbours.
    """

    def __init__(self, k_neighbors: int = 5, ratio: float = 1.0, random_state=None):
        self.k_neighbors = k_neighbors
        self.ratio = ratio
        self.random_state = random_state

    def _fit_resample(self, X, y):
        if self.ratio <= 0:
            raise ValueError("ratio must be positive")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        n_new = max(0, int(round(self.ratio * len(maj))) - len(mino))
        X_min = X[mino]
        synthetic = smote_interpolate(X_min, X_min, n_new, self.k_neighbors, rng)
        X_res = np.vstack([X, synthetic])
        y_res = np.concatenate([y, np.ones(len(synthetic), dtype=y.dtype)])
        perm = rng.permutation(len(y_res))
        return X_res[perm], y_res[perm]


class BorderlineSMOTE(BaseSampler):
    """Borderline-SMOTE (variant 1): only "danger" minority samples seed.

    A minority sample is *danger* when at least half (but not all) of its
    ``m_neighbors`` nearest neighbours in the full dataset are majority;
    samples whose neighbours are all majority count as noise and are skipped.
    """

    def __init__(
        self,
        k_neighbors: int = 5,
        m_neighbors: int = 10,
        ratio: float = 1.0,
        random_state=None,
    ):
        self.k_neighbors = k_neighbors
        self.m_neighbors = m_neighbors
        self.ratio = ratio
        self.random_state = random_state

    def danger_mask(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean mask over minority samples flagged as borderline."""
        maj, mino = split_classes(X, y)
        m = min(self.m_neighbors, len(y) - 1)
        _, nn = kneighbors(X[mino], X, m, exclude_self=False)
        # Self may appear as its own neighbour; count majority votes only.
        n_majority = (y[nn] == 0).sum(axis=1)
        half = m / 2.0
        return (n_majority >= half) & (n_majority < m)

    def _fit_resample(self, X, y):
        if self.ratio <= 0:
            raise ValueError("ratio must be positive")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        danger = self.danger_mask(X, y)
        seeds = X[mino[danger]] if danger.any() else X[mino]
        n_new = max(0, int(round(self.ratio * len(maj))) - len(mino))
        synthetic = smote_interpolate(seeds, X[mino], n_new, self.k_neighbors, rng)
        X_res = np.vstack([X, synthetic])
        y_res = np.concatenate([y, np.ones(len(synthetic), dtype=y.dtype)])
        perm = rng.permutation(len(y_res))
        return X_res[perm], y_res[perm]
