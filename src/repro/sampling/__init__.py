"""Re-sampling methods (the paper's Table V set).

Under-sampling: RandomUnderSampler, NearMiss, TomekLinks,
EditedNearestNeighbours (ENN), AllKNN, OneSidedSelection (OSS),
NeighbourhoodCleaningRule (the paper's "Clean").

Over-sampling: RandomOverSampler, SMOTE, BorderlineSMOTE, ADASYN.

Hybrid: SMOTEENN, SMOTETomek.
"""

from .adasyn import ADASYN
from .base import BaseSampler, split_classes
from .cleaning import (
    AllKNN,
    EditedNearestNeighbours,
    NeighbourhoodCleaningRule,
    OneSidedSelection,
    TomekLinks,
)
from .combine import SMOTEENN, SMOTETomek
from .condensed import CondensedNearestNeighbour
from .instance_hardness import InstanceHardnessThreshold
from .nearmiss import NearMiss
from .random import RandomOverSampler, RandomUnderSampler
from .smote import SMOTE, BorderlineSMOTE

__all__ = [
    "ADASYN",
    "AllKNN",
    "BaseSampler",
    "BorderlineSMOTE",
    "CondensedNearestNeighbour",
    "EditedNearestNeighbours",
    "InstanceHardnessThreshold",
    "NearMiss",
    "NeighbourhoodCleaningRule",
    "OneSidedSelection",
    "RandomOverSampler",
    "RandomUnderSampler",
    "SMOTE",
    "SMOTEENN",
    "SMOTETomek",
    "TomekLinks",
    "split_classes",
]
