"""Random under- and over-sampling — the no-assumptions baselines."""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_random_state
from .base import BaseSampler, split_classes

__all__ = ["RandomUnderSampler", "RandomOverSampler"]


class RandomUnderSampler(BaseSampler):
    """Drop random majority samples until ``|N'| = ratio * |P|``.

    The paper's RandUnder (and the subset generator inside every
    under-sampling ensemble baseline).
    """

    def __init__(self, ratio: float = 1.0, replacement: bool = False, random_state=None):
        self.ratio = ratio
        self.replacement = replacement
        self.random_state = random_state

    def _fit_resample(self, X, y):
        if self.ratio <= 0:
            raise ValueError("ratio must be positive")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        n_keep = max(1, int(round(self.ratio * len(mino))))
        if self.replacement or n_keep > len(maj):
            keep = rng.choice(maj, size=n_keep, replace=True)
        else:
            keep = rng.choice(maj, size=n_keep, replace=False)
        idx = np.concatenate([keep, mino])
        idx = rng.permutation(idx)
        self.sample_indices_ = idx
        return X[idx], y[idx]


class RandomOverSampler(BaseSampler):
    """Duplicate random minority samples until ``|P'| = ratio * |N|``."""

    def __init__(self, ratio: float = 1.0, random_state=None):
        self.ratio = ratio
        self.random_state = random_state

    def _fit_resample(self, X, y):
        if self.ratio <= 0:
            raise ValueError("ratio must be positive")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        n_target = int(round(self.ratio * len(maj)))
        n_extra = max(0, n_target - len(mino))
        extra = rng.choice(mino, size=n_extra, replace=True)
        idx = np.concatenate([maj, mino, extra])
        idx = rng.permutation(idx)
        self.sample_indices_ = idx
        return X[idx], y[idx]
