"""ADASYN adaptive synthetic over-sampling (He et al., 2008)."""

from __future__ import annotations

import numpy as np

from ..neighbors.distance import kneighbors
from ..utils.validation import check_random_state
from .base import BaseSampler, split_classes

__all__ = ["ADASYN"]


class ADASYN(BaseSampler):
    """Generate more synthetics where the minority is harder to learn.

    Each minority sample's share of the synthetic budget is proportional to
    the fraction of majority samples among its ``n_neighbors`` nearest
    neighbours in the full dataset.
    """

    def __init__(self, n_neighbors: int = 5, ratio: float = 1.0, random_state=None):
        self.n_neighbors = n_neighbors
        self.ratio = ratio
        self.random_state = random_state

    def _fit_resample(self, X, y):
        if self.ratio <= 0:
            raise ValueError("ratio must be positive")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        G = max(0, int(round(self.ratio * len(maj))) - len(mino))
        if G == 0:
            return X.copy(), y.copy()
        k = min(self.n_neighbors, len(y) - 1)
        _, nn = kneighbors(X[mino], X, k, exclude_self=False)
        r = (y[nn] == 0).mean(axis=1)
        if r.sum() == 0:
            # Perfectly separated minority: fall back to uniform allocation.
            r = np.ones(len(mino))
        r = r / r.sum()
        allocation = np.floor(r * G).astype(int)
        remainder = G - allocation.sum()
        if remainder > 0:
            extra = rng.choice(len(mino), size=remainder, p=r)
            np.add.at(allocation, extra, 1)

        # Interpolate each seed toward one of its nearest *minority*
        # neighbours (self excluded), allocation[i] times.
        X_min = X[mino]
        if len(X_min) < 2:
            synthetic = np.repeat(X_min, G, axis=0)  # single point: duplicate
        else:
            k_min = min(self.n_neighbors, len(X_min) - 1)
            _, nn_min = kneighbors(X_min, X_min, k_min, exclude_self=True)
            origin = np.repeat(np.arange(len(X_min)), allocation)
            neighbor_choice = rng.randint(0, k_min, size=len(origin))
            targets = X_min[nn_min[origin, neighbor_choice]]
            gaps = rng.uniform(size=(len(origin), 1))
            synthetic = X_min[origin] + gaps * (targets - X_min[origin])
        X_res = np.vstack([X, synthetic])
        y_res = np.concatenate([y, np.ones(len(synthetic), dtype=y.dtype)])
        perm = rng.permutation(len(y_res))
        return X_res[perm], y_res[perm]
