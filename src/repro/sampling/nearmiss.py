"""NearMiss under-sampling (Mani & Zhang, 2003), versions 1-3."""

from __future__ import annotations

import numpy as np

from ..neighbors.distance import pairwise_distances
from ..utils.validation import check_random_state
from .base import BaseSampler, split_classes

__all__ = ["NearMiss"]


class NearMiss(BaseSampler):
    """Keep the majority samples closest (by several notions) to the minority.

    * version 1 — smallest mean distance to the ``n_neighbors`` *nearest*
      minority samples (the library/imbalanced-learn default);
    * version 2 — smallest mean distance to the ``n_neighbors`` *farthest*
      minority samples;
    * version 3 — pre-select the ``n_neighbors_ver3`` nearest majority
      samples of each minority point, then among those keep the ones with the
      *largest* mean distance to their nearest minority neighbours.

    All versions retain ``|P|`` majority samples (balanced output), matching
    the paper's Table V protocol.
    """

    def __init__(
        self,
        version: int = 1,
        n_neighbors: int = 3,
        n_neighbors_ver3: int = 3,
        random_state=None,
    ):
        self.version = version
        self.n_neighbors = n_neighbors
        self.n_neighbors_ver3 = n_neighbors_ver3
        self.random_state = random_state

    def _fit_resample(self, X, y):
        if self.version not in (1, 2, 3):
            raise ValueError(f"NearMiss version must be 1, 2 or 3, got {self.version}")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        n_keep = min(len(mino), len(maj))
        dist = pairwise_distances(X[maj], X[mino])
        k = min(self.n_neighbors, len(mino))

        if self.version == 1:
            part = np.partition(dist, k - 1, axis=1)[:, :k]
            score = part.mean(axis=1)
            order = np.argsort(score, kind="stable")
            keep = maj[order[:n_keep]]
        elif self.version == 2:
            part = -np.partition(-dist, k - 1, axis=1)[:, :k]
            score = part.mean(axis=1)
            order = np.argsort(score, kind="stable")
            keep = maj[order[:n_keep]]
        else:
            m = min(self.n_neighbors_ver3, len(maj))
            # Step 1: union of each minority point's m nearest majority samples.
            nearest_maj = np.argpartition(dist.T, m - 1, axis=1)[:, :m]
            candidates = np.unique(nearest_maj.ravel())
            # Step 2: among candidates, keep those farthest from the minority
            # (largest mean distance to their k nearest minority neighbours).
            cand_dist = dist[candidates]
            part = np.partition(cand_dist, k - 1, axis=1)[:, :k]
            score = part.mean(axis=1)
            order = np.argsort(-score, kind="stable")
            keep = maj[candidates[order[:n_keep]]]
            if len(keep) < n_keep:
                # Candidate pool smaller than |P|: pad with random majority.
                rest = np.setdiff1d(maj, keep, assume_unique=False)
                extra = rng.choice(rest, size=n_keep - len(keep), replace=False)
                keep = np.concatenate([keep, extra])

        idx = rng.permutation(np.concatenate([keep, mino]))
        self.sample_indices_ = idx
        return X[idx], y[idx]
