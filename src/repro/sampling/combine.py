"""Hybrid re-sampling: SMOTE followed by a cleaning pass."""

from __future__ import annotations

import numpy as np

from ..neighbors.distance import kneighbors
from .base import BaseSampler
from .cleaning import _tomek_link_majority
from .smote import SMOTE

__all__ = ["SMOTEENN", "SMOTETomek"]


class SMOTEENN(BaseSampler):
    """SMOTE over-sampling, then ENN cleaning applied to *both* classes
    (Batista et al., 2004)."""

    def __init__(self, k_neighbors: int = 5, n_neighbors_enn: int = 3, random_state=None):
        self.k_neighbors = k_neighbors
        self.n_neighbors_enn = n_neighbors_enn
        self.random_state = random_state

    def _fit_resample(self, X, y):
        smote = SMOTE(k_neighbors=self.k_neighbors, random_state=self.random_state)
        X_s, y_s = smote.fit_resample(X, y)
        k = min(self.n_neighbors_enn, len(y_s) - 1)
        _, nn = kneighbors(X_s, X_s, k, exclude_self=True)
        agree = (y_s[nn] == y_s[:, None]).sum(axis=1)
        keep = agree >= (k / 2.0)
        # Never drop an entire class.
        for label in (0, 1):
            if not (keep & (y_s == label)).any():
                keep |= y_s == label
        return X_s[keep], y_s[keep]


class SMOTETomek(BaseSampler):
    """SMOTE over-sampling, then removal of Tomek-link pairs
    (Batista et al., 2003)."""

    def __init__(self, k_neighbors: int = 5, random_state=None):
        self.k_neighbors = k_neighbors
        self.random_state = random_state

    def _fit_resample(self, X, y):
        smote = SMOTE(k_neighbors=self.k_neighbors, random_state=self.random_state)
        X_s, y_s = smote.fit_resample(X, y)
        _, nn = kneighbors(X_s, X_s, 1, exclude_self=True)
        nn = nn[:, 0]
        mutual = nn[nn] == np.arange(len(y_s))
        cross = y_s != y_s[nn]
        in_link = mutual & cross
        keep = ~in_link
        for label in (0, 1):
            if not (keep & (y_s == label)).any():
                keep |= y_s == label
        return X_s[keep], y_s[keep]
