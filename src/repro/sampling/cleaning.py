"""Neighbourhood cleaning under-samplers: Tomek links, ENN, AllKNN, OSS, NCR.

These are the distance-based "data cleaning" methods whose quadratic cost on
large data the paper's Table V timing column demonstrates (Clean needing
"more than 8 hours" on KDDCUP is the motivating failure).
"""

from __future__ import annotations

import numpy as np

from ..neighbors.distance import kneighbors, pairwise_distances
from ..utils.validation import check_random_state
from .base import BaseSampler, split_classes

__all__ = [
    "TomekLinks",
    "EditedNearestNeighbours",
    "AllKNN",
    "OneSidedSelection",
    "NeighbourhoodCleaningRule",
]


def _tomek_link_majority(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Indices of majority samples participating in a Tomek link.

    A Tomek link is a cross-class pair that are mutual nearest neighbours.
    """
    _, nn = kneighbors(X, X, 1, exclude_self=True)
    nn = nn[:, 0]
    mutual = nn[nn] == np.arange(len(y))
    cross = y != y[nn]
    links = mutual & cross
    return np.flatnonzero(links & (y == 0))


class TomekLinks(BaseSampler):
    """Remove the majority member of every Tomek link."""

    def _fit_resample(self, X, y):
        split_classes(X, y)  # validates both classes exist
        drop = _tomek_link_majority(X, y)
        keep = np.setdiff1d(np.arange(len(y)), drop)
        self.sample_indices_ = keep
        return X[keep], y[keep]


class EditedNearestNeighbours(BaseSampler):
    """Wilson's ENN: drop majority samples contradicted by their neighbours.

    ``kind_sel='mode'`` drops a sample when the majority of its ``n_neighbors``
    nearest neighbours disagree with its label; ``'all'`` drops it unless all
    neighbours agree (more aggressive).
    """

    def __init__(self, n_neighbors: int = 3, kind_sel: str = "mode"):
        self.n_neighbors = n_neighbors
        self.kind_sel = kind_sel

    def _drop_mask(self, X, y, k: int) -> np.ndarray:
        _, nn = kneighbors(X, X, min(k, len(y) - 1), exclude_self=True)
        neighbor_labels = y[nn]
        agree = (neighbor_labels == y[:, None]).sum(axis=1)
        if self.kind_sel == "mode":
            contradicted = agree < (nn.shape[1] / 2.0)
        elif self.kind_sel == "all":
            contradicted = agree < nn.shape[1]
        else:
            raise ValueError(f"Unknown kind_sel {self.kind_sel!r}")
        return contradicted & (y == 0)

    def _fit_resample(self, X, y):
        split_classes(X, y)
        drop = self._drop_mask(X, y, self.n_neighbors)
        keep = np.flatnonzero(~drop)
        self.sample_indices_ = keep
        return X[keep], y[keep]


class AllKNN(BaseSampler):
    """Repeated ENN with the neighbourhood growing from 1 to ``n_neighbors``.

    Iteration stops early if the majority class would vanish.
    """

    def __init__(self, n_neighbors: int = 3, kind_sel: str = "mode"):
        self.n_neighbors = n_neighbors
        self.kind_sel = kind_sel

    def _fit_resample(self, X, y):
        split_classes(X, y)
        keep = np.arange(len(y))
        for k in range(1, self.n_neighbors + 1):
            Xk, yk = X[keep], y[keep]
            if len(keep) <= k:
                break
            enn = EditedNearestNeighbours(n_neighbors=k, kind_sel=self.kind_sel)
            drop = enn._drop_mask(Xk, yk, k)
            if drop.all() or (yk[~drop] == 0).sum() == 0:
                break
            keep = keep[~drop]
        self.sample_indices_ = keep
        return X[keep], y[keep]


class OneSidedSelection(BaseSampler):
    """Kubat & Matwin's OSS: 1-NN condensation then Tomek-link cleaning."""

    def __init__(self, n_seeds: int = 1, random_state=None):
        self.n_seeds = n_seeds
        self.random_state = random_state

    def _fit_resample(self, X, y):
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        # Condensation: start from all minority plus a few random majority.
        seeds = rng.choice(maj, size=min(self.n_seeds, len(maj)), replace=False)
        store = np.concatenate([mino, seeds])
        rest = np.setdiff1d(maj, seeds)
        if len(rest):
            # Majority samples misclassified by the 1-NN rule over the store
            # are informative (near the boundary) and get kept as well.
            _, nn = kneighbors(X[rest], X[store], 1)
            predicted = y[store][nn[:, 0]]
            store = np.concatenate([store, rest[predicted != y[rest]]])
        X_store, y_store = X[store], y[store]
        drop_local = _tomek_link_majority(X_store, y_store)
        keep = np.delete(store, drop_local)
        keep = np.sort(keep)
        self.sample_indices_ = keep
        return X[keep], y[keep]


class NeighbourhoodCleaningRule(BaseSampler):
    """Laurikkala's NCR — the method the paper calls ``Clean``.

    Two cleaning passes over the majority class:

    1. ENN: drop majority samples whose 3-neighbourhood contradicts them;
    2. for every *minority* sample misclassified by its 3 nearest neighbours,
       drop the majority samples among those neighbours.
    """

    def __init__(self, n_neighbors: int = 3):
        self.n_neighbors = n_neighbors

    def _fit_resample(self, X, y):
        split_classes(X, y)
        k = min(self.n_neighbors, len(y) - 1)
        _, nn = kneighbors(X, X, k, exclude_self=True)
        neighbor_labels = y[nn]
        agree = (neighbor_labels == y[:, None]).sum(axis=1)
        misclassified = agree < (k / 2.0)
        drop = np.zeros(len(y), dtype=bool)
        # Pass 1: ENN on the majority class.
        drop |= misclassified & (y == 0)
        # Pass 2: majority neighbours of misclassified minority samples.
        bad_minority = np.flatnonzero(misclassified & (y == 1))
        if bad_minority.size:
            offenders = nn[bad_minority].ravel()
            offenders = offenders[y[offenders] == 0]
            drop[offenders] = True
        keep = np.flatnonzero(~drop)
        self.sample_indices_ = keep
        return X[keep], y[keep]
