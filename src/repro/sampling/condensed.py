"""Condensed Nearest Neighbour (Hart, 1968) under-sampling.

CNN keeps a "store" that 1-NN-classifies the whole dataset correctly:
OSS's condensation step run to a fixed point. Included to complete the
classic distance-based under-sampling family the paper's related work
discusses (Tomek's two CNN modifications — reference [12] — build on it).
"""

from __future__ import annotations

import numpy as np

from ..neighbors.distance import kneighbors
from ..utils.validation import check_random_state
from .base import BaseSampler, split_classes

__all__ = ["CondensedNearestNeighbour"]


class CondensedNearestNeighbour(BaseSampler):
    """Keep all minority samples plus a 1-NN-consistent majority subset."""

    def __init__(self, n_seeds: int = 1, max_passes: int = 5, random_state=None):
        self.n_seeds = n_seeds
        self.max_passes = max_passes
        self.random_state = random_state

    def _fit_resample(self, X, y):
        if self.max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        rng = check_random_state(self.random_state)
        maj, mino = split_classes(X, y)
        seeds = rng.choice(maj, size=min(self.n_seeds, len(maj)), replace=False)
        store = list(np.concatenate([mino, seeds]))
        candidates = np.setdiff1d(maj, seeds)
        candidates = rng.permutation(candidates)
        for _ in range(self.max_passes):
            added = False
            remaining = []
            for idx in candidates:
                _, nn = kneighbors(X[idx : idx + 1], X[store], 1)
                predicted = y[store[int(nn[0, 0])]]
                if predicted != y[idx]:
                    store.append(int(idx))
                    added = True
                else:
                    remaining.append(int(idx))
            candidates = np.asarray(remaining, dtype=int)
            if not added or candidates.size == 0:
                break
        keep = np.sort(np.asarray(store, dtype=int))
        self.sample_indices_ = keep
        return X[keep], y[keep]
