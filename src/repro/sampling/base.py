"""Common machinery for re-samplers.

Every sampler implements ``fit_resample(X, y) -> (X_res, y_res)`` with the
library's binary convention: class 1 is the minority ("positive"), class 0
the majority ("negative"). Under-samplers additionally expose
``sample_indices_`` into the original arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..base import BaseEstimator, SamplerMixin
from ..exceptions import NotEnoughSamplesError
from ..utils.validation import check_binary_labels, check_X_y

__all__ = ["BaseSampler", "split_classes"]


def split_classes(X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(majority_indices, minority_indices)`` after binary validation."""
    maj = np.flatnonzero(y == 0)
    mino = np.flatnonzero(y == 1)
    if len(mino) == 0:
        raise NotEnoughSamplesError("No minority (class 1) samples to resample")
    if len(maj) == 0:
        raise NotEnoughSamplesError("No majority (class 0) samples to resample")
    return maj, mino


class BaseSampler(BaseEstimator, SamplerMixin):
    """Template: validates inputs then delegates to ``_fit_resample``."""

    def fit_resample(self, X, y) -> Tuple[np.ndarray, np.ndarray]:
        """Resample ``X``/``y``; returns the resampled pair."""
        X, y = check_X_y(X, y)
        y = check_binary_labels(y)
        return self._fit_resample(X, y)

    def _fit_resample(self, X: np.ndarray, y: np.ndarray):
        raise NotImplementedError
