"""repro — full reproduction of "Self-paced Ensemble for Highly Imbalanced
Massive Data Classification" (Liu et al., ICDE 2020).

The package implements the paper's contribution
(:class:`repro.core.SelfPacedEnsembleClassifier`) together with every
substrate its evaluation depends on: canonical classifiers, distance-based
re-samplers, baseline imbalance ensembles, evaluation metrics, and
generators/simulators for all six datasets.

Quickstart
----------
>>> from repro import SelfPacedEnsembleClassifier
>>> from repro.datasets import make_checkerboard
>>> from repro.metrics import evaluate_classifier
>>> X, y = make_checkerboard(n_minority=200, n_majority=2000, random_state=0)
>>> clf = SelfPacedEnsembleClassifier(n_estimators=10, random_state=0).fit(X, y)
>>> scores = evaluate_classifier(clf, X, y)   # AUCPRC / F1 / GM / MCC

Or pick any model from the zoo by name through the registry facade:

>>> from repro import get_classifier
>>> clf = get_classifier("spe", base="logistic", preset="fraud").fit(X, y)
"""

from .base import (
    BaseEstimator,
    ClassifierMixin,
    check_classifier_contract,
    clone,
    is_classifier,
    is_persistable,
    supports_sample_weight,
)
from .core import SelfPacedEnsembleClassifier
from .streaming import StreamingSelfPacedEnsembleClassifier
from .registry import (
    get_classifier,
    list_classifiers,
    list_presets,
    make_classifier,
    register_classifier,
)
from .persistence import load_model, save_model
from .serving import (
    AsyncGateway,
    ModelServer,
    ServerConfig,
    WorkerPool,
    serve,
)
from .monitoring import DriftMonitor, ReferenceSketch
from .lifecycle import ArtifactRegistry, LifecycleController, RetrainPolicy
from . import telemetry
from .telemetry import get_registry
from .exceptions import (
    CircuitOpenError,
    ConvergenceWarning,
    DataValidationError,
    DeadlineExceededError,
    FleetTimeoutError,
    NotEnoughSamplesError,
    NotFittedError,
    PersistenceError,
    RegistryError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    SwapFailedError,
    UndefinedMetricWarning,
    UnsupportedPlatformError,
    WorkerCrashedError,
)

__version__ = "1.0.0"

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "check_classifier_contract",
    "clone",
    "is_classifier",
    "is_persistable",
    "supports_sample_weight",
    "SelfPacedEnsembleClassifier",
    "StreamingSelfPacedEnsembleClassifier",
    "get_classifier",
    "list_classifiers",
    "list_presets",
    "make_classifier",
    "register_classifier",
    "load_model",
    "save_model",
    "AsyncGateway",
    "ModelServer",
    "ServerConfig",
    "WorkerPool",
    "serve",
    "DriftMonitor",
    "ReferenceSketch",
    "ArtifactRegistry",
    "LifecycleController",
    "RetrainPolicy",
    "get_registry",
    "telemetry",
    "CircuitOpenError",
    "ConvergenceWarning",
    "DataValidationError",
    "DeadlineExceededError",
    "FleetTimeoutError",
    "NotEnoughSamplesError",
    "NotFittedError",
    "PersistenceError",
    "RegistryError",
    "ReproError",
    "ServerClosedError",
    "ServerOverloadedError",
    "SwapFailedError",
    "UndefinedMetricWarning",
    "UnsupportedPlatformError",
    "WorkerCrashedError",
    "__version__",
]
