"""repro — full reproduction of "Self-paced Ensemble for Highly Imbalanced
Massive Data Classification" (Liu et al., ICDE 2020).

The package implements the paper's contribution
(:class:`repro.core.SelfPacedEnsembleClassifier`) together with every
substrate its evaluation depends on: canonical classifiers, distance-based
re-samplers, baseline imbalance ensembles, evaluation metrics, and
generators/simulators for all six datasets.

Quickstart
----------
>>> from repro import SelfPacedEnsembleClassifier
>>> from repro.datasets import make_checkerboard
>>> from repro.metrics import evaluate_classifier
>>> X, y = make_checkerboard(n_minority=200, n_majority=2000, random_state=0)
>>> clf = SelfPacedEnsembleClassifier(n_estimators=10, random_state=0).fit(X, y)
>>> scores = evaluate_classifier(clf, X, y)   # AUCPRC / F1 / GM / MCC
"""

from .base import BaseEstimator, ClassifierMixin, clone, is_classifier
from .core import SelfPacedEnsembleClassifier
from .streaming import StreamingSelfPacedEnsembleClassifier
from .persistence import load_model, save_model
from .serving import ModelServer
from .monitoring import DriftMonitor, ReferenceSketch
from .lifecycle import ArtifactRegistry, LifecycleController, RetrainPolicy
from .exceptions import (
    ConvergenceWarning,
    DataValidationError,
    NotEnoughSamplesError,
    NotFittedError,
    PersistenceError,
    RegistryError,
    ReproError,
    ServerOverloadedError,
    UndefinedMetricWarning,
)

__version__ = "1.0.0"

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "clone",
    "is_classifier",
    "SelfPacedEnsembleClassifier",
    "StreamingSelfPacedEnsembleClassifier",
    "load_model",
    "save_model",
    "ModelServer",
    "DriftMonitor",
    "ReferenceSketch",
    "ArtifactRegistry",
    "LifecycleController",
    "RetrainPolicy",
    "ConvergenceWarning",
    "DataValidationError",
    "NotEnoughSamplesError",
    "NotFittedError",
    "PersistenceError",
    "RegistryError",
    "ReproError",
    "ServerOverloadedError",
    "UndefinedMetricWarning",
    "__version__",
]
