"""Deterministic chaos injection for the serving plane.

Build a seeded :class:`FaultPlan` (kill worker *k* after *n* requests,
kill it mid-swap, stall a serving loop, delay a reply, corrupt an
artifact byte), hand it to ``ModelServer`` / ``WorkerPool`` /
``AsyncGateway`` via their ``chaos=`` parameter, and the plane breaks the
same way on every run — which is what lets ``benchmarks/bench_chaos.py``
and the ``chaos``-marked tests assert hard SLOs (zero hung futures,
bounded recovery, every request scored exactly once or failed with a
typed error) instead of hoping the race happens. See ``DESIGN.md`` →
"Fault tolerance".
"""

from .plan import (
    CHAOS_EXIT_CODE,
    CorruptArtifact,
    DelayReply,
    FaultPlan,
    KillOnSwap,
    KillWorker,
    StallSite,
    StallWorker,
)

__all__ = [
    "CHAOS_EXIT_CODE",
    "CorruptArtifact",
    "DelayReply",
    "FaultPlan",
    "KillOnSwap",
    "KillWorker",
    "StallSite",
    "StallWorker",
]
