"""Deterministic fault injection for the serving plane.

A :class:`FaultPlan` is a *seeded, fully deterministic* description of
what should break and when: kill worker ``k`` after its ``n``-th request,
kill it the moment a fleet swap reaches it, stall its serving loop, delay
a reply on the wire, or corrupt one byte of an artifact on disk. The plan
itself holds **no mutable trigger state** — every fire site passes its
own local counters (request count, swap count, process generation) and
the plan answers purely from the fault specs, so the same plan against
the same traffic produces the same failures, run after run.

Faults reach the serving plane through *explicit hooks*: ``ModelServer``,
``WorkerPool`` and ``AsyncGateway`` each accept a ``chaos=`` plan and
call :meth:`FaultPlan.fire` at named sites. Production code paths never
construct a plan; with ``chaos=None`` (the default) every hook is a
no-op branch.

Fire sites
----------
``worker.request``   in a pool worker, before handling each request
                     (matches :class:`KillWorker`, :class:`StallWorker`)
``worker.reply``     in a pool worker, before posting a reply
                     (matches :class:`DelayReply`)
``worker.swap``      in a pool worker, on receiving a swap broadcast
                     (matches :class:`KillOnSwap`, mid-swap crashes)
``server.batch``     in ``ModelServer``'s batching loop, before scoring
                     (matches :class:`StallSite`)
``gateway.forward``  in ``AsyncGateway``'s drain, before forwarding
                     (matches :class:`StallSite`)

:class:`CorruptArtifact` is not fired — it is *applied* through
:meth:`FaultPlan.corrupt`, which flips one byte at a seeded offset so a
harness can hand a deterministically-damaged artifact to ``swap_model``.

Worker *generations* make crash plans converge: a respawned worker
restarts its request counter, so a ``KillWorker(0, after_requests=3)``
would kill every incarnation forever. Kill faults therefore target one
``generation`` (default 0, the original process); the supervisor hands
each respawn an incremented generation and the respawned worker sails
past the fault that killed its predecessor.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .. import telemetry

__all__ = [
    "CorruptArtifact",
    "DelayReply",
    "FaultPlan",
    "KillOnSwap",
    "KillWorker",
    "StallSite",
    "StallWorker",
]

#: Exit code of a chaos-killed worker — distinguishable from OOM-kill
#: (negative signal) and clean exit (0) in supervisor logs and tests.
CHAOS_EXIT_CODE = 86


@dataclass(frozen=True)
class KillWorker:
    """Kill worker ``worker`` when it dequeues its ``after_requests``-th
    request (1-based), in incarnation ``generation`` only."""

    worker: int
    after_requests: int
    generation: int = 0


@dataclass(frozen=True)
class KillOnSwap:
    """Kill worker ``worker`` the instant its ``on_swap``-th swap
    broadcast (1-based) reaches it — before any ack is sent. This is the
    deterministic mid-swap crash: the fleet swap is in flight, the worker
    dies unacknowledged, and recovery is the supervisor's problem."""

    worker: int
    on_swap: int = 1
    generation: int = 0


@dataclass(frozen=True)
class StallWorker:
    """Freeze worker ``worker``'s serving loop for ``seconds`` when it
    dequeues its ``after_requests``-th request: its queue backs up, its
    in-flight deadlines expire, and the pool must keep serving around it."""

    worker: int
    after_requests: int
    seconds: float
    generation: Optional[int] = None  #: ``None`` = every incarnation


@dataclass(frozen=True)
class DelayReply:
    """Hold worker ``worker``'s ``after_requests``-th reply for
    ``seconds`` before it is posted back to the parent."""

    worker: int
    after_requests: int
    seconds: float
    generation: Optional[int] = None


@dataclass(frozen=True)
class StallSite:
    """Freeze a non-worker site (``server.batch``, ``gateway.forward``)
    for ``seconds`` on its ``after_count``-th firing."""

    site: str
    after_count: int
    seconds: float


@dataclass(frozen=True)
class CorruptArtifact:
    """Flip one byte of an artifact file. ``offset=None`` derives the
    offset from the plan seed (clamped inside the file, past the zip
    header), so the damage is deterministic but not hand-picked."""

    offset: Optional[int] = None


class FaultPlan:
    """An immutable, seeded schedule of serving-plane faults.

    Parameters
    ----------
    faults : sequence of fault dataclasses
        Any mix of :class:`KillWorker`, :class:`KillOnSwap`,
        :class:`StallWorker`, :class:`DelayReply`, :class:`StallSite`,
        :class:`CorruptArtifact`.
    seed : int, default 0
        Feeds the corrupt-offset derivation (and any future randomized
        fault parameters). Two plans with the same faults and seed are
        behaviourally identical.

    The plan is safe to inherit through ``fork`` (it is plain data) and
    safe to share across threads (``fire`` reads, never writes).
    """

    def __init__(self, faults: Sequence = (), *, seed: int = 0):
        self.faults: Tuple = tuple(faults)
        self.seed = int(seed)
        self.fired_: list = []  # parent-side record; child copies diverge

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r}, seed={self.seed})"

    @staticmethod
    def _count_fault(site: str, kind: str) -> None:
        """Mirror a fired fault into ``repro_chaos_faults_total``.

        Counted in whichever process fires it: stalls/delays surface in
        that process's registry; kill counts die with the killed worker
        (the parent's pool crash counters are the surviving record).
        """
        telemetry.get_registry().counter(
            "repro_chaos_faults_total",
            "Chaos faults fired, by site and kind.",
            labels=("site", "kind"),
        ).labels(site, kind).inc()

    # ------------------------------------------------------------------ #
    def fire(
        self,
        site: str,
        *,
        worker: Optional[int] = None,
        count: int = 0,
        generation: int = 0,
    ) -> None:
        """Evaluate every fault against one fire site; act on matches.

        ``count`` is the caller-owned 1-based event counter for the site
        (requests seen, swaps received, batches drained); ``generation``
        is the worker's incarnation number (0 = original process). Kills
        never return; stalls/delays sleep then return.
        """
        for fault in self.faults:
            if isinstance(fault, KillWorker) and site == "worker.request":
                if (
                    fault.worker == worker
                    and fault.after_requests == count
                    and fault.generation == generation
                ):
                    self._count_fault(site, "kill")
                    self._die(f"KillWorker(worker={worker}, count={count})")
            elif isinstance(fault, KillOnSwap) and site == "worker.swap":
                if (
                    fault.worker == worker
                    and fault.on_swap == count
                    and fault.generation == generation
                ):
                    self._count_fault(site, "kill")
                    self._die(f"KillOnSwap(worker={worker}, swap={count})")
            elif isinstance(fault, StallWorker) and site == "worker.request":
                if (
                    fault.worker == worker
                    and fault.after_requests == count
                    and fault.generation in (None, generation)
                ):
                    self.fired_.append(("stall", site, worker, count))
                    self._count_fault(site, "stall")
                    time.sleep(fault.seconds)
            elif isinstance(fault, DelayReply) and site == "worker.reply":
                if (
                    fault.worker == worker
                    and fault.after_requests == count
                    and fault.generation in (None, generation)
                ):
                    self.fired_.append(("delay", site, worker, count))
                    self._count_fault(site, "delay")
                    time.sleep(fault.seconds)
            elif isinstance(fault, StallSite) and site == fault.site:
                if fault.after_count == count:
                    self.fired_.append(("stall", site, worker, count))
                    self._count_fault(site, "stall")
                    time.sleep(fault.seconds)

    @staticmethod
    def _die(reason: str) -> None:
        # os._exit: no atexit/finally cleanup, no queue flush — the
        # closest deterministic stand-in for an OOM-kill/SIGKILL.
        os._exit(CHAOS_EXIT_CODE)

    # ------------------------------------------------------------------ #
    def corrupt(self, path) -> int:
        """Flip one byte of the file at ``path``; returns the offset.

        The offset comes from the first :class:`CorruptArtifact` fault.
        When no explicit offset is given, the seed picks a byte inside
        the *payload of the largest zip member* (past the ``.npy``
        header) — i.e. real model array bytes, the damage an artifact
        checksum exists to catch — rather than zip bookkeeping that a
        memory-mapped load might never touch. Flipping is an XOR, so
        applying it twice restores the artifact."""
        spec = next(
            (f for f in self.faults if isinstance(f, CorruptArtifact)),
            CorruptArtifact(),
        )
        path = os.fspath(path)
        size = os.path.getsize(path)
        if spec.offset is not None:
            offset = int(spec.offset)
            if not 0 <= offset < size:
                raise ValueError(
                    f"corrupt offset {offset} outside the {size}-byte file"
                )
        else:
            lo, hi = self._payload_span(path, size)
            rng = np.random.RandomState(self.seed)
            offset = int(rng.randint(lo, hi))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        self.fired_.append(("corrupt", path, offset))
        return offset

    @staticmethod
    def _payload_span(path: str, size: int) -> Tuple[int, int]:
        """Byte range of the largest zip member's data payload, skipping
        its ``.npy`` header; falls back to the middle 60% of the file for
        non-zip artifacts."""
        import struct
        import zipfile

        try:
            with zipfile.ZipFile(path) as archive:
                zinfo = max(archive.infolist(), key=lambda z: z.compress_size)
            with open(path, "rb") as handle:
                handle.seek(zinfo.header_offset)
                header = handle.read(30)
            name_len, extra_len = struct.unpack("<HH", header[26:30])
            start = zinfo.header_offset + 30 + name_len + extra_len
            end = start + zinfo.compress_size
            start += min(128, zinfo.compress_size // 2)  # skip .npy header
            if start < end:
                return start, end
        except (zipfile.BadZipFile, OSError, struct.error):
            pass
        return max(1, int(size * 0.2)), max(2, int(size * 0.8))
