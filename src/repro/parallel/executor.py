"""Execution backends for the ensemble engine.

Everything in :mod:`repro.parallel` is built on one primitive —
:func:`parallel_map` — which applies a function over a list of task
payloads and returns the results *in task order* regardless of backend:

* ``"serial"``   — a plain loop in the calling thread (zero overhead, the
  reference semantics every other backend must reproduce bit-for-bit);
* ``"thread"``   — a :class:`~concurrent.futures.ThreadPoolExecutor`; tasks
  share memory, so no data is copied (numpy releases the GIL inside most
  heavy kernels);
* ``"process"``  — a :class:`~concurrent.futures.ProcessPoolExecutor`; task
  payloads and results cross process boundaries via pickle, so the mapped
  function and every payload must be picklable (module-level functions and
  :func:`functools.partial` of them qualify; closures do not).

Determinism contract: callers must make each task self-contained — any
randomness a task needs is derived from a per-task seed drawn *before*
dispatch (:mod:`repro.parallel.seeding`), and reductions over task results
always run in task order. Under that contract every backend and every
``n_jobs`` produces identical output.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

__all__ = ["BACKENDS", "resolve_n_jobs", "parallel_map"]

#: Recognised backend names, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")


def resolve_n_jobs(n_jobs: Optional[int] = None) -> int:
    """Turn an ``n_jobs`` hyper-parameter into a concrete worker count.

    ``None`` means 1 (no parallelism); positive integers pass through;
    negative integers count back from the CPU count the way joblib does
    (``-1`` → all CPUs, ``-2`` → all but one, never below 1).
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise ValueError("n_jobs == 0 has no meaning; use 1, a positive int, or -1")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"Unknown backend {backend!r}; expected one of {list(BACKENDS)}"
        )
    return backend


def parallel_map(
    fn: Callable,
    tasks: Sequence,
    *,
    backend: str = "serial",
    n_jobs: Optional[int] = None,
    initializer: Optional[Callable] = None,
    initargs: Sequence = (),
) -> List:
    """Apply ``fn`` to every payload in ``tasks``; results in task order.

    Falls back to the serial loop whenever parallelism cannot pay off
    (one worker, one task, or the serial backend) so callers can pass
    ``n_jobs`` straight through without special-casing.

    ``initializer(*initargs)`` runs once per worker before any task (and
    once in the calling thread on the serial path). This is how a caller
    ships shared state — e.g. a block of estimators — to ``"process"``
    workers *once per worker* instead of re-pickling it into every task
    payload; thread/serial workers share the caller's memory, so the same
    registration is effectively free there.
    """
    _check_backend(backend)
    tasks = list(tasks)
    workers = min(resolve_n_jobs(n_jobs), max(len(tasks), 1))
    if backend == "serial" or workers <= 1 or len(tasks) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]
    pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    with pool_cls(
        max_workers=workers, initializer=initializer, initargs=tuple(initargs)
    ) as pool:
        return list(pool.map(fn, tasks))
