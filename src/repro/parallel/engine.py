"""Parallel ensemble-fitting engine.

Every bagging-style ensemble in the library is "n independent recipes":
member *i* resamples the training data, builds an unfitted model, and fits
it. The engine captures that shape once —

* ``sample_fn(i, rng, X, y) -> (X_bag, y_bag)`` builds member *i*'s
  training set from its private RNG;
* ``make_model(rng) -> model`` builds member *i*'s unfitted model (seeding
  it from the same private RNG);

— derives one seed per member up front (:func:`repro.parallel.seeding`),
and dispatches the members through :func:`repro.parallel.parallel_map`.
Results come back in member order, so ``estimators_`` is stable across
backends and worker counts.

For the ``"process"`` backend, ``sample_fn`` and ``make_model`` must be
picklable: module-level functions, or :func:`functools.partial` binding
extra arguments onto one (the pattern every caller in this library uses).
Each task tuple carries ``(X, y)``, so the process backend pickles the
training data once per member — cheap for this library's paper-scale
workloads, but prefer ``"thread"`` (shared memory) when ``X`` is hundreds
of megabytes; shipping the arrays once per worker via a pool initializer
is the known upgrade path if that ever dominates.
Sequential methods (cascades, boosting) reuse :func:`fit_ensemble_member`
for single fits so the per-member plumbing is defined exactly once.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from .executor import parallel_map
from .seeding import spawn_seeds, task_rng

__all__ = ["fit_ensemble_member", "fit_ensemble_parallel"]


def fit_ensemble_member(
    index: int,
    rng: np.random.RandomState,
    X: np.ndarray,
    y: np.ndarray,
    sample_fn: Callable,
    make_model: Callable,
) -> Tuple[object, int]:
    """Resample, build, and fit one ensemble member.

    Returns ``(fitted_model, n_training_samples)``. The RNG consumption
    order — sample first, then model seeding — is part of the determinism
    contract; both parallel members (via :func:`fit_ensemble_parallel`) and
    sequential callers (cascade rounds) go through this single code path.
    """
    X_bag, y_bag = sample_fn(index, rng, X, y)
    model = make_model(rng)
    model.fit(X_bag, y_bag)
    return model, len(y_bag)


def _member_task(task) -> Tuple[object, int]:
    seed, index, X, y, sample_fn, make_model = task
    return fit_ensemble_member(index, task_rng(seed), X, y, sample_fn, make_model)


def fit_ensemble_parallel(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_estimators: int,
    sample_fn: Callable,
    make_model: Callable,
    random_state=None,
    backend: str = "serial",
    n_jobs: Optional[int] = None,
) -> Tuple[List, int]:
    """Fit ``n_estimators`` independent members, possibly in parallel.

    Returns ``(estimators, total_training_samples)`` with estimators in
    member order. Given the same ``random_state`` the output is identical
    for every ``backend`` / ``n_jobs`` combination because each member's
    randomness comes from a seed drawn sequentially before dispatch.
    """
    if n_estimators < 1:
        raise ValueError("n_estimators must be >= 1")
    seeds = spawn_seeds(random_state, n_estimators)
    tasks = [
        (seeds[i], i, X, y, sample_fn, make_model) for i in range(n_estimators)
    ]
    results = parallel_map(_member_task, tasks, backend=backend, n_jobs=n_jobs)
    estimators = [model for model, _ in results]
    n_samples = int(sum(n for _, n in results))
    return estimators, n_samples
