"""Parallel execution engine: backends, seeding, fitting, and inference.

The subsystem has four small layers:

* :mod:`repro.parallel.executor` — ``serial`` / ``thread`` / ``process``
  backends behind one ordered :func:`parallel_map` primitive;
* :mod:`repro.parallel.seeding` — per-task seed derivation so results are
  bit-identical across backends and worker counts;
* :mod:`repro.parallel.engine` — the generic "resample → build → fit"
  member loop every bagging-style ensemble shares;
* :mod:`repro.parallel.inference` — chunked, batched
  :func:`ensemble_predict_proba` for streaming large scoring jobs.

All ensemble classes expose the same three knobs on top of it: ``n_jobs``
(worker count, ``-1`` = all CPUs), ``backend`` (executor choice), and —
where scoring matters — ``chunk_size`` (rows per inference task).
"""

from .engine import fit_ensemble_member, fit_ensemble_parallel
from .executor import BACKENDS, parallel_map, resolve_n_jobs
from .inference import (
    DEFAULT_CHUNK_SIZE,
    ESTIMATOR_BLOCK,
    ensemble_predict_proba,
)
from .seeding import MAX_SEED, spawn_seeds, task_rng

__all__ = [
    "BACKENDS",
    "DEFAULT_CHUNK_SIZE",
    "ESTIMATOR_BLOCK",
    "MAX_SEED",
    "ensemble_predict_proba",
    "fit_ensemble_member",
    "fit_ensemble_parallel",
    "parallel_map",
    "resolve_n_jobs",
    "spawn_seeds",
    "task_rng",
]
