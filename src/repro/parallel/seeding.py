"""Per-task seed derivation — the determinism half of the parallel engine.

A naively parallelised ensemble is non-deterministic because base models
race for draws from one shared random stream. The engine avoids this by
splitting the stream *before* dispatch: the parent RNG emits one integer
seed per task in a single sequential draw, and each task builds its own
private :class:`~numpy.random.RandomState` from its seed. The schedule of
draws is then a function of ``random_state`` alone — not of the backend,
the worker count, or task completion order — which is what makes
``serial``/``thread``/``process`` results bit-identical.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..utils.validation import check_random_state

__all__ = ["MAX_SEED", "spawn_seeds", "task_rng"]

#: Exclusive upper bound for derived seeds (int32 positive range, matching
#: the ``rng.randint(np.iinfo(np.int32).max)`` idiom used across the library).
MAX_SEED = np.iinfo(np.int32).max


def spawn_seeds(random_state, n_tasks: int) -> List[int]:
    """Draw ``n_tasks`` independent task seeds from a parent random state.

    The parent stream advances exactly once regardless of how the tasks are
    later scheduled. Accepts anything :func:`check_random_state` accepts; a
    shared :class:`~numpy.random.RandomState` instance advances in place so
    successive engine calls (e.g. the rounds of a cascade) stay decorrelated.
    """
    if n_tasks < 0:
        raise ValueError("n_tasks must be >= 0")
    rng = check_random_state(random_state)
    return [int(s) for s in rng.randint(0, MAX_SEED, size=n_tasks)]


def task_rng(seed: int) -> np.random.RandomState:
    """Private random state for one task, built from its derived seed."""
    return np.random.RandomState(int(seed))
