"""Chunked, batched ensemble inference.

``ensemble_predict_proba`` replaces the old one-shot averaging loop with a
fixed task grid: rows are cut into cache-friendly chunks and estimators
into fixed-size blocks, each (chunk, block) cell computes a partial
probability sum, and cells are reduced in grid order. Because the grid and
the reduction order depend only on the inputs and ``chunk_size`` — never on
``n_jobs`` or the backend — the result is bit-identical whether the cells
run serially, on a thread pool, or across processes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .executor import parallel_map

__all__ = ["DEFAULT_CHUNK_SIZE", "ESTIMATOR_BLOCK", "ensemble_predict_proba"]

#: Default number of rows scored per task — large enough to amortise the
#: per-call python overhead of ``predict_proba``, small enough that a chunk
#: of float64 features stays cache-resident.
DEFAULT_CHUNK_SIZE = 8192

#: Estimators per block. Fixed (never derived from ``n_jobs``) so the
#: partial-sum reduction order is a pure function of the ensemble size.
ESTIMATOR_BLOCK = 8


def _row_spans(n_rows: int, chunk_size: int) -> List[Tuple[int, int]]:
    return [(s, min(s + chunk_size, n_rows)) for s in range(0, n_rows, chunk_size)]


def _partial_proba(task) -> np.ndarray:
    """Sum of class-aligned probabilities for one (row chunk, block) cell."""
    estimators, column_maps, X_chunk, n_classes = task
    out = np.zeros((X_chunk.shape[0], n_classes))
    for est, cols in zip(estimators, column_maps):
        out[:, cols] += est.predict_proba(X_chunk)
    return out


def ensemble_predict_proba(
    estimators: Sequence,
    X,
    classes: np.ndarray,
    *,
    n_jobs: Optional[int] = None,
    backend: str = "thread",
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Average ``predict_proba`` over fitted estimators, aligning classes.

    Each estimator may have seen a subset of the classes (an extreme-IR
    bootstrap can miss the minority entirely); probabilities are mapped into
    the full class space before averaging.

    Parameters
    ----------
    estimators : fitted classifiers exposing ``predict_proba`` / ``classes_``.
    X : array of shape (n_samples, n_features)
    classes : the ensemble's full class vector; output columns follow it.
    n_jobs : worker count (``None``/1 serial, ``-1`` all CPUs).
    backend : ``"serial"`` / ``"thread"`` / ``"process"``; with ``"process"``
        the estimators and row chunks are pickled to the workers.
    chunk_size : rows per task (default :data:`DEFAULT_CHUNK_SIZE`). The
        result is independent of the chosen value.
    """
    estimators = list(estimators)
    if not estimators:
        raise ValueError("ensemble_predict_proba requires at least one estimator")
    X = np.asarray(X, dtype=float)
    classes = np.asarray(classes)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    class_pos = {c: i for i, c in enumerate(classes.tolist())}
    column_maps = [
        [class_pos[c] for c in est.classes_.tolist()] for est in estimators
    ]
    blocks = [
        slice(b, min(b + ESTIMATOR_BLOCK, len(estimators)))
        for b in range(0, len(estimators), ESTIMATOR_BLOCK)
    ]
    spans = _row_spans(X.shape[0], chunk_size)
    tasks = [
        (estimators[blk], column_maps[blk], X[lo:hi], len(classes))
        for lo, hi in spans
        for blk in blocks
    ]
    partials = parallel_map(_partial_proba, tasks, backend=backend, n_jobs=n_jobs)

    proba = np.empty((X.shape[0], len(classes)))
    for c, (lo, hi) in enumerate(spans):
        cell = partials[c * len(blocks) : (c + 1) * len(blocks)]
        total = cell[0]
        for extra in cell[1:]:  # fixed block order → deterministic rounding
            total = total + extra
        proba[lo:hi] = total / len(estimators)
    return proba
