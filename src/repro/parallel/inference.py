"""Chunked, batched ensemble inference with a packed-forest fast path.

``ensemble_predict_proba`` has two internally equivalent execution paths:

* **Packed fast path** (default for all-tree ensembles): the fitted trees
  are flattened into one :class:`repro.fastpath.PackedForest` and every
  tree × every row is evaluated in a single vectorised level-synchronous
  pass — no per-tree ``predict_proba`` calls, no per-chunk re-validation.
  The packed kernel replays this module's exact accumulation order
  (sequential sums inside fixed :data:`ESTIMATOR_BLOCK`-sized blocks, block
  partials reduced in block order, one final division), so its output is
  bit-identical to the chunked path.

* **Chunked fallback** (non-tree members, mixed ensembles, or
  ``REPRO_FASTPATH=0``): rows are cut into cache-friendly chunks and
  estimators into fixed-size blocks, each (chunk, block) cell computes a
  partial probability sum, and cells are reduced in grid order. The grid
  and the reduction order depend only on the inputs and ``chunk_size`` —
  never on ``n_jobs`` or the backend — so the result is bit-identical
  whether the cells run serially, on a thread pool, or across processes.
  Estimator blocks are shipped to workers **once per worker** via a keyed
  registry installed by the pool initializer; task payloads carry only
  ``(key, block id, row chunk)``, so the ``"process"`` backend no longer
  re-pickles the same estimators for every row chunk while a worker still
  never holds more than one chunk of the matrix.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..fastpath.codetable import cached_packed_ensemble
from ..fastpath.config import fastpath_enabled
from ..fastpath.packed import ESTIMATOR_BLOCK
from .executor import parallel_map

#: ``repro_fastpath_predict_seconds{path=...}`` children, cached — the
#: inference engine is the serving hot loop; one dict hit, not a
#: registry round-trip per call.
_PREDICT_HIST: Dict[str, object] = {}


def _predict_histogram(path: str):
    child = _PREDICT_HIST.get(path)
    if child is None:
        child = telemetry.get_registry().histogram(
            "repro_fastpath_predict_seconds",
            "ensemble_predict_proba latency by execution path "
            "(packed kernel vs chunked fallback).",
            labels=("path",),
        ).labels(path)
        _PREDICT_HIST[path] = child
    return child

__all__ = ["DEFAULT_CHUNK_SIZE", "ESTIMATOR_BLOCK", "ensemble_predict_proba"]

#: Default number of rows scored per task — large enough to amortise the
#: per-call python overhead of ``predict_proba``, small enough that a chunk
#: of float64 features stays cache-resident.
DEFAULT_CHUNK_SIZE = 8192

#: Per-process registry of shared scoring payloads, keyed per call. The
#: caller installs a payload through the pool initializer (one pickle per
#: worker process; a no-op share for thread/serial workers) and removes its
#: own key afterwards; worker-process copies die with the pool.
_SHARED_PAYLOADS: Dict[Tuple[int, int], tuple] = {}
_payload_counter = itertools.count()


def _install_payload(key, payload) -> None:
    _SHARED_PAYLOADS[key] = payload


def _row_spans(n_rows: int, chunk_size: int) -> List[Tuple[int, int]]:
    return [(s, min(s + chunk_size, n_rows)) for s in range(0, n_rows, chunk_size)]


def _partial_proba(task) -> np.ndarray:
    """Sum of class-aligned probabilities for one (row chunk, block) cell.

    Rows travel in the task payload (one chunk at a time, exactly like the
    historical grid, so a worker never holds more than a chunk of the
    matrix); the estimator blocks come from the per-worker registry."""
    key, block_id, X_chunk = task
    est_blocks, map_blocks, n_classes = _SHARED_PAYLOADS[key]
    out = np.zeros((X_chunk.shape[0], n_classes))
    for est, cols in zip(est_blocks[block_id], map_blocks[block_id]):
        out[:, cols] += est.predict_proba(X_chunk)
    return out


def _packed_proba(
    estimators: Sequence, X: np.ndarray, classes: np.ndarray
) -> Optional[np.ndarray]:
    """Packed-forest evaluation, or ``None`` when the ensemble is not
    packable (any non-tree member, unknown classes, feature-count mismatch)
    — the chunked path then owns both the computation and error reporting.

    The packed layout (and, for shared-binner ensembles with a small code
    grid, the compiled per-cell table) is cached per ensemble, so repeated
    serving calls pay only the kernel.

    Non-finite rows are declined up front: the chunked path rejects them
    through each member's ``check_array`` (NaN would otherwise silently
    route right), and the two paths must disagree on nothing — not even
    error behaviour."""
    if not np.isfinite(X).all():
        return None
    entry = cached_packed_ensemble(estimators, classes)
    if entry is None:
        return None
    forest, table = entry
    if forest.n_features != X.shape[1]:
        return None
    if table is not None:
        return table.predict_proba(X)
    return forest.predict_proba(X)


def ensemble_predict_proba(
    estimators: Sequence,
    X,
    classes: np.ndarray,
    *,
    n_jobs: Optional[int] = None,
    backend: str = "thread",
    chunk_size: Optional[int] = None,
    packed: str = "auto",
) -> np.ndarray:
    """Average ``predict_proba`` over fitted estimators, aligning classes.

    Each estimator may have seen a subset of the classes (an extreme-IR
    bootstrap can miss the minority entirely); probabilities are mapped into
    the full class space before averaging.

    Parameters
    ----------
    estimators : fitted classifiers exposing ``predict_proba`` / ``classes_``.
    X : array of shape (n_samples, n_features)
    classes : the ensemble's full class vector; output columns follow it.
    n_jobs : worker count (``None``/1 serial, ``-1`` all CPUs).
    backend : ``"serial"`` / ``"thread"`` / ``"process"``; with ``"process"``
        each estimator block is shipped to every worker once (via the pool
        initializer) instead of being re-pickled per row chunk; rows still
        travel one chunk per task.
    chunk_size : rows per task on the chunked path (default
        :data:`DEFAULT_CHUNK_SIZE`). The result is independent of the value.
    packed : ``"auto"`` (packed kernel for all-tree ensembles when the
        fastpath is enabled, chunked otherwise) or ``"never"`` (always the
        chunked path). Both paths are bit-identical.
    """
    estimators = list(estimators)
    if not estimators:
        raise ValueError("ensemble_predict_proba requires at least one estimator")
    if packed not in ("auto", "never"):
        raise ValueError(f"packed must be 'auto' or 'never', got {packed!r}")
    X = np.asarray(X, dtype=float)
    classes = np.asarray(classes)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")

    watch = telemetry.stopwatch()
    if packed == "auto" and fastpath_enabled():
        proba = _packed_proba(estimators, X, classes)
        if proba is not None:
            watch.observe(_predict_histogram("packed"))
            return proba

    class_pos = {c: i for i, c in enumerate(classes.tolist())}
    column_maps = [
        [class_pos[c] for c in est.classes_.tolist()] for est in estimators
    ]
    block_slices = [
        slice(b, min(b + ESTIMATOR_BLOCK, len(estimators)))
        for b in range(0, len(estimators), ESTIMATOR_BLOCK)
    ]
    est_blocks = tuple(estimators[blk] for blk in block_slices)
    map_blocks = tuple(column_maps[blk] for blk in block_slices)
    spans = _row_spans(X.shape[0], chunk_size)
    key = (os.getpid(), next(_payload_counter))
    payload = (est_blocks, map_blocks, len(classes))
    tasks = [
        (key, block_id, X[lo:hi])
        for lo, hi in spans
        for block_id in range(len(block_slices))
    ]
    try:
        partials = parallel_map(
            _partial_proba,
            tasks,
            backend=backend,
            n_jobs=n_jobs,
            initializer=_install_payload,
            initargs=(key, payload),
        )
    finally:
        _SHARED_PAYLOADS.pop(key, None)

    proba = np.empty((X.shape[0], len(classes)))
    n_blocks = len(block_slices)
    for c, (lo, hi) in enumerate(spans):
        cell = partials[c * n_blocks : (c + 1) * n_blocks]
        total = cell[0]
        for extra in cell[1:]:  # fixed block order → deterministic rounding
            total = total + extra
        proba[lo:hi] = total / len(estimators)
    watch.observe(_predict_histogram("chunked"))
    return proba
