"""Pairwise distance computation, chunked so memory stays bounded.

Brute-force distances are the backbone of KNN classification and every
distance-based re-sampler (SMOTE, NearMiss, Tomek links, ENN ...). The
quadratic cost of these routines on large data is precisely the bottleneck
the paper's Table V timing column demonstrates.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..utils.validation import check_array

__all__ = ["pairwise_distances", "kneighbors"]

_CHUNK_BYTES = 32 * 1024 * 1024  # ~32 MB of float64 per distance block


def _euclidean_block(A: np.ndarray, B: np.ndarray, squared: bool) -> np.ndarray:
    """Euclidean distances between two row blocks via the Gram expansion."""
    AA = np.einsum("ij,ij->i", A, A)[:, None]
    BB = np.einsum("ij,ij->i", B, B)[None, :]
    d2 = AA + BB - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)
    return d2 if squared else np.sqrt(d2)


def _manhattan_block(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    return np.abs(A[:, None, :] - B[None, :, :]).sum(axis=2)


def pairwise_distances(
    X,
    Y=None,
    *,
    metric: str = "euclidean",
    squared: bool = False,
) -> np.ndarray:
    """Full distance matrix between rows of ``X`` and ``Y`` (or ``X``)."""
    X = check_array(X)
    Y = X if Y is None else check_array(Y)
    if X.shape[1] != Y.shape[1]:
        raise ValueError(
            f"Incompatible dimensions: X has {X.shape[1]} features, Y has "
            f"{Y.shape[1]}."
        )
    if metric == "euclidean":
        return _euclidean_block(X, Y, squared)
    if metric == "manhattan":
        return _manhattan_block(X, Y)
    raise ValueError(f"Unsupported metric {metric!r}")


def kneighbors(
    X_query,
    X_ref,
    n_neighbors: int,
    *,
    metric: str = "euclidean",
    exclude_self: bool = False,
    chunk_bytes: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(distances, indices)`` of the ``n_neighbors`` nearest reference rows.

    ``exclude_self=True`` assumes ``X_query is X_ref`` row-aligned and skips
    each point's zero-distance self match. Queries are processed in chunks
    sized to ``chunk_bytes`` of intermediate distance matrix.
    """
    X_query = check_array(X_query)
    X_ref = check_array(X_ref)
    n_ref = X_ref.shape[0]
    effective = n_neighbors + (1 if exclude_self else 0)
    if effective > n_ref:
        raise ValueError(
            f"n_neighbors={n_neighbors} (+self-exclusion) exceeds the "
            f"{n_ref} reference samples."
        )
    budget = chunk_bytes or _CHUNK_BYTES
    rows_per_chunk = max(1, int(budget / (8 * max(n_ref, 1))))
    all_dist = np.empty((X_query.shape[0], n_neighbors))
    all_idx = np.empty((X_query.shape[0], n_neighbors), dtype=np.int64)
    for start in range(0, X_query.shape[0], rows_per_chunk):
        stop = min(start + rows_per_chunk, X_query.shape[0])
        block = pairwise_distances(X_query[start:stop], X_ref, metric=metric)
        if exclude_self:
            block[np.arange(stop - start), np.arange(start, stop)] = np.inf
        # argpartition for the k smallest, then sort those k columns.
        part = np.argpartition(block, effective - 1, axis=1)[:, :effective]
        part_dist = np.take_along_axis(block, part, axis=1)
        order = np.argsort(part_dist, axis=1, kind="stable")
        part = np.take_along_axis(part, order, axis=1)[:, :n_neighbors]
        part_dist = np.take_along_axis(part_dist, order, axis=1)[:, :n_neighbors]
        all_idx[start:stop] = part
        all_dist[start:stop] = part_dist
    return all_dist, all_idx
