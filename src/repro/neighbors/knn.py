"""K-nearest-neighbour estimators."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..base import BaseEstimator, ClassifierMixin
from ..utils.validation import check_array, check_is_fitted, check_X_y
from .distance import kneighbors

__all__ = ["NearestNeighbors", "KNeighborsClassifier"]


class NearestNeighbors(BaseEstimator):
    """Unsupervised nearest-neighbour lookup over a stored reference set."""

    def __init__(self, n_neighbors: int = 5, metric: str = "euclidean"):
        self.n_neighbors = n_neighbors
        self.metric = metric

    def fit(self, X, y=None) -> "NearestNeighbors":
        """Fit on ``X``, ``y``; returns ``self``."""
        self._fit_X = check_array(X)
        self.n_samples_fit_ = self._fit_X.shape[0]
        return self

    def kneighbors(
        self,
        X=None,
        n_neighbors: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Neighbours of ``X`` among the fitted set.

        ``X=None`` queries the fitted points themselves, excluding each
        point's own zero-distance match (the convention every cleaning
        re-sampler relies on).
        """
        check_is_fitted(self, ["_fit_X"])
        k = n_neighbors or self.n_neighbors
        if X is None:
            return kneighbors(
                self._fit_X, self._fit_X, k, metric=self.metric, exclude_self=True
            )
        return kneighbors(check_array(X), self._fit_X, k, metric=self.metric)


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Brute-force KNN classifier with optional distance weighting.

    ``predict_proba`` returns neighbour-vote fractions, giving the (k+1)-level
    probability granularity that the paper's hardness plots for KNN (Fig 2)
    exhibit.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        metric: str = "euclidean",
    ):
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.metric = metric

    def fit(self, X, y) -> "KNeighborsClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        if self.weights not in ("uniform", "distance"):
            raise ValueError(f"Unknown weights {self.weights!r}")
        X, y = check_X_y(X, y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self._fit_X = X
        self._fit_y = y_enc
        k = min(self.n_neighbors, X.shape[0])
        self.effective_n_neighbors_ = k
        return self

    def _vote(self, X) -> np.ndarray:
        dist, idx = kneighbors(
            X, self._fit_X, self.effective_n_neighbors_, metric=self.metric
        )
        labels = self._fit_y[idx]
        n_classes = len(self.classes_)
        if self.weights == "distance":
            with np.errstate(divide="ignore"):
                w = 1.0 / dist
            w[~np.isfinite(w)] = 1e12  # exact matches dominate
        else:
            w = np.ones_like(dist)
        proba = np.zeros((X.shape[0], n_classes))
        for c in range(n_classes):
            proba[:, c] = np.where(labels == c, w, 0.0).sum(axis=1)
        totals = proba.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return proba / totals

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["_fit_X"])
        X = check_array(X)
        return self._vote(X)

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`).

        KNN's fitted state *is* its training set — the reference matrix and
        encoded labels round-trip byte-exactly, so the restored votes are
        bit-identical.
        """
        check_is_fitted(self, ["_fit_X"])
        meta = {"effective_n_neighbors": int(self.effective_n_neighbors_)}
        arrays = {
            "classes": np.asarray(self.classes_),
            "fit_X": np.asarray(self._fit_X, dtype=np.float64),
            "fit_y": np.asarray(self._fit_y, dtype=np.int64),
        }
        return meta, arrays, {}

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        self.classes_ = np.asarray(arrays["classes"])
        self._fit_X = np.asarray(arrays["fit_X"], dtype=np.float64)
        self._fit_y = np.asarray(arrays["fit_y"], dtype=np.int64)
        self.effective_n_neighbors_ = int(meta["effective_n_neighbors"])
