"""Nearest-neighbour search and classification."""

from .distance import kneighbors, pairwise_distances
from .knn import KNeighborsClassifier, NearestNeighbors

__all__ = [
    "kneighbors",
    "pairwise_distances",
    "KNeighborsClassifier",
    "NearestNeighbors",
]
