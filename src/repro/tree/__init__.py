"""Decision trees: CART-style (gini/entropy) and C4.5-style (gain ratio)."""

from ._binning import FeatureBinner
from .decision_tree import C45Classifier, DecisionTreeClassifier
from .export import export_text

__all__ = [
    "C45Classifier",
    "DecisionTreeClassifier",
    "FeatureBinner",
    "export_text",
]
