"""Textual rendering of a fitted decision tree (debugging / examples)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..utils.validation import check_is_fitted

__all__ = ["export_text"]


def export_text(
    estimator,
    *,
    feature_names: Optional[Sequence[str]] = None,
    max_depth: int = 10,
    decimals: int = 3,
) -> str:
    """Render the tree of a fitted ``DecisionTreeClassifier`` as ASCII."""
    check_is_fitted(estimator, ["tree_"])
    tree = estimator.tree_
    if feature_names is None:
        feature_names = [f"feature_{i}" for i in range(estimator.n_features_in_)]
    lines: List[str] = []

    def recurse(node: int, depth: int) -> None:
        indent = "|   " * depth + "|-- "
        if tree.feature[node] < 0 or depth >= max_depth:
            dist = ", ".join(f"{v:.{decimals}f}" for v in tree.value[node])
            suffix = " (truncated)" if tree.feature[node] >= 0 else ""
            lines.append(f"{indent}class distribution: [{dist}]{suffix}")
            return
        name = feature_names[tree.feature[node]]
        thr = tree.threshold[node]
        lines.append(f"{indent}{name} < {thr:.{decimals}f}")
        recurse(tree.children_left[node], depth + 1)
        lines.append(f"{indent}{name} >= {thr:.{decimals}f}")
        recurse(tree.children_right[node], depth + 1)

    recurse(0, 0)
    return "\n".join(lines)
