"""Array-backed decision tree structure and depth-first builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import telemetry
from ..utils.validation import check_random_state
from ._binning import FeatureBinner
from ._criterion import node_impurity, split_gain

__all__ = ["Tree", "build_tree"]

_LEAF = -1


@dataclass
class Tree:
    """Flat-array decision tree.

    ``feature[i] == -1`` marks node ``i`` as a leaf. Internal nodes route a
    sample left when ``x[feature[i]] < threshold[i]``. ``value`` holds the
    (normalised) class-weight distribution of training samples per node.
    """

    feature: np.ndarray
    threshold: np.ndarray
    children_left: np.ndarray
    children_right: np.ndarray
    value: np.ndarray
    n_node_samples: np.ndarray
    impurity: np.ndarray
    n_classes: int

    @property
    def node_count(self) -> int:
        return len(self.feature)

    @property
    def max_depth(self) -> int:
        depth = np.zeros(self.node_count, dtype=int)
        for i in range(self.node_count):
            for child in (self.children_left[i], self.children_right[i]):
                if child != _LEAF:
                    depth[child] = depth[i] + 1
        return int(depth.max()) if self.node_count else 0

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of raw (un-binned) ``X``."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        while True:
            active = np.flatnonzero(self.feature[node] != _LEAF)
            if active.size == 0:
                break
            cur = node[active]
            feat = self.feature[cur]
            go_left = X[active, feat] < self.threshold[cur]
            node[active] = np.where(
                go_left, self.children_left[cur], self.children_right[cur]
            )
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        leaves = self.apply(X)
        return self.value[leaves]


@dataclass
class _NodeRecord:
    indices: np.ndarray
    depth: int
    parent: int
    is_left: bool


@dataclass
class _Growing:
    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[np.ndarray] = field(default_factory=list)
    n_samples: List[int] = field(default_factory=list)
    impurity: List[float] = field(default_factory=list)

    def add(self, value: np.ndarray, n_samples: int, impurity: float) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(value)
        self.n_samples.append(n_samples)
        self.impurity.append(impurity)
        return len(self.feature) - 1


def _stacked_class_histograms(
    codes: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    n_bins: int,
    n_classes: int,
    uniform_weight: bool,
):
    """Weighted and unweighted (features, bins, classes) histograms.

    One ``bincount`` covers every candidate feature at once: entry
    ``(k, b, c)`` accumulates the rows whose code on feature ``k`` is ``b``
    and whose class is ``c``. Rows are visited in ascending order per
    (feature, bin, class) cell — the same float accumulation order as a
    per-feature ``bincount`` — so the histograms are bit-identical to the
    historical per-feature pass. With uniform weights the weighted histogram
    *is* the integer count histogram (sums of 1.0 are exact), so only one
    ``bincount`` runs.
    """
    m, n_features = codes.shape
    stride = n_bins * n_classes
    idx = codes.astype(np.int64) * n_classes
    idx += y[:, None]
    idx += np.arange(n_features, dtype=np.int64) * stride
    idx = idx.ravel()
    total = n_features * stride
    counts = np.bincount(idx, minlength=total)
    if uniform_weight:
        weighted = counts.astype(np.float64)
    else:
        weighted = np.bincount(idx, weights=np.repeat(w, n_features), minlength=total)
    shape = (n_features, n_bins, n_classes)
    return weighted.reshape(shape), counts.reshape(shape)


def build_tree(
    X_binned: np.ndarray,
    y_encoded: np.ndarray,
    sample_weight: np.ndarray,
    binner: FeatureBinner,
    *,
    n_classes: int,
    criterion: str = "gini",
    max_depth: Optional[int] = None,
    min_samples_split: int = 2,
    min_samples_leaf: int = 1,
    min_impurity_decrease: float = 0.0,
    max_features: Optional[int] = None,
    random_state=None,
) -> Tree:
    """Grow a tree on pre-binned data.

    ``max_features`` (when set below the feature count) samples that many
    candidate features per node without replacement — the randomisation
    Random Forest relies on — and grows depth-first, consuming the RNG in
    stack order. Without feature subsampling there is no per-node
    randomness, and the tree is grown level-synchronously instead: one
    histogram ``bincount`` and one vectorised gain evaluation per *level*
    covering every frontier node at once, then renumbered to the exact
    depth-first node ids the stack builder would have produced. Both
    builders emit bit-identical trees (pinned by ``tests/test_fastpath_units.py``).

    One carve-out keeps that guarantee exact: entropy-family node impurity
    compacts to the nonzero class probabilities before summing, and
    numpy's pairwise reduction only matches that grouping bitwise for
    vectors of at most 8 entries — so entropy/gain-ratio trees with more
    than 8 classes stay on the depth-first builder.
    """
    n_features = X_binned.shape[1]
    max_depth = np.inf if max_depth is None else max_depth
    # Sums of unit weights are exact, so the weighted histogram equals the
    # count histogram bit for bit and one bincount per node can be skipped.
    uniform_weight = bool(np.all(sample_weight == 1.0))
    n_bins_all = np.asarray(binner.n_bins_, dtype=np.int64)
    args = (
        X_binned, y_encoded, sample_weight, binner, n_classes, criterion,
        max_depth, min_samples_split, min_samples_leaf,
        min_impurity_decrease, uniform_weight, n_bins_all,
    )
    subsampling = max_features is not None and max_features < n_features
    if subsampling or (criterion != "gini" and n_classes > 8):
        return _grow_depth_first(*args, max_features=max_features,
                                 random_state=random_state)
    return _grow_level_synchronous(*args)


def _grow_depth_first(
    X_binned: np.ndarray,
    y_encoded: np.ndarray,
    sample_weight: np.ndarray,
    binner: FeatureBinner,
    n_classes: int,
    criterion: str,
    max_depth,
    min_samples_split: int,
    min_samples_leaf: int,
    min_impurity_decrease: float,
    uniform_weight: bool,
    n_bins_all: np.ndarray,
    *,
    max_features: Optional[int],
    random_state,
) -> Tree:
    """Stack-based builder (the reference semantics; used when per-node
    feature subsampling needs the documented RNG consumption order)."""
    rng = check_random_state(random_state)
    n_features = X_binned.shape[1]
    grow = _Growing()
    stack: List[_NodeRecord] = [
        _NodeRecord(np.arange(X_binned.shape[0]), 0, _LEAF, False)
    ]

    while stack:
        rec = stack.pop()
        idx = rec.indices
        y_node = y_encoded[idx]
        if uniform_weight:
            w_node = None  # histograms come from integer counts alone
            class_w = np.bincount(y_node, minlength=n_classes).astype(np.float64)
        else:
            w_node = sample_weight[idx]
            class_w = np.bincount(y_node, weights=w_node, minlength=n_classes)
        total_w = np.add.reduce(class_w)
        imp = node_impurity(class_w, criterion)
        dist = class_w / total_w if total_w > 0 else np.full(n_classes, 1.0 / n_classes)
        node_id = grow.add(dist, len(idx), imp)
        if rec.parent != _LEAF:
            if rec.is_left:
                grow.left[rec.parent] = node_id
            else:
                grow.right[rec.parent] = node_id

        if (
            rec.depth >= max_depth
            or len(idx) < min_samples_split
            or imp <= 1e-12
        ):
            continue

        if max_features is not None and max_features < n_features:
            features = rng.choice(n_features, size=max_features, replace=False)
        else:
            features = np.arange(n_features)

        # Vectorised split search: one stacked histogram and one gain
        # evaluation cover every candidate feature. ``n_bins`` is padded to
        # the widest candidate feature; a feature's phantom bins hold no
        # samples, so their candidates put everything left (empty right
        # side) and split_gain masks them to -inf — exactly the candidates
        # the per-feature loop never generated. Flat row-major argmax over
        # (feature-in-draw-order, code) reproduces the loop's tie-breaking:
        # earliest drawn feature, then lowest code, strictly-greater gains.
        codes_node = X_binned[idx]
        n_bins = int(n_bins_all[features].max()) if len(features) else 0
        if n_bins < 2:
            continue
        weighted, counts = _stacked_class_histograms(
            codes_node[:, features], y_node, w_node, n_bins, n_classes,
            uniform_weight,
        )
        left_w = weighted.cumsum(axis=1)[:, :-1, :]
        right_w = class_w[None, None, :] - left_w
        gains = split_gain(
            left_w.reshape(-1, n_classes),
            right_w.reshape(-1, n_classes),
            imp,
            criterion,
        )
        n_left = np.add.reduce(counts, axis=2).cumsum(axis=1)[:, :-1].ravel()
        n_right = len(idx) - n_left
        gains[(n_left < min_samples_leaf) | (n_right < min_samples_leaf)] = -np.inf
        best_flat = int(gains.argmax())
        best_gain = gains[best_flat]
        if not (best_gain > -np.inf) or best_gain <= min_impurity_decrease + 1e-12:
            continue
        best_feature = int(features[best_flat // (n_bins - 1)])
        best_code = best_flat % (n_bins - 1)

        grow.feature[node_id] = best_feature
        grow.threshold[node_id] = binner.threshold_value(best_feature, best_code)
        go_left = codes_node[:, best_feature] <= best_code
        # Push right first so left is processed next (cosmetic: left-to-right ids).
        stack.append(_NodeRecord(idx[~go_left], rec.depth + 1, node_id, False))
        stack.append(_NodeRecord(idx[go_left], rec.depth + 1, node_id, True))

    return Tree(
        feature=np.asarray(grow.feature, dtype=np.int64),
        threshold=np.asarray(grow.threshold, dtype=np.float64),
        children_left=np.asarray(grow.left, dtype=np.int64),
        children_right=np.asarray(grow.right, dtype=np.int64),
        value=np.asarray(grow.value, dtype=np.float64),
        n_node_samples=np.asarray(grow.n_samples, dtype=np.int64),
        impurity=np.asarray(grow.impurity, dtype=np.float64),
        n_classes=n_classes,
    )


def _node_impurity_rows(
    class_w: np.ndarray, total_w: np.ndarray, criterion: str
) -> np.ndarray:
    """Row-wise :func:`node_impurity` — identical per-row float ops."""
    safe = np.where(total_w > 0, total_w, 1.0)
    p = class_w / safe[:, None]
    if criterion == "gini":
        imp = 1.0 - np.add.reduce(p * p, axis=1)
    else:
        # log2 of the *actual* probability (node_impurity does not clamp);
        # zero entries contribute exact 0.0 terms, which cannot change any
        # pairwise partial sum.
        logp = np.where(p > 0, np.log2(np.where(p > 0, p, 1.0)), 0.0)
        imp = -np.add.reduce(p * logp, axis=1)
    imp[total_w <= 0] = 0.0
    return imp


def _grow_level_synchronous(
    X_binned: np.ndarray,
    y_encoded: np.ndarray,
    sample_weight: np.ndarray,
    binner: FeatureBinner,
    n_classes: int,
    criterion: str,
    max_depth,
    min_samples_split: int,
    min_samples_leaf: int,
    min_impurity_decrease: float,
    uniform_weight: bool,
    n_bins_all: np.ndarray,
) -> Tree:
    """Grow all frontier nodes of a level together, then renumber to the
    depth-first ids of the stack builder.

    Per level, one ``bincount`` over ``(node, feature, bin, class)`` builds
    every node's split histograms at once and one :func:`split_gain` call
    scores every candidate of every node, so python/numpy dispatch cost is
    paid per level instead of per node. Bit-identity with the stack
    builder: rows keep ascending order inside each node (never re-sorted),
    so histogram cells accumulate identical float sequences; the gain
    formulas are evaluated row-wise (same elementwise ops); the per-node
    row-major argmax reproduces the earliest-feature/lowest-code
    tie-breaking; and the final preorder renumbering yields the same node
    ids the depth-first stack would have assigned.
    """
    n_rows, n_features = X_binned.shape
    C = n_classes
    F = n_features
    B = int(n_bins_all.max()) if F else 0
    feat_c: List[int] = []
    thr_c: List[float] = []
    left_c: List[int] = []
    right_c: List[int] = []
    val_c: List[np.ndarray] = []
    ns_c: List[int] = []
    imp_c: List[float] = []

    rows = np.arange(n_rows)
    slots = np.zeros(n_rows, dtype=np.int64)
    n_slots = 1
    level_parents: List[Tuple[int, bool]] = [(_LEAF, False)]
    depth = 0
    feat_range = np.arange(F, dtype=np.int64)

    # Per-level stage timing: the watch is observed at the top of the
    # next level (and once after the loop), so every exit path — normal
    # depletion or any of the early breaks — closes the last level.
    level_hist = telemetry.stage_histogram("tree_level")
    level_watch = None

    while n_slots:
        if level_watch is not None:
            level_watch.observe(level_hist)
        level_watch = telemetry.stopwatch()
        S = n_slots
        y_lvl = y_encoded[rows]
        comb = slots * C + y_lvl
        counts_cls = np.bincount(comb, minlength=S * C).reshape(S, C)
        if uniform_weight:
            class_w = counts_cls.astype(np.float64)
        else:
            class_w = np.bincount(
                comb, weights=sample_weight[rows], minlength=S * C
            ).reshape(S, C)
        m_slot = np.add.reduce(counts_cls, axis=1)
        total_w = np.add.reduce(class_w, axis=1)
        imp = _node_impurity_rows(class_w, total_w, criterion)
        dist = class_w / np.where(total_w > 0, total_w, 1.0)[:, None]
        dist[total_w <= 0] = 1.0 / C

        base_id = len(feat_c)
        for s in range(S):
            feat_c.append(_LEAF)
            thr_c.append(0.0)
            left_c.append(_LEAF)
            right_c.append(_LEAF)
            val_c.append(dist[s])
            ns_c.append(int(m_slot[s]))
            imp_c.append(float(imp[s]))
            parent, is_left = level_parents[s]
            if parent != _LEAF:
                if is_left:
                    left_c[parent] = base_id + s
                else:
                    right_c[parent] = base_id + s

        if depth >= max_depth or B < 2:
            break
        can_split = (m_slot >= min_samples_split) & (imp > 1e-12)
        eligible = np.flatnonzero(can_split)
        if eligible.size == 0:
            break

        keep = can_split[slots]
        r = rows[keep]
        s_old = slots[keep]
        remap = np.full(S, _LEAF, dtype=np.int64)
        remap[eligible] = np.arange(eligible.size)
        s_e = remap[s_old]
        E = eligible.size
        # One histogram over every (node, feature, bin, class) cell.
        idx = (s_e[:, None] * F + feat_range) * B
        idx += X_binned[r]
        idx *= C
        idx += y_lvl[keep][:, None]
        idx = idx.ravel()
        total_cells = E * F * B * C
        counts = np.bincount(idx, minlength=total_cells)
        if uniform_weight:
            weighted = counts.astype(np.float64)
        else:
            weighted = np.bincount(
                idx, weights=np.repeat(sample_weight[r], F),
                minlength=total_cells,
            )
        shape = (E, F, B, C)
        weighted = weighted.reshape(shape)
        counts = counts.reshape(shape)
        left_w = weighted.cumsum(axis=2)[:, :, :-1, :]
        right_w = class_w[eligible][:, None, None, :] - left_w
        gains = split_gain(
            left_w.reshape(-1, C),
            right_w.reshape(-1, C),
            np.repeat(imp[eligible], F * (B - 1)),
            criterion,
        )
        gains = gains.reshape(E, F * (B - 1))
        n_left = np.add.reduce(counts, axis=3).cumsum(axis=2)[:, :, :-1]
        n_left = n_left.reshape(E, F * (B - 1))
        n_right = m_slot[eligible][:, None] - n_left
        gains[(n_left < min_samples_leaf) | (n_right < min_samples_leaf)] = -np.inf
        best_flat = gains.argmax(axis=1)
        best_gain = gains[np.arange(E), best_flat]
        ok = best_gain > min_impurity_decrease + 1e-12

        split_slots = eligible[ok]
        if split_slots.size == 0:
            break
        best_feature = best_flat[ok] // (B - 1)
        best_code = best_flat[ok] % (B - 1)
        bfeat_of = np.zeros(S, dtype=np.int64)
        bcode_of = np.zeros(S, dtype=np.int64)
        bfeat_of[split_slots] = best_feature
        bcode_of[split_slots] = best_code
        next_parents: List[Tuple[int, bool]] = []
        for k in range(split_slots.size):
            node = base_id + int(split_slots[k])
            feat_c[node] = int(best_feature[k])
            thr_c[node] = binner.threshold_value(
                int(best_feature[k]), int(best_code[k])
            )
            next_parents.append((node, True))
            next_parents.append((node, False))

        splits = np.zeros(S, dtype=bool)
        splits[split_slots] = True
        keep2 = splits[s_old]
        rows = r[keep2]
        s_old2 = s_old[keep2]
        pair = np.full(S, _LEAF, dtype=np.int64)
        pair[split_slots] = np.arange(split_slots.size)
        go_left = X_binned[rows, bfeat_of[s_old2]] <= bcode_of[s_old2]
        slots = 2 * pair[s_old2] + ~go_left
        level_parents = next_parents
        n_slots = 2 * split_slots.size
        depth += 1

    if level_watch is not None:
        level_watch.observe(level_hist)

    # Renumber construction (level) order to the stack builder's
    # depth-first preorder: node, left subtree, right subtree.
    n = len(feat_c)
    feat_arr = np.asarray(feat_c, dtype=np.int64)
    left_arr = np.asarray(left_c, dtype=np.int64)
    right_arr = np.asarray(right_c, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    new_id = np.empty(n, dtype=np.int64)
    stack = [0]
    pos = 0
    while stack:
        nid = stack.pop()
        order[pos] = nid
        new_id[nid] = pos
        pos += 1
        if feat_arr[nid] != _LEAF:
            stack.append(int(right_arr[nid]))
            stack.append(int(left_arr[nid]))
    internal = feat_arr[order] != _LEAF
    children_left = np.full(n, _LEAF, dtype=np.int64)
    children_right = np.full(n, _LEAF, dtype=np.int64)
    children_left[internal] = new_id[left_arr[order][internal]]
    children_right[internal] = new_id[right_arr[order][internal]]
    return Tree(
        feature=feat_arr[order],
        threshold=np.asarray(thr_c, dtype=np.float64)[order],
        children_left=children_left,
        children_right=children_right,
        value=np.asarray(val_c, dtype=np.float64)[order],
        n_node_samples=np.asarray(ns_c, dtype=np.int64)[order],
        impurity=np.asarray(imp_c, dtype=np.float64)[order],
        n_classes=n_classes,
    )
