"""Array-backed decision tree structure and depth-first builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..utils.validation import check_random_state
from ._binning import FeatureBinner
from ._criterion import node_impurity, split_gain

__all__ = ["Tree", "build_tree"]

_LEAF = -1


@dataclass
class Tree:
    """Flat-array decision tree.

    ``feature[i] == -1`` marks node ``i`` as a leaf. Internal nodes route a
    sample left when ``x[feature[i]] < threshold[i]``. ``value`` holds the
    (normalised) class-weight distribution of training samples per node.
    """

    feature: np.ndarray
    threshold: np.ndarray
    children_left: np.ndarray
    children_right: np.ndarray
    value: np.ndarray
    n_node_samples: np.ndarray
    impurity: np.ndarray
    n_classes: int

    @property
    def node_count(self) -> int:
        return len(self.feature)

    @property
    def max_depth(self) -> int:
        depth = np.zeros(self.node_count, dtype=int)
        for i in range(self.node_count):
            for child in (self.children_left[i], self.children_right[i]):
                if child != _LEAF:
                    depth[child] = depth[i] + 1
        return int(depth.max()) if self.node_count else 0

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of raw (un-binned) ``X``."""
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        while True:
            active = np.flatnonzero(self.feature[node] != _LEAF)
            if active.size == 0:
                break
            cur = node[active]
            feat = self.feature[cur]
            go_left = X[active, feat] < self.threshold[cur]
            node[active] = np.where(
                go_left, self.children_left[cur], self.children_right[cur]
            )
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        leaves = self.apply(X)
        return self.value[leaves]


@dataclass
class _NodeRecord:
    indices: np.ndarray
    depth: int
    parent: int
    is_left: bool


@dataclass
class _Growing:
    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[np.ndarray] = field(default_factory=list)
    n_samples: List[int] = field(default_factory=list)
    impurity: List[float] = field(default_factory=list)

    def add(self, value: np.ndarray, n_samples: int, impurity: float) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(value)
        self.n_samples.append(n_samples)
        self.impurity.append(impurity)
        return len(self.feature) - 1


def _class_histograms(
    codes: np.ndarray,
    y: np.ndarray,
    w: np.ndarray,
    n_bins: int,
    n_classes: int,
):
    """Weighted and unweighted per-bin per-class histograms via bincount."""
    combined = codes.astype(np.int64) * n_classes + y
    weighted = np.bincount(combined, weights=w, minlength=n_bins * n_classes)
    counts = np.bincount(combined, minlength=n_bins * n_classes)
    return (
        weighted.reshape(n_bins, n_classes),
        counts.reshape(n_bins, n_classes),
    )


def build_tree(
    X_binned: np.ndarray,
    y_encoded: np.ndarray,
    sample_weight: np.ndarray,
    binner: FeatureBinner,
    *,
    n_classes: int,
    criterion: str = "gini",
    max_depth: Optional[int] = None,
    min_samples_split: int = 2,
    min_samples_leaf: int = 1,
    min_impurity_decrease: float = 0.0,
    max_features: Optional[int] = None,
    random_state=None,
) -> Tree:
    """Grow a tree depth-first on pre-binned data.

    ``max_features`` (when set) samples that many candidate features per node
    without replacement — the randomisation Random Forest relies on.
    """
    rng = check_random_state(random_state)
    n_features = X_binned.shape[1]
    max_depth = np.inf if max_depth is None else max_depth
    grow = _Growing()
    stack: List[_NodeRecord] = [
        _NodeRecord(np.arange(X_binned.shape[0]), 0, _LEAF, False)
    ]

    while stack:
        rec = stack.pop()
        idx = rec.indices
        y_node = y_encoded[idx]
        w_node = sample_weight[idx]
        class_w = np.bincount(y_node, weights=w_node, minlength=n_classes)
        total_w = class_w.sum()
        imp = node_impurity(class_w, criterion)
        dist = class_w / total_w if total_w > 0 else np.full(n_classes, 1.0 / n_classes)
        node_id = grow.add(dist, len(idx), imp)
        if rec.parent != _LEAF:
            if rec.is_left:
                grow.left[rec.parent] = node_id
            else:
                grow.right[rec.parent] = node_id

        if (
            rec.depth >= max_depth
            or len(idx) < min_samples_split
            or imp <= 1e-12
        ):
            continue

        if max_features is not None and max_features < n_features:
            features = rng.choice(n_features, size=max_features, replace=False)
        else:
            features = np.arange(n_features)

        best_gain = -np.inf
        best_feature = _LEAF
        best_code = -1
        codes_node = X_binned[idx]
        for j in features:
            n_bins = int(binner.n_bins_[j])
            if n_bins < 2:
                continue
            weighted, counts = _class_histograms(
                codes_node[:, j], y_node, w_node, n_bins, n_classes
            )
            cum_w = np.cumsum(weighted, axis=0)[:-1]
            cum_c = np.cumsum(counts.sum(axis=1))[:-1]
            left_w = cum_w
            right_w = class_w[None, :] - cum_w
            gains = split_gain(left_w, right_w, imp, criterion)
            n_left = cum_c
            n_right = len(idx) - cum_c
            gains[(n_left < min_samples_leaf) | (n_right < min_samples_leaf)] = -np.inf
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = gains[best_local]
                best_feature = int(j)
                best_code = best_local

        if best_feature == _LEAF or best_gain <= min_impurity_decrease + 1e-12:
            continue

        grow.feature[node_id] = best_feature
        grow.threshold[node_id] = binner.threshold_value(best_feature, best_code)
        go_left = codes_node[:, best_feature] <= best_code
        # Push right first so left is processed next (cosmetic: left-to-right ids).
        stack.append(_NodeRecord(idx[~go_left], rec.depth + 1, node_id, False))
        stack.append(_NodeRecord(idx[go_left], rec.depth + 1, node_id, True))

    return Tree(
        feature=np.asarray(grow.feature, dtype=np.int64),
        threshold=np.asarray(grow.threshold, dtype=np.float64),
        children_left=np.asarray(grow.left, dtype=np.int64),
        children_right=np.asarray(grow.right, dtype=np.int64),
        value=np.asarray(grow.value, dtype=np.float64),
        n_node_samples=np.asarray(grow.n_samples, dtype=np.int64),
        impurity=np.asarray(grow.impurity, dtype=np.float64),
        n_classes=n_classes,
    )
