"""Quantile binning of features for fast histogram-based split search."""

from __future__ import annotations

from typing import List

import numpy as np

from ..utils.validation import check_array

__all__ = ["FeatureBinner"]


class FeatureBinner:
    """Map each feature to small integer codes via quantile cut points.

    Split search then only has to consider one candidate threshold per bin
    boundary, turning the O(n log n) exact sort per node into an O(n) histogram
    pass — the same trick histogram GBDTs (LightGBM) use.

    The code of value ``x`` on feature ``j`` is the number of cut points
    ``<= x``; the raw-value threshold equivalent to splitting after code ``c``
    is ``edges[j][c]`` with the test ``x < edges[j][c]``.
    """

    def __init__(self, max_bins: int = 64):
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        self.max_bins = max_bins

    def fit(self, X) -> "FeatureBinner":
        X = check_array(X)
        self.edges_: List[np.ndarray] = []
        self.n_bins_ = np.empty(X.shape[1], dtype=np.int64)
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            col = X[:, j]
            unique = np.unique(col)
            if unique.size <= self.max_bins:
                # Cut between consecutive distinct values: exact splits.
                edges = (unique[:-1] + unique[1:]) / 2.0
            else:
                edges = np.unique(np.quantile(col, quantiles))
            self.edges_.append(edges)
            self.n_bins_[j] = edges.size + 1
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, binner was fitted with "
                f"{self.n_features_}."
            )
        codes = np.empty(X.shape, dtype=np.int32)
        for j, edges in enumerate(self.edges_):
            codes[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return codes

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def threshold_value(self, feature: int, code: int) -> float:
        """Raw-value threshold for splitting after bin ``code`` (test x < t)."""
        return float(self.edges_[feature][code])
