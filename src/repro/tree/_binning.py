"""Quantile binning of features for fast histogram-based split search."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..utils.validation import check_array

__all__ = ["FeatureBinner"]


class FeatureBinner:
    """Map each feature to small integer codes via quantile cut points.

    Split search then only has to consider one candidate threshold per bin
    boundary, turning the O(n log n) exact sort per node into an O(n) histogram
    pass — the same trick histogram GBDTs (LightGBM) use.

    The code of value ``x`` on feature ``j`` is the number of cut points
    ``<= x``; the raw-value threshold equivalent to splitting after code ``c``
    is ``edges[j][c]`` with the test ``x < edges[j][c]``.
    """

    def __init__(self, max_bins: int = 64):
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        self.max_bins = max_bins

    def fit(self, X) -> "FeatureBinner":
        X = check_array(X)
        edges_list = []
        self.n_bins_ = np.empty(X.shape[1], dtype=np.int64)
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        for j in range(X.shape[1]):
            col = X[:, j]
            unique = np.unique(col)
            if unique.size <= self.max_bins:
                # Cut between consecutive distinct values: exact splits.
                edges = (unique[:-1] + unique[1:]) / 2.0
            else:
                edges = np.unique(np.quantile(col, quantiles))
            edges_list.append(edges)
            self.n_bins_[j] = edges.size + 1
        # Immutable tuple: the fitted cut points are shared freely (e.g. by
        # a SharedBinContext across many member trees) without defensive
        # copies, and accidental per-member mutation is impossible.
        self.edges_: Tuple[np.ndarray, ...] = tuple(edges_list)
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        # Transform-only validation: a float64 2-D ndarray (the only thing
        # the library's fit paths ever pass after their own check_X_y) needs
        # no conversion or finiteness re-scan — repeated transform calls on
        # the same validated matrix skip the O(n·d) check_array pass.
        if not (
            isinstance(X, np.ndarray) and X.dtype == np.float64 and X.ndim == 2
        ):
            X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, binner was fitted with "
                f"{self.n_features_}."
            )
        codes = np.empty(X.shape, dtype=np.int32)
        for j, edges in enumerate(self.edges_):
            codes[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return codes

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def threshold_value(self, feature: int, code: int) -> float:
        """Raw-value threshold for splitting after bin ``code`` (test x < t)."""
        return float(self.edges_[feature][code])

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`):
        one ragged edge array per feature plus the bin counts."""
        meta = {"max_bins": int(self.max_bins), "n_features": int(self.n_features_)}
        arrays = {"n_bins": self.n_bins_}
        for j, edges in enumerate(self.edges_):
            arrays[f"edges_{j}"] = edges
        return meta, arrays, {}

    @classmethod
    def __from_state_arrays__(cls, meta, arrays, children) -> "FeatureBinner":
        binner = cls(max_bins=meta["max_bins"])
        binner.n_features_ = int(meta["n_features"])
        binner.n_bins_ = np.asarray(arrays["n_bins"], dtype=np.int64)
        binner.edges_ = tuple(
            np.asarray(arrays[f"edges_{j}"], dtype=np.float64)
            for j in range(binner.n_features_)
        )
        return binner
