"""Split-quality criteria: Gini impurity, entropy, C4.5 gain ratio."""

from __future__ import annotations

import numpy as np

__all__ = ["node_impurity", "children_impurity", "split_gain", "CRITERIA"]

CRITERIA = ("gini", "entropy", "gain_ratio")

_EPS = 1e-12


def node_impurity(class_weights: np.ndarray, criterion: str) -> float:
    """Impurity of a node given its per-class weight vector."""
    total = class_weights.sum()
    if total <= 0:
        return 0.0
    p = class_weights / total
    if criterion == "gini":
        return float(1.0 - np.sum(p * p))
    # entropy and gain_ratio both use entropy as node impurity
    nz = p[p > 0]
    return float(-np.sum(nz * np.log2(nz)))


def children_impurity(W: np.ndarray, criterion: str) -> np.ndarray:
    """Row-wise impurity for a (n_candidates, n_classes) weight matrix.

    Uses ``np.add.reduce`` (the kernel behind ``ndarray.sum``, same pairwise
    accumulation, same bits) to skip the python dispatch wrappers — this
    runs once per candidate node in the tree builder's hottest loop.
    """
    totals = np.add.reduce(W, axis=1)
    safe = np.where(totals > 0, totals, 1.0)
    p = W / safe[:, None]
    if criterion == "gini":
        return 1.0 - np.add.reduce(p * p, axis=1)
    logp = np.where(p > 0, np.log2(np.maximum(p, _EPS)), 0.0)
    return -np.add.reduce(p * logp, axis=1)


def split_gain(
    left: np.ndarray,
    right: np.ndarray,
    parent_impurity: float,
    criterion: str,
) -> np.ndarray:
    """Impurity decrease for each candidate split.

    ``left`` / ``right`` are (n_candidates, n_classes) class-weight matrices.
    For ``gain_ratio`` the information gain is normalised by the split
    information, as in Quinlan's C4.5. Left and right children are stacked
    into one impurity evaluation (row-wise math — identical values, half
    the numpy dispatches).
    """
    wl = np.add.reduce(left, axis=1)
    wr = np.add.reduce(right, axis=1)
    total = wl + wr
    safe_total = np.where(total > 0, total, 1.0)
    child_criterion = "entropy" if criterion == "gain_ratio" else criterion
    both = children_impurity(np.concatenate([left, right]), child_criterion)
    il = both[: len(left)]
    ir = both[len(left):]
    gain = parent_impurity - (wl * il + wr * ir) / safe_total
    if criterion == "gain_ratio":
        pl = np.clip(wl / safe_total, _EPS, 1.0)
        pr = np.clip(wr / safe_total, _EPS, 1.0)
        split_info = -(pl * np.log2(pl) + pr * np.log2(pr))
        gain = gain / np.maximum(split_info, _EPS)
    # Degenerate candidates (an empty side) carry no usable gain.
    gain[(wl <= 0) | (wr <= 0)] = -np.inf
    return gain
