"""Public decision-tree classifiers: CART-style and C4.5-style."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..base import BaseEstimator, ClassifierMixin
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)
from ._binning import FeatureBinner
from ._criterion import CRITERIA
from ._tree import Tree, build_tree

__all__ = ["DecisionTreeClassifier", "C45Classifier"]


def _resolve_max_features(max_features, n_features: int) -> Optional[int]:
    if max_features is None:
        return None
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, float):
        return max(1, int(max_features * n_features))
    if isinstance(max_features, (int, np.integer)):
        return max(1, min(int(max_features), n_features))
    raise ValueError(f"Invalid max_features {max_features!r}")


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART-style decision tree with histogram split search.

    Split candidates are quantile bin boundaries (``max_bins`` per feature),
    which keeps training O(n·d·bins) per level rather than O(n log n · d) —
    necessary because trees are the base learner of every ensemble in the
    paper's evaluation. With few distinct feature values the splits are exact.

    Supports ``sample_weight`` (weighted impurity and leaf distributions),
    which AdaBoost and the boosting-based baselines require.
    """

    def __init__(
        self,
        criterion: str = "gini",
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_features: Union[None, str, int, float] = None,
        max_bins: int = 64,
        random_state=None,
    ):
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.min_impurity_decrease = min_impurity_decrease
        self.max_features = max_features
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Fit on ``X``, ``y``, ``sample_weight``; returns ``self``."""
        if self.criterion not in CRITERIA:
            raise ValueError(
                f"Unknown criterion {self.criterion!r}; expected one of {CRITERIA}"
            )
        # Bin-once/fit-many fast path: a BinnedSubset view (duck-typed via
        # `binned_codes`, see repro.fastpath.bincontext) carries pre-binned
        # integer codes from an ensemble-wide SharedBinContext — slice them
        # instead of re-running check_X_y + FeatureBinner.fit_transform on
        # every member fit.
        if hasattr(X, "binned_codes") and hasattr(X, "bin_context"):
            context = X.bin_context
            X_binned = X.binned_codes()
            n_features = context.n_features
            y = np.asarray(y)
            if y.ndim != 1 or len(y) != len(X_binned):
                raise ValueError("y must be 1-D and aligned with X")
            if int(context.binner.n_bins_.max()) > self.max_bins:
                # Fine shared codes: derive this member's own quantile cuts
                # in code space (histogram + LUT remap, no sorting) so the
                # tree keeps per-subset adaptivity while every threshold
                # stays on a shared fine edge.
                from ..fastpath.bincontext import requantize_member

                binner, X_binned, remap = requantize_member(
                    context, X_binned, self.max_bins
                )
                self._member_remap = remap
            else:
                binner = context.binner
                self._member_remap = None
            # Remembered so inference can recognise shared-binner ensembles
            # (every threshold on a shared edge → code-table compilation).
            self._shared_bin_context = context
            self._member_binner = binner
        else:
            X, y = check_X_y(X, y)
            binner = FeatureBinner(max_bins=self.max_bins)
            X_binned = binner.fit_transform(X)
            n_features = X.shape[1]
            self._shared_bin_context = None
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        if sample_weight is None:
            w = np.ones(len(y))
        else:
            w = np.asarray(sample_weight, dtype=float)
            if w.shape[0] != len(y):
                raise ValueError("sample_weight length mismatch")
        rng = check_random_state(self.random_state)
        self.tree_: Tree = build_tree(
            X_binned,
            y_enc,
            w,
            binner,
            n_classes=len(self.classes_),
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            min_impurity_decrease=self.min_impurity_decrease,
            max_features=_resolve_max_features(self.max_features, n_features),
            random_state=rng,
        )
        self.n_features_in_ = n_features
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["tree_"])
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fitted with "
                f"{self.n_features_in_}."
            )
        return self.tree_.predict_proba(X)

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def apply(self, X) -> np.ndarray:
        """Index of the leaf each sample lands in."""
        check_is_fitted(self, ["tree_"])
        return self.tree_.apply(check_array(X))

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`).

        Exports the flat node arrays of ``tree_`` plus ``classes_``. The
        shared bin context (when this tree was fitted through one) is owned
        and exported by the *ensemble* — a member never serialises it.
        """
        check_is_fitted(self, ["tree_"])
        tree = self.tree_
        meta = {
            "n_features_in": int(self.n_features_in_),
            "tree_n_classes": int(tree.n_classes),
        }
        arrays = {
            "classes": np.asarray(self.classes_),
            "tree_feature": tree.feature,
            "tree_threshold": tree.threshold,
            "tree_children_left": tree.children_left,
            "tree_children_right": tree.children_right,
            "tree_value": tree.value,
            "tree_n_node_samples": tree.n_node_samples,
            "tree_impurity": tree.impurity,
        }
        return meta, arrays, {}

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        self.classes_ = np.asarray(arrays["classes"])
        self.tree_ = Tree(
            feature=np.asarray(arrays["tree_feature"], dtype=np.int64),
            threshold=np.asarray(arrays["tree_threshold"], dtype=np.float64),
            children_left=np.asarray(arrays["tree_children_left"], dtype=np.int64),
            children_right=np.asarray(arrays["tree_children_right"], dtype=np.int64),
            value=np.asarray(arrays["tree_value"], dtype=np.float64),
            n_node_samples=np.asarray(arrays["tree_n_node_samples"], dtype=np.int64),
            impurity=np.asarray(arrays["tree_impurity"], dtype=np.float64),
            n_classes=int(meta["tree_n_classes"]),
        )
        self.n_features_in_ = int(meta["n_features_in"])

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to one."""
        check_is_fitted(self, ["tree_"])
        tree = self.tree_
        importances = np.zeros(self.n_features_in_)
        for i in range(tree.node_count):
            if tree.feature[i] < 0:
                continue
            left = tree.children_left[i]
            right = tree.children_right[i]
            n = tree.n_node_samples[i]
            decrease = n * tree.impurity[i] - (
                tree.n_node_samples[left] * tree.impurity[left]
                + tree.n_node_samples[right] * tree.impurity[right]
            )
            importances[tree.feature[i]] += max(decrease, 0.0)
        total = importances.sum()
        return importances / total if total > 0 else importances


class C45Classifier(DecisionTreeClassifier):
    """C4.5-style tree: entropy-based splits normalised by gain ratio.

    The paper's ensemble comparison (Table VI) uses C4.5 as the base model
    "for a fair comparison" with RUSBoost / UnderBagging / SMOTEBagging, all
    originally proposed with C4.5. Continuous attributes are handled through
    binary threshold splits as in Quinlan's formulation; categorical
    attributes should be ordinal-encoded first.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        min_impurity_decrease: float = 0.0,
        max_bins: int = 64,
        random_state=None,
    ):
        super().__init__(
            criterion="gain_ratio",
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            min_impurity_decrease=min_impurity_decrease,
            max_features=None,
            max_bins=max_bins,
            random_state=random_state,
        )

    @classmethod
    def _get_param_names(cls):
        # Exclude the parameters fixed by the C4.5 variant.
        return [
            "max_depth",
            "min_samples_split",
            "min_samples_leaf",
            "min_impurity_decrease",
            "max_bins",
            "random_state",
        ]
