"""Neural network components: MLP classifier, activations, optimisers."""

from .activations import ACTIVATIONS, log_loss, softmax
from .mlp import MLPClassifier
from .optimizers import AdamOptimizer, SGDOptimizer

__all__ = [
    "ACTIVATIONS",
    "log_loss",
    "softmax",
    "MLPClassifier",
    "AdamOptimizer",
    "SGDOptimizer",
]
