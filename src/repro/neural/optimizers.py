"""Gradient-descent optimisers for the MLP: SGD with momentum and Adam."""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["SGDOptimizer", "AdamOptimizer"]


class SGDOptimizer:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, params: List[np.ndarray], lr: float = 0.01, momentum: float = 0.9):
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self.velocities = [np.zeros_like(p) for p in params]

    def step(self, grads: List[np.ndarray]) -> None:
        """Apply one gradient update to the parameters."""
        for p, g, v in zip(self.params, grads, self.velocities):
            v *= self.momentum
            v -= self.lr * g
            p += v


class AdamOptimizer:
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates."""

    def __init__(
        self,
        params: List[np.ndarray],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0

    def step(self, grads: List[np.ndarray]) -> None:
        """Apply one Adam update to the parameters."""
        self.t += 1
        bias1 = 1.0 - self.beta1**self.t
        bias2 = 1.0 - self.beta2**self.t
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
