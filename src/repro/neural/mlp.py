"""Multi-layer perceptron classifier (numpy forward/backward, Adam/SGD).

This is the "Neural Network" / MLP base learner of the paper. Deliberately,
no class re-weighting happens internally: the paper's point (Sections I, III)
is that batch-trained networks fail on skewed data unless the *sampling*
layer balances the classes — exactly what SPE provides.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..base import BaseEstimator, ClassifierMixin
from ..utils.arrays import stratified_indices
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)
from .activations import ACTIVATIONS, log_loss, softmax
from .optimizers import AdamOptimizer, SGDOptimizer

__all__ = ["MLPClassifier"]


class MLPClassifier(BaseEstimator, ClassifierMixin):
    """Feed-forward network with softmax output and cross-entropy loss.

    Parameters mirror the common sklearn names. ``batch_order='stratified'``
    interleaves classes across mini-batches (an optional mitigation for the
    skewed-batch failure mode the paper describes; default keeps plain
    shuffling to stay faithful to the canonical learner).
    """

    def __init__(
        self,
        hidden_layer_sizes: Tuple[int, ...] = (128,),
        activation: str = "relu",
        solver: str = "adam",
        learning_rate: float = 1e-3,
        alpha: float = 1e-4,
        batch_size: int = 64,
        max_epochs: int = 30,
        tol: float = 1e-5,
        n_iter_no_change: int = 5,
        batch_order: str = "shuffle",
        random_state=None,
    ):
        self.hidden_layer_sizes = hidden_layer_sizes
        self.activation = activation
        self.solver = solver
        self.learning_rate = learning_rate
        self.alpha = alpha
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.tol = tol
        self.n_iter_no_change = n_iter_no_change
        self.batch_order = batch_order
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    def _init_params(self, layer_sizes: List[int], rng) -> None:
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            # He initialisation for ReLU, Glorot otherwise.
            if self.activation == "relu":
                scale = np.sqrt(2.0 / fan_in)
            else:
                scale = np.sqrt(2.0 / (fan_in + fan_out))
            self._weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray):
        """Return (activations per layer, pre-activations per layer)."""
        act_fn, _ = ACTIVATIONS[self.activation]
        activations = [X]
        pre = []
        a = X
        last = len(self._weights) - 1
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            z = a @ W + b
            pre.append(z)
            a = softmax(z) if i == last else act_fn(z)
            activations.append(a)
        return activations, pre

    def _backward(self, activations, pre, y_onehot, weights):
        _, grad_fn = ACTIVATIONS[self.activation]
        n = y_onehot.shape[0]
        grads_W = [None] * len(self._weights)
        grads_b = [None] * len(self._biases)
        # Softmax + cross entropy: delta = (p - t) / n, optionally weighted.
        delta = (activations[-1] - y_onehot)
        if weights is not None:
            delta = delta * weights[:, None]
            delta /= weights.sum()
        else:
            delta /= n
        for i in range(len(self._weights) - 1, -1, -1):
            grads_W[i] = activations[i].T @ delta + self.alpha * self._weights[i]
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self._weights[i].T) * grad_fn(pre[i - 1], activations[i])
        return grads_W, grads_b

    # ------------------------------------------------------------------ #
    def fit(self, X, y) -> "MLPClassifier":
        """Fit on ``X``, ``y``; returns ``self``."""
        if self.activation not in ACTIVATIONS:
            raise ValueError(
                f"Unknown activation {self.activation!r}; "
                f"expected one of {sorted(ACTIVATIONS)}"
            )
        if self.solver not in ("adam", "sgd"):
            raise ValueError(f"Unknown solver {self.solver!r}")
        if self.batch_order not in ("shuffle", "stratified"):
            raise ValueError(f"Unknown batch_order {self.batch_order!r}")
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        n_classes = max(len(self.classes_), 2)
        y_onehot = np.zeros((len(y), n_classes))
        y_onehot[np.arange(len(y)), y_enc] = 1.0

        layer_sizes = [X.shape[1], *self.hidden_layer_sizes, n_classes]
        self._init_params(layer_sizes, rng)
        params = self._weights + self._biases
        if self.solver == "adam":
            optimizer = AdamOptimizer(params, lr=self.learning_rate)
        else:
            optimizer = SGDOptimizer(params, lr=self.learning_rate)

        n = X.shape[0]
        batch = max(1, min(self.batch_size, n))
        best_loss = np.inf
        stall = 0
        self.loss_curve_: List[float] = []
        for epoch in range(self.max_epochs):
            if self.batch_order == "stratified":
                order = stratified_indices(y_enc, rng)
            else:
                order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                activations, pre = self._forward(X[idx])
                grads_W, grads_b = self._backward(
                    activations, pre, y_onehot[idx], None
                )
                optimizer.step(grads_W + grads_b)
                epoch_loss += log_loss(activations[-1], y_onehot[idx])
                n_batches += 1
            epoch_loss /= max(n_batches, 1)
            self.loss_curve_.append(epoch_loss)
            if epoch_loss < best_loss - self.tol:
                best_loss = epoch_loss
                stall = 0
            else:
                stall += 1
                if stall >= self.n_iter_no_change:
                    break
        self.n_epochs_ = len(self.loss_curve_)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["_weights"])
        X = check_array(X)
        activations, _ = self._forward(X)
        proba = activations[-1]
        if len(self.classes_) == 1:
            return np.ones((X.shape[0], 1))
        return proba[:, : len(self.classes_)]

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`).

        The variable-length weight/bias lists become one array per layer
        (``W0..Wk`` / ``b0..bk``) with the layer count in the metadata;
        ``loss_curve_`` is a fit diagnostic and is not persisted.
        """
        check_is_fitted(self, ["_weights"])
        meta = {
            "n_features_in": int(self.n_features_in_),
            "n_layers": len(self._weights),
        }
        arrays = {"classes": np.asarray(self.classes_)}
        for i, (W, b) in enumerate(zip(self._weights, self._biases)):
            arrays[f"W{i}"] = np.asarray(W, dtype=np.float64)
            arrays[f"b{i}"] = np.asarray(b, dtype=np.float64)
        return meta, arrays, {}

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        n_layers = int(meta["n_layers"])
        self.classes_ = np.asarray(arrays["classes"])
        self._weights = [
            np.asarray(arrays[f"W{i}"], dtype=np.float64) for i in range(n_layers)
        ]
        self._biases = [
            np.asarray(arrays[f"b{i}"], dtype=np.float64) for i in range(n_layers)
        ]
        self.n_features_in_ = int(meta["n_features_in"])
