"""Activation functions and their derivatives for the MLP."""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

__all__ = ["ACTIVATIONS", "softmax", "log_loss"]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_grad(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return (z > 0).astype(z.dtype)


def _tanh(z: np.ndarray) -> np.ndarray:
    return np.tanh(z)


def _tanh_grad(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return 1.0 - a * a


def _logistic(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _logistic_grad(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return a * (1.0 - a)


# name -> (activation, gradient-given-preactivation-and-activation)
ACTIVATIONS: Dict[str, Tuple[Callable, Callable]] = {
    "relu": (_relu, _relu_grad),
    "tanh": (_tanh, _tanh_grad),
    "logistic": (_logistic, _logistic_grad),
}


def softmax(z: np.ndarray) -> np.ndarray:
    """Row-wise softmax, shifted for numerical stability."""
    shifted = z - z.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def log_loss(proba: np.ndarray, y_onehot: np.ndarray, weights=None) -> float:
    """Mean (optionally weighted) cross entropy."""
    eps = 1e-12
    per_sample = -np.sum(y_onehot * np.log(proba + eps), axis=1)
    if weights is None:
        return float(per_sample.mean())
    weights = np.asarray(weights, dtype=float)
    return float(np.sum(per_sample * weights) / weights.sum())
