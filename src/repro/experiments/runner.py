"""Experiment runner: methods × classifiers × metrics with repeated runs.

The paper's evaluation protocol, captured once so every table bench reuses
it: a *method* (no-resampling, a re-sampler, or an imbalance ensemble) is
combined with a *base classifier*, trained on the training split and scored
on the held-out test split with the four paper metrics, repeated ``n_runs``
times with shifted seeds, reported as mean±std.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..base import clone
from ..metrics import PAPER_METRICS
from .formatting import mean_std, render_table

__all__ = [
    "MethodSpec",
    "org_method",
    "sampler_method",
    "ensemble_method",
    "MethodRun",
    "evaluate_combination",
    "run_matrix",
    "MatrixResult",
]


@dataclass(frozen=True)
class MethodSpec:
    """How to combine an imbalance method with a base classifier.

    kind:
      * ``"org"``      — fit the base classifier on the raw training data;
      * ``"sampler"``  — factory(seed) -> sampler; resample then fit base;
      * ``"ensemble"`` — factory(estimator, seed) -> meta-classifier.
    """

    name: str
    kind: str
    factory: Optional[Callable] = None

    def __post_init__(self):
        if self.kind not in ("org", "sampler", "ensemble"):
            raise ValueError(f"Unknown method kind {self.kind!r}")
        if self.kind != "org" and self.factory is None:
            raise ValueError(f"Method {self.name!r} of kind {self.kind!r} needs a factory")


def org_method(name: str = "ORG") -> MethodSpec:
    """No re-sampling baseline."""
    return MethodSpec(name=name, kind="org")


def sampler_method(name: str, sampler_cls, **params) -> MethodSpec:
    """Re-sampler method; ``random_state`` injected per run when accepted."""

    def factory(seed: int):
        kwargs = dict(params)
        if "random_state" in sampler_cls._get_param_names():
            kwargs.setdefault("random_state", seed)
        return sampler_cls(**kwargs)

    return MethodSpec(name=name, kind="sampler", factory=factory)


def ensemble_method(name: str, ensemble_cls, **params) -> MethodSpec:
    """Imbalance-ensemble method wrapping the base classifier."""

    def factory(base, seed: int):
        kwargs = dict(params)
        kwargs.setdefault("random_state", seed)
        return ensemble_cls(estimator=base, **kwargs)

    return MethodSpec(name=name, kind="ensemble", factory=factory)


@dataclass
class MethodRun:
    """Per-run records for one (method, classifier) combination."""

    method: str
    classifier: str
    metrics: Dict[str, List[float]] = field(default_factory=dict)
    n_training_samples: List[int] = field(default_factory=list)
    resample_seconds: List[float] = field(default_factory=list)
    fit_seconds: List[float] = field(default_factory=list)

    def summary(self, metric_names: Sequence[str]) -> Dict[str, str]:
        """``mean±std`` strings for ``metric_names`` plus ``#Sample``."""
        out = {m: mean_std(self.metrics.get(m, [])) for m in metric_names}
        out["#Sample"] = (
            str(int(np.mean(self.n_training_samples))) if self.n_training_samples else "-"
        )
        out["ResampleTime(s)"] = (
            f"{np.mean(self.resample_seconds):.3f}" if self.resample_seconds else "-"
        )
        return out


def _reseed(estimator, seed: int):
    model = clone(estimator)
    if "random_state" in getattr(model, "_get_param_names", lambda: [])():
        model.set_params(random_state=seed)
    return model


def evaluate_combination(
    method: MethodSpec,
    estimator,
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    *,
    metrics: Mapping[str, Callable] = None,
    n_runs: int = 3,
    seed: int = 0,
    threshold: float = 0.5,
    classifier_name: str = "",
) -> MethodRun:
    """Run one method × classifier combination ``n_runs`` times.

    ``estimator`` (the base classifier) may be an instance or a registered
    name — the same spelling every ensemble's ``estimator=`` parameter
    uses across the library.
    """
    from ..registry import resolve_estimator

    estimator = resolve_estimator(estimator)
    metrics = PAPER_METRICS if metrics is None else metrics
    record = MethodRun(method=method.name, classifier=classifier_name)
    for name in metrics:
        record.metrics[name] = []
    for run in range(n_runs):
        run_seed = seed + 1000 * run
        t_resample = 0.0
        if method.kind == "org":
            X_fit, y_fit = X_train, y_train
        elif method.kind == "sampler":
            sampler = method.factory(run_seed)
            t0 = time.perf_counter()
            X_fit, y_fit = sampler.fit_resample(X_train, y_train)
            t_resample = time.perf_counter() - t0
        else:
            X_fit, y_fit = X_train, y_train

        t0 = time.perf_counter()
        if method.kind == "ensemble":
            model = method.factory(estimator, run_seed)
            model.fit(X_fit, y_fit)
            n_samples = getattr(model, "n_training_samples_", len(y_fit))
        else:
            model = _reseed(estimator, run_seed)
            model.fit(X_fit, y_fit)
            n_samples = len(y_fit)
        fit_seconds = time.perf_counter() - t0

        y_score = model.predict_proba(X_test)[:, list(model.classes_).index(1)]
        y_pred = (y_score >= threshold).astype(int)
        for name, fn in metrics.items():
            record.metrics[name].append(float(fn(y_test, y_pred, y_score)))
        record.n_training_samples.append(int(n_samples))
        record.resample_seconds.append(t_resample)
        record.fit_seconds.append(fit_seconds)
    return record


@dataclass
class MatrixResult:
    """All runs of a methods × classifiers table."""

    runs: List[MethodRun]
    metric_names: Tuple[str, ...]

    def rows(self) -> List[List[str]]:
        """Table rows (one per run) backing :meth:`render`."""
        out = []
        for run in self.runs:
            summary = run.summary(self.metric_names)
            out.append(
                [run.classifier, run.method]
                + [summary[m] for m in self.metric_names]
                + [summary["#Sample"]]
            )
        return out

    def render(self, title: str = "") -> str:
        """Render the result matrix as an aligned text table."""
        headers = ["Classifier", "Method", *self.metric_names, "#Sample"]
        return render_table(headers, self.rows(), title=title)

    def get(self, classifier: str, method: str) -> MethodRun:
        """The :class:`MethodRun` recorded for ``(classifier, method)``."""
        for run in self.runs:
            if run.classifier == classifier and run.method == method:
                return run
        raise KeyError(f"No run for ({classifier!r}, {method!r})")

    def mean(self, classifier: str, method: str, metric: str) -> float:
        """Mean of ``metric`` over the run's repeats."""
        return float(np.mean(self.get(classifier, method).metrics[metric]))


def run_matrix(
    methods: Sequence[MethodSpec],
    classifiers: Mapping[str, object],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    *,
    metrics: Mapping[str, Callable] = None,
    n_runs: int = 3,
    seed: int = 0,
) -> MatrixResult:
    """Evaluate every (classifier, method) pair — the shape of Tables II/IV/V."""
    metrics = PAPER_METRICS if metrics is None else metrics
    runs: List[MethodRun] = []
    for clf_name, base in classifiers.items():
        for method in methods:
            runs.append(
                evaluate_combination(
                    method,
                    base,
                    X_train,
                    y_train,
                    X_test,
                    y_test,
                    metrics=metrics,
                    n_runs=n_runs,
                    seed=seed,
                    classifier_name=clf_name,
                )
            )
    return MatrixResult(runs=runs, metric_names=tuple(metrics))
