"""Experiment harness: runner, table/figure definitions, rendering."""

from .figures import (
    fig2_hardness_distributions,
    fig3_selfpaced_bins,
    fig5_training_curves,
    fig6_training_views,
    fig7_n_estimators_sweep,
    fig8_sensitivity,
)
from .formatting import mean_std, render_series, render_table
from .runner import (
    MatrixResult,
    MethodRun,
    MethodSpec,
    ensemble_method,
    evaluate_combination,
    org_method,
    run_matrix,
    sampler_method,
)
from .tables import (
    core_comparison_methods,
    default_c45,
    ensemble_figure_methods,
    table2_classifiers,
    table4_dataset_plan,
    table5_classifiers,
    table5_methods,
    table6_methods,
)
from .visualization import (
    RecordingClassifier,
    ascii_heatmap,
    ascii_scatter,
    prediction_grid,
)

__all__ = [
    "fig2_hardness_distributions",
    "fig3_selfpaced_bins",
    "fig5_training_curves",
    "fig6_training_views",
    "fig7_n_estimators_sweep",
    "fig8_sensitivity",
    "mean_std",
    "render_series",
    "render_table",
    "MatrixResult",
    "MethodRun",
    "MethodSpec",
    "ensemble_method",
    "evaluate_combination",
    "org_method",
    "run_matrix",
    "sampler_method",
    "core_comparison_methods",
    "default_c45",
    "ensemble_figure_methods",
    "table2_classifiers",
    "table4_dataset_plan",
    "table5_classifiers",
    "table5_methods",
    "table6_methods",
    "RecordingClassifier",
    "ascii_heatmap",
    "ascii_scatter",
    "prediction_grid",
]
