"""Method and classifier line-ups for every table in the paper.

Each ``tableN_*`` helper returns the exact method/classifier combinations
the corresponding table evaluates, so benches stay declarative. Classifier
hyper-parameters follow Table II's "Hyper" column.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import SelfPacedEnsembleClassifier
from ..ensemble import (
    AdaBoostClassifier,
    BaggingClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from ..imbalance_ensemble import (
    BalanceCascadeClassifier,
    EasyEnsembleClassifier,
    RUSBoostClassifier,
    SMOTEBaggingClassifier,
    SMOTEBoostClassifier,
    UnderBaggingClassifier,
)
from ..linear import LogisticRegression
from ..neighbors import KNeighborsClassifier
from ..neural import MLPClassifier
from ..sampling import (
    ADASYN,
    AllKNN,
    BorderlineSMOTE,
    EditedNearestNeighbours,
    NearMiss,
    NeighbourhoodCleaningRule,
    OneSidedSelection,
    RandomOverSampler,
    RandomUnderSampler,
    SMOTE,
    SMOTEENN,
    SMOTETomek,
    TomekLinks,
)
from ..svm import SVC
from ..tree import C45Classifier, DecisionTreeClassifier
from .runner import MethodSpec, ensemble_method, org_method, sampler_method

__all__ = [
    "core_comparison_methods",
    "table2_classifiers",
    "table4_dataset_plan",
    "table5_methods",
    "table5_classifiers",
    "table6_methods",
    "ensemble_figure_methods",
    "default_c45",
]


def core_comparison_methods(n_estimators: int = 10) -> List[MethodSpec]:
    """The six methods of Tables II and IV:
    RandUnder / Clean / SMOTE / Easy_n / Cascade_n / SPE_n."""
    return [
        sampler_method("RandUnder", RandomUnderSampler),
        sampler_method("Clean", NeighbourhoodCleaningRule),
        sampler_method("SMOTE", SMOTE),
        ensemble_method("Easy", EasyEnsembleClassifier, n_estimators=n_estimators),
        ensemble_method("Cascade", BalanceCascadeClassifier, n_estimators=n_estimators),
        ensemble_method("SPE", SelfPacedEnsembleClassifier, n_estimators=n_estimators),
    ]


def _gbdt10(random_state: int = 0) -> GradientBoostingClassifier:
    """10-round GBDT calibrated toward LightGBM's per-round capacity
    (deeper trees, larger shrinkage than the conservative defaults)."""
    return GradientBoostingClassifier(
        n_estimators=10,
        max_depth=5,
        learning_rate=0.3,
        min_samples_leaf=3,
        random_state=random_state,
    )


def table2_classifiers(
    *,
    mlp_epochs: int = 40,
    svc_iter: int = 10000,
    random_state: int = 0,
) -> Dict[str, object]:
    """The 8 canonical classifiers of Table II with the paper's hypers."""
    return {
        "KNN": KNeighborsClassifier(n_neighbors=5),
        "DT": DecisionTreeClassifier(max_depth=10, random_state=random_state),
        "MLP": MLPClassifier(
            hidden_layer_sizes=(128,),
            max_epochs=mlp_epochs,
            learning_rate=3e-3,
            random_state=random_state,
        ),
        "SVM": SVC(C=1000, max_iter=svc_iter, random_state=random_state),
        "AdaBoost10": AdaBoostClassifier(
            estimator=DecisionTreeClassifier(max_depth=3),
            n_estimators=10,
            random_state=random_state,
        ),
        "Bagging10": BaggingClassifier(
            estimator=DecisionTreeClassifier(max_depth=10),
            n_estimators=10,
            random_state=random_state,
        ),
        "RandForest10": RandomForestClassifier(n_estimators=10, random_state=random_state),
        "GBDT10": _gbdt10(random_state),
    }


def table4_dataset_plan() -> Dict[str, Sequence[str]]:
    """Dataset → classifier line-up of Table IV.

    Distance-based methods (Clean, SMOTE) are skipped on the large
    categorical datasets, reproducing the table's "- - -" cells.
    """
    return {
        "credit_fraud": ("KNN", "DT", "MLP"),
        "kddcup_dos_vs_prb": ("AdaBoost10",),
        "kddcup_dos_vs_r2l": ("AdaBoost10",),
        "record_linkage": ("GBDT10",),
        "payment_simulation": ("GBDT10",),
    }


def table5_methods(n_estimators: int = 10) -> List[MethodSpec]:
    """ORG + 12 re-samplers + SPE (Table V's rows)."""
    return [
        org_method("ORG"),
        sampler_method("RandUnder", RandomUnderSampler),
        sampler_method("NearMiss", NearMiss, version=1),
        sampler_method("Clean", NeighbourhoodCleaningRule),
        sampler_method("ENN", EditedNearestNeighbours),
        sampler_method("TomekLink", TomekLinks),
        sampler_method("AllKNN", AllKNN),
        sampler_method("OSS", OneSidedSelection),
        sampler_method("RandOver", RandomOverSampler),
        sampler_method("SMOTE", SMOTE),
        sampler_method("ADASYN", ADASYN),
        sampler_method("BorderSMOTE", BorderlineSMOTE),
        sampler_method("SMOTEENN", SMOTEENN),
        sampler_method("SMOTETomek", SMOTETomek),
        ensemble_method("SPE", SelfPacedEnsembleClassifier, n_estimators=n_estimators),
    ]


def table5_classifiers(random_state: int = 0) -> Dict[str, object]:
    """LR / KNN / DT / AdaBoost10 / GBDT10 (Table V's columns)."""
    return {
        "LR": LogisticRegression(C=1.0),
        "KNN": KNeighborsClassifier(n_neighbors=5),
        "DT": DecisionTreeClassifier(max_depth=10, random_state=random_state),
        "AdaBoost10": AdaBoostClassifier(
            estimator=DecisionTreeClassifier(max_depth=3),
            n_estimators=10,
            random_state=random_state,
        ),
        "GBDT10": _gbdt10(random_state),
    }


def table6_methods(n_estimators: int) -> List[MethodSpec]:
    """The 6 ensemble methods of Table VI at a given ensemble size."""
    return [
        ensemble_method("RUSBoost", RUSBoostClassifier, n_estimators=n_estimators),
        ensemble_method("SMOTEBoost", SMOTEBoostClassifier, n_estimators=n_estimators),
        ensemble_method("UnderBagging", UnderBaggingClassifier, n_estimators=n_estimators),
        ensemble_method("SMOTEBagging", SMOTEBaggingClassifier, n_estimators=n_estimators),
        ensemble_method("Cascade", BalanceCascadeClassifier, n_estimators=n_estimators),
        ensemble_method("SPE", SelfPacedEnsembleClassifier, n_estimators=n_estimators),
    ]


def ensemble_figure_methods() -> Dict[str, object]:
    """Constructors used by the Fig 7 sweep: name -> class."""
    return {
        "SPE": SelfPacedEnsembleClassifier,
        "Cascade": BalanceCascadeClassifier,
        "UnderBagging": UnderBaggingClassifier,
        "SMOTEBagging": SMOTEBaggingClassifier,
        "RUSBoost": RUSBoostClassifier,
        "SMOTEBoost": SMOTEBoostClassifier,
    }


def default_c45(random_state: int = 0) -> C45Classifier:
    """The C4.5 base model used throughout Tables VI/VII (depth-limited)."""
    return C45Classifier(max_depth=10, random_state=random_state)
