"""ASCII rendering of experiment tables (mean ± std cells, aligned columns)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["mean_std", "render_table", "render_series"]


def mean_std(values: Sequence[float], digits: int = 3) -> str:
    """Format runs as the paper's ``mean±std`` cells."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return "-"
    if arr.size == 1:
        return f"{arr[0]:.{digits}f}"
    return f"{arr.mean():.{digits}f}±{arr.std():.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Monospace table with per-column alignment."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    digits: int = 3,
    width: int = 40,
) -> str:
    """One labelled numeric series plus a coarse ASCII sparkline.

    This is the textual stand-in for the paper's line plots: the numeric
    series is the ground truth, the bar sketch aids eyeballing trends.
    """
    ys_arr = np.asarray(list(ys), dtype=float)
    lo = float(np.nanmin(ys_arr)) if ys_arr.size else 0.0
    hi = float(np.nanmax(ys_arr)) if ys_arr.size else 1.0
    span = (hi - lo) or 1.0
    lines = [f"{name}:"]
    for x, v in zip(xs, ys_arr):
        bar = "#" * int(round((v - lo) / span * width))
        lines.append(f"  {str(x):>8} {v:.{digits}f} |{bar}")
    return "\n".join(lines)
