"""Data generators for every figure in the paper's evaluation.

Each ``figN_*`` function computes exactly the series/histograms the figure
plots and returns plain dict/array structures; the corresponding bench
renders them with :mod:`repro.experiments.formatting`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..base import clone
from ..core import (
    SelfPacedEnsembleClassifier,
    cut_hardness_bins,
    resolve_hardness,
    self_paced_under_sample,
)
from ..ensemble import AdaBoostClassifier
from ..imbalance_ensemble import BalanceCascadeClassifier
from ..metrics import average_precision_score
from ..model_selection import train_test_split
from ..neighbors import KNeighborsClassifier
from ..tree import DecisionTreeClassifier
from ..utils.validation import check_random_state

__all__ = [
    "fig2_hardness_distributions",
    "fig3_selfpaced_bins",
    "fig5_training_curves",
    "fig6_training_views",
    "fig7_n_estimators_sweep",
    "fig8_sensitivity",
]


# ------------------------------------------------------------------ Fig 2
def fig2_hardness_distributions(
    imbalance_ratios: Sequence[float] = (1.0, 10.0, 100.0),
    n_minority: int = 200,
    k_bins: int = 10,
    random_state: int = 0,
) -> Dict[str, Dict[str, Dict[float, np.ndarray]]]:
    """Hardness histograms: {dataset: {model: {IR: bin populations}}}.

    Reproduces Fig 2's message: on the disjoint dataset the hard-bin mass
    stays flat as IR grows; on the overlapped dataset it explodes — and the
    distribution differs between KNN and AdaBoost (model capacity matters).
    """
    from ..datasets import make_disjoint_gaussians, make_overlapping_gaussians

    datasets = {
        "disjoint": make_disjoint_gaussians,
        "overlapped": make_overlapping_gaussians,
    }
    models: Dict[str, Callable] = {
        "KNN": lambda seed: KNeighborsClassifier(n_neighbors=5),
        "AdaBoost": lambda seed: AdaBoostClassifier(
            estimator=DecisionTreeClassifier(max_depth=2),
            n_estimators=10,
            random_state=seed,
        ),
    }
    hardness_fn = resolve_hardness("absolute")
    out: Dict[str, Dict[str, Dict[float, np.ndarray]]] = {}
    for ds_name, maker in datasets.items():
        out[ds_name] = {}
        for model_name, factory in models.items():
            out[ds_name][model_name] = {}
            for ir in imbalance_ratios:
                X, y = maker(
                    n_minority=n_minority,
                    imbalance_ratio=ir,
                    random_state=random_state,
                )
                model = factory(random_state)
                model.fit(X, y)
                proba = model.predict_proba(X)[:, list(model.classes_).index(1)]
                hardness = hardness_fn(y.astype(float), proba)
                # Fixed [0, 1] bins so populations are comparable across IRs.
                edges = np.linspace(0.0, 1.0, k_bins + 1)
                assignment = np.minimum(
                    (hardness * k_bins).astype(int), k_bins - 1
                )
                out[ds_name][model_name][ir] = np.bincount(
                    assignment, minlength=k_bins
                )
    return out


# ------------------------------------------------------------------ Fig 3
def fig3_selfpaced_bins(
    X: np.ndarray,
    y: np.ndarray,
    alphas: Sequence[float] = (0.0, 0.1, np.inf),
    k_bins: int = 20,
    n_estimators: int = 10,
    estimator=None,
    random_state: int = 0,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Bin population & hardness contribution, original vs α-sampled subsets.

    Trains an SPE to obtain a realistic ensemble hardness distribution over
    the majority class, then applies the self-paced under-sampling mechanism
    at each requested α (the paper's panels: original, α=0, α=0.1, α→∞).
    """
    rng = check_random_state(random_state)
    spe = SelfPacedEnsembleClassifier(
        estimator=estimator, n_estimators=n_estimators, k_bins=k_bins,
        random_state=random_state,
    )
    spe.fit(X, y)
    maj_mask = y == 0
    X_maj = X[maj_mask]
    proba = spe.predict_proba(X_maj)[:, 1]
    hardness = resolve_hardness("absolute")(np.zeros(len(X_maj)), proba)
    n_min = int((y == 1).sum())

    result: Dict[str, Dict[str, np.ndarray]] = {}
    original = cut_hardness_bins(hardness, k_bins)
    result["original"] = {
        "population": original.populations,
        "contribution": original.total_contribution,
        "edges": original.edges,
    }
    finite_max = np.finfo(float).max / 1e6
    for alpha in alphas:
        a = min(alpha, finite_max)
        selected, _ = self_paced_under_sample(hardness, k_bins, a, n_min, rng)
        sub = hardness[selected]
        assignment = np.clip(
            np.searchsorted(original.edges, sub, side="right") - 1, 0, k_bins - 1
        )
        label = "alpha=inf" if np.isinf(alpha) else f"alpha={alpha:g}"
        result[label] = {
            "population": np.bincount(assignment, minlength=k_bins),
            "contribution": np.bincount(assignment, weights=sub, minlength=k_bins),
            "edges": original.edges,
        }
    return result


# ------------------------------------------------------------------ Fig 5
def fig5_training_curves(
    cov_scales: Sequence[float] = (0.05, 0.10, 0.15),
    n_estimators: int = 10,
    n_minority: int = 500,
    n_majority: int = 5000,
    estimator=None,
    random_state: int = 0,
) -> Dict[float, Dict[str, List[float]]]:
    """Per-iteration test AUCPRC of SPE vs Cascade under growing overlap."""
    from ..datasets import make_checkerboard

    base = (
        DecisionTreeClassifier(max_depth=10, random_state=random_state)
        if estimator is None
        else estimator
    )
    out: Dict[float, Dict[str, List[float]]] = {}
    for cov in cov_scales:
        X, y = make_checkerboard(
            n_minority=n_minority,
            n_majority=n_majority,
            cov_scale=cov,
            random_state=random_state,
        )
        X_tr, X_te, y_tr, y_te = train_test_split(
            X, y, test_size=0.3, random_state=random_state
        )
        spe = SelfPacedEnsembleClassifier(
            estimator=clone(base), n_estimators=n_estimators, random_state=random_state
        )
        spe.fit(X_tr, y_tr, eval_set=(X_te, y_te))
        cascade = BalanceCascadeClassifier(
            estimator=clone(base), n_estimators=n_estimators, random_state=random_state
        )
        cascade.fit(X_tr, y_tr, eval_set=(X_te, y_te))
        out[cov] = {"SPE": spe.train_curve_, "Cascade": cascade.train_curve_}
    return out


# ------------------------------------------------------------------ Fig 6
def fig6_training_views(
    n_minority: int = 300,
    n_majority: int = 3000,
    resolution: int = 40,
    random_state: int = 0,
) -> Dict[str, Dict[str, object]]:
    """Training sets and prediction grids for Clean/SMOTE/Easy/Cascade/SPE.

    For the ensembles, the training sets of the 5th and 10th base model are
    captured via :class:`RecordingClassifier` (the paper shows exactly
    those two iterations).
    """
    from ..datasets import make_checkerboard
    from ..imbalance_ensemble import EasyEnsembleClassifier
    from ..sampling import SMOTE, NeighbourhoodCleaningRule
    from .visualization import RecordingClassifier, prediction_grid

    X, y = make_checkerboard(
        n_minority=n_minority, n_majority=n_majority, random_state=random_state
    )
    lims = (
        (float(X[:, 0].min()), float(X[:, 0].max())),
        (float(X[:, 1].min()), float(X[:, 1].max())),
    )
    base = DecisionTreeClassifier(max_depth=10, random_state=random_state)
    out: Dict[str, Dict[str, object]] = {}

    for name, sampler in (
        ("Clean", NeighbourhoodCleaningRule()),
        ("SMOTE", SMOTE(random_state=random_state)),
    ):
        X_res, y_res = sampler.fit_resample(X, y)
        model = clone(base)
        model.fit(X_res, y_res)
        xs, ys, grid = prediction_grid(model, lims[0], lims[1], resolution)
        out[name] = {"training_sets": [(X_res, y_res)], "grid": grid, "xs": xs, "ys": ys}

    ensembles = {
        "Easy": lambda key: EasyEnsembleClassifier(
            estimator=RecordingClassifier(clone(base), log_key=key),
            n_estimators=10,
            n_boost_rounds=1,
            random_state=random_state,
        ),
        "Cascade": lambda key: BalanceCascadeClassifier(
            estimator=RecordingClassifier(clone(base), log_key=key),
            n_estimators=10,
            random_state=random_state,
        ),
        "SPE": lambda key: SelfPacedEnsembleClassifier(
            estimator=RecordingClassifier(clone(base), log_key=key),
            n_estimators=10,
            random_state=random_state,
        ),
    }
    for name, factory in ensembles.items():
        key = f"fig6-{name}-{random_state}"
        RecordingClassifier.clear_log(key)
        model = factory(key)
        model.fit(X, y)
        log = RecordingClassifier.get_log(key)
        picks = [log[min(4, len(log) - 1)], log[min(9, len(log) - 1)]]
        xs, ys, grid = prediction_grid(model, lims[0], lims[1], resolution)
        out[name] = {"training_sets": picks, "grid": grid, "xs": xs, "ys": ys}
        RecordingClassifier.clear_log(key)
    out["_data"] = {"X": X, "y": y, "xlim": lims[0], "ylim": lims[1]}
    return out


# ------------------------------------------------------------------ Fig 7
def fig7_n_estimators_sweep(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    ns: Sequence[int] = (1, 2, 5, 10, 20, 50, 100),
    methods: Optional[Dict[str, type]] = None,
    estimator=None,
    n_runs: int = 3,
    random_state: int = 0,
) -> Dict[str, Dict[int, List[float]]]:
    """Test AUCPRC vs number of base classifiers for each ensemble method."""
    from .tables import ensemble_figure_methods

    methods = ensemble_figure_methods() if methods is None else methods
    base = (
        DecisionTreeClassifier(max_depth=10, random_state=random_state)
        if estimator is None
        else estimator
    )
    out: Dict[str, Dict[int, List[float]]] = {m: {} for m in methods}
    for name, cls in methods.items():
        for n in ns:
            scores = []
            for run in range(n_runs):
                model = cls(
                    estimator=clone(base),
                    n_estimators=n,
                    random_state=random_state + 1000 * run,
                )
                model.fit(X_train, y_train)
                proba = model.predict_proba(X_test)[:, 1]
                scores.append(float(average_precision_score(y_test, proba)))
            out[name][n] = scores
    return out


# ------------------------------------------------------------------ Fig 8
def fig8_sensitivity(
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    ks: Sequence[int] = (1, 2, 5, 10, 20, 30, 40, 50),
    hardness_functions: Sequence[str] = ("absolute", "squared", "cross_entropy"),
    n_estimators: int = 10,
    estimator=None,
    n_runs: int = 3,
    random_state: int = 0,
) -> Dict[str, Dict[int, List[float]]]:
    """SPE test AUCPRC across bin counts ``k`` and hardness functions ``H``."""
    base = (
        DecisionTreeClassifier(max_depth=10, random_state=random_state)
        if estimator is None
        else estimator
    )
    out: Dict[str, Dict[int, List[float]]] = {h: {} for h in hardness_functions}
    for hardness in hardness_functions:
        for k in ks:
            scores = []
            for run in range(n_runs):
                model = SelfPacedEnsembleClassifier(
                    estimator=clone(base),
                    n_estimators=n_estimators,
                    k_bins=k,
                    hardness=hardness,
                    random_state=random_state + 1000 * run,
                )
                model.fit(X_train, y_train)
                proba = model.predict_proba(X_test)[:, 1]
                scores.append(float(average_precision_score(y_test, proba)))
            out[hardness][k] = scores
    return out
