"""Visualization helpers for the paper's qualitative figures (Figs 2, 4, 6).

No plotting backend is available offline, so figures are reproduced as the
numeric grids/series the paper plots, plus ASCII sketches for eyeballing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..base import BaseEstimator, ClassifierMixin, clone
from ..utils.validation import check_is_fitted

__all__ = [
    "prediction_grid",
    "ascii_scatter",
    "ascii_heatmap",
    "RecordingClassifier",
]


def prediction_grid(
    model,
    xlim: Tuple[float, float],
    ylim: Tuple[float, float],
    resolution: int = 50,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate ``P(y=1)`` of a fitted 2-feature model on a regular grid.

    Returns ``(xs, ys, proba)`` with ``proba[i, j]`` at ``(xs[j], ys[i])`` —
    the data behind Fig 6's lower panels.
    """
    xs = np.linspace(xlim[0], xlim[1], resolution)
    ys = np.linspace(ylim[0], ylim[1], resolution)
    xx, yy = np.meshgrid(xs, ys)
    points = np.column_stack([xx.ravel(), yy.ravel()])
    proba = model.predict_proba(points)
    pos_col = list(np.asarray(model.classes_).tolist()).index(1)
    return xs, ys, proba[:, pos_col].reshape(resolution, resolution)


def ascii_scatter(
    X: np.ndarray,
    y: np.ndarray,
    *,
    width: int = 60,
    height: int = 24,
    majority_char: str = ".",
    minority_char: str = "o",
) -> str:
    """Coarse character scatter plot; minority drawn last (on top)."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.shape[1] != 2:
        raise ValueError("ascii_scatter requires exactly 2 features")
    x_lo, x_hi = X[:, 0].min(), X[:, 0].max()
    y_lo, y_hi = X[:, 1].min(), X[:, 1].max()
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for cls, char in ((0, majority_char), (1, minority_char)):
        for px, py in X[y == cls]:
            col = min(int((px - x_lo) / x_span * (width - 1)), width - 1)
            row = min(int((py - y_lo) / y_span * (height - 1)), height - 1)
            canvas[height - 1 - row][col] = char
    return "\n".join("".join(row) for row in canvas)


def ascii_heatmap(grid: np.ndarray, *, ramp: str = " .:-=+*#%@") -> str:
    """Render a [0, 1] matrix with a character intensity ramp."""
    grid = np.asarray(grid, dtype=float)
    clipped = np.clip(grid, 0.0, 1.0)
    levels = (clipped * (len(ramp) - 1)).round().astype(int)
    return "\n".join("".join(ramp[v] for v in row) for row in levels[::-1])


# --------------------------------------------------------------------- #
#: module-level fit logs; survives clone() because entries are keyed by a
#: plain string hyper-parameter rather than stored on the instance.
_FIT_LOGS: Dict[str, List[Tuple[np.ndarray, np.ndarray]]] = {}


class RecordingClassifier(BaseEstimator, ClassifierMixin):
    """Transparent wrapper logging every training set passed to ``fit``.

    Ensemble methods clone their base estimator per member, so the log lives
    in a module-level registry under ``log_key`` — clones share the key and
    therefore the log. Used to reproduce Fig 6's "training set of the 5th
    and 10th model" panels for any ensemble method.
    """

    def __init__(self, estimator=None, log_key: str = "default"):
        self.estimator = estimator
        self.log_key = log_key

    @staticmethod
    def get_log(key: str) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Recorded per-fit log entries."""
        return _FIT_LOGS.get(key, [])

    @staticmethod
    def clear_log(key: str) -> None:
        """Drop every recorded log entry."""
        _FIT_LOGS.pop(key, None)

    def fit(self, X, y):
        """Fit on ``X``, ``y``; returns ``self``."""
        _FIT_LOGS.setdefault(self.log_key, []).append(
            (np.array(X, copy=True), np.array(y, copy=True))
        )
        self.model_ = clone(self.estimator)
        self.model_.fit(X, y)
        self.classes_ = self.model_.classes_
        return self

    def predict(self, X):
        """Predicted class labels for ``X``."""
        check_is_fitted(self, ["model_"])
        return self.model_.predict(X)

    def predict_proba(self, X):
        """Class probabilities, columns ordered by ``classes_``."""
        check_is_fitted(self, ["model_"])
        return self.model_.predict_proba(X)
