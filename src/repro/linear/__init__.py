"""Linear models."""

from .logistic import LogisticRegression

__all__ = ["LogisticRegression"]
