"""Logistic regression via L-BFGS on the L2-regularised log-loss."""

from __future__ import annotations

import numpy as np
from scipy import optimize

from ..base import BaseEstimator, ClassifierMixin
from ..utils.validation import (
    check_array,
    check_is_fitted,
    check_X_y,
)

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary logistic regression (the paper's LR baseline in Table V).

    Minimises ``sum_i w_i * logloss_i + 1/(2C) * ||coef||²`` with L-BFGS;
    the intercept is unpenalised. Supports ``sample_weight`` so it can serve
    as a boosting base learner.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 200,
        tol: float = 1e-6,
        fit_intercept: bool = True,
    ):
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept

    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        """Fit on ``X``, ``y``, ``sample_weight``; returns ``self``."""
        if self.C <= 0:
            raise ValueError("C must be positive")
        X, y = check_X_y(X, y)
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        if len(self.classes_) > 2:
            raise ValueError("LogisticRegression supports binary problems only")
        n, d = X.shape
        if sample_weight is None:
            w = np.ones(n)
        else:
            w = np.asarray(sample_weight, dtype=float)
            w = w * (n / max(w.sum(), 1e-300))  # keep loss scale ~ n
        # Single-class degenerate fit: constant predictor.
        if len(self.classes_) == 1:
            self.coef_ = np.zeros(d)
            self.intercept_ = 50.0  # pushes sigmoid to ~1 for the only class
            self.n_features_in_ = d
            self._single_class = True
            return self
        self._single_class = False
        t = y_enc.astype(float)
        alpha = 1.0 / self.C

        def objective(theta):
            coef = theta[:d]
            b = theta[d] if self.fit_intercept else 0.0
            z = X @ coef + b
            p = _sigmoid(z)
            eps = 1e-12
            loss = -np.sum(w * (t * np.log(p + eps) + (1 - t) * np.log(1 - p + eps)))
            loss += 0.5 * alpha * coef @ coef
            grad_z = w * (p - t)
            grad_coef = X.T @ grad_z + alpha * coef
            if self.fit_intercept:
                grad = np.concatenate([grad_coef, [grad_z.sum()]])
            else:
                grad = grad_coef
            return loss, grad

        theta0 = np.zeros(d + (1 if self.fit_intercept else 0))
        result = optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d]) if self.fit_intercept else 0.0
        self.n_iter_ = int(result.nit)
        self.converged_ = bool(result.success)
        self.n_features_in_ = d
        return self

    def decision_function(self, X) -> np.ndarray:
        """Real-valued scores for the positive class."""
        check_is_fitted(self, ["coef_"])
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered by ``classes_``."""
        if getattr(self, "_single_class", False):
            X = check_array(X)
            proba = np.ones((X.shape[0], 1))
            return proba
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        """Predicted class labels for ``X``."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------ #
    def __getstate_arrays__(self):
        """Pickle-free fitted-state export (see :mod:`repro.persistence`).

        Fit diagnostics (``n_iter_``, ``converged_``) are not persisted —
        only what inference needs.
        """
        check_is_fitted(self, ["coef_"])
        meta = {
            "n_features_in": int(self.n_features_in_),
            "intercept": float(self.intercept_),
            "single_class": bool(getattr(self, "_single_class", False)),
        }
        arrays = {
            "classes": np.asarray(self.classes_),
            "coef": np.asarray(self.coef_, dtype=np.float64),
        }
        return meta, arrays, {}

    def __setstate_arrays__(self, meta, arrays, children) -> None:
        self.classes_ = np.asarray(arrays["classes"])
        self.coef_ = np.asarray(arrays["coef"], dtype=np.float64)
        self.intercept_ = float(meta["intercept"])
        self._single_class = bool(meta["single_class"])
        self.n_features_in_ = int(meta["n_features_in"])
